#!/usr/bin/env python
"""The shared memory programming model on *real* Python threads.

Everything else in this repository simulates the two machines in virtual
time (exactly as the paper did with CBS and Tango).  This demo instead
runs the paper's shared memory program *for real*: N ``threading.Thread``
workers, one shared cost array, a distributed loop handing out wire
subscripts, no locks on the array (§3: "accesses to the cost array are
not locked" — collisions are rare and the algorithm tolerates them), and
a barrier between iterations.

Two things to observe:

1. the *program structure* is precisely the paper's shared memory
   implementation — the distributed loop is ~5 lines, which is the
   "simplicity on its side" the paper credits it with;
2. the *speedup* is absent: CPython's GIL serialises the workers, which
   is why the reproduction measures parallel behaviour in virtual time
   instead (see DESIGN.md §2).

Run:  python examples/threads_demo.py [--threads 4]
"""

import argparse
import itertools
import threading
import time

from repro import SequentialRouter, bnre_like
from repro.grid import CostArray
from repro.route import circuit_height, route_wire


def threaded_route(circuit, n_threads: int, iterations: int = 2):
    """The paper's shared memory program, on real threads."""
    cost = CostArray(circuit.n_channels, circuit.n_grids)
    paths = {}

    for iteration in range(iterations):
        counter = itertools.count()  # the distributed loop
        barrier = threading.Barrier(n_threads)

        def worker():
            while True:
                wire_idx = next(counter)
                if wire_idx >= circuit.n_wires:
                    break
                if wire_idx in paths:  # rip up last iteration's route
                    cost.remove_path(paths[wire_idx].flat_cells, strict=False)
                result = route_wire(cost, circuit.wire(wire_idx), tie_break=iteration % 2)
                cost.apply_path(result.path.flat_cells)
                paths[wire_idx] = result.path
            barrier.wait()

        threads = [threading.Thread(target=worker) for _ in range(n_threads)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
    return cost, paths


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--threads", type=int, default=4)
    args = parser.parse_args()

    circuit = bnre_like()
    print(circuit.describe())

    t0 = time.perf_counter()
    seq = SequentialRouter(circuit, iterations=2).run()
    t_seq = time.perf_counter() - t0
    print(f"\nsequential:      height={seq.quality.circuit_height}  "
          f"wall={t_seq:.2f}s")

    t0 = time.perf_counter()
    cost, paths = threaded_route(circuit, args.threads)
    t_par = time.perf_counter() - t0
    print(f"{args.threads} real threads:  height={circuit_height(cost)}  "
          f"wall={t_par:.2f}s  (speedup {t_seq / t_par:.2f}x)")
    assert len(paths) == circuit.n_wires

    print(
        "\nThe program is the paper's: a distributed loop, an unlocked\n"
        "shared cost array, a barrier per iteration.  The missing speedup\n"
        "is CPython's GIL — which is why this reproduction, like the paper\n"
        "itself, measures parallel execution in simulated virtual time."
    )


if __name__ == "__main__":
    main()
