#!/usr/bin/env python
"""Explore the update-strategy design space of paper §4.3 / §5.1.

LocusRoute tolerates stale cost data, so the message passing programmer
chooses *how consistent* the replicated cost array should be.  This
example sweeps the four strategy families — sender initiated, non-blocking
receiver initiated, blocking receiver initiated, and mixed — and prints
the quality / traffic / time tradeoff each one buys.

Run:  python examples/update_strategies.py [--wires N]
"""

import argparse

from repro import UpdateSchedule, bnre_like, run_message_passing
from repro.harness import render_table


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--wires", type=int, default=None, help="shrink the circuit")
    args = parser.parse_args()

    circuit = bnre_like(n_wires=args.wires)
    print(circuit.describe(), "on 16 processors\n")

    strategies = [
        ("sender, eager (SRD=2 SLD=1)", UpdateSchedule.sender_initiated(2, 1)),
        ("sender, default (SRD=2 SLD=10)", UpdateSchedule.sender_initiated(2, 10)),
        ("sender, lazy (SRD=10 SLD=20)", UpdateSchedule.sender_initiated(10, 20)),
        ("receiver, eager (RLD=1 RRD=5)", UpdateSchedule.receiver_initiated(1, 5)),
        ("receiver, lazy (RLD=10 RRD=30)", UpdateSchedule.receiver_initiated(10, 30)),
        ("receiver, blocking (RLD=1 RRD=5)",
         UpdateSchedule.receiver_initiated(1, 5, blocking=True)),
        ("mixed (paper §5.1.3)", UpdateSchedule.mixed_example()),
        ("silent (never update)", UpdateSchedule()),
    ]

    rows = []
    for label, schedule in strategies:
        result = run_message_passing(circuit, schedule)
        rows.append(
            {
                "strategy": label,
                "ckt_height": result.quality.circuit_height,
                "occupancy": result.quality.occupancy_factor,
                "mbytes": round(result.mbytes_transferred, 4),
                "messages": result.network.n_messages,
                "time_s": round(result.exec_time_s, 3),
            }
        )

    print(
        render_table(
            "update strategy tradeoffs (bnrE-like)",
            ["strategy", "ckt_height", "occupancy", "mbytes", "messages", "time_s"],
            rows,
        )
    )
    print(
        "\nObservations to look for (paper §5.1):\n"
        "  - eager sender schedules buy the best heights at ~10-100x the\n"
        "    traffic of lazy receiver schedules;\n"
        "  - blocking receivers pay a large time penalty for no quality gain;\n"
        "  - even the silent run completes — LocusRoute tolerates stale\n"
        "    data, it just routes a worse circuit."
    )


if __name__ == "__main__":
    main()
