#!/usr/bin/env python
"""Render the paper's explanatory figures (1-3) as ASCII art.

Figure 1 — a routed circuit's cost array with one wire's path highlighted;
Figure 2 — the division of the cost array into owned regions;
Figure 3 — the update-transaction taxonomy.

Run:  python examples/figures.py
"""

from repro import SequentialRouter, tiny_test_circuit
from repro.grid import RegionMap
from repro.viz import ascii_cost_array, ascii_regions, ascii_update_taxonomy


def main() -> None:
    circuit = tiny_test_circuit(n_wires=40)
    result = SequentialRouter(circuit, iterations=2).run()

    print("Figure 1 — cost array after routing, wire w0000's path marked 'O':\n")
    print(ascii_cost_array(result.cost, highlight=result.paths[0]))

    print("\nFigure 2 — owned regions on a 2x2 processor mesh:\n")
    print(ascii_regions(RegionMap(circuit.n_channels, circuit.n_grids, 4)))

    print("\nFigure 3 — classification of update types:\n")
    print(ascii_update_taxonomy())


if __name__ == "__main__":
    main()
