#!/usr/bin/env python
"""Dynamic wire distribution — the §4.2 road not taken.

The paper rejected dynamic wire assignment for its message passing
implementation because (a) task requests serviced only between wires can
leave processors idle "for an entire wire", and (b) CBS could not simulate
interrupt-driven reception.  This reproduction's event kernel can, so this
example runs all three designs and measures the latency argument that
drove the paper to static assignment.

Run:  python examples/dynamic_assignment.py
"""

from dataclasses import replace

from repro import UpdateSchedule, bnre_like, run_message_passing
from repro.harness import render_table
from repro.parallel import run_dynamic_assignment


def main() -> None:
    circuit = bnre_like()
    schedule = UpdateSchedule.sender_initiated(2, 10)
    print(circuit.describe(), "— one routing iteration, 16 processors\n")

    static = run_message_passing(circuit, schedule, iterations=1)
    polled = run_dynamic_assignment(circuit, schedule)
    interrupt = run_dynamic_assignment(
        circuit, replace(schedule, interrupt_reception=True)
    )

    rows = []
    for label, result in (
        ("static ThresholdCost=1000", static),
        ("dynamic, polled master", polled),
        ("dynamic, interrupt master", interrupt),
    ):
        rows.append(
            {
                "scheme": label,
                "ckt_height": result.quality.circuit_height,
                "mbytes": round(result.mbytes_transferred, 4),
                "time_s": round(result.exec_time_s, 3),
                "task_wait_ms": round(
                    result.meta.get("mean_task_wait_s", 0.0) * 1e3, 2
                ),
            }
        )
    print(
        render_table(
            "wire distribution schemes",
            ["scheme", "ckt_height", "mbytes", "time_s", "task_wait_ms"],
            rows,
        )
    )
    print(
        "\nThe paper's reasoning, measured:\n"
        f"  - a polled wire-assignment processor leaves requesters waiting\n"
        f"    ~{polled.meta['mean_task_wait_s'] * 1e3:.1f} ms per task (it only answers between wires);\n"
        f"  - interrupt servicing cuts that to "
        f"~{interrupt.meta['mean_task_wait_s'] * 1e3:.1f} ms and makes dynamic\n"
        f"    distribution competitive — but 1989's CBS couldn't model it,\n"
        f"    so the paper (reasonably) went static."
    )


if __name__ == "__main__":
    main()
