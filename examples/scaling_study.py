#!/usr/bin/env python
"""Processor-count scaling (paper §5.4).

Runs both paradigms from 1 to 16 processors and shows the three coupled
trends of Table 6: execution time falls (speedup ~12 at 16 processors),
solution quality degrades (more wires routed blind of each other), and
message passing network traffic *peaks and then falls* as shrinking owned
regions tighten the update bounding boxes.

Run:  python examples/scaling_study.py [--circuit bnrE|MDC]
"""

import argparse

from repro import UpdateSchedule, bnre_like, mdc_like, run_message_passing, run_shared_memory
from repro.harness import render_table


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--circuit", default="bnrE", choices=["bnrE", "MDC"])
    args = parser.parse_args()
    circuit = bnre_like() if args.circuit == "bnrE" else mdc_like()
    print(circuit.describe(), "\n")

    schedule = UpdateSchedule.sender_initiated(2, 10)
    rows = []
    base_time = None
    for n_procs in (1, 2, 4, 9, 16):
        mp = run_message_passing(circuit, schedule, n_procs=n_procs)
        sm = run_shared_memory(circuit, n_procs=n_procs, collect_trace=(n_procs > 1))
        if n_procs == 2:
            base_time = mp.exec_time_s
        speedup = 2 * base_time / mp.exec_time_s if base_time else None
        rows.append(
            {
                "procs": n_procs,
                "mp_height": mp.quality.circuit_height,
                "mp_mbytes": round(mp.mbytes_transferred, 3),
                "mp_time_s": round(mp.exec_time_s, 3),
                "speedup": round(speedup, 1) if speedup else None,
                "sm_height": sm.quality.circuit_height,
                "sm_mbytes": round(sm.mbytes_transferred, 3) if sm.coherence else None,
            }
        )

    print(
        render_table(
            f"scaling study ({circuit.name}, sender initiated 2/10)",
            [
                "procs",
                "mp_height",
                "mp_mbytes",
                "mp_time_s",
                "speedup",
                "sm_height",
                "sm_mbytes",
            ],
            rows,
            note="speedup normalised to the 2-processor run x 2, as in §5.4",
        )
    )
    print(
        "\nNote the §5.4 subtlety: falling traffic beyond 4 processors is\n"
        "NOT less communication demand — quality is degrading at the same\n"
        "time; the bounding boxes simply waste fewer bytes as the owned\n"
        "regions shrink."
    )


if __name__ == "__main__":
    main()
