#!/usr/bin/env python
"""The headline comparison (paper §5.2 + conclusions), with breakdowns.

Beyond the summary numbers, this example digs into *where* the bytes go:
per-packet-kind traffic for message passing, per-component bus traffic for
shared memory, cache line size sensitivity, and the delta-array
cancellation statistic that explains the gap.

Run:  python examples/shared_vs_message.py
"""

from repro import UpdateSchedule, bnre_like, run_message_passing, run_shared_memory
from repro.harness import render_table


def main() -> None:
    circuit = bnre_like()
    print(circuit.describe(), "on 16 processors\n")

    sender = run_message_passing(circuit, UpdateSchedule.sender_initiated(2, 10))
    receiver = run_message_passing(circuit, UpdateSchedule.receiver_initiated(1, 30))
    sm = run_shared_memory(circuit, line_size=4, extra_line_sizes=(8, 16, 32))

    rows = [
        {
            "version": label,
            "ckt_height": r.quality.circuit_height,
            "mbytes": round(r.mbytes_transferred, 4),
            "time_s": round(r.exec_time_s, 3),
        }
        for label, r in (
            ("shared memory (4B lines)", sm),
            ("MP sender initiated 2/10", sender),
            ("MP receiver initiated 1/30", receiver),
        )
    ]
    print(render_table("paradigm comparison", ["version", "ckt_height", "mbytes", "time_s"], rows))

    print("\nmessage passing traffic by packet kind (sender initiated):")
    for kind, nbytes in sorted(sender.network.bytes_by_kind.items()):
        count = sender.network.messages_by_kind[kind]
        print(f"  {kind:15s} {nbytes / 1e6:7.4f} MB in {count:5d} packets")

    print("\nshared memory bus traffic by component (4B lines):")
    c = sm.coherence
    for label, nbytes in (
        ("cold fetches", c.cold_fetch_bytes),
        ("refetches after invalidation", c.refetch_bytes),
        ("word writes (first write to clean line)", c.word_write_bytes),
        ("write-miss fetches", c.write_miss_fetch_bytes),
    ):
        print(f"  {label:42s} {nbytes / 1e6:7.4f} MB")
    print(f"  -> {c.write_caused_fraction:.0%} of bytes caused by writes (paper: >80%)")

    print("\nshared memory traffic vs cache line size (Table 3):")
    for ls, stats in sorted(sm.meta["coherence_by_line_size"].items()):
        print(f"  {ls:3d} B lines: {stats['mbytes']:.3f} MB")

    ratio_sm = sm.mbytes_transferred / sender.mbytes_transferred
    ratio_mp = sender.mbytes_transferred / max(receiver.mbytes_transferred, 1e-9)
    print(
        f"\nthe paper's conclusion, reproduced: explicit delta-array updates\n"
        f"cut communication to 1/{ratio_sm:.0f} of the coherence traffic\n"
        f"(receiver initiated: another 1/{ratio_mp:.0f}), at a "
        f"{sm.quality.circuit_height / sender.quality.circuit_height:.0%}-of-SM\n"
        f"quality cost — programmer effort buys bandwidth."
    )


if __name__ == "__main__":
    main()
