#!/usr/bin/env python
"""Bring your own circuit: build, save, load and route a custom netlist.

Shows the full circuit-authoring API: constructing wires pin by pin,
generating a synthetic netlist with custom statistics, round-tripping
through both file formats, and routing the result.

Run:  python examples/custom_circuit.py
"""

import tempfile
from pathlib import Path

from repro import (
    Circuit,
    Pin,
    SequentialRouter,
    SyntheticCircuitConfig,
    Wire,
    generate,
)
from repro.circuits import compute_stats, load_text, save_json, save_text


def hand_built_circuit() -> Circuit:
    """A tiny hand-placed design: a bus, a clock-ish net, local wires."""
    wires = [
        # an 8-bit "bus": parallel medium nets in neighbouring channels
        *[
            Wire(f"bus{i}", [Pin(4 + i, 0), Pin(44 + i, 2)])
            for i in range(8)
        ],
        # a chip-crossing control net with many pins
        Wire("ctl", [Pin(2, 1), Pin(18, 3), Pin(33, 0), Pin(49, 2), Pin(58, 1)]),
        # short local connections
        Wire("l0", [Pin(10, 3), Pin(14, 3)]),
        Wire("l1", [Pin(22, 2), Pin(25, 1)]),
        Wire("l2", [Pin(51, 0), Pin(55, 0)]),
    ]
    return Circuit("hand-built", n_channels=4, n_grids=60, wires=wires)


def main() -> None:
    # -- 1. hand-built ----------------------------------------------------
    circuit = hand_built_circuit()
    print(circuit.describe())
    result = SequentialRouter(circuit, iterations=3).run()
    print(f"  routed: height={result.quality.circuit_height} "
          f"occupancy={result.quality.occupancy_factor}")

    # -- 2. synthetic with custom statistics ------------------------------
    config = SyntheticCircuitConfig(
        name="my-design",
        n_wires=150,
        n_channels=6,
        n_grids=120,
        seed=2026,
        local_fraction=0.9,      # very locality-friendly
        local_mean_span=8.0,
        pin_geometric_p=0.4,     # more multi-pin nets than the defaults
    )
    synthetic = generate(config)
    stats = compute_stats(synthetic)
    print(f"\n{synthetic.describe()}")
    print(f"  mean span {stats.mean_x_span:.1f} grids, "
          f"{stats.two_pin_fraction:.0%} two-pin nets, "
          f"long-wire fraction {stats.long_wire_fraction:.0%}")

    # -- 3. file round trips ----------------------------------------------
    with tempfile.TemporaryDirectory() as tmp:
        json_path = Path(tmp) / "design.json"
        text_path = Path(tmp) / "design.txt"
        save_json(synthetic, json_path)
        save_text(synthetic, text_path)
        reloaded = load_text(text_path)
        assert reloaded.wires == synthetic.wires
        print(f"  JSON: {json_path.stat().st_size} bytes, "
              f"text: {text_path.stat().st_size} bytes, round trip OK")

    # -- 4. route the synthetic design -------------------------------------
    result = SequentialRouter(synthetic, iterations=3).run()
    print(f"  routed: height={result.quality.circuit_height}, "
          f"improved over first pass by "
          f"{result.per_iteration_height[0] - result.per_iteration_height[-1]} tracks")


if __name__ == "__main__":
    main()
