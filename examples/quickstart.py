#!/usr/bin/env python
"""Quickstart: route a circuit both ways and compare the paradigms.

This walks the library's core objects end to end:

1. generate the bnrE-like benchmark circuit (the paper's 420-wire design);
2. route it sequentially (the quality baseline);
3. route it on 16 simulated message passing processors with the paper's
   default sender-initiated update schedule;
4. route it on 16 simulated shared memory processors with cache coherence;
5. print the three-way comparison the paper's §5.2 makes.

Run:  python examples/quickstart.py
"""

from repro import (
    SequentialRouter,
    UpdateSchedule,
    bnre_like,
    run_message_passing,
    run_shared_memory,
)


def main() -> None:
    circuit = bnre_like()
    print(circuit.describe())
    print()

    # -- 1. the uniprocessor baseline -----------------------------------
    seq = SequentialRouter(circuit, iterations=3).run()
    print("sequential LocusRoute:")
    print(f"  circuit height    {seq.quality.circuit_height}")
    print(f"  occupancy factor  {seq.quality.occupancy_factor}")
    print(f"  height by iteration: {seq.per_iteration_height}")
    print()

    # -- 2. message passing: 16 nodes, sender-initiated updates ---------
    schedule = UpdateSchedule.sender_initiated(send_rmt_every=2, send_loc_every=10)
    mp = run_message_passing(circuit, schedule, n_procs=16)
    print(f"message passing (16 procs, {schedule.describe()}):")
    print(f"  circuit height    {mp.quality.circuit_height}")
    print(f"  occupancy factor  {mp.quality.occupancy_factor}")
    print(f"  network traffic   {mp.network.mbytes:.3f} MB "
          f"({mp.network.n_messages} messages)")
    print(f"  execution time    {mp.exec_time_s:.3f} s (simulated Ametek 2010)")
    print()

    # -- 3. shared memory: 16 procs, write-back-invalidate caches -------
    sm = run_shared_memory(circuit, n_procs=16, line_size=4)
    print("shared memory (16 procs, distributed loop, 4B cache lines):")
    print(f"  circuit height    {sm.quality.circuit_height}")
    print(f"  occupancy factor  {sm.quality.occupancy_factor}")
    print(f"  bus traffic       {sm.coherence.mbytes:.3f} MB "
          f"({sm.coherence.write_caused_fraction:.0%} caused by writes)")
    print(f"  execution time    {sm.exec_time_s:.3f} s (simulated Multimax)")
    print()

    # -- 4. the paper's §5.2 comparison ----------------------------------
    ratio = sm.mbytes_transferred / mp.mbytes_transferred
    print("the tradeoff (paper §5.2):")
    print(f"  shared memory quality is "
          f"{(1 - sm.quality.circuit_height / mp.quality.circuit_height):.0%} "
          f"better in circuit height ...")
    print(f"  ... at {ratio:.1f}x the communication traffic")


if __name__ == "__main__":
    main()
