#!/usr/bin/env python
"""Locality in wire assignment (paper §4.2 / §5.3).

Sweeps ThresholdCost from "balance everything" to "fully local" on both
benchmark circuits, for both paradigms, and reports quality, traffic,
execution time, the load imbalance that strict locality causes, and the
paper's locality measure (mean mesh hops between the routing processor
and each routed cell's owner).

Run:  python examples/locality_study.py [--circuit bnrE|MDC]
"""

import argparse
import math

from repro import (
    RoundRobinAssigner,
    ThresholdCostAssigner,
    UpdateSchedule,
    bnre_like,
    load_report,
    locality_measure,
    mdc_like,
    run_message_passing,
    run_shared_memory,
)
from repro.grid import RegionMap
from repro.harness import render_table


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--circuit", default="bnrE", choices=["bnrE", "MDC"])
    args = parser.parse_args()

    circuit = bnre_like() if args.circuit == "bnrE" else mdc_like()
    regions = RegionMap(circuit.n_channels, circuit.n_grids, 16)
    print(circuit.describe(), "on a 4x4 processor mesh\n")

    policies = [("round robin", RoundRobinAssigner(circuit, regions).assign())]
    for tc in (10, 30, 100, 1000, math.inf):
        policies.append(
            (f"TC={tc:g}", ThresholdCostAssigner(circuit, regions, tc).assign())
        )

    schedule = UpdateSchedule.sender_initiated(2, 10)
    rows = []
    for label, assignment in policies:
        balance = load_report(circuit, assignment)
        mp = run_message_passing(circuit, schedule, assignment=assignment)
        sm = run_shared_memory(circuit, assignment=assignment)
        loc = locality_measure(regions, mp.paths, mp.wire_router)
        rows.append(
            {
                "assignment": label,
                "imbalance": round(balance.imbalance, 2),
                "hops": round(loc.mean_hops, 2),
                "own%": round(100 * loc.owned_fraction, 1),
                "mp_height": mp.quality.circuit_height,
                "mp_mbytes": round(mp.mbytes_transferred, 3),
                "mp_time_s": round(mp.exec_time_s, 3),
                "sm_height": sm.quality.circuit_height,
                "sm_mbytes": round(sm.mbytes_transferred, 3),
            }
        )

    print(
        render_table(
            f"locality sweep ({circuit.name})",
            [
                "assignment",
                "imbalance",
                "hops",
                "own%",
                "mp_height",
                "mp_mbytes",
                "mp_time_s",
                "sm_height",
                "sm_mbytes",
            ],
            rows,
        )
    )
    print(
        "\nThe §5.3.3 tension: pushing ThresholdCost up exploits more\n"
        "locality (hops fall, traffic falls, quality improves slightly) but\n"
        "the load imbalance grows until it dominates execution time — the\n"
        "sweet spot is a moderate threshold, not either extreme."
    )


if __name__ == "__main__":
    main()
