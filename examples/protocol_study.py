#!/usr/bin/env python
"""Coherence-protocol study: invalidate vs update vs finite caches.

The paper measures one protocol (Write-Back-with-Invalidate, infinite
caches) and cites Archibald & Baer for the wider design space.  This
example maps that space on LocusRoute's own traces: the paper's protocol,
the write-update alternative, and finite direct-mapped caches of several
sizes — all replayed from a single traced shared memory run, which is the
beauty of the trace-driven methodology.

Run:  python examples/protocol_study.py
"""

from repro import bnre_like, run_shared_memory
from repro.harness import render_table
from repro.memsim import (
    AddressMap,
    simulate_trace,
    simulate_trace_finite,
    simulate_trace_write_update,
)


def main() -> None:
    circuit = bnre_like()
    print(circuit.describe(), "— 16 processors, 8-byte cache lines\n")

    # One traced run; every protocol variant replays the same references.
    result = run_shared_memory(circuit, line_size=8, keep_trace=True)
    trace = result.meta["trace"]
    layout = result.meta["layout"]
    amap = AddressMap(
        circuit.n_channels,
        circuit.n_grids,
        8,
        extra_words=layout.total_words - layout.array_words,
    )
    print(
        f"trace: {trace.n_records} bursts, {trace.n_references} references\n"
    )

    rows = []
    wbi = simulate_trace(trace, 16, amap)
    rows.append(
        {
            "configuration": "write-back invalidate, infinite cache (paper)",
            "mbytes": round(wbi.mbytes, 3),
            "write_caused": f"{wbi.write_caused_fraction:.0%}",
        }
    )
    upd = simulate_trace_write_update(trace, 16, amap)
    rows.append(
        {
            "configuration": "write-update, infinite cache",
            "mbytes": round(upd.mbytes, 3),
            "write_caused": f"{upd.write_caused_fraction:.0%}",
        }
    )
    for cache_lines in (64, 256, 1024):
        finite = simulate_trace_finite(trace, 16, amap, cache_lines)
        rows.append(
            {
                "configuration": f"write-back invalidate, {cache_lines}-line cache",
                "mbytes": round(finite.mbytes, 3),
                "write_caused": f"{finite.write_caused_fraction:.0%}",
            }
        )

    print(
        render_table(
            "coherence traffic by protocol / cache configuration",
            ["configuration", "mbytes", "write_caused"],
            rows,
        )
    )
    print(
        "\nReadings:\n"
        "  - finite caches add capacity misses on top of coherence traffic\n"
        "    (the paper's footnote 3), converging to the infinite-cache\n"
        "    number as the cache grows;\n"
        "  - on this read-dominated sharing pattern a write-update protocol\n"
        "    moves fewer bytes — invalidation's advantage is migratory\n"
        "    data, which the cost array is not."
    )


if __name__ == "__main__":
    main()
