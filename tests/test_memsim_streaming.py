"""Streaming coherence replay: equivalence, file format, bounded memory.

Three contracts:

1. :func:`repro.memsim.columnar.simulate_trace_streaming` is bit-identical
   to the scalar oracle (:func:`repro.memsim.coherence.simulate_trace`)
   for every trace and *every chunk size*, including ``chunk_refs=1``
   where all cross-chunk carry state (sharer mask, live dirty owner,
   ever-accessed mask) is exercised on each record boundary.
2. The LRTS trace-stream file round-trips: records come back in replay
   order with identical payloads, and the streamed chunks respect record
   boundaries.
3. Peak memory of a streamed replay is bounded by the chunk size, not
   the trace length: tracemalloc peak at N records ~= peak at 4N.
"""

from __future__ import annotations

import tracemalloc

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import CoherenceError
from repro.memsim import (
    AddressMap,
    ReferenceTrace,
    iter_trace_chunks,
    load_trace_stream,
    open_trace_stream,
    save_trace_stream,
    simulate_trace,
    simulate_trace_columnar,
    simulate_trace_streaming,
)

N_CHANNELS = 6
N_GRIDS = 32
LINE_SIZES = (4, 16)

burst_strategy = st.tuples(
    st.integers(min_value=0, max_value=7),  # proc
    st.booleans(),  # is_write
    st.lists(
        st.integers(min_value=0, max_value=N_CHANNELS * N_GRIDS - 1),
        min_size=1,
        max_size=12,
    ),
)


def build_trace(bursts) -> ReferenceTrace:
    trace = ReferenceTrace()
    for t, (proc, is_write, cells) in enumerate(bursts):
        trace.add(float(t), proc, is_write, np.asarray(cells, dtype=np.int64))
    return trace


def synthetic_trace(n_records: int, seed: int = 7) -> ReferenceTrace:
    rng = np.random.default_rng(seed)
    n_cells = N_CHANNELS * N_GRIDS
    procs = rng.integers(0, 8, n_records)
    writes = rng.random(n_records) < 0.4
    sizes = rng.integers(1, 7, n_records)
    bases = rng.integers(0, n_cells, n_records)
    trace = ReferenceTrace()
    for i in range(n_records):
        cells = (bases[i] + np.arange(sizes[i], dtype=np.int64)) % n_cells
        trace.add(float(i), int(procs[i]), bool(writes[i]), cells)
    return trace


class TestStreamingEquivalence:
    @settings(max_examples=80, deadline=None)
    @given(
        st.lists(burst_strategy, min_size=0, max_size=50),
        st.integers(min_value=1, max_value=40),
    )
    def test_random_traces_any_chunk_size(self, bursts, chunk_refs):
        trace = build_trace(bursts)
        for ls in LINE_SIZES:
            amap = AddressMap(N_CHANNELS, N_GRIDS, ls)
            scalar = simulate_trace(trace, 8, amap)
            streamed = simulate_trace_streaming(trace, 8, amap, chunk_refs=chunk_refs)
            assert scalar == streamed, f"diverged at line size {ls}"

    def test_chunk_refs_one_forces_carry_on_every_record(self):
        trace = synthetic_trace(300)
        amap = AddressMap(N_CHANNELS, N_GRIDS, 8)
        scalar = simulate_trace(trace, 8, amap)
        assert simulate_trace_streaming(trace, 8, amap, chunk_refs=1) == scalar

    def test_matches_columnar_on_large_trace(self):
        trace = synthetic_trace(5_000)
        amap = AddressMap(N_CHANNELS, N_GRIDS, 16)
        columnar = simulate_trace_columnar(trace, 8, amap)
        for chunk_refs in (64, 1_000, 10**9):
            assert simulate_trace_streaming(trace, 8, amap, chunk_refs=chunk_refs) == columnar

    def test_streaming_from_file_matches_in_memory(self, tmp_path):
        trace = synthetic_trace(2_000)
        path = tmp_path / "t.lrts"
        save_trace_stream(trace, path)
        amap = AddressMap(N_CHANNELS, N_GRIDS, 16)
        in_memory = simulate_trace_columnar(trace, 8, amap)
        assert simulate_trace_streaming(path, 8, amap, chunk_refs=512) == in_memory

    def test_rejects_bad_processor_count(self):
        trace = synthetic_trace(10)
        amap = AddressMap(N_CHANNELS, N_GRIDS, 16)
        for bad in (0, 64):
            with pytest.raises(CoherenceError):
                simulate_trace_streaming(trace, bad, amap)

    def test_rejects_out_of_range_processor(self):
        trace = build_trace([(5, True, [0, 1])])
        amap = AddressMap(N_CHANNELS, N_GRIDS, 16)
        with pytest.raises(CoherenceError):
            simulate_trace_streaming(trace, 2, amap)


class TestStreamFile:
    def test_round_trip_preserves_replay_order_and_payload(self, tmp_path):
        trace = ReferenceTrace()
        # Deliberately out-of-time-order appends: replay order sorts them.
        trace.add(3.0, 1, True, np.array([4, 5], dtype=np.int64))
        trace.add(1.0, 0, False, np.array([0], dtype=np.int64))
        trace.add(2.0, 2, False, np.array([7, 8, 9], dtype=np.int64))
        path = tmp_path / "t.lrts"
        n_bytes = save_trace_stream(trace, path)
        assert path.stat().st_size == n_bytes
        loaded = load_trace_stream(path)
        got = [
            (r.time, r.proc, r.is_write, list(r.flat_cells)) for r in loaded.records
        ]
        assert got == [
            (1.0, 0, False, [0]),
            (2.0, 2, False, [7, 8, 9]),
            (3.0, 1, True, [4, 5]),
        ]

    def test_chunks_respect_record_boundaries(self, tmp_path):
        trace = synthetic_trace(400)
        path = tmp_path / "t.lrts"
        save_trace_stream(trace, path)
        total_records = 0
        total_refs = 0
        for chunk in open_trace_stream(path, chunk_refs=37):
            # offsets are chunk-local and cover the cells exactly
            assert chunk.offsets[0] == 0
            assert chunk.offsets[-1] == len(chunk.cells)
            assert chunk.n_records >= 1
            total_records += chunk.n_records
            total_refs += chunk.n_references
        assert total_records == 400
        assert total_refs == trace.n_references

    def test_iter_trace_chunks_from_memory_matches_file(self, tmp_path):
        """Chunk *boundaries* may differ between the two sources; the
        concatenated record stream must not."""
        trace = synthetic_trace(200)
        path = tmp_path / "t.lrts"
        save_trace_stream(trace, path)

        def concat(source):
            chunks = list(iter_trace_chunks(source, chunk_refs=50))
            sizes = [np.diff(c.offsets) for c in chunks]
            return (
                np.concatenate([c.times for c in chunks]),
                np.concatenate([c.procs for c in chunks]),
                np.concatenate([c.writes for c in chunks]),
                np.concatenate(sizes),
                np.concatenate([c.cells for c in chunks]),
            )

        for a, b in zip(concat(trace), concat(path)):
            np.testing.assert_array_equal(a, b)

    def test_rejects_corrupt_magic(self, tmp_path):
        path = tmp_path / "bad.lrts"
        path.write_bytes(b"NOPE" + b"\x00" * 40)
        with pytest.raises(CoherenceError):
            list(open_trace_stream(path))

    def test_rejects_truncated_file(self, tmp_path):
        trace = synthetic_trace(50)
        path = tmp_path / "t.lrts"
        save_trace_stream(trace, path)
        data = path.read_bytes()
        path.write_bytes(data[: len(data) - 16])
        with pytest.raises(CoherenceError):
            list(open_trace_stream(path))


class TestBoundedMemory:
    def test_peak_memory_independent_of_trace_length(self, tmp_path):
        """tracemalloc peak at N records ~= peak at 4N with a fixed chunk."""
        amap = AddressMap(N_CHANNELS, N_GRIDS, 16)
        peaks = {}
        for n_records in (10_000, 40_000):
            trace = synthetic_trace(n_records, seed=11)
            path = tmp_path / f"t{n_records}.lrts"
            save_trace_stream(trace, path)
            del trace
            tracemalloc.start()
            stats = simulate_trace_streaming(path, 8, amap, chunk_refs=4_096)
            _, peak = tracemalloc.get_traced_memory()
            tracemalloc.stop()
            peaks[n_records] = peak
            assert stats.n_read_refs + stats.n_write_refs > 0
        # 4x the records must not cost anywhere near 4x the peak; allow
        # 1.5x slack for allocator noise and per-line carry arrays.
        assert peaks[40_000] < peaks[10_000] * 1.5 + 1_000_000


class TestMillionReferenceAcceptance:
    def test_million_reference_replay_bit_identical_and_bounded(self, tmp_path):
        """Acceptance: a >= 1e6-reference trace replays from disk with
        stats bit-identical to the in-memory columnar engine, and the
        streamed peak stays near the chunk size, not the trace size."""
        rng = np.random.default_rng(19890816)
        n_records = 230_000
        n_cells = N_CHANNELS * N_GRIDS
        procs = rng.integers(0, 8, n_records)
        writes = rng.random(n_records) < 0.35
        sizes = rng.integers(2, 8, n_records)  # mean 4.5 refs/record
        bases = rng.integers(0, n_cells, n_records)
        trace = ReferenceTrace()
        for i in range(n_records):
            cells = (bases[i] + np.arange(sizes[i], dtype=np.int64)) % n_cells
            trace.add(float(i), int(procs[i]), bool(writes[i]), cells)
        assert trace.n_references >= 1_000_000

        path = tmp_path / "million.lrts"
        save_trace_stream(trace, path)
        amap = AddressMap(N_CHANNELS, N_GRIDS, 16)
        in_memory = simulate_trace_columnar(trace, 8, amap)
        del trace

        tracemalloc.start()
        streamed = simulate_trace_streaming(path, 8, amap, chunk_refs=1 << 16)
        _, peak = tracemalloc.get_traced_memory()
        tracemalloc.stop()

        assert streamed == in_memory
        # 64k-reference chunks: working set stays in the tens of MB no
        # matter how long the trace is (the file here is ~10MB itself).
        assert peak < 48 * 1024 * 1024
