"""Tests for the content-addressed result cache (harness.cache / simjobs)."""

from __future__ import annotations

import json
import multiprocessing
import os

import numpy as np
import pytest

from repro.errors import ExperimentError
from repro.harness.cache import (
    CACHE_SCHEMA,
    NO_FSYNC_ENV,
    ResultCache,
    atomic_write_bytes,
    atomic_write_text,
    code_fingerprint,
    jsonify,
    stable_hash,
)
from repro.harness.simjobs import (
    SimConfig,
    run_sim_configs,
    sim_fingerprint,
    sim_key,
)
from repro.obs import telemetry as obs
from repro.updates import UpdateSchedule


def tiny_mp_config(**overrides):
    """A message passing row small enough for unit tests (<100 ms)."""
    base = dict(
        kind="mp",
        which="bnrE",
        n_wires=24,
        schedule=UpdateSchedule(send_rmt_every=2, send_loc_every=10),
        n_procs=4,
        iterations=1,
    )
    base.update(overrides)
    return SimConfig(**base)


class TestJsonify:
    def test_plain_data_passes_through(self):
        assert jsonify({"a": [1, 2.5, "x", None, True]}) == {
            "a": [1, 2.5, "x", None, True]
        }

    def test_numpy_and_tuples_become_plain(self):
        out = jsonify({"n": np.int64(3), "v": np.array([1, 2]), "t": (1, 2)})
        assert out == {"n": 3, "v": [1, 2], "t": [1, 2]}
        json.dumps(out)  # fully serialisable

    def test_non_string_dict_keys_are_type_tagged(self):
        out = jsonify({(2, 10): "row"})
        assert out == {"tuple:(2, 10)": "row"}

    def test_int_and_string_keys_stay_distinct(self):
        # Regression: {1: x} and {"1": x} used to canonicalise to the
        # same JSON and so the same cache key.
        assert jsonify({1: "x"}) == {"int:1": "x"}
        assert jsonify({"1": "x"}) == {"1": "x"}
        assert jsonify({1: "x"}) != jsonify({"1": "x"})

    def test_bool_and_int_keys_stay_distinct(self):
        assert jsonify({True: "x"}) == {"bool:True": "x"}
        assert jsonify({1: "x"}) != jsonify({True: "x"})

    def test_tag_shaped_string_keys_get_escaped(self):
        # The string key "int:1" must not collide with the int key 1.
        assert jsonify({"int:1": "x"}) == {"str:int:1": "x"}
        assert jsonify({"int:1": "x"}) != jsonify({1: "x"})

    def test_numpy_scalar_keys_match_python_spelling(self):
        assert jsonify({np.int64(3): "x"}) == {"int64:3": "x"}

    def test_dataclasses_become_dicts(self):
        out = jsonify(UpdateSchedule(send_rmt_every=2, send_loc_every=10))
        assert out["send_rmt_every"] == 2


class TestStableHash:
    def test_deterministic(self):
        fp = {"a": 1, "b": [1, 2], "c": {"x": (3, 4)}}
        assert stable_hash(fp) == stable_hash(fp)

    def test_key_order_irrelevant(self):
        assert stable_hash({"a": 1, "b": 2}) == stable_hash({"b": 2, "a": 1})

    def test_any_field_change_changes_hash(self):
        base = {"a": 1, "b": 2}
        assert stable_hash(base) != stable_hash({"a": 1, "b": 3})
        assert stable_hash(base) != stable_hash({"a": 1})

    def test_key_type_changes_hash(self):
        # Regression: these fingerprints hashed identically before the
        # type-tagged key canonicalisation.
        assert stable_hash({"d": {1: "x"}}) != stable_hash({"d": {"1": "x"}})
        assert stable_hash({"d": {True: "x"}}) != stable_hash({"d": {1: "x"}})

    def test_code_fingerprint_stable_within_process(self):
        assert code_fingerprint() == code_fingerprint()
        assert len(code_fingerprint()) == 64


class TestSimKey:
    def test_same_config_same_key(self):
        assert sim_key(tiny_mp_config()) == sim_key(tiny_mp_config())

    def test_schedule_field_changes_key(self):
        a = tiny_mp_config()
        b = tiny_mp_config(
            schedule=UpdateSchedule(send_rmt_every=2, send_loc_every=20)
        )
        assert sim_key(a) != sim_key(b)

    def test_n_procs_changes_key(self):
        assert sim_key(tiny_mp_config()) != sim_key(tiny_mp_config(n_procs=8))

    def test_circuit_scale_changes_key(self):
        assert sim_key(tiny_mp_config()) != sim_key(tiny_mp_config(n_wires=30))

    def test_kind_in_fingerprint(self):
        fp = sim_fingerprint(tiny_mp_config())
        assert fp["kind"] == "mp" and fp["unit"] == "sim"

    def test_bad_kind_rejected(self):
        with pytest.raises(ExperimentError):
            SimConfig(kind="xx")

    def test_mp_without_schedule_rejected(self):
        with pytest.raises(ExperimentError):
            SimConfig(kind="mp", schedule=None)


class TestResultCache:
    def test_experiment_round_trip(self, tmp_path):
        cache = ResultCache(tmp_path)
        cache.put_experiment("k1", {"rows": [1, 2]})
        payload = cache.get_experiment("k1")
        assert payload["rows"] == [1, 2]
        assert payload["schema"] == CACHE_SCHEMA

    def test_experiment_miss(self, tmp_path):
        assert ResultCache(tmp_path).get_experiment("absent") is None

    def test_corrupt_experiment_entry_is_a_miss(self, tmp_path):
        cache = ResultCache(tmp_path)
        atomic_write_text(cache.experiment_path("bad"), "{not json")
        assert cache.get_experiment("bad") is None

    def test_wrong_schema_is_a_miss(self, tmp_path):
        cache = ResultCache(tmp_path)
        atomic_write_text(
            cache.experiment_path("old"), json.dumps({"schema": -1, "rows": []})
        )
        assert cache.get_experiment("old") is None

    def test_sim_round_trip_preserves_numpy(self, tmp_path):
        cache = ResultCache(tmp_path)
        obj = {"array": np.arange(5), "n": 3}
        cache.put_sim("k", obj)
        out = cache.get_sim("k")
        np.testing.assert_array_equal(out["array"], np.arange(5))

    def test_truncated_sim_entry_is_a_miss(self, tmp_path):
        cache = ResultCache(tmp_path)
        cache.put_sim("k", {"x": 1})
        path = cache.sim_path("k")
        path.write_bytes(path.read_bytes()[:10])  # truncate mid-pickle
        assert cache.get_sim("k") is None

    def test_garbage_sim_entry_is_a_miss(self, tmp_path):
        cache = ResultCache(tmp_path)
        cache.sim_path("k").parent.mkdir(parents=True, exist_ok=True)
        cache.sim_path("k").write_bytes(b"\x00\x01 not a pickle")
        assert cache.get_sim("k") is None

    def test_atomic_write_leaves_no_temp_files(self, tmp_path):
        cache = ResultCache(tmp_path)
        cache.put_experiment("k", {"rows": []})
        names = [p.name for p in cache.experiment_path("k").parent.iterdir()]
        assert names == ["k.json"]

    def test_reserved_schema_key_rejected(self, tmp_path):
        # Regression: {"schema": ..., **payload} let a caller payload
        # silently override the cache's own format tag.
        cache = ResultCache(tmp_path)
        with pytest.raises(ExperimentError, match="schema"):
            cache.put_experiment("k", {"schema": 99, "rows": []})
        assert cache.get_experiment("k") is None


class TestDurableWrites:
    def _fsync_calls(self, monkeypatch):
        calls = []
        real_fsync = os.fsync
        monkeypatch.setattr(
            os, "fsync", lambda fd: (calls.append(fd), real_fsync(fd))[1]
        )
        return calls

    def test_atomic_write_fsyncs_file_and_directory(self, tmp_path, monkeypatch):
        # Regression: atomic_write_bytes never fsynced, so a "committed"
        # entry (or its name) could vanish on power loss.
        monkeypatch.delenv(NO_FSYNC_ENV, raising=False)
        calls = self._fsync_calls(monkeypatch)
        atomic_write_bytes(tmp_path / "entry.bin", b"payload")
        assert len(calls) >= 2  # the temp file and its directory
        assert (tmp_path / "entry.bin").read_bytes() == b"payload"

    def test_no_fsync_env_skips_fsyncs(self, tmp_path, monkeypatch):
        monkeypatch.setenv(NO_FSYNC_ENV, "1")
        calls = self._fsync_calls(monkeypatch)
        atomic_write_bytes(tmp_path / "entry.bin", b"payload")
        assert calls == []
        assert (tmp_path / "entry.bin").read_bytes() == b"payload"

    def test_failed_write_cleans_up_temp_file(self, tmp_path, monkeypatch):
        monkeypatch.delenv(NO_FSYNC_ENV, raising=False)

        def boom(fd):
            raise OSError("disk on fire")

        monkeypatch.setattr(os, "fsync", boom)
        with pytest.raises(OSError):
            atomic_write_bytes(tmp_path / "entry.bin", b"payload")
        assert list(tmp_path.iterdir()) == []


def _concurrent_put_sim(item):
    """Module-level pool worker (picklable under spawn)."""
    cache_dir, worker_id = item
    cache = ResultCache(cache_dir)
    for _ in range(20):
        cache.put_sim("shared-key", {"worker": worker_id, "data": np.arange(64)})
    return worker_id


class TestConcurrentCacheAccess:
    def test_racing_writers_never_corrupt_the_entry(self, tmp_path):
        """Two processes hammering the same key: readers always see a
        complete entry (one writer's version, never a torn mix)."""
        ctx = multiprocessing.get_context("spawn")
        with ctx.Pool(2) as pool:
            async_result = pool.map_async(
                _concurrent_put_sim, [(str(tmp_path), 1), (str(tmp_path), 2)]
            )
            cache = ResultCache(tmp_path)
            seen = 0
            while not async_result.ready():
                entry = cache.get_sim("shared-key")
                if entry is not None:
                    assert entry["worker"] in (1, 2)
                    np.testing.assert_array_equal(entry["data"], np.arange(64))
                    seen += 1
            assert sorted(async_result.get()) == [1, 2]
        final = ResultCache(tmp_path).get_sim("shared-key")
        assert final["worker"] in (1, 2)


class TestCachedSimRows:
    def test_second_run_hits_and_matches(self, tmp_path):
        cache = ResultCache(tmp_path)
        configs = [tiny_mp_config(), tiny_mp_config(n_procs=8)]
        first = run_sim_configs(configs, cache=cache)
        before = obs.snapshot()
        second = run_sim_configs(configs, cache=cache)
        delta = obs.snapshot()["counters"]
        assert (
            delta.get("cache.sim.hits", 0)
            - before["counters"].get("cache.sim.hits", 0)
            == 2
        )
        for a, b in zip(first, second):
            assert a.table_row() == b.table_row()
            assert a.exec_time_s == b.exec_time_s

    def test_overlapping_sweeps_share_rows(self, tmp_path):
        cache = ResultCache(tmp_path)
        shared = tiny_mp_config()
        run_sim_configs([shared], cache=cache)
        before = obs.snapshot()["counters"].get("cache.sim.hits", 0)
        run_sim_configs([shared, tiny_mp_config(n_procs=2)], cache=cache)
        after = obs.snapshot()["counters"].get("cache.sim.hits", 0)
        assert after - before == 1  # the shared row hit, the new one ran

    def test_uncached_rows_identical_to_cached(self, tmp_path):
        config = tiny_mp_config()
        plain = run_sim_configs([config])[0]
        cached = run_sim_configs([config], cache=ResultCache(tmp_path))[0]
        assert plain.table_row() == cached.table_row()
