"""Unit and property tests for the owned-region map."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.errors import GridError
from repro.grid import BBox, RegionMap, proc_grid_shape


class TestProcGridShape:
    @pytest.mark.parametrize(
        "n,expected",
        [(1, (1, 1)), (2, (1, 2)), (4, (2, 2)), (6, (2, 3)), (9, (3, 3)), (16, (4, 4))],
    )
    def test_paper_shapes(self, n, expected):
        assert proc_grid_shape(n) == expected

    def test_prime_counts(self):
        assert proc_grid_shape(7) == (1, 7)

    def test_rejects_nonpositive(self):
        with pytest.raises(GridError):
            proc_grid_shape(0)


class TestRegions:
    def test_regions_partition_the_grid(self, regions_16):
        cover = np.zeros((10, 341), dtype=int)
        for proc in range(16):
            rows, cols = regions_16.region(proc).slices()
            cover[rows, cols] += 1
        assert np.all(cover == 1)

    def test_owner_of_matches_region(self, regions_16):
        for proc in range(16):
            box = regions_16.region(proc)
            assert regions_16.owner_of(box.c_lo, box.x_lo) == proc
            assert regions_16.owner_of(box.c_hi, box.x_hi) == proc

    def test_owners_of_cells_vectorised(self, regions_16):
        rng = np.random.default_rng(0)
        cs = rng.integers(0, 10, size=50)
        xs = rng.integers(0, 341, size=50)
        owners = regions_16.owners_of_cells(cs, xs)
        for c, x, o in zip(cs, xs, owners):
            assert regions_16.owner_of(int(c), int(x)) == o

    def test_out_of_range_cell(self, regions_16):
        with pytest.raises(GridError):
            regions_16.owner_of(10, 0)

    def test_bad_shape_rejected(self):
        with pytest.raises(GridError):
            RegionMap(10, 341, 16, shape=(2, 4))

    def test_too_fine_mesh_rejected(self):
        with pytest.raises(GridError):
            RegionMap(3, 341, 16)  # 4 proc rows > 3 channels


class TestMeshGeometry:
    def test_coords_round_trip(self, regions_16):
        for proc in range(16):
            row, col = regions_16.proc_coords(proc)
            assert regions_16.proc_at(row, col) == proc

    def test_neighbors_interior(self, regions_16):
        # processor 5 = (1,1) on the 4x4 mesh
        assert sorted(regions_16.neighbors(5)) == [1, 4, 6, 9]

    def test_neighbors_corner(self, regions_16):
        assert sorted(regions_16.neighbors(0)) == [1, 4]

    def test_mesh_distance_symmetric(self, regions_16):
        for a in range(16):
            for b in range(16):
                assert regions_16.mesh_distance(a, b) == regions_16.mesh_distance(b, a)

    def test_mesh_distance_values(self, regions_16):
        assert regions_16.mesh_distance(0, 15) == 6  # (0,0) -> (3,3)
        assert regions_16.mesh_distance(0, 0) == 0


class TestRegionsTouched:
    def test_single_region(self, regions_16):
        box = regions_16.region(5)
        assert regions_16.regions_touched(box) == [5]

    def test_whole_grid_touches_everyone(self, regions_16):
        box = BBox(0, 0, 9, 340)
        assert sorted(regions_16.regions_touched(box)) == list(range(16))

    @given(
        st.integers(0, 9), st.integers(0, 340), st.integers(0, 9), st.integers(0, 340)
    )
    def test_touched_consistent_with_owner_of(self, c1, x1, c2, x2):
        regions = RegionMap(10, 341, 16)
        box = BBox(min(c1, c2), min(x1, x2), max(c1, c2), max(x1, x2))
        touched = set(regions.regions_touched(box))
        corners = {
            regions.owner_of(box.c_lo, box.x_lo),
            regions.owner_of(box.c_hi, box.x_hi),
            regions.owner_of(box.c_lo, box.x_hi),
            regions.owner_of(box.c_hi, box.x_lo),
        }
        assert corners <= touched

    def test_out_of_range_box(self, regions_16):
        with pytest.raises(GridError):
            regions_16.regions_touched(BBox(0, 0, 10, 5))


class TestSmallMeshes:
    def test_two_processors(self):
        regions = RegionMap(10, 341, 2)
        assert regions.p_rows == 1 and regions.p_cols == 2
        assert regions.neighbors(0) == [1]

    def test_single_processor(self):
        regions = RegionMap(10, 341, 1)
        assert regions.neighbors(0) == []
        assert regions.region(0) == BBox(0, 0, 9, 340)
