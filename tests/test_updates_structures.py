"""Tests for the §4.3.1 packet-structure alternatives."""

from __future__ import annotations

from dataclasses import replace

import pytest

from repro.circuits import tiny_test_circuit
from repro.errors import ProtocolError
from repro.parallel import run_message_passing
from repro.updates import (
    SEGMENT_RECORD_BYTES,
    WIRE_RECORD_BYTES,
    PacketStructure,
    UpdateSchedule,
    wire_based_bytes,
)


class TestWireBasedBytes:
    def test_formula(self):
        assert wire_based_bytes(3, 7) == 3 * WIRE_RECORD_BYTES + 7 * SEGMENT_RECORD_BYTES

    def test_zero_changes(self):
        assert wire_based_bytes(0, 0) == 0

    def test_negative_rejected(self):
        with pytest.raises(ProtocolError):
            wire_based_bytes(-1, 0)


class TestScheduleIntegration:
    def test_default_is_bounding_box(self):
        s = UpdateSchedule.sender_initiated(2, 10)
        assert s.packet_structure is PacketStructure.BOUNDING_BOX
        assert "bounding" not in s.describe()

    def test_non_default_structures_described(self):
        s = replace(
            UpdateSchedule.sender_initiated(2, 10),
            packet_structure=PacketStructure.FULL_REGION,
        )
        assert "full-region" in s.describe()


@pytest.fixture(scope="module")
def circuit():
    return tiny_test_circuit(n_wires=30)


class TestStructuresEndToEnd:
    @pytest.fixture(scope="class")
    def runs(self, circuit):
        base = UpdateSchedule.sender_initiated(2, 2)
        return {
            ps: run_message_passing(
                circuit,
                replace(base, packet_structure=ps),
                n_procs=4,
                iterations=2,
            )
            for ps in PacketStructure
        }

    def test_all_structures_route_everything(self, runs, circuit):
        for result in runs.values():
            assert set(result.paths) == set(range(circuit.n_wires))

    def test_full_region_costs_most(self, runs):
        traffic = {ps: r.mbytes_transferred for ps, r in runs.items()}
        assert traffic[PacketStructure.FULL_REGION] == max(traffic.values())

    def test_bbox_beats_full_region(self, runs):
        assert (
            runs[PacketStructure.BOUNDING_BOX].mbytes_transferred
            < runs[PacketStructure.FULL_REGION].mbytes_transferred
        )

    def test_identical_information_same_solution(self, runs):
        """Wire-based packets only change accounting, not semantics: the
        routed solution matches the bounding-box run exactly."""
        a = runs[PacketStructure.BOUNDING_BOX]
        b = runs[PacketStructure.WIRE_BASED]
        assert a.quality.circuit_height == b.quality.circuit_height
        assert all(a.paths[w] == b.paths[w] for w in a.paths)
