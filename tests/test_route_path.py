"""Unit tests for the routed-path representation."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import RoutingError
from repro.grid import BBox
from repro.route import RoutePath


class TestConstruction:
    def test_from_cells_sorts_and_dedupes(self):
        path = RoutePath.from_cells(np.array([5, 3, 5, 1]), n_grids=10)
        assert list(path.flat_cells) == [1, 3, 5]
        assert path.n_cells == 3

    def test_empty_rejected(self):
        with pytest.raises(RoutingError):
            RoutePath(np.empty(0, dtype=np.int64), 10)

    def test_unsorted_direct_construction_rejected(self):
        with pytest.raises(RoutingError):
            RoutePath(np.array([5, 3], dtype=np.int64), 10)

    def test_wrong_ndim_rejected(self):
        with pytest.raises(RoutingError):
            RoutePath(np.zeros((2, 2), dtype=np.int64), 10)


class TestGeometry:
    def test_coords_decode(self):
        path = RoutePath.from_cells(np.array([0, 11, 25]), n_grids=10)
        channels, xs = path.coords()
        assert list(channels) == [0, 1, 2]
        assert list(xs) == [0, 1, 5]

    def test_bbox(self):
        path = RoutePath.from_cells(np.array([3, 11, 25]), n_grids=10)
        assert path.bbox() == BBox(0, 1, 2, 5)

    def test_overlap_cells(self):
        a = RoutePath.from_cells(np.array([1, 2, 3]), 10)
        b = RoutePath.from_cells(np.array([3, 4]), 10)
        c = RoutePath.from_cells(np.array([7]), 10)
        assert a.overlap_cells(b) == 1
        assert a.overlap_cells(c) == 0


class TestEqualityHashing:
    def test_equal_paths(self):
        a = RoutePath.from_cells(np.array([1, 2]), 10)
        b = RoutePath.from_cells(np.array([2, 1]), 10)
        assert a == b
        assert hash(a) == hash(b)

    def test_different_grid_widths_unequal(self):
        a = RoutePath.from_cells(np.array([1, 2]), 10)
        b = RoutePath.from_cells(np.array([1, 2]), 11)
        assert a != b

    def test_usable_in_sets(self):
        a = RoutePath.from_cells(np.array([1, 2]), 10)
        b = RoutePath.from_cells(np.array([1, 2]), 10)
        assert len({a, b}) == 1
