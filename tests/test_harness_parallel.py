"""Tests for the parallel harness: pool_map, sim-row fan-out, run_all jobs."""

from __future__ import annotations

import json
import os
import time

import pytest

from repro.errors import ExperimentError
from repro.harness import ResultCache, run_all
from repro.harness.pool import default_jobs, pool_map
from repro.harness.runner import BENCH_FILENAME
from repro.harness.simjobs import SimConfig, run_sim_configs
from repro.obs import telemetry as obs
from repro.updates import UpdateSchedule

_PARENT_PID = os.getpid()


# Pool tasks must be picklable, hence module level.
def _double(x):
    return 2 * x


def _fails_in_worker(x):
    """Raises in a forked pool worker, succeeds on the parent's retry."""
    if os.getpid() != _PARENT_PID:
        raise RuntimeError("injected worker failure")
    return -x


def _always_fails(x):
    raise RuntimeError("injected permanent failure")


def _slow_in_worker(x):
    if os.getpid() != _PARENT_PID:
        time.sleep(30)
    return x


_SERIAL_CALLS = []


def _flaky_serial(x):
    _SERIAL_CALLS.append(x)
    if len(_SERIAL_CALLS) == 1:
        raise RuntimeError("first call fails")
    return x


def tiny_config(**overrides):
    base = dict(
        kind="mp",
        which="bnrE",
        n_wires=24,
        schedule=UpdateSchedule(send_rmt_every=2, send_loc_every=10),
        n_procs=4,
        iterations=1,
    )
    base.update(overrides)
    return SimConfig(**base)


class TestPoolMap:
    def test_empty(self):
        assert pool_map(_double, [], jobs=4) == []

    def test_serial_preserves_order(self):
        assert pool_map(_double, [3, 1, 2], jobs=1) == [6, 2, 4]

    def test_parallel_preserves_order(self):
        assert pool_map(_double, list(range(7)), jobs=2) == [
            2 * i for i in range(7)
        ]

    def test_worker_failure_retried_in_parent(self):
        assert pool_map(_fails_in_worker, [1, 2, 3], jobs=2) == [-1, -2, -3]

    def test_double_failure_raises_experiment_error(self):
        with pytest.raises(ExperimentError, match="failed twice"):
            pool_map(_always_fails, [1, 2], jobs=2)

    def test_serial_failure_also_wrapped(self):
        with pytest.raises(ExperimentError, match="failed twice"):
            pool_map(_always_fails, [1], jobs=1)

    def test_serial_retry_once(self):
        _SERIAL_CALLS.clear()
        assert pool_map(_flaky_serial, [5], jobs=1) == [5]
        assert _SERIAL_CALLS == [5, 5]

    def test_timeout_falls_back_to_parent_retry(self):
        # The worker would sleep 30 s; the 0.5 s timeout trips and the
        # serial retry (parent pid -> no sleep) succeeds immediately.
        out = pool_map(_slow_in_worker, [1, 2], jobs=2, timeout_s=0.5)
        assert out == [1, 2]

    def test_default_jobs_positive(self):
        assert default_jobs() >= 1


class TestSimRowFanOut:
    def test_parallel_rows_identical_to_serial(self):
        configs = [tiny_config(n_procs=p) for p in (2, 4, 8)]
        serial = run_sim_configs(configs, jobs=1)
        parallel = run_sim_configs(configs, jobs=2)
        for a, b in zip(serial, parallel):
            assert a.table_row() == b.table_row()
            assert a.exec_time_s == b.exec_time_s

    def test_parallel_telemetry_merged(self):
        before = obs.snapshot()["counters"].get("sim.events", 0)
        run_sim_configs([tiny_config(n_procs=p) for p in (2, 4)], jobs=2)
        after = obs.snapshot()["counters"].get("sim.events", 0)
        assert after > before  # worker deltas landed in the parent


class TestRunAllParallel:
    def test_unknown_id_rejected_before_any_run(self):
        with pytest.raises(ExperimentError, match="valid ids"):
            run_all(["NOPE"], quick=True, echo=False, jobs=2)

    def test_many_ids_rows_identical_to_serial(self, capsys):
        serial = run_all(["X4", "T6"], quick=True, echo=False)
        parallel = run_all(["X4", "T6"], quick=True, echo=False, jobs=2)
        assert [r.exp_id for r in parallel] == ["X4", "T6"]
        for a, b in zip(serial, parallel):
            assert a.rows == b.rows
            assert a.checks == b.checks

    def test_single_id_inner_fan_out_matches_serial(self):
        serial = run_all(["T6"], quick=True, echo=False)
        parallel = run_all(["T6"], quick=True, echo=False, jobs=2)
        assert serial[0].rows == parallel[0].rows

    def test_parallel_run_with_cache_warm_second_pass(self, tmp_path):
        cache_dir = tmp_path / "cache"
        cold = run_all(
            ["X4", "T6"], quick=True, echo=False, jobs=2, cache_dir=cache_dir
        )
        before = obs.snapshot()["counters"].get("cache.experiment.hits", 0)
        warm = run_all(
            ["X4", "T6"], quick=True, echo=False, jobs=1, cache_dir=cache_dir
        )
        hits = obs.snapshot()["counters"].get("cache.experiment.hits", 0) - before
        assert hits == 2
        for a, b in zip(cold, warm):
            assert a.rows == b.rows

    def test_bench_record_written(self, tmp_path):
        run_all(
            ["X4"],
            quick=True,
            echo=False,
            jobs=2,
            out_dir=tmp_path,
            cache_dir=tmp_path / "cache",
        )
        bench = json.loads((tmp_path / BENCH_FILENAME).read_text())
        assert bench["schema"] == "bench-harness/1"
        assert bench["jobs"] == 2
        assert bench["totals"]["experiments"] == 1
        assert bench["experiments"][0]["exp_id"] == "X4"
        assert bench["experiments"][0]["events_processed"] > 0
        assert bench["totals"]["cache"]["experiment.misses"] == 1

    def test_no_cache_bypasses_reads_and_writes(self, tmp_path):
        cache_dir = tmp_path / "cache"
        run_all(
            ["X4"], quick=True, echo=False,
            cache_dir=cache_dir, use_cache=False,
        )
        assert not cache_dir.exists()
