"""Tests for result records, the cost model, and work accounting."""

from __future__ import annotations

import pytest

from repro.parallel import CostModel, DEFAULT_COST_MODEL
from repro.parallel.results import NodeSummary
from repro.route.workmodel import (
    COMMIT_CELL_UNITS,
    INCORPORATE_CELL_UNITS,
    SCAN_CELL_UNITS,
    WorkCounter,
)


class TestWorkCounter:
    def test_categories_accumulate(self):
        counter = WorkCounter()
        counter.add_route(100)
        counter.add_commit(10)
        counter.add_scan(50)
        counter.add_marshal(20)
        counter.add_incorporate(30)
        assert counter.route_units == 100
        assert counter.commit_units == COMMIT_CELL_UNITS * 10
        assert counter.assemble_units == pytest.approx(
            SCAN_CELL_UNITS * 50 + INCORPORATE_CELL_UNITS * 20
        )
        assert counter.incorporate_units == INCORPORATE_CELL_UNITS * 30

    def test_total(self):
        counter = WorkCounter()
        counter.add_route(10)
        counter.add_commit(5)
        assert counter.total_units == 10 + COMMIT_CELL_UNITS * 5

    def test_overhead_fraction(self):
        counter = WorkCounter()
        assert counter.message_overhead_fraction == 0.0
        counter.add_route(75)
        counter.add_marshal(25)
        assert counter.message_overhead_fraction == pytest.approx(0.25)


class TestCostModel:
    def test_work_time_linear(self):
        model = CostModel(time_per_unit_s=2e-6)
        assert model.work_time(1000) == pytest.approx(2e-3)

    def test_counter_time(self):
        model = CostModel(time_per_unit_s=1e-6)
        counter = WorkCounter()
        counter.add_route(500)
        assert model.counter_time(counter) == pytest.approx(5e-4)

    def test_default_uses_paper_network_constants(self):
        assert DEFAULT_COST_MODEL.hop_time_s == pytest.approx(100e-9)
        assert DEFAULT_COST_MODEL.process_time_s == pytest.approx(2000e-9)
        assert DEFAULT_COST_MODEL.sm_slowdown == 5.0
        assert DEFAULT_COST_MODEL.numa_remote_factor == 1.0

    def test_frozen(self):
        with pytest.raises(AttributeError):
            DEFAULT_COST_MODEL.sm_slowdown = 2.0


class TestNodeSummary:
    def make(self, **kw):
        base = dict(
            proc=0,
            wires_routed=10,
            finish_time_s=1.0,
            route_units=100.0,
            commit_units=20.0,
            assemble_units=30.0,
            incorporate_units=10.0,
            messages_sent=5,
            messages_received=6,
            blocked_time_s=0.0,
        )
        base.update(kw)
        return NodeSummary(**base)

    def test_total_units(self):
        assert self.make().total_units == 160.0

    def test_overhead_fraction(self):
        assert self.make().message_overhead_fraction == pytest.approx(40 / 160)

    def test_zero_work_no_division_error(self):
        summary = self.make(
            route_units=0.0, commit_units=0.0, assemble_units=0.0, incorporate_units=0.0
        )
        assert summary.message_overhead_fraction == 0.0
