"""System-level property tests (hypothesis) over randomly generated circuits.

These generate small random circuits and check the invariants that must
hold for *any* input, not just the calibrated benchmarks: pin coverage,
cost-array conservation, FIFO message ordering, and quality-metric
consistency across the engines.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.circuits import Circuit, Pin, Wire
from repro.events import Simulator
from repro.grid import CostArray
from repro.netsim import MeshTopology, Message, WormholeNetwork
from repro.parallel import run_message_passing
from repro.route import SequentialRouter, circuit_height
from repro.updates import UpdateSchedule

N_CHANNELS, N_GRIDS = 4, 24


@st.composite
def circuits(draw):
    n_wires = draw(st.integers(2, 8))
    wires = []
    for i in range(n_wires):
        n_pins = draw(st.integers(2, 4))
        pins = set()
        while len(pins) < n_pins:
            pins.add(
                Pin(
                    draw(st.integers(0, N_GRIDS - 1)),
                    draw(st.integers(0, N_CHANNELS - 1)),
                )
            )
        wires.append(Wire(f"w{i}", pins))
    return Circuit("prop", N_CHANNELS, N_GRIDS, wires)


@settings(max_examples=25, deadline=None, suppress_health_check=[HealthCheck.too_slow, HealthCheck.large_base_example, HealthCheck.data_too_large])
@given(circuit=circuits(), iterations=st.integers(1, 3))
def test_sequential_router_invariants(circuit, iterations):
    """Pin coverage, conservation, and metric consistency for any circuit."""
    result = SequentialRouter(circuit, iterations=iterations).run()
    # every wire routed, every pin covered
    assert set(result.paths) == set(range(circuit.n_wires))
    for w, path in result.paths.items():
        cells = set(path.flat_cells.tolist())
        for pin in circuit.wire(w).pins:
            assert pin.channel * circuit.n_grids + pin.x in cells
    # cost array is exactly the union of the final paths
    reference = CostArray(circuit.n_channels, circuit.n_grids)
    for path in result.paths.values():
        reference.apply_path(path.flat_cells)
    assert reference == result.cost
    # quality metrics consistent with the array
    assert result.quality.circuit_height == circuit_height(result.cost)
    assert result.quality.total_wire_cells == result.cost.total_occupancy()
    # height can never exceed total wires per channel summed
    assert result.quality.circuit_height <= circuit.n_wires * circuit.n_channels


@settings(max_examples=10, deadline=None, suppress_health_check=[HealthCheck.too_slow, HealthCheck.large_base_example, HealthCheck.data_too_large])
@given(circuit=circuits())
def test_message_passing_invariants(circuit):
    """The MP simulation preserves the same invariants under staleness."""
    result = run_message_passing(
        circuit, UpdateSchedule.sender_initiated(1, 2), n_procs=4, iterations=2
    )
    assert set(result.paths) == set(range(circuit.n_wires))
    reference = CostArray(circuit.n_channels, circuit.n_grids)
    for path in result.paths.values():
        reference.apply_path(path.flat_cells)
    assert reference == result.truth
    assert result.exec_time_s > 0


@settings(max_examples=20, deadline=None)
@given(
    pairs=st.lists(
        st.tuples(st.integers(0, 15), st.integers(0, 15), st.integers(1, 200)),
        min_size=1,
        max_size=30,
    )
)
def test_network_pairwise_fifo(pairs):
    """Messages between one (src, dst) pair arrive in injection order."""
    sim = Simulator()
    deliveries = []
    net = WormholeNetwork(sim, MeshTopology(16), deliveries.append)
    sent = []
    for i, (src, dst, length) in enumerate(pairs):
        if src == dst:
            continue
        sent.append(i)
        sim.at(i * 1e-6, lambda s=src, d=dst, l=length, i=i: net.send(Message(s, d, l, i)))
    sim.run()
    assert len(deliveries) == len(sent)
    by_pair = {}
    for d in deliveries:
        key = (d.message.src, d.message.dst)
        by_pair.setdefault(key, []).append((d.arrive_time, d.message.payload))
    for key, items in by_pair.items():
        payload_order = [p for _, p in sorted(items, key=lambda t: t[0])]
        assert payload_order == sorted(payload_order), f"reorder on {key}"


@settings(max_examples=20, deadline=None)
@given(
    entries=st.lists(
        st.tuples(st.integers(0, 3), st.integers(0, 23)), min_size=1, max_size=40
    )
)
def test_cost_array_region_ops_roundtrip(entries):
    """extract/replace over any dirty pattern restores the array exactly."""
    from repro.grid import BBox

    cost = CostArray(N_CHANNELS, N_GRIDS)
    flat = np.unique(
        np.array([c * N_GRIDS + x for c, x in entries], dtype=np.int64)
    )
    cost.apply_path(flat)
    box = BBox(0, 0, N_CHANNELS - 1, N_GRIDS - 1)
    snapshot = cost.extract(box)
    cost.apply_path(flat)  # dirty it further
    cost.replace(box, snapshot)
    reference = CostArray(N_CHANNELS, N_GRIDS)
    reference.apply_path(flat)
    assert cost == reference
