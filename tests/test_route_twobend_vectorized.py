"""Equivalence tests for the prefix-cached two-bend routing kernel.

Contract: :func:`route_wire_vectorized` (shared, write-invalidated
prefix tables) is bit-identical to :func:`route_wire_reference` (the
per-segment oracle) — same chosen columns, same paths, same costs — for
every wire, tie break, and any interleaving of cost-array mutations.
The mutation sequences matter most: they exercise the cache
invalidation hooks, which is where a stale-table bug would hide.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.circuits import Pin, Wire
from repro.grid import BBox, CostArray
from repro.kernels import active_kernels, set_kernels, use_kernels
from repro.route import route_wire
from repro.route.twobend import route_wire_reference, route_wire_vectorized

N_CHANNELS = 8
N_GRIDS = 24


def assert_same_route(ref, vec):
    assert ref.cost == vec.cost
    assert ref.work_cells == vec.work_cells
    assert np.array_equal(ref.path.flat_cells, vec.path.flat_cells)
    assert tuple(s.xv for s in ref.segments) == tuple(s.xv for s in vec.segments)


pin_strategy = st.builds(
    Pin,
    x=st.integers(min_value=0, max_value=N_GRIDS - 1),
    channel=st.integers(min_value=0, max_value=N_CHANNELS - 1),
)


def wires(min_pins=2, max_pins=5):
    return st.builds(
        lambda pins, i: Wire(f"w{i}", pins),
        st.lists(pin_strategy, min_size=min_pins, max_size=max_pins, unique=True),
        st.integers(min_value=0, max_value=999),
    )


cost_grid = st.lists(
    st.integers(min_value=0, max_value=9),
    min_size=N_CHANNELS * N_GRIDS,
    max_size=N_CHANNELS * N_GRIDS,
)


class TestSingleWireEquivalence:
    @settings(max_examples=150, deadline=None)
    @given(cost_grid, wires(), st.integers(min_value=0, max_value=1))
    def test_any_wire_any_costs(self, grid, wire, tie_break):
        data = np.array(grid, dtype=np.int64).reshape(N_CHANNELS, N_GRIDS)
        ref = route_wire_reference(
            CostArray(N_CHANNELS, N_GRIDS, data=data.copy()), wire, tie_break
        )
        vec = route_wire_vectorized(
            CostArray(N_CHANNELS, N_GRIDS, data=data.copy()), wire, tie_break
        )
        assert_same_route(ref, vec)

    def test_routing_does_not_mutate_cost(self):
        cost = CostArray(N_CHANNELS, N_GRIDS)
        before = cost.data.copy()
        route_wire_vectorized(cost, Wire("w", [Pin(2, 1), Pin(20, 6)]))
        assert np.array_equal(cost.data, before)


class TestEquivalenceUnderMutation:
    """The cache-invalidation stress: mutations interleaved with routing."""

    @settings(max_examples=60, deadline=None)
    @given(
        st.lists(wires(), min_size=3, max_size=8),
        st.randoms(use_true_random=False),
    )
    def test_ripup_reroute_churn(self, wire_list, rng):
        ref_cost = CostArray(N_CHANNELS, N_GRIDS)
        vec_cost = CostArray(N_CHANNELS, N_GRIDS)
        ref_paths, vec_paths = {}, {}
        for iteration in range(3):
            for i, wire in enumerate(wire_list):
                if i in ref_paths:
                    ref_cost.remove_path(ref_paths[i].flat_cells)
                    vec_cost.remove_path(vec_paths[i].flat_cells)
                ref = route_wire_reference(ref_cost, wire, tie_break=iteration % 2)
                vec = route_wire_vectorized(vec_cost, wire, tie_break=iteration % 2)
                assert_same_route(ref, vec)
                ref_cost.apply_path(ref.path.flat_cells)
                vec_cost.apply_path(vec.path.flat_cells)
                ref_paths[i], vec_paths[i] = ref.path, vec.path
                # Remote-update traffic dirties a random box between
                # routes, exercising accumulate/replace invalidation.
                if rng.random() < 0.4:
                    c0 = rng.randrange(N_CHANNELS - 1)
                    x0 = rng.randrange(N_GRIDS - 2)
                    box = BBox(c0, x0, c0 + 1, x0 + 2)
                    deltas = np.ones((box.height, box.width), dtype=np.int64)
                    ref_cost.accumulate(box, deltas)
                    vec_cost.accumulate(box, deltas)
        assert ref_cost == vec_cost

    def test_replace_invalidates_cached_rows(self):
        cost = CostArray(N_CHANNELS, N_GRIDS)
        wire = Wire("w", [Pin(1, 0), Pin(22, 7)])
        route_wire_vectorized(cost, wire)  # warm the prefix cache
        box = BBox(0, 0, N_CHANNELS - 1, N_GRIDS - 1)
        values = np.arange(N_CHANNELS * N_GRIDS, dtype=np.int64).reshape(
            N_CHANNELS, N_GRIDS
        )
        cost.replace(box, values)
        fresh = CostArray(N_CHANNELS, N_GRIDS, data=values.copy())
        assert_same_route(
            route_wire_reference(fresh, wire), route_wire_vectorized(cost, wire)
        )

    def test_row_prefix_matches_recompute_after_mutations(self):
        cost = CostArray(N_CHANNELS, N_GRIDS)
        cost.enable_prefix_cache()
        for channel in range(N_CHANNELS):
            cost.row_prefix(channel)  # populate every cached row
        path = np.array([1 * N_GRIDS + 3, 1 * N_GRIDS + 4, 2 * N_GRIDS + 4])
        cost.apply_path(path)
        for channel in range(N_CHANNELS):
            expected = np.zeros(N_GRIDS + 1, dtype=np.int64)
            np.cumsum(cost.data[channel], out=expected[1:])
            assert np.array_equal(cost.row_prefix(channel), expected)


class TestBlockPrefixTables:
    @settings(max_examples=60, deadline=None)
    @given(
        cost_grid,
        st.integers(min_value=0, max_value=N_CHANNELS - 1),
        st.integers(min_value=0, max_value=N_CHANNELS - 1),
        st.integers(min_value=0, max_value=N_GRIDS - 1),
        st.integers(min_value=0, max_value=N_GRIDS - 1),
    )
    def test_rectangle_sums(self, grid, c0, c1, x0, x1):
        c_lo, c_hi = min(c0, c1), max(c0, c1)
        x_lo, x_hi = min(x0, x1), max(x0, x1)
        data = np.array(grid, dtype=np.int64).reshape(N_CHANNELS, N_GRIDS)
        cost = CostArray(N_CHANNELS, N_GRIDS, data=data.copy())
        rowp, colp = cost.block_prefix_tables(c_lo, c_hi, x_lo, x_hi)
        block = data[c_lo : c_hi + 1, x_lo : x_hi + 1]
        rows, width = block.shape
        for r in range(rows):
            assert rowp[r, width] - rowp[r, 0] == block[r].sum()
        for x in range(width):
            assert colp[rows, x] - colp[0, x] == block[:, x].sum()


class TestKernelDispatch:
    def test_route_wire_dispatches_on_mode(self):
        cost = CostArray(N_CHANNELS, N_GRIDS)
        wire = Wire("w", [Pin(0, 0), Pin(10, 5), Pin(23, 2)])
        with use_kernels("reference"):
            ref = route_wire(cost, wire)
        with use_kernels("vectorized"):
            vec = route_wire(cost, wire)
        assert_same_route(ref, vec)

    def test_use_kernels_restores_mode(self):
        assert active_kernels() == "vectorized"
        with use_kernels("reference"):
            assert active_kernels() == "reference"
        assert active_kernels() == "vectorized"

    def test_set_kernels_rejects_unknown(self):
        from repro.errors import ReproError

        with pytest.raises(ReproError):
            set_kernels("turbo")
