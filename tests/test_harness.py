"""Tests for the experiment harness (quick mode)."""

from __future__ import annotations

import json

import pytest

from repro.errors import ExperimentError
from repro.harness import (
    EXPERIMENTS,
    format_value,
    load_result,
    render_checks,
    render_table,
    resolve_ids,
    run_all,
    run_experiment,
    save_result,
)
from repro.harness.reference import (
    TABLE1_SENDER,
    TABLE6_SCALING,
    TEXT_RESULTS,
    paper_row,
)


class TestReference:
    def test_table1_has_all_twelve_rows(self):
        assert len(TABLE1_SENDER) == 12
        assert paper_row(TABLE1_SENDER, (2, 10))["mbytes"] == 0.140

    def test_missing_row_is_none(self):
        assert paper_row(TABLE1_SENDER, (3, 3)) is None

    def test_table6_speedup_consistency(self):
        """The paper's speedup claim (12 at 16 procs) matches its table."""
        t2 = TABLE6_SCALING[2]["time_s"]
        t16 = TABLE6_SCALING[16]["time_s"]
        assert 2 * t2 / t16 == pytest.approx(11.7, abs=0.3)

    def test_text_results_present(self):
        assert TEXT_RESULTS["locality_bnre"] == 1.21
        assert TEXT_RESULTS["sm_height_bnre"] == 131


class TestRendering:
    def test_format_value(self):
        assert format_value(None) == "-"
        assert format_value(True) == "yes"
        assert format_value(0.1234) == "0.123"
        assert format_value(1234.5) == "1234"
        assert format_value(12) == "12"

    def test_render_table_aligns(self):
        text = render_table("t", ["a", "bb"], [{"a": 1, "bb": 2.5}])
        lines = text.splitlines()
        assert lines[0] == "t"
        assert all(line.startswith(("+", "|")) for line in lines[1:])

    def test_render_checks(self):
        text = render_checks({"good": True, "bad": False})
        assert "[PASS] good" in text and "[FAIL] bad" in text


class TestRegistry:
    def test_all_ids_registered(self):
        assert set(EXPERIMENTS) == {
            "T1", "T2", "T3", "T4", "T5", "T6",
            "X1", "X2", "X3", "X4", "X5", "X6", "X7",
            "A1", "A2", "A3", "A4", "A5", "A6", "A7", "A8", "A9", "R1",
            "F1", "F2",
        }

    def test_unknown_experiment_raises(self):
        with pytest.raises(ExperimentError):
            run_experiment("T99")

    def test_lowercase_id_accepted(self):
        result = run_experiment("x4", quick=True)
        assert result.exp_id == "X4"


@pytest.mark.parametrize("exp_id", sorted(EXPERIMENTS))
def test_quick_experiments_pass_shape_checks(exp_id):
    """Every experiment's qualitative claims hold even at quick scale."""
    result = run_experiment(exp_id, quick=True)
    assert result.rows, "experiment produced no rows"
    failing = [name for name, ok in result.checks.items() if not ok]
    assert not failing, f"{exp_id} failed checks: {failing}"


class TestRunner:
    def test_save_and_load_round_trip(self, tmp_path):
        result = run_experiment("X4", quick=True)
        path = save_result(result, tmp_path)
        assert path.exists()
        loaded = load_result("X4", tmp_path)
        assert loaded["exp_id"] == "X4"
        assert loaded["passed"] == result.passed
        json.loads(path.read_text())  # valid JSON

    def test_load_missing_returns_none(self, tmp_path):
        assert load_result("T1", tmp_path) is None

    def test_run_all_subset(self, tmp_path, capsys):
        results = run_all(["X4"], quick=True, out_dir=tmp_path)
        assert len(results) == 1
        out = capsys.readouterr().out
        assert "[X4]" in out
        assert (tmp_path / "x4.json").exists()

    def test_run_all_unknown_id_lists_valid_ids(self):
        with pytest.raises(ExperimentError) as exc:
            run_all(["NOPE"], quick=True, echo=False)
        message = str(exc.value)
        assert "NOPE" in message
        for exp_id in sorted(EXPERIMENTS):
            assert exp_id in message

    def test_run_all_rejects_before_running_anything(self, tmp_path, capsys):
        with pytest.raises(ExperimentError):
            run_all(["X4", "BOGUS"], quick=True, out_dir=tmp_path)
        assert not (tmp_path / "x4.json").exists()
        assert "[X4]" not in capsys.readouterr().out

    def test_resolve_ids_defaults_to_registry_order(self):
        assert resolve_ids(None) == list(EXPERIMENTS)

    def test_resolve_ids_uppercases(self):
        assert resolve_ids(["x4", "t6"]) == ["X4", "T6"]

    def test_run_all_writes_bench_record(self, tmp_path, capsys):
        run_all(["X4"], quick=True, out_dir=tmp_path)
        payload = json.loads((tmp_path / "BENCH_harness.json").read_text())
        assert payload["schema"] == "bench-harness/1"
        assert payload["totals"]["experiments"] == 1
        assert payload["experiments"][0]["exp_id"] == "X4"
        assert payload["experiments"][0]["events_processed"] > 0
        assert payload["totals"]["verify"] == {"checks": 0, "violations": 0}
