"""Wave-front batched routing vs the sequential scalar loop.

Contract: partitioning an iteration's wires into disjoint-footprint waves
and routing each wave through one fused evaluation is *bit-identical* to
the sequential per-wire loop — same chosen bend columns, same path cells,
same costs and work accounting, same final cost array — for every
circuit, wire order, and tie-break mode.  The overlap cases matter most:
wires sharing a bounding box must serialize into size-1 waves and still
reproduce the sequential result exactly.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.circuits import Circuit, Pin, Wire
from repro.grid import CostArray
from repro.kernels import use_kernels
from repro.route import SequentialRouter
from repro.route.twobend import route_wire_reference
from repro.route.wavefront import (
    plan_wave,
    plan_waves,
    route_iteration_wavefront,
    route_wire_fused,
    wire_geometry,
)

N_CHANNELS = 8
N_GRIDS = 24


def assert_same_route(ref, vec):
    assert ref.cost == vec.cost
    assert ref.work_cells == vec.work_cells
    assert np.array_equal(ref.path.flat_cells, vec.path.flat_cells)
    assert tuple(s.xv for s in ref.segments) == tuple(s.xv for s in vec.segments)
    assert tuple(s.cost for s in ref.segments) == tuple(
        s.cost for s in vec.segments
    )


pin_strategy = st.builds(
    Pin,
    x=st.integers(min_value=0, max_value=N_GRIDS - 1),
    channel=st.integers(min_value=0, max_value=N_CHANNELS - 1),
)


def wires(min_pins=2, max_pins=5):
    return st.builds(
        lambda pins, i: Wire(f"w{i}", pins),
        st.lists(pin_strategy, min_size=min_pins, max_size=max_pins, unique=True),
        st.integers(min_value=0, max_value=999),
    )


def circuits(min_wires=1, max_wires=10):
    return st.builds(
        lambda wire_list: Circuit(
            "hyp",
            N_CHANNELS,
            N_GRIDS,
            [Wire(f"w{i}", w.pins) for i, w in enumerate(wire_list)],
        ),
        st.lists(wires(), min_size=min_wires, max_size=max_wires),
    )


cost_grid = st.lists(
    st.integers(min_value=0, max_value=9),
    min_size=N_CHANNELS * N_GRIDS,
    max_size=N_CHANNELS * N_GRIDS,
)


class TestWavePartition:
    def test_disjoint_wires_share_a_wave(self):
        footprints = {0: (0, 0, 1, 5), 1: (3, 0, 4, 5), 2: (6, 10, 7, 20)}
        wave, deferred = plan_wave([0, 1, 2], footprints)
        assert wave == [0, 1, 2]
        assert deferred == []

    def test_overlapping_wires_serialize(self):
        # All three share cell (0, 0): every wave has exactly one wire,
        # in the original order.
        footprints = {i: (0, 0, 2, 10) for i in range(3)}
        pending = [0, 1, 2]
        rounds = []
        while pending:
            wave, pending = plan_wave(pending, footprints)
            rounds.append(wave)
        assert rounds == [[0], [1], [2]]

    def test_deferred_wire_blocks_later_overlaps(self):
        # B overlaps A, C overlaps only B.  C must not jump the queue
        # into A's wave: routing C before B would invert the order.
        footprints = {
            0: (0, 0, 1, 5),  # A
            1: (1, 4, 3, 10),  # B: overlaps A
            2: (3, 8, 5, 15),  # C: overlaps B, disjoint from A
        }
        wave, deferred = plan_wave([0, 1, 2], footprints)
        assert wave == [0]
        assert deferred == [1, 2]

    def test_touching_edges_count_as_overlap(self):
        # Inclusive boxes sharing a boundary row conflict.
        footprints = {0: (0, 0, 2, 5), 1: (2, 5, 4, 9)}
        wave, deferred = plan_wave([0, 1], footprints)
        assert wave == [0]
        assert deferred == [1]

    @given(st.data())
    @settings(deadline=None, max_examples=100)
    def test_plan_waves_matches_iterated_plan_wave(self, data):
        # The one-pass layering decomposition must reproduce the
        # round-by-round greedy partition exactly, waves in order and
        # members in visit order.
        n = data.draw(st.integers(min_value=0, max_value=12))
        footprints = {}
        for i in range(n):
            c_lo = data.draw(st.integers(0, 6))
            x_lo = data.draw(st.integers(0, 20))
            footprints[i] = (
                c_lo,
                x_lo,
                data.draw(st.integers(c_lo, 7)),
                data.draw(st.integers(x_lo, 24)),
            )
        order = data.draw(st.permutations(list(range(n))))
        rounds = []
        pending = list(order)
        while pending:
            wave, pending = plan_wave(pending, footprints)
            rounds.append(wave)
        assert plan_waves(order, footprints) == rounds


class TestGeometry:
    def test_geometry_cached_per_grid_width(self):
        wire = Wire("w", [Pin(2, 1), Pin(20, 6)])
        g1 = wire_geometry(wire, N_GRIDS)
        g2 = wire_geometry(wire, N_GRIDS)
        assert g1 is g2
        g3 = wire_geometry(wire, N_GRIDS * 2)
        assert g3 is not g1

    def test_footprint_covers_old_and_new_paths(self):
        # The partition invariant: any routed path of a wire lies inside
        # its static geometry bbox.
        wire = Wire("w", [Pin(2, 1), Pin(10, 4), Pin(20, 6)])
        geom = wire_geometry(wire, N_GRIDS)
        c_lo, x_lo, c_hi, x_hi = geom.bbox
        rng = np.random.default_rng(7)
        for _ in range(20):
            data = rng.integers(0, 9, size=(N_CHANNELS, N_GRIDS))
            cost = CostArray(N_CHANNELS, N_GRIDS, data=data)
            for tie in (0, 1):
                path = route_wire_fused(cost, wire, tie_break=tie).path
                channels, xs = path.coords()
                assert channels.min() >= c_lo and channels.max() <= c_hi
                assert xs.min() >= x_lo and xs.max() <= x_hi


class TestFusedSingleWire:
    @settings(max_examples=150, deadline=None)
    @given(cost_grid, wires(), st.integers(min_value=0, max_value=1))
    def test_any_wire_any_costs(self, grid, wire, tie_break):
        data = np.array(grid, dtype=np.int64).reshape(N_CHANNELS, N_GRIDS)
        ref = route_wire_reference(
            CostArray(N_CHANNELS, N_GRIDS, data=data.copy()), wire, tie_break
        )
        fused = route_wire_fused(
            CostArray(N_CHANNELS, N_GRIDS, data=data.copy()), wire, tie_break
        )
        assert_same_route(ref, fused)

    def test_sampled_candidates_on_wide_grid(self):
        # Spans beyond MAX_CANDIDATES take the strided-sampling branch.
        n_grids = 300
        rng = np.random.default_rng(11)
        data = rng.integers(0, 9, size=(N_CHANNELS, n_grids))
        wire = Wire("w", [Pin(3, 0), Pin(295, 6)])
        for tie in (0, 1):
            ref = route_wire_reference(
                CostArray(N_CHANNELS, n_grids, data=data.copy()), wire, tie
            )
            fused = route_wire_fused(
                CostArray(N_CHANNELS, n_grids, data=data.copy()), wire, tie
            )
            assert_same_route(ref, fused)


class TestIterationEquivalence:
    """The tentpole property: batched iteration == scalar iteration."""

    @settings(max_examples=60, deadline=None)
    @given(circuits(), st.integers(min_value=0, max_value=1))
    def test_iteration_matches_scalar_loop(self, circuit, tie_break):
        ref_cost = CostArray(N_CHANNELS, N_GRIDS)
        vec_cost = CostArray(N_CHANNELS, N_GRIDS)
        ref_paths, vec_paths = {}, {}
        order = list(range(circuit.n_wires))
        for iteration in range(2):
            tie = (tie_break + iteration) % 2
            ref_occ = 0
            ref_work = 0
            for i in order:
                wire = circuit.wire(i)
                if i in ref_paths:
                    ref_cost.remove_path(ref_paths[i].flat_cells)
                res = route_wire_reference(ref_cost, wire, tie_break=tie)
                ref_occ += res.cost
                ref_work += res.work_cells
                ref_cost.apply_path(res.path.flat_cells)
                ref_paths[i] = res.path
            vec_occ, vec_work = route_iteration_wavefront(
                vec_cost, circuit, order, vec_paths, tie_break=tie
            )
            assert vec_occ == ref_occ
            assert vec_work == ref_work
            assert ref_cost == vec_cost
            for i in order:
                assert np.array_equal(
                    ref_paths[i].flat_cells, vec_paths[i].flat_cells
                )

    @settings(max_examples=40, deadline=None)
    @given(
        st.lists(wires(), min_size=2, max_size=6),
        st.randoms(use_true_random=False),
    )
    def test_interleaved_mutations_and_routes(self, wire_list, rng):
        # apply_path / remove_path / route_wire churn: external mutations
        # between routes must flow into the fused evaluation identically.
        ref_cost = CostArray(N_CHANNELS, N_GRIDS)
        vec_cost = CostArray(N_CHANNELS, N_GRIDS)
        ref_paths, vec_paths = {}, {}
        extra = []
        for iteration in range(3):
            tie = iteration % 2
            for i, wire in enumerate(wire_list):
                if i in ref_paths:
                    ref_cost.remove_path(ref_paths[i].flat_cells)
                    vec_cost.remove_path(vec_paths[i].flat_cells)
                ref = route_wire_reference(ref_cost, wire, tie_break=tie)
                vec = route_wire_fused(vec_cost, wire, tie_break=tie)
                assert_same_route(ref, vec)
                ref_cost.apply_path(ref.path.flat_cells)
                vec_cost.apply_path(vec.path.flat_cells)
                ref_paths[i], vec_paths[i] = ref.path, vec.path
                choice = rng.random()
                if choice < 0.3:
                    # A foreign wire-path lands on both arrays.
                    cells = np.unique(
                        np.array(
                            [
                                rng.randrange(N_CHANNELS * N_GRIDS)
                                for _ in range(rng.randrange(1, 6))
                            ],
                            dtype=np.int64,
                        )
                    )
                    ref_cost.apply_path(cells)
                    vec_cost.apply_path(cells)
                    extra.append(cells)
                elif choice < 0.45 and extra:
                    cells = extra.pop(rng.randrange(len(extra)))
                    ref_cost.remove_path(cells)
                    vec_cost.remove_path(cells)
        assert ref_cost == vec_cost

    def test_forced_size_one_waves(self):
        # Every wire crosses column 12, so every footprint overlaps every
        # other and each wave carries exactly one wire.
        overlapping = [
            Wire(f"w{i}", [Pin(4, i % N_CHANNELS), Pin(20, (i + 3) % N_CHANNELS)])
            for i in range(6)
        ]
        circuit = Circuit("serial", N_CHANNELS, N_GRIDS, overlapping)
        footprints = {
            i: wire_geometry(circuit.wire(i), N_GRIDS).bbox
            for i in range(circuit.n_wires)
        }
        wave, _ = plan_wave(list(range(circuit.n_wires)), footprints)
        assert len(wave) == 1
        with use_kernels("reference"):
            ref = SequentialRouter(circuit, iterations=3).run()
        with use_kernels("vectorized"):
            vec = SequentialRouter(circuit, iterations=3).run()
        assert ref.cost == vec.cost
        assert ref.work_cells == vec.work_cells


class TestEngineDispatch:
    @settings(max_examples=40, deadline=None)
    @given(circuits(min_wires=1, max_wires=8))
    def test_sequential_router_bit_identical_across_modes(self, circuit):
        with use_kernels("reference"):
            ref = SequentialRouter(circuit, iterations=3).run()
        with use_kernels("vectorized"):
            vec = SequentialRouter(circuit, iterations=3).run()
        assert ref.quality == vec.quality
        assert ref.work_cells == vec.work_cells
        assert ref.per_iteration_height == vec.per_iteration_height
        assert ref.cost == vec.cost
        assert set(ref.paths) == set(vec.paths)
        for i, path in ref.paths.items():
            assert np.array_equal(path.flat_cells, vec.paths[i].flat_cells)

    def test_custom_wire_order_respected(self):
        wire_list = [
            Wire("a", [Pin(0, 0), Pin(10, 3)]),
            Wire("b", [Pin(5, 2), Pin(15, 5)]),
            Wire("c", [Pin(12, 4), Pin(23, 7)]),
        ]
        circuit = Circuit("ordered", N_CHANNELS, N_GRIDS, wire_list)
        order = [2, 0, 1]
        with use_kernels("reference"):
            ref = SequentialRouter(circuit, iterations=2).run(wire_order=order)
        with use_kernels("vectorized"):
            vec = SequentialRouter(circuit, iterations=2).run(wire_order=order)
        assert ref.cost == vec.cost
        for i in ref.paths:
            assert np.array_equal(
                ref.paths[i].flat_cells, vec.paths[i].flat_cells
            )

    def test_tie_break_validation(self):
        from repro.errors import RoutingError

        cost = CostArray(N_CHANNELS, N_GRIDS)
        with pytest.raises(RoutingError):
            route_wire_fused(cost, Wire("w", [Pin(0, 0), Pin(5, 3)]), tie_break=2)
