"""Shared fixtures for the test suite.

Everything here is deterministic: fixed seeds, fixed circuit sizes.  Tests
use small circuits so the whole suite stays fast; the full-size benchmark
circuits are exercised by ``benchmarks/``.
"""

from __future__ import annotations

import pytest

from repro.circuits import Circuit, Pin, Wire, bnre_like, tiny_test_circuit
from repro.grid import CostArray, RegionMap


def pytest_addoption(parser: pytest.Parser) -> None:
    parser.addoption(
        "--regen-golden",
        action="store_true",
        default=False,
        help="regenerate tests/golden/ fixtures instead of comparing "
        "(run after an intentional behaviour change, then review the diff)",
    )


@pytest.fixture
def regen_golden(request: pytest.FixtureRequest) -> bool:
    """True when the run should rewrite the golden fixtures."""
    return bool(request.config.getoption("--regen-golden"))


@pytest.fixture
def tiny_circuit() -> Circuit:
    """A 24-wire, 4x40 circuit for fast routing tests."""
    return tiny_test_circuit()


@pytest.fixture
def small_bnre() -> Circuit:
    """A shrunk bnrE-like circuit (fast but realistically shaped)."""
    return bnre_like(n_wires=120)


@pytest.fixture
def two_pin_wire() -> Wire:
    """A simple two-pin wire crossing channels."""
    return Wire("w", [Pin(2, 0), Pin(12, 3)])


@pytest.fixture
def flat_wire() -> Wire:
    """A two-pin wire inside a single channel."""
    return Wire("w", [Pin(3, 1), Pin(9, 1)])


@pytest.fixture
def empty_cost() -> CostArray:
    """A zeroed 4x40 cost array matching ``tiny_circuit``."""
    return CostArray(4, 40)


@pytest.fixture
def regions_16() -> RegionMap:
    """A 16-processor region map over the bnrE-like grid."""
    return RegionMap(10, 341, 16)
