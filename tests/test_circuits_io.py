"""Round-trip and error tests for circuit serialisation."""

from __future__ import annotations

import pytest

from repro.circuits import (
    circuit_from_dict,
    circuit_to_dict,
    load_json,
    load_text,
    save_json,
    save_text,
    tiny_test_circuit,
)
from repro.errors import CircuitError


class TestJsonRoundTrip:
    def test_dict_round_trip(self, tiny_circuit):
        assert circuit_from_dict(circuit_to_dict(tiny_circuit)) == tiny_circuit or (
            circuit_from_dict(circuit_to_dict(tiny_circuit)).wires == tiny_circuit.wires
        )

    def test_file_round_trip(self, tiny_circuit, tmp_path):
        path = tmp_path / "c.json"
        save_json(tiny_circuit, path)
        loaded = load_json(path)
        assert loaded.name == tiny_circuit.name
        assert loaded.shape == tiny_circuit.shape
        assert loaded.wires == tiny_circuit.wires

    def test_malformed_dict_raises(self):
        with pytest.raises(CircuitError):
            circuit_from_dict({"name": "x"})

    def test_missing_file_raises(self, tmp_path):
        with pytest.raises(CircuitError, match="cannot read"):
            load_json(tmp_path / "nope.json")

    def test_bad_pin_payload_raises(self):
        data = {
            "name": "x",
            "n_channels": 2,
            "n_grids": 5,
            "wires": [{"name": "w", "pins": [["a", 0], [1, 1]]}],
        }
        with pytest.raises(CircuitError):
            circuit_from_dict(data)


class TestTextRoundTrip:
    def test_file_round_trip(self, tiny_circuit, tmp_path):
        path = tmp_path / "c.txt"
        save_text(tiny_circuit, path)
        loaded = load_text(path)
        assert loaded.shape == tiny_circuit.shape
        assert loaded.wires == tiny_circuit.wires

    def test_comments_and_blank_lines_ignored(self, tmp_path):
        path = tmp_path / "c.txt"
        path.write_text(
            "# a comment\n\nCIRCUIT demo 2 10\nWIRE w0 2  # trailing comment\nPIN 0 0\nPIN 5 1\n"
        )
        circuit = load_text(path)
        assert circuit.name == "demo"
        assert circuit.n_wires == 1

    def test_missing_header_raises(self, tmp_path):
        path = tmp_path / "c.txt"
        path.write_text("WIRE w0 2\nPIN 0 0\nPIN 5 1\n")
        with pytest.raises(CircuitError):
            load_text(path)

    def test_pin_count_mismatch_raises(self, tmp_path):
        path = tmp_path / "c.txt"
        path.write_text("CIRCUIT demo 2 10\nWIRE w0 3\nPIN 0 0\nPIN 5 1\n")
        with pytest.raises(CircuitError):
            load_text(path)

    def test_unknown_keyword_raises(self, tmp_path):
        path = tmp_path / "c.txt"
        path.write_text("CIRCUIT demo 2 10\nBOGUS 1\n")
        with pytest.raises(CircuitError):
            load_text(path)

    def test_malformed_line_raises(self, tmp_path):
        path = tmp_path / "c.txt"
        path.write_text("CIRCUIT demo 2\n")
        with pytest.raises(CircuitError):
            load_text(path)
