"""Tests for the wire assignment policies."""

from __future__ import annotations

import math

import numpy as np
import pytest

from repro.assign import (
    Assignment,
    DistributedLoop,
    RoundRobinAssigner,
    ThresholdCostAssigner,
    fully_local,
    load_report,
)
from repro.circuits import bnre_like, tiny_test_circuit
from repro.errors import AssignmentError
from repro.grid import RegionMap


@pytest.fixture
def circuit():
    return bnre_like(n_wires=120)


@pytest.fixture
def regions():
    return RegionMap(10, 341, 16)


class TestAssignment:
    def test_wires_of_partition(self, circuit, regions):
        asg = RoundRobinAssigner(circuit, regions).assign()
        all_wires = np.concatenate([asg.wires_of(p) for p in range(16)])
        assert sorted(all_wires.tolist()) == list(range(circuit.n_wires))

    def test_out_of_range_owner_rejected(self):
        with pytest.raises(AssignmentError):
            Assignment(owner=np.array([0, 5]), n_procs=4, method="bad")

    def test_per_proc_lists_are_sorted(self, circuit, regions):
        asg = RoundRobinAssigner(circuit, regions).assign()
        for lst in asg.per_proc_lists():
            assert lst == sorted(lst)


class TestRoundRobin:
    def test_cyclic_dealing(self, circuit, regions):
        asg = RoundRobinAssigner(circuit, regions).assign()
        assert asg.owner[0] == 0 and asg.owner[1] == 1 and asg.owner[16] == 0

    def test_loads_balanced_by_count(self, circuit, regions):
        asg = RoundRobinAssigner(circuit, regions).assign()
        counts = asg.load_counts()
        assert counts.max() - counts.min() <= 1

    def test_work_balanced_via_sorted_netlist(self, regions):
        """Wires are emitted longest-first, so cyclic dealing spreads the
        heavy tail; at full benchmark size the imbalance is mild (the
        paper's round robin timings are only ~6 % above the best)."""
        full = bnre_like()
        asg = RoundRobinAssigner(full, regions).assign()
        report = load_report(full, asg)
        assert report.imbalance < 1.35


class TestThresholdCost:
    def test_small_threshold_balances_almost_everything(self, circuit, regions):
        asg = ThresholdCostAssigner(circuit, regions, 2).assign()
        report = load_report(circuit, asg)
        assert report.imbalance < 1.3

    def test_infinite_threshold_fully_local(self, circuit, regions):
        asg = fully_local(circuit, regions).assign()
        for w in range(circuit.n_wires):
            pin = circuit.wire(w).leftmost_pin
            assert asg.owner[w] == regions.owner_of(pin.channel, pin.x)

    def test_threshold_orders_locality(self, circuit, regions):
        """Higher thresholds assign at least as many wires by locality."""
        def local_count(tc):
            asg = ThresholdCostAssigner(circuit, regions, tc).assign()
            return sum(
                asg.owner[w]
                == regions.owner_of(
                    circuit.wire(w).leftmost_pin.channel,
                    circuit.wire(w).leftmost_pin.x,
                )
                for w in range(circuit.n_wires)
            )

        assert local_count(30) <= local_count(1000) <= local_count(math.inf)

    def test_paper_thresholds_hit_intended_percentiles(self):
        """TC=30 keeps roughly the short half local; TC=1000 all but the
        work-dominant tail (the calibration DESIGN.md documents)."""
        circuit = bnre_like()
        regions = RegionMap(10, 341, 16)
        assigner = ThresholdCostAssigner(circuit, regions, 30)
        costs = [assigner.wire_cost(w) for w in range(circuit.n_wires)]
        frac_below_30 = np.mean([c < 30 for c in costs])
        frac_above_1000 = np.mean([c > 1000 for c in costs])
        assert 0.30 < frac_below_30 < 0.65
        assert 0.05 < frac_above_1000 < 0.30

    def test_inf_threshold_imbalance_exceeds_balanced(self, circuit, regions):
        inf_report = load_report(circuit, fully_local(circuit, regions).assign())
        bal_report = load_report(
            circuit, ThresholdCostAssigner(circuit, regions, 30).assign()
        )
        assert inf_report.imbalance > bal_report.imbalance

    def test_nonpositive_threshold_rejected(self, circuit, regions):
        with pytest.raises(AssignmentError):
            ThresholdCostAssigner(circuit, regions, 0)

    def test_method_names(self, circuit, regions):
        assert ThresholdCostAssigner(circuit, regions, 30).method_name == "ThresholdCost=30"
        assert fully_local(circuit, regions).method_name == "ThresholdCost=inf"

    def test_region_map_mismatch_rejected(self, circuit):
        wrong = RegionMap(12, 386, 16)
        with pytest.raises(AssignmentError):
            ThresholdCostAssigner(circuit, wrong, 30)


class TestDistributedLoop:
    def test_hands_out_in_order(self):
        loop = DistributedLoop([3, 1, 2])
        assert [loop.next_wire() for _ in range(4)] == [3, 1, 2, None]

    def test_reset_rearms(self):
        loop = DistributedLoop([0, 1])
        loop.next_wire()
        loop.next_wire()
        loop.reset()
        assert loop.next_wire() == 0
        assert loop.grabs == 3

    def test_remaining(self):
        loop = DistributedLoop([0, 1, 2])
        loop.next_wire()
        assert loop.remaining == 2

    def test_duplicates_rejected(self):
        with pytest.raises(AssignmentError):
            DistributedLoop([1, 1])


class TestLoadReport:
    def test_report_fields(self, circuit, regions):
        report = load_report(circuit, RoundRobinAssigner(circuit, regions).assign())
        assert report.wires_per_proc.sum() == circuit.n_wires
        assert report.imbalance >= 1.0
        assert report.max_wires >= report.min_wires
        assert "imbalance" in report.as_dict()
