"""Golden regression fixtures for the quick-mode harness tables.

``tests/golden/`` holds the full quick-mode outputs (columns, rows,
shape checks) of the three headline sweep experiments: Table 1
(sender-initiated schedules), Table 2 (receiver-initiated schedules),
and Table 6 (shared memory line sizes).  Everything the simulators
produce is deterministic — fixed circuit seeds, virtual time — so any
diff against these fixtures is a behaviour change, not noise.

After an *intentional* change, regenerate with::

    PYTHONPATH=src python -m pytest tests/test_golden_regression.py --regen-golden

then review the fixture diff like any other code change
(see docs/VERIFICATION.md).
"""

from __future__ import annotations

import json
from pathlib import Path

import pytest

from repro.harness.cache import jsonify
from repro.harness.experiments import run_experiment

GOLDEN_DIR = Path(__file__).parent / "golden"
EXP_IDS = ["T1", "T2", "T6"]

#: Relative tolerance for float comparisons.  Simulated times are exact
#: in principle, but summing float work terms is sensitive to operation
#: order, which legitimate refactors may change.
FLOAT_RTOL = 1e-6


def golden_path(exp_id: str) -> Path:
    return GOLDEN_DIR / f"{exp_id.lower()}.json"


def build_payload(exp_id: str) -> dict:
    result = run_experiment(exp_id, quick=True)
    return {
        "exp_id": result.exp_id,
        "title": result.title,
        "columns": list(result.columns),
        "rows": jsonify(result.rows),
        "checks": jsonify(result.checks),
    }


def assert_matches(actual, expected, where: str) -> None:
    """Exact for ints/strings/bools/None; tolerant for floats."""
    if isinstance(expected, float) or isinstance(actual, float):
        assert actual == pytest.approx(expected, rel=FLOAT_RTOL), (
            f"{where}: {actual!r} != {expected!r}"
        )
    elif isinstance(expected, dict):
        assert isinstance(actual, dict), f"{where}: {type(actual)} != dict"
        assert sorted(actual) == sorted(expected), (
            f"{where}: keys {sorted(actual)} != {sorted(expected)}"
        )
        for key in expected:
            assert_matches(actual[key], expected[key], f"{where}.{key}")
    elif isinstance(expected, list):
        assert isinstance(actual, list), f"{where}: {type(actual)} != list"
        assert len(actual) == len(expected), (
            f"{where}: length {len(actual)} != {len(expected)}"
        )
        for i, (a, e) in enumerate(zip(actual, expected)):
            assert_matches(a, e, f"{where}[{i}]")
    else:
        assert actual == expected, f"{where}: {actual!r} != {expected!r}"


@pytest.mark.parametrize("exp_id", EXP_IDS)
def test_quick_table_matches_golden(exp_id, regen_golden):
    path = golden_path(exp_id)
    payload = build_payload(exp_id)
    if regen_golden:
        GOLDEN_DIR.mkdir(exist_ok=True)
        path.write_text(json.dumps(payload, indent=1, sort_keys=True) + "\n")
        pytest.skip(f"regenerated {path}")
    assert path.exists(), (
        f"missing golden fixture {path}; generate it with --regen-golden"
    )
    expected = json.loads(path.read_text())
    assert_matches(payload, expected, exp_id)


def test_golden_fixtures_checked_in():
    present = sorted(p.stem for p in GOLDEN_DIR.glob("*.json"))
    assert present == sorted(e.lower() for e in EXP_IDS)
