"""Differential, property, and stress tests for the live parallel routers.

The live routers (:mod:`repro.parallel.live`) execute on real cores, so
their parallel runs are scheduling-dependent; these tests pin down the
properties that must hold regardless of interleaving:

- **differential**: live quality stays within the documented tolerance of
  the matching simulator and of the sequential reference, and the 1-proc
  live run *equals* the sequential run (no race, same algorithm);
- **replay**: commit-log replay reproduces the final array bit-exactly,
  and (hypothesis) replaying *any* valid interleaving of commit records
  yields exactly the union of the still-committed paths;
- **crash stress**: a SIGKILLed worker mid-iteration never loses a
  committed wire — the run completes via salvage/respawn with correct
  ``crash_dropped_*`` accounting.

Both start methods are exercised where it matters; the whole suite also
runs under ``REPRO_MP_START_METHOD=spawn`` in CI.
"""

from __future__ import annotations

import multiprocessing

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.circuits import tiny_test_circuit
from repro.errors import SimulationError
from repro.grid import CostArray
from repro.parallel import run_message_passing, run_shared_memory
from repro.parallel.live import (
    COMMIT,
    RIPUP,
    CommitRecord,
    KillPlanEntry,
    read_log,
    replay_records,
    run_live_message_passing,
    run_live_shared_memory,
)
from repro.parallel.live.commitlog import LOG_MAGIC, CommitLogWriter
from repro.route import SequentialRouter
from repro.updates import UpdateSchedule
from repro.verify.live import LIVE_QUALITY_TOLERANCE

START_METHODS = [
    m for m in ("fork", "spawn") if m in multiprocessing.get_all_start_methods()
]
ITERATIONS = 2


@pytest.fixture(scope="module")
def circuit():
    return tiny_test_circuit(seed=7, n_wires=24)


@pytest.fixture(scope="module")
def sequential(circuit):
    return SequentialRouter(circuit, iterations=ITERATIONS).run()


def assert_within_tolerance(live, ref):
    for attr in ("circuit_height", "occupancy_factor"):
        ref_v, live_v = getattr(ref, attr), getattr(live, attr)
        assert abs(live_v - ref_v) <= LIVE_QUALITY_TOLERANCE * ref_v, (
            f"{attr}: live {live_v} vs reference {ref_v} "
            f"(tolerance {LIVE_QUALITY_TOLERANCE:.0%})"
        )


def assert_complete(result, circuit):
    """Every wire routed, truth is exactly the union of the final paths."""
    assert set(result.paths) == set(range(circuit.n_wires))
    union = CostArray(circuit.n_channels, circuit.n_grids)
    for path in result.paths.values():
        union.apply_path(path.flat_cells)
    assert union == result.truth


class TestLiveSharedMemory:
    @pytest.mark.parametrize("start_method", START_METHODS)
    def test_differential_vs_simulator_and_reference(
        self, circuit, sequential, start_method
    ):
        live = run_live_shared_memory(
            circuit, n_procs=2, iterations=ITERATIONS, start_method=start_method
        )
        assert live.replay_ok, live.meta["replay"]
        assert_complete(live, circuit)
        assert_within_tolerance(live.quality, sequential.quality)
        sim = run_shared_memory(
            circuit, n_procs=2, iterations=ITERATIONS, collect_trace=False
        )
        assert_within_tolerance(live.quality, sim.quality)

    def test_single_proc_equals_sequential(self, circuit, sequential):
        """One worker, natural order: the sequential algorithm exactly."""
        live = run_live_shared_memory(circuit, n_procs=1, iterations=ITERATIONS)
        assert live.replay_ok
        assert live.quality == sequential.quality
        assert live.truth == sequential.cost
        for w, path in sequential.paths.items():
            assert np.array_equal(live.paths[w].flat_cells, path.flat_cells)

    def test_single_proc_repeats_bit_identical(self, circuit):
        runs = [
            run_live_shared_memory(
                circuit, n_procs=1, iterations=ITERATIONS, seed=123
            )
            for _ in range(2)
        ]
        assert runs[0].quality == runs[1].quality
        assert runs[0].truth == runs[1].truth
        for w in runs[0].paths:
            assert np.array_equal(
                runs[0].paths[w].flat_cells, runs[1].paths[w].flat_cells
            )

    def test_shuffled_order_still_replays(self, circuit):
        live = run_live_shared_memory(
            circuit, n_procs=2, iterations=ITERATIONS, seed=99
        )
        assert live.replay_ok
        assert_complete(live, circuit)


class TestLiveMessagePassing:
    @pytest.mark.parametrize("start_method", START_METHODS)
    def test_differential_vs_simulator_and_reference(
        self, circuit, sequential, start_method
    ):
        schedule = UpdateSchedule.sender_initiated(1, 1)
        live = run_live_message_passing(
            circuit,
            schedule,
            n_procs=2,
            iterations=ITERATIONS,
            start_method=start_method,
        )
        assert live.replay_ok, live.meta["replay"]
        assert_complete(live, circuit)
        assert_within_tolerance(live.quality, sequential.quality)
        sim = run_message_passing(
            circuit, schedule, n_procs=2, iterations=ITERATIONS
        )
        assert_within_tolerance(live.quality, sim.quality)

    def test_single_proc_repeats_bit_identical(self, circuit):
        runs = [
            run_live_message_passing(circuit, n_procs=1, iterations=ITERATIONS)
            for _ in range(2)
        ]
        assert runs[0].quality == runs[1].quality
        assert runs[0].truth == runs[1].truth

    def test_blocking_requests_and_watchdog_counters(self, circuit):
        schedule = UpdateSchedule(req_rmt_every=2, blocking=True)
        live = run_live_message_passing(
            circuit, schedule, n_procs=2, iterations=ITERATIONS
        )
        assert live.replay_ok
        traffic = live.meta["traffic"]
        assert traffic["requests_sent"] > 0
        # every request is eventually serviced or abandoned, never lost
        assert traffic["requests_serviced"] >= 0
        assert traffic["requests_abandoned"] + traffic["requests_serviced"] > 0

    def test_req_loc_schedules_rejected(self, circuit):
        with pytest.raises(SimulationError):
            run_live_message_passing(
                circuit,
                UpdateSchedule.receiver_initiated(1, 5),
                n_procs=2,
                iterations=1,
            )


# ---------------------------------------------------------------------------
# hypothesis: replay of arbitrary commit-record interleavings
# ---------------------------------------------------------------------------
N_CHANNELS, N_GRIDS = 4, 16


@st.composite
def record_interleavings(draw):
    """Valid per-wire record sequences, arbitrarily interleaved globally.

    Per wire: commits in order, each optionally preceded by an explicit
    rip-up of the previous commit (the live workers' pattern), and
    optionally a trailing rip-up that leaves the wire unrouted.  Across
    wires: any interleaving, as produced by real workers racing.
    """
    n_wires = draw(st.integers(1, 5))
    cells_strategy = st.lists(
        st.integers(0, N_CHANNELS * N_GRIDS - 1),
        min_size=1,
        max_size=6,
        unique=True,
    )
    per_wire = {}
    for w in range(n_wires):
        commits = [
            np.sort(np.asarray(draw(cells_strategy), dtype=np.int64))
            for _ in range(draw(st.integers(1, 3)))
        ]
        tokens = []
        for i, cells in enumerate(commits):
            if i and draw(st.booleans()):
                tokens.append((RIPUP, commits[i - 1]))
            tokens.append((COMMIT, cells))
        if draw(st.booleans()):
            tokens.append((RIPUP, commits[-1]))
        per_wire[w] = tokens
    ordered = []
    pending = {w: list(t) for w, t in per_wire.items() if t}
    while pending:
        w = draw(st.sampled_from(sorted(pending)))
        ordered.append((w, *pending[w].pop(0)))
        if not pending[w]:
            del pending[w]
    return ordered


@settings(
    max_examples=50,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow, HealthCheck.data_too_large],
)
@given(interleaving=record_interleavings())
def test_replay_is_union_of_committed_paths(interleaving):
    """Replaying any worker interleaving yields the committed-path union."""
    records = [
        CommitRecord(
            kind=kind,
            worker=wire % 3,
            iteration=0,
            wire=wire,
            seq=seq,
            price=-1,
            cells=cells,
        )
        for seq, (wire, kind, cells) in enumerate(interleaving)
    ]
    replay = replay_records(records, N_CHANNELS, N_GRIDS)
    # final committed path per wire = its last commit, unless ripped after
    expected_live = {}
    for wire, kind, cells in interleaving:
        if kind == COMMIT:
            expected_live[wire] = cells
        else:
            expected_live.pop(wire, None)
    assert set(replay.paths) == set(expected_live)
    union = CostArray(N_CHANNELS, N_GRIDS)
    for cells in expected_live.values():
        union.apply_path(cells)
    assert union == replay.truth
    assert replay.ok
    assert replay.commits == sum(1 for _, k, _c in interleaving if k == COMMIT)


# ---------------------------------------------------------------------------
# commit-log durability details
# ---------------------------------------------------------------------------
class TestCommitLogFile:
    def test_roundtrip_and_truncated_tail(self, tmp_path):
        path = str(tmp_path / "w0.log")
        writer = CommitLogWriter(path, worker=0)
        cells = np.array([1, 5, 9], dtype=np.int64)
        writer.append(COMMIT, 0, 3, 17, cells, price=4)
        writer.append(RIPUP, 1, 3, 42, cells)
        writer.close()
        records = read_log(path)
        assert [r.kind for r in records] == [COMMIT, RIPUP]
        assert records[0].price == 4 and records[0].seq == 17
        assert np.array_equal(records[1].cells, cells)
        # a SIGKILL mid-append leaves a truncated record: dropped, not fatal
        with open(path, "ab") as f:
            f.write(b"\x01\x00\x00")
        assert [r.kind for r in read_log(path)] == [COMMIT, RIPUP]

    def test_bad_magic_rejected(self, tmp_path):
        path = tmp_path / "not_a_log"
        path.write_bytes(b"something else entirely")
        with pytest.raises(SimulationError):
            read_log(str(path))

    def test_magic_constant_is_stable(self):
        # the on-disk format is a compatibility surface: changing it must
        # be a conscious version bump, not an accident
        assert LOG_MAGIC == b"LRCLOG1\n"


# ---------------------------------------------------------------------------
# seeded kill / recovery stress
# ---------------------------------------------------------------------------
class TestCrashStress:
    @pytest.mark.timeout(120)
    @pytest.mark.parametrize("point", ["after_grab", "after_ripup", "after_commit"])
    def test_sigkill_worker_with_respawn(self, circuit, point):
        plan = (KillPlanEntry(slot=1, after_commits=3, point=point),)
        result = run_live_shared_memory(
            circuit,
            n_procs=2,
            iterations=ITERATIONS,
            kill_plan=plan,
            respawn=True,
        )
        assert result.replay_ok, result.meta["replay"]
        assert_complete(result, circuit)
        crash = result.meta["crash"]
        assert crash["planned"] == 1
        assert any(slot == 1 for slot, _inc in crash["confirmed"])
        assert crash["respawned"] == 1
        # durable logs: a completed commit can never be lost to a crash
        assert crash["crash_dropped_commits"] == 0
        assert crash["crash_dropped_inflight"] == crash["requeued_wires"]
        slot1 = result.worker_stats[1]
        assert slot1.incarnations == 2

    @pytest.mark.timeout(120)
    def test_kill_fires_even_when_scheduler_would_starve_the_victim(self, circuit):
        """The distributed loop reserves grabs for unfired kill plans.

        A threshold above the victim's fair share (30 of the run's 48
        commits) can only be reached because the loop holds back the tail
        of each iteration for the armed worker; without the reservation
        the sibling drains the loop and the plan silently never fires.
        """
        plan = (KillPlanEntry(slot=1, after_commits=30, point="after_commit"),)
        result = run_live_shared_memory(
            circuit,
            n_procs=2,
            iterations=ITERATIONS,
            kill_plan=plan,
            respawn=True,
        )
        assert result.replay_ok
        assert_complete(result, circuit)
        crash = result.meta["crash"]
        assert any(slot == 1 for slot, _inc in crash["confirmed"])
        assert crash["respawned"] == 1
        assert crash["crash_dropped_commits"] == 0

    @pytest.mark.timeout(120)
    def test_sigkill_without_respawn_survivor_salvages(self, circuit):
        plan = (KillPlanEntry(slot=0, after_commits=2, point="after_ripup"),)
        result = run_live_shared_memory(
            circuit,
            n_procs=2,
            iterations=ITERATIONS,
            kill_plan=plan,
            respawn=False,
        )
        assert result.replay_ok
        assert_complete(result, circuit)
        crash = result.meta["crash"]
        assert crash["crash_dropped_commits"] == 0
        # the killed worker's in-flight wire was adopted by the survivor
        assert set(result.paths) == set(range(circuit.n_wires))

    @pytest.mark.timeout(120)
    def test_crash_quality_unaffected(self, circuit):
        """Salvage must reroute, not drop: quality stays in tolerance."""
        clean = run_live_shared_memory(circuit, n_procs=1, iterations=ITERATIONS)
        crashed = run_live_shared_memory(
            circuit,
            n_procs=2,
            iterations=ITERATIONS,
            kill_plan=(KillPlanEntry(slot=1, after_commits=4),),
            respawn=True,
        )
        assert crashed.replay_ok
        assert_within_tolerance(crashed.quality, clean.quality)


# ---------------------------------------------------------------------------
# X7: the live-vs-simulated experiment passes its shape checks
# ---------------------------------------------------------------------------
def test_x7_experiment_passes():
    from repro.harness.experiments import run_experiment

    result = run_experiment("X7", quick=True)
    assert result.passed, result.checks
    assert result.extras["live_sm_speedup"] > 0
