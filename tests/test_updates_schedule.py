"""Tests for update schedules."""

from __future__ import annotations

import pytest

from repro.errors import ProtocolError
from repro.updates import UpdateSchedule


class TestConstruction:
    def test_sender_initiated_constructor(self):
        s = UpdateSchedule.sender_initiated(2, 10)
        assert s.send_rmt_every == 2 and s.send_loc_every == 10
        assert s.has_sender_initiated and not s.has_receiver_initiated

    def test_receiver_initiated_constructor(self):
        s = UpdateSchedule.receiver_initiated(1, 5)
        assert s.req_loc_every == 1 and s.req_rmt_every == 5
        assert s.has_receiver_initiated and not s.has_sender_initiated
        assert not s.blocking

    def test_mixed_example_matches_paper(self):
        s = UpdateSchedule.mixed_example()
        assert (s.send_loc_every, s.send_rmt_every) == (5, 2)
        assert (s.req_loc_every, s.req_rmt_every) == (1, 5)
        assert s.is_mixed

    def test_silent_schedule(self):
        s = UpdateSchedule()
        assert s.is_silent
        assert s.describe() == "silent"

    def test_default_lookahead_is_five(self):
        # §4.3.3: "request updates for five wires at a time".
        assert UpdateSchedule.receiver_initiated(1, 5).lookahead_wires == 5


class TestValidation:
    @pytest.mark.parametrize(
        "kw",
        [
            {"send_loc_every": 0},
            {"send_rmt_every": -1},
            {"req_rmt_every": 0},
            {"req_loc_every": 0},
        ],
    )
    def test_nonpositive_intervals_rejected(self, kw):
        with pytest.raises(ProtocolError):
            UpdateSchedule(**kw)

    def test_blocking_requires_requests(self):
        with pytest.raises(ProtocolError):
            UpdateSchedule(send_loc_every=5, blocking=True)

    def test_negative_lookahead_rejected(self):
        with pytest.raises(ProtocolError):
            UpdateSchedule(req_rmt_every=5, lookahead_wires=-1)


class TestHelpers:
    def test_with_blocking(self):
        s = UpdateSchedule.receiver_initiated(1, 5).with_blocking(True)
        assert s.blocking
        assert s.req_rmt_every == 5

    def test_describe_formats(self):
        s = UpdateSchedule.mixed_example()
        text = s.describe()
        for token in ("SLD=5", "SRD=2", "RLD=1", "RRD=5"):
            assert token in text

    def test_describe_blocking_flag(self):
        s = UpdateSchedule.receiver_initiated(1, 5, blocking=True)
        assert "blocking" in s.describe()

    def test_frozen(self):
        s = UpdateSchedule.sender_initiated(2, 10)
        with pytest.raises(AttributeError):
            s.send_loc_every = 3
