"""Tests for the analytic per-reference coherence analysis.

The centrepiece is a hypothesis-driven cross-validation: the closed-form
order-statistic analysis must match a brute-force per-reference protocol
state machine on arbitrary access sequences.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.circuits import tiny_test_circuit
from repro.errors import CoherenceError
from repro.memsim import (
    AddressMap,
    ReferenceTrace,
    analyze_references,
    expand_trace,
    simulate_trace,
    simulate_trace_reference_level,
)
from repro.memsim.addressing import WORD_BYTES
from repro.parallel import run_shared_memory


def brute_force(words, procs, writes, amap):
    """Slow per-reference write-back-invalidate state machine."""
    wpl = amap.words_per_line
    sharers, dirty, ever = {}, {}, {}
    cold = refetch = word_w = 0
    for word, p, wr in zip(words, procs, writes):
        line = word // wpl
        s = sharers.setdefault(line, set())
        e = ever.setdefault(line, set())
        if p not in s:
            if p in e:
                refetch += 1
            else:
                cold += 1
        if wr:
            if dirty.get(line) != p:
                word_w += 1
            sharers[line] = {p}
            dirty[line] = p
        else:
            s.add(p)
            if dirty.get(line) not in (None, p):
                dirty[line] = None  # foreign read cleans the line
        e.add(p)
    return (
        cold * amap.line_size,
        refetch * amap.line_size,
        word_w * WORD_BYTES,
    )


@settings(max_examples=60, deadline=None)
@given(
    refs=st.lists(
        st.tuples(st.integers(0, 23), st.integers(0, 3), st.booleans()),
        min_size=1,
        max_size=80,
    ),
    line_size=st.sampled_from([4, 8, 16]),
)
def test_analytic_matches_brute_force(refs, line_size):
    words = np.array([r[0] for r in refs], dtype=np.int64)
    procs = np.array([r[1] for r in refs], dtype=np.int16)
    writes = np.array([r[2] for r in refs], dtype=bool)
    amap = AddressMap(2, 16, line_size)
    stats = analyze_references(words, procs, writes, amap)
    cold, refetch, word_w = brute_force(words, procs, writes, amap)
    assert stats.cold_fetch_bytes == cold
    assert stats.refetch_bytes == refetch
    assert stats.word_write_bytes == word_w


class TestBasics:
    def test_empty_trace(self):
        stats = simulate_trace_reference_level(
            ReferenceTrace(), 4, AddressMap(2, 16, 8)
        )
        assert stats.total_bytes == 0

    def test_expand_preserves_counts_and_order(self):
        trace = ReferenceTrace()
        trace.add(1.0, 0, False, np.array([5, 6]))
        trace.add(0.5, 1, True, np.array([9]))
        words, procs, writes = expand_trace(trace)
        assert list(words) == [9, 5, 6]  # time-sorted, bursts flattened
        assert list(procs) == [1, 0, 0]
        assert list(writes) == [True, False, False]

    def test_mismatched_lengths_rejected(self):
        amap = AddressMap(2, 16, 8)
        with pytest.raises(CoherenceError):
            analyze_references(
                np.array([1, 2]), np.array([0], dtype=np.int16),
                np.array([False, True]), amap,
            )

    def test_proc_out_of_range_rejected(self):
        trace = ReferenceTrace()
        trace.add(0.0, 7, False, np.array([1]))
        with pytest.raises(CoherenceError):
            simulate_trace_reference_level(trace, 4, AddressMap(2, 16, 8))

    def test_own_read_keeps_line_dirty(self):
        """write, own read, write again: the second write is silent."""
        amap = AddressMap(2, 16, 4)
        words = np.array([0, 0, 0], dtype=np.int64)
        procs = np.array([0, 0, 0], dtype=np.int16)
        writes = np.array([True, False, True])
        stats = analyze_references(words, procs, writes, amap)
        assert stats.word_write_bytes == WORD_BYTES  # only the first write

    def test_foreign_read_breaks_exclusivity(self):
        amap = AddressMap(2, 16, 4)
        words = np.array([0, 0, 0], dtype=np.int64)
        procs = np.array([0, 1, 0], dtype=np.int16)
        writes = np.array([True, False, True])
        stats = analyze_references(words, procs, writes, amap)
        assert stats.word_write_bytes == 2 * WORD_BYTES


class TestBurstEquivalence:
    def test_matches_burst_simulator_on_real_trace(self):
        """Burst-level processing is lossless: per-reference replay of the
        same trace gives identical non-writeback traffic."""
        circuit = tiny_test_circuit(n_wires=25)
        result = run_shared_memory(
            circuit, n_procs=4, iterations=2, line_size=8, keep_trace=True
        )
        trace, layout = result.meta["trace"], result.meta["layout"]
        extra = layout.total_words - layout.array_words
        for ls in (4, 16):
            amap = AddressMap(circuit.n_channels, circuit.n_grids, ls, extra_words=extra)
            burst = simulate_trace(trace, 4, amap)
            ref = simulate_trace_reference_level(trace, 4, amap)
            assert ref.total_bytes == burst.total_bytes - burst.writeback_bytes
