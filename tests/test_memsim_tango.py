"""Tests for the Tango trace collector and shared layout."""

from __future__ import annotations

import numpy as np
import pytest

from repro.circuits import Pin
from repro.grid import CostArray
from repro.memsim.tango import SharedLayout, TangoCollector
from repro.route import RoutePath, route_segment


@pytest.fixture
def layout():
    return SharedLayout(n_channels=4, n_grids=40, n_wires=10)


@pytest.fixture
def segment():
    return route_segment(CostArray(4, 40), Pin(2, 0), Pin(12, 3))


class TestSharedLayout:
    def test_regions_are_disjoint_and_ordered(self, layout):
        assert layout.array_words == 160
        assert layout.scheduler_base == 160
        assert layout.records_base == 160 + SharedLayout.SCHEDULER_WORDS
        assert layout.total_words == layout.records_base + 4 * 10

    def test_wire_records_do_not_overlap(self, layout):
        a = set(layout.wire_record_cells(0).tolist())
        b = set(layout.wire_record_cells(1).tolist())
        assert not (a & b)
        assert min(a) >= layout.records_base

    def test_scheduler_cells_in_scheduler_region(self, layout):
        cells = layout.scheduler_cells()
        assert all(layout.scheduler_base <= c < layout.records_base for c in cells)


class TestCollector:
    def test_disabled_collector_records_nothing(self, layout, segment):
        tango = TangoCollector(layout, enabled=False)
        tango.record_evaluation(0.0, 1.0, 0, [segment])
        tango.record_loop_grab(0.0, 0)
        assert tango.trace.n_records == 0

    def test_evaluation_emits_chunks_sweeps(self, layout, segment):
        tango = TangoCollector(layout, chunks=3)
        tango.record_evaluation(0.0, 3.0, 0, [segment])
        assert tango.trace.n_records == 3
        times = sorted({r.time for r in tango.trace.records})
        assert times == [0.0, 1.0, 2.0]

    def test_evaluation_reads_only(self, layout, segment):
        tango = TangoCollector(layout, chunks=2)
        tango.record_evaluation(0.0, 1.0, 0, [segment])
        assert all(not r.is_write for r in tango.trace.records)

    def test_commit_writes_path_and_record(self, layout):
        tango = TangoCollector(layout)
        path = RoutePath.from_cells(np.array([5, 6, 7]), 40)
        tango.record_commit(1.0, 2, 3, path)
        writes = [r for r in tango.trace.records if r.is_write]
        assert len(writes) == 2
        record_cells = set(layout.wire_record_cells(3).tolist())
        assert set(writes[1].flat_cells.tolist()) == record_cells

    def test_ripup_reads_record_and_writes_path(self, layout):
        tango = TangoCollector(layout)
        path = RoutePath.from_cells(np.array([5, 6, 7]), 40)
        tango.record_ripup(1.0, 2, 3, path)
        kinds = [r.is_write for r in tango.trace.records]
        assert kinds == [False, True]

    def test_loop_grab_touches_scheduler(self, layout):
        tango = TangoCollector(layout)
        tango.record_loop_grab(0.5, 1)
        assert tango.trace.n_records == 2
        for r in tango.trace.records:
            assert all(
                layout.scheduler_base <= c < layout.records_base
                for c in r.flat_cells
            )

    def test_bad_chunks_rejected(self, layout):
        with pytest.raises(ValueError):
            TangoCollector(layout, chunks=0)
