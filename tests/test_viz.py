"""Tests for the ASCII figure renderers."""

from __future__ import annotations

import numpy as np

from repro.circuits import tiny_test_circuit
from repro.grid import CostArray, RegionMap
from repro.route import RoutePath, SequentialRouter
from repro.viz import ascii_cost_array, ascii_regions, ascii_update_taxonomy


class TestCostArrayFigure:
    def test_empty_array_renders_blank(self):
        text = ascii_cost_array(CostArray(3, 10))
        lines = text.splitlines()
        assert lines[1] == "|          | channel 0"
        assert "circuit height = 0" in lines[-1]

    def test_occupancy_density_ramp(self):
        cost = CostArray(1, 4)
        cost.data[0] = [0, 1, 5, 20]
        text = ascii_cost_array(cost)
        row = text.splitlines()[1]
        assert row[1] == " " and row[2] == "." and row[4] == "@"

    def test_highlight_marks_path(self):
        cost = CostArray(2, 10)
        path = RoutePath.from_cells(np.array([3, 4]), 10)
        cost.apply_path(path.flat_cells)
        text = ascii_cost_array(cost, highlight=path)
        assert "O" in text.splitlines()[1]

    def test_highlight_empty_cells_lowercase(self):
        cost = CostArray(2, 10)
        path = RoutePath.from_cells(np.array([3]), 10)
        text = ascii_cost_array(cost, highlight=path)
        assert "o" in text.splitlines()[1]

    def test_wide_arrays_downsampled(self):
        cost = CostArray(2, 400)
        text = ascii_cost_array(cost, max_width=80)
        assert all(len(line) <= 95 for line in text.splitlines())

    def test_full_routed_circuit_renders(self):
        circuit = tiny_test_circuit()
        result = SequentialRouter(circuit, iterations=1).run()
        text = ascii_cost_array(result.cost, highlight=result.paths[0])
        assert f"circuit height = {result.quality.circuit_height}" in text


class TestRegionFigure:
    def test_region_glyphs_match_owners(self):
        regions = RegionMap(4, 40, 4)
        text = ascii_regions(regions)
        rows = [l for l in text.splitlines() if l.startswith("|")]
        assert rows[0][1] == "0"
        assert rows[0][-2] == "1"
        assert rows[-1][1] == "2"
        assert rows[-1][-2] == "3"

    def test_sixteen_processors_hex(self):
        regions = RegionMap(16, 160, 16)
        text = ascii_regions(regions)
        assert "F" in text  # processor 15 renders as hex


class TestTaxonomyFigure:
    def test_all_four_kinds_present(self):
        text = ascii_update_taxonomy()
        for name in ("SendLocData", "SendRmtData", "ReqLocData", "ReqRmtData"):
            assert name in text
        assert "blocking" in text
