"""Tests for the EXPERIMENTS.md report generator."""

from __future__ import annotations

from pathlib import Path

import pytest

from repro.harness import run_experiment, save_result
from repro.harness.report import _NOTES, main, render_markdown


@pytest.fixture(scope="module")
def results_dir(tmp_path_factory):
    directory = tmp_path_factory.mktemp("results")
    for exp_id in ("X4", "X6"):
        save_result(run_experiment(exp_id, quick=True), directory)
    return directory


class TestRenderMarkdown:
    def test_includes_saved_experiments(self, results_dir):
        text = render_markdown(results_dir)
        assert "## X4 —" in text
        assert "## X6 —" in text

    def test_lists_missing_experiments(self, results_dir):
        text = render_markdown(results_dir)
        assert "missing results for" in text
        assert "T1" in text

    def test_tables_are_markdown(self, results_dir):
        text = render_markdown(results_dir)
        assert "| circuit | mean_hops |" in text

    def test_check_marks_rendered(self, results_dir):
        text = render_markdown(results_dir)
        assert "✅" in text

    def test_every_note_keyed_to_known_experiment(self):
        from repro.harness import EXPERIMENTS

        assert set(_NOTES) <= set(EXPERIMENTS)

    def test_all_experiments_have_notes(self):
        from repro.harness import EXPERIMENTS

        assert set(_NOTES) == set(EXPERIMENTS)


class TestMain:
    def test_writes_output_file(self, results_dir, tmp_path, capsys):
        out = tmp_path / "EXP.md"
        assert main([str(results_dir), str(out)]) == 0
        assert out.exists()
        assert "# EXPERIMENTS" in out.read_text()
        assert "wrote" in capsys.readouterr().out
