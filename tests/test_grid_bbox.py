"""Unit and property tests for bounding boxes."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.errors import GridError
from repro.grid import BBox

coords = st.integers(min_value=0, max_value=30)


@st.composite
def bboxes(draw):
    c1, c2 = sorted((draw(coords), draw(coords)))
    x1, x2 = sorted((draw(coords), draw(coords)))
    return BBox(c1, x1, c2, x2)


class TestBasics:
    def test_dimensions(self):
        box = BBox(1, 2, 3, 5)
        assert (box.height, box.width, box.area) == (3, 4, 12)

    def test_degenerate_rejected(self):
        with pytest.raises(GridError):
            BBox(3, 0, 1, 0)
        with pytest.raises(GridError):
            BBox(0, 5, 0, 2)

    def test_negative_rejected(self):
        with pytest.raises(GridError):
            BBox(-1, 0, 0, 0)

    def test_contains(self):
        box = BBox(1, 2, 3, 5)
        assert box.contains(2, 3)
        assert not box.contains(0, 3)
        assert not box.contains(2, 6)

    def test_cells_enumeration(self):
        box = BBox(0, 0, 1, 1)
        assert list(box.cells()) == [(0, 0), (0, 1), (1, 0), (1, 1)]

    def test_slices_and_extract(self):
        arr = np.arange(20).reshape(4, 5)
        box = BBox(1, 1, 2, 3)
        assert np.array_equal(box.extract(arr), arr[1:3, 1:4])


class TestSetOps:
    def test_intersect_overlap(self):
        a, b = BBox(0, 0, 4, 4), BBox(2, 3, 6, 8)
        assert a.intersect(b) == BBox(2, 3, 4, 4)

    def test_intersect_disjoint_is_none(self):
        assert BBox(0, 0, 1, 1).intersect(BBox(3, 3, 4, 4)) is None

    def test_union_covers_both(self):
        a, b = BBox(0, 0, 1, 1), BBox(3, 4, 5, 6)
        assert a.union(b) == BBox(0, 0, 5, 6)

    @given(bboxes(), bboxes())
    def test_union_contains_operands(self, a, b):
        u = a.union(b)
        for box in (a, b):
            assert u.c_lo <= box.c_lo and u.x_lo <= box.x_lo
            assert u.c_hi >= box.c_hi and u.x_hi >= box.x_hi

    @given(bboxes(), bboxes())
    def test_intersection_inside_operands(self, a, b):
        inter = a.intersect(b)
        if inter is not None:
            assert a.contains(inter.c_lo, inter.x_lo)
            assert b.contains(inter.c_hi, inter.x_hi)
            assert inter.area <= min(a.area, b.area)

    @given(bboxes())
    def test_self_intersection_identity(self, a):
        assert a.intersect(a) == a
        assert a.union(a) == a


class TestNonzeroScan:
    def test_of_nonzero_none_when_clean(self):
        assert BBox.of_nonzero(np.zeros((4, 6))) is None

    def test_of_nonzero_tight(self):
        arr = np.zeros((5, 7), dtype=int)
        arr[1, 2] = 1
        arr[3, 5] = -2
        assert BBox.of_nonzero(arr) == BBox(1, 2, 3, 5)

    def test_from_points(self):
        pts = np.array([[1, 4], [3, 2], [2, 9]])
        assert BBox.from_points(pts) == BBox(1, 2, 3, 9)

    def test_from_points_empty_raises(self):
        with pytest.raises(GridError):
            BBox.from_points(np.empty((0, 2), dtype=int))

    @given(st.lists(st.tuples(coords, coords), min_size=1, max_size=20))
    def test_of_nonzero_matches_from_points(self, points):
        arr = np.zeros((31, 31), dtype=int)
        for c, x in points:
            arr[c, x] = 1
        box = BBox.of_nonzero(arr)
        expected = BBox.from_points(np.array(points))
        assert box == expected
