"""Determinism: every execution strategy yields bit-identical results.

The whole verification and caching story rests on the simulators being
pure functions of their configuration: fixed circuit seeds, virtual
time, no wall-clock or ordering dependence.  These tests pin that down
by running the same :class:`SimConfig` rows serially, through the
process pool, and back out of a warm result cache, and requiring the
result *fingerprints* — ``stable_hash`` of the full JSON summary — to be
identical everywhere, including across repeated runs in one process.
"""

from __future__ import annotations

import pytest

from repro.harness.cache import ResultCache, stable_hash
from repro.harness.simjobs import SimConfig, run_sim_configs
from repro.updates import UpdateSchedule

CONFIGS = [
    SimConfig(
        kind="mp",
        n_wires=60,
        schedule=UpdateSchedule.sender_initiated(2, 10),
        n_procs=4,
        iterations=2,
    ),
    SimConfig(
        kind="mp",
        n_wires=60,
        schedule=UpdateSchedule.receiver_initiated(2, 5, blocking=True),
        n_procs=4,
        iterations=2,
    ),
    SimConfig(kind="sm", n_wires=60, n_procs=4, iterations=2),
]


def fingerprints(results) -> list:
    return [stable_hash(r.summary_dict()) for r in results]


@pytest.fixture(scope="module")
def serial_fingerprints() -> list:
    return fingerprints(run_sim_configs(CONFIGS, jobs=1))


def test_repeated_serial_runs_identical(serial_fingerprints):
    again = fingerprints(run_sim_configs(CONFIGS, jobs=1))
    assert again == serial_fingerprints


def test_pool_matches_serial(serial_fingerprints):
    pooled = fingerprints(run_sim_configs(CONFIGS, jobs=2))
    assert pooled == serial_fingerprints


def test_cache_round_trip_matches_serial(serial_fingerprints, tmp_path):
    cache = ResultCache(tmp_path / "cache")
    cold = fingerprints(run_sim_configs(CONFIGS, jobs=1, cache=cache))
    warm = fingerprints(run_sim_configs(CONFIGS, jobs=1, cache=cache))
    assert cold == serial_fingerprints
    assert warm == serial_fingerprints


def test_checked_run_does_not_change_results(serial_fingerprints):
    """check_invariants must observe, never perturb, the simulation."""
    checked = [
        SimConfig(
            kind=c.kind,
            n_wires=c.n_wires,
            schedule=c.schedule,
            n_procs=c.n_procs,
            iterations=c.iterations,
            check_invariants=True,
        )
        for c in CONFIGS
    ]
    results = run_sim_configs(checked, jobs=1)
    for result in results:
        verification = result.meta.get("verification")
        assert verification is not None and verification["ok"]
    # Fingerprints include meta, which now carries the verification
    # summary — compare the quality/timing core instead.
    for result, base_fp, config in zip(results, serial_fingerprints, CONFIGS):
        base = run_sim_configs([config], jobs=1)[0]
        assert result.quality.as_dict() == base.quality.as_dict()
        assert result.exec_time_s == base.exec_time_s
        assert stable_hash({k: p.flat_cells for k, p in result.paths.items()}) == (
            stable_hash({k: p.flat_cells for k, p in base.paths.items()})
        )
