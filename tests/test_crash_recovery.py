"""Tests for fail-stop node crashes: detection, re-ownership, recovery.

Covers the crash fault kind itself (plan validation, determinism), the
consistent-hash ownership layer, the message passing recovery path
(watchdog suspicion -> heartbeat probe -> gossiped death notice ->
region/wire adoption), the shared memory mirror (distributed-loop
requeue), fault-counter reconciliation when a crash overlaps other fault
kinds, the salvaging process pool, and the CLI surface.
"""

from __future__ import annotations

import functools
import multiprocessing
import os
import signal

import numpy as np
import pytest

from repro.circuits import bnre_like
from repro.errors import (
    FaultPlanError,
    GridError,
    ProtocolError,
    SimulationError,
)
from repro.faults import (
    FaultPlan,
    LinkWindow,
    NodeCrash,
    NodeStall,
    RecoveryPolicy,
    random_crashes,
)
from repro.grid import HashRing, OwnershipMap, RegionMap
from repro.harness.cache import jsonify, stable_hash
from repro.harness.pool import pool_map_salvage
from repro.harness.simjobs import SimConfig, run_sim_configs
from repro.parallel import run_message_passing, run_shared_memory
from repro.grid.bbox import BBox
from repro.updates import (
    HEADER_BYTES,
    UpdateKind,
    UpdatePacket,
    UpdateSchedule,
    build_control,
    is_control,
)

N_PROCS = 16


def crash_plan(n_crashes=2, at_s=0.3, seed=11, **kwargs):
    return FaultPlan(
        seed=seed,
        node_crashes=random_crashes(N_PROCS, n_crashes, at_s, seed),
        recovery=RecoveryPolicy(),
        **kwargs,
    )


def crash_run(faults, **kwargs):
    circuit = bnre_like(n_wires=160)
    schedule = kwargs.pop(
        "schedule", UpdateSchedule.receiver_initiated(1, 5, blocking=True)
    )
    return run_message_passing(
        circuit, schedule, n_procs=N_PROCS, iterations=2, faults=faults, **kwargs
    )


# ----------------------------------------------------------------------
# plan validation and determinism
# ----------------------------------------------------------------------
class TestCrashPlan:
    def test_negative_proc_rejected(self):
        with pytest.raises(FaultPlanError):
            NodeCrash(proc=-1, at_s=0.5)

    def test_negative_time_rejected(self):
        with pytest.raises(FaultPlanError):
            NodeCrash(proc=0, at_s=-0.5)

    def test_duplicate_crash_procs_rejected(self):
        with pytest.raises(FaultPlanError, match="duplicate"):
            FaultPlan(node_crashes=(NodeCrash(0, 0.1), NodeCrash(0, 0.2)))

    def test_random_crashes_needs_a_survivor(self):
        with pytest.raises(FaultPlanError, match="survive"):
            random_crashes(4, 4, at_s=0.1, seed=1)

    def test_random_crashes_rejects_negative_count(self):
        with pytest.raises(FaultPlanError, match=">= 0"):
            random_crashes(4, -1, at_s=0.1, seed=1)
        assert random_crashes(4, 0, at_s=0.1, seed=1) == ()

    def test_random_crashes_deterministic(self):
        a = random_crashes(16, 4, at_s=0.3, seed=9)
        b = random_crashes(16, 4, at_s=0.3, seed=9)
        c = random_crashes(16, 4, at_s=0.3, seed=10)
        assert a == b
        assert a != c
        assert len({crash.proc for crash in a}) == 4
        assert all(0.3 <= crash.at_s <= 0.3 * 1.5 for crash in a)


# ----------------------------------------------------------------------
# consistent-hash ownership
# ----------------------------------------------------------------------
class TestHashRing:
    def test_keys_map_to_members(self):
        ring = HashRing(range(8), seed=3)
        assert set(ring.members()) == set(range(8))
        for key in range(100):
            assert ring.owner(key) in range(8)

    def test_removal_moves_only_orphaned_keys(self):
        ring = HashRing(range(8), seed=3)
        before = {key: ring.owner(key) for key in range(200)}
        ring.remove(5)
        for key, owner in before.items():
            if owner != 5:
                assert ring.owner(key) == owner
            else:
                assert ring.owner(key) != 5

    def test_last_member_cannot_be_removed(self):
        ring = HashRing([0], seed=1)
        with pytest.raises(GridError):
            ring.remove(0)


class TestOwnershipMap:
    def _map(self, seed=0):
        return OwnershipMap(RegionMap(10, 341, N_PROCS), seed=seed)

    def test_initial_ownership_is_identity(self):
        own = self._map()
        assert own.owner_vector() == tuple(range(N_PROCS))
        assert sorted(own.live_members()) == list(range(N_PROCS))

    def test_mark_dead_reassigns_to_a_live_member(self):
        own = self._map()
        reassigned = own.mark_dead(3)
        assert reassigned[3] != 3
        assert not own.is_live(3)
        assert own.live_owner(3) == reassigned[3]
        assert 3 in own.dead
        # idempotent
        assert own.mark_dead(3) == {}

    def test_death_order_does_not_matter(self):
        a, b = self._map(seed=7), self._map(seed=7)
        for proc in (2, 9, 13):
            a.mark_dead(proc)
        for proc in (13, 2, 9):
            b.mark_dead(proc)
        assert a.owner_vector() == b.owner_vector()
        assert {a.wire_owner(w) for w in range(50)} == {
            b.wire_owner(w) for w in range(50)
        } and all(a.wire_owner(w) == b.wire_owner(w) for w in range(50))

    def test_everyone_dead_rejected(self):
        own = self._map()
        for proc in range(N_PROCS - 1):
            own.mark_dead(proc)
        with pytest.raises(GridError):
            own.mark_dead(N_PROCS - 1)

    def test_wire_owner_always_live(self):
        own = self._map(seed=4)
        own.mark_dead(0)
        own.mark_dead(7)
        for w in range(100):
            assert own.is_live(own.wire_owner(w))


# ----------------------------------------------------------------------
# liveness control packets
# ----------------------------------------------------------------------
class TestControlPackets:
    def test_control_packets_are_header_only(self):
        for kind in (
            UpdateKind.HEARTBEAT,
            UpdateKind.HEARTBEAT_ACK,
            UpdateKind.DEATH_NOTICE,
        ):
            assert is_control(kind)
            packet = build_control(kind, src=0, dst=1, subject=2, req_id=42)
            assert packet.length_bytes == HEADER_BYTES
            assert packet.region_owner == 2
            assert packet.req_id == 42

    def test_control_packets_reject_payloads(self):
        with pytest.raises(ProtocolError):
            UpdatePacket(
                kind=UpdateKind.HEARTBEAT,
                src=0,
                dst=1,
                bbox=BBox(0, 0, 1, 1),
                values=np.zeros((1, 1)),
                region_owner=0,
            )

    def test_build_control_rejects_data_kinds(self):
        with pytest.raises(ProtocolError):
            build_control(UpdateKind.SEND_LOC_DATA, 0, 1, 2)


# ----------------------------------------------------------------------
# message passing recovery
# ----------------------------------------------------------------------
class TestMessagePassingCrashRecovery:
    def test_single_crash_completes_every_wire(self):
        baseline = crash_run(None)
        result = crash_run(crash_plan(1), check_invariants=True)
        assert len(result.paths) == len(baseline.paths)
        assert result.meta["verification"]["ok"]
        crash = result.meta["faults"]["crash"]
        assert len(crash["confirmed"]) == 1
        assert crash["regions_reassigned"] >= 1

    def test_quarter_of_machine_crashes_and_run_completes(self):
        result = crash_run(crash_plan(4), check_invariants=True)
        assert len(result.paths) == 160
        assert result.meta["verification"]["ok"]
        crash = result.meta["faults"]["crash"]
        assert crash["confirmed"] == sorted(
            proc for proc, _at in crash["planned"]
        )
        assert all(lat < 1.0 for _dead, lat in crash["recovery_latency_s"])
        recovery = result.meta["faults"]["recovery"]
        assert recovery["probes_sent"] > 0
        assert recovery["deaths_confirmed"] >= 4
        assert recovery["death_notices_received"] > 0

    def test_same_seed_identical_run_and_counters(self):
        a = crash_run(crash_plan(2))
        b = crash_run(crash_plan(2))
        assert stable_hash(jsonify(a.summary_dict())) == stable_hash(
            jsonify(b.summary_dict())
        )
        assert a.meta["faults"]["recovery"] == b.meta["faults"]["recovery"]
        assert a.meta["faults"]["crash"] == b.meta["faults"]["crash"]

    def test_crash_without_recovery_rejected(self):
        plan = FaultPlan(
            node_crashes=(NodeCrash(proc=1, at_s=0.2),), recovery=None
        )
        with pytest.raises(SimulationError, match="RecoveryPolicy"):
            crash_run(plan)

    def test_crash_plan_validation(self):
        with pytest.raises(SimulationError, match="unknown processors"):
            crash_run(
                FaultPlan(node_crashes=(NodeCrash(proc=99, at_s=0.2),))
            )

    def test_crash_after_completion_is_harmless(self):
        # A crash scheduled far past the finish time never gets confirmed
        # (nothing is waiting on the dead node) but must not hang the run.
        plan = FaultPlan(
            seed=5,
            node_crashes=(NodeCrash(proc=3, at_s=1e6),),
            recovery=RecoveryPolicy(),
        )
        result = crash_run(plan)
        assert len(result.paths) == 160
        assert result.meta["faults"]["crash"]["confirmed"] == []


class TestCounterReconciliationUnderOverlap:
    def test_crash_overlapping_outage_and_stall_reconciles(self):
        # A crash inside a link-outage window plus a node stall: the
        # network books must still reconcile (attempts - dropped +
        # duplicated == injected, enforced by the flit-conservation
        # checker) with crash-dropped traffic counted separately.
        plan = crash_plan(
            2,
            at_s=0.25,
            drop_prob=0.1,
            duplicate_prob=0.05,
            link_windows=(LinkWindow(link=0, start_s=0.2, end_s=0.45),),
            node_stalls=(NodeStall(proc=1, start_s=0.2, end_s=0.4),),
        )
        result = crash_run(plan, check_invariants=True)
        assert len(result.paths) == 160
        assert result.meta["verification"]["ok"]
        injected = result.meta["faults"]["injected"]
        assert injected["dropped"] > 0
        assert injected["nodes_crashed"] == 2
        # fail-stop suppression is accounted outside the lossy books
        assert injected["crash_dropped_sends"] >= 0
        assert (
            injected["crash_dropped_sends"]
            + injected["crash_dropped_deliveries"]
            > 0
        )

    def test_jitter_comes_from_the_fault_seed_stream(self):
        # Same plan, different worker topology (serial vs forked pool):
        # backoff jitter must come from the per-node seeded stream, not
        # any process-global RNG, so the results agree bit for bit.
        config = SimConfig(
            kind="mp",
            which="bnrE",
            n_wires=160,
            schedule=UpdateSchedule.receiver_initiated(1, 5, blocking=True),
            iterations=2,
            faults=crash_plan(2, seed=23),
        )
        serial = run_sim_configs([config, config], jobs=1)
        forked = run_sim_configs([config, config], jobs=2)
        fingerprints = {
            stable_hash(jsonify(r.summary_dict())) for r in serial + forked
        }
        assert len(fingerprints) == 1


# ----------------------------------------------------------------------
# shared memory mirror
# ----------------------------------------------------------------------
class TestSharedMemoryCrashRecovery:
    def test_crashed_processors_work_is_requeued(self):
        circuit = bnre_like(n_wires=160)
        crashes = random_crashes(N_PROCS, 2, at_s=0.3, seed=11)
        result = run_shared_memory(
            circuit,
            n_procs=N_PROCS,
            iterations=2,
            collect_trace=False,
            check_invariants=True,
            crashes=crashes,
        )
        assert len(result.paths) == 160
        assert result.meta["verification"]["ok"]
        crash = result.meta["crash"]
        assert sorted(
            set(range(N_PROCS)) - {c.proc for c in crashes}
        ) == crash["survivors"]

    def test_same_seed_identical_results(self):
        circuit = bnre_like(n_wires=160)
        crashes = random_crashes(N_PROCS, 2, at_s=0.3, seed=11)
        runs = [
            run_shared_memory(
                circuit,
                n_procs=N_PROCS,
                iterations=2,
                collect_trace=False,
                crashes=crashes,
            )
            for _ in range(2)
        ]
        assert stable_hash(jsonify(runs[0].summary_dict())) == stable_hash(
            jsonify(runs[1].summary_dict())
        )

    def test_static_assignment_cannot_host_crashes(self):
        from repro.assign import RoundRobinAssigner

        circuit = bnre_like(n_wires=160)
        regions = RegionMap(circuit.n_channels, circuit.n_grids, N_PROCS)
        assignment = RoundRobinAssigner(circuit, regions).assign()
        with pytest.raises(SimulationError, match="dynamic distributed loop"):
            run_shared_memory(
                circuit,
                n_procs=N_PROCS,
                assignment=assignment,
                crashes=(NodeCrash(proc=0, at_s=0.1),),
            )


# ----------------------------------------------------------------------
# salvaging process pool
# ----------------------------------------------------------------------
def _identity(x):
    return x


def _always_fails(x):
    raise RuntimeError("injected permanent failure")


def _die_once(path, x):
    """SIGKILL the first pool worker that runs; succeed ever after."""
    if multiprocessing.parent_process() is not None and not os.path.exists(path):
        with open(path, "w") as handle:
            handle.write("died")
        os.kill(os.getpid(), signal.SIGKILL)
    return x * 10


class TestSalvagePool:
    def test_salvage_records_failures_without_raising(self):
        report = pool_map_salvage(_always_fails, [1, 2], jobs=1)
        assert not report.ok
        assert report.results == [None, None]
        assert [f.index for f in report.failures] == [0, 1]
        assert all(f.attempts == 2 for f in report.failures)
        summary = report.to_dict()
        assert summary["failed"] == 2 and summary["salvaged"] == 0

    def test_salvage_keeps_partial_results(self):
        def mixed(x):
            if x == 2:
                raise RuntimeError("boom")
            return x

        report = pool_map_salvage(mixed, [1, 2, 3], jobs=1)
        assert report.results == [1, None, 3]
        assert len(report.failures) == 1
        assert report.failures[0].item == 2

    def test_broken_pool_respawns_and_completes(self, tmp_path):
        fn = functools.partial(_die_once, str(tmp_path / "died-once"))
        report = pool_map_salvage(fn, [1, 2, 3, 4], jobs=2)
        assert report.respawns >= 1
        assert report.results == [10, 20, 30, 40]
        assert report.ok

    def test_pool_map_survives_a_broken_pool(self, tmp_path):
        from repro.harness.pool import pool_map

        fn = functools.partial(_die_once, str(tmp_path / "died-once"))
        assert pool_map(fn, [1, 2, 3], jobs=2) == [10, 20, 30]


# ----------------------------------------------------------------------
# CLI surface
# ----------------------------------------------------------------------
class TestCliCrashFlags:
    def test_quick_crash_smoke_exits_zero(self, capsys):
        from repro.cli import main

        rc = main(
            [
                "mp",
                "--quick",
                "--fault-crash",
                "2",
                "--crash-at",
                "0.3",
                "--fault-seed",
                "11",
                "--check-invariants",
            ]
        )
        out = capsys.readouterr().out
        assert rc == 0
        assert "crashes: 2 planned, 2 confirmed dead" in out
        assert "re-ownership:" in out
        assert "0 violations" in out

    def test_crash_flag_determinism(self, capsys):
        from repro.cli import main

        outputs = []
        for _ in range(2):
            assert (
                main(
                    [
                        "mp",
                        "--quick",
                        "--fault-crash",
                        "2",
                        "--crash-at",
                        "0.3",
                        "--json",
                    ]
                )
                == 0
            )
            outputs.append(capsys.readouterr().out)
        assert outputs[0] == outputs[1]
