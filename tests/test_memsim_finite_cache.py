"""Tests for the finite direct-mapped cache coherence model."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import CoherenceError
from repro.memsim import (
    AddressMap,
    FiniteWriteBackInvalidate,
    ReferenceTrace,
    simulate_trace,
    simulate_trace_finite,
)


def protocol(cache_lines=4, line_size=8, n_procs=2):
    return FiniteWriteBackInvalidate(
        n_procs, AddressMap(2, 16, line_size), cache_lines
    )


def cells(*idx):
    return np.array(idx, dtype=np.int64)


class TestCapacityBehaviour:
    def test_conflict_eviction_and_refetch(self):
        p = protocol(cache_lines=4, line_size=8)
        p.access(0, cells(0), False)  # line 0 -> set 0
        p.access(0, cells(8), False)  # line 4 -> set 0: evicts line 0
        p.access(0, cells(0), False)  # conflict refetch
        assert p.n_evictions == 2
        assert p.stats.refetch_bytes == 8

    def test_disjoint_sets_coexist(self):
        p = protocol(cache_lines=4, line_size=8)
        p.access(0, cells(0, 2, 4, 6), False)  # lines 0..3, one per set
        before = p.stats.total_bytes
        p.access(0, cells(0, 2, 4, 6), False)
        assert p.stats.total_bytes == before
        assert p.n_evictions == 0

    def test_dirty_eviction_writes_back(self):
        p = protocol(cache_lines=4, line_size=8)
        p.access(0, cells(0), True)  # dirty line 0 in set 0
        p.access(0, cells(8), False)  # evicts it
        assert p.stats.writeback_bytes == 8

    def test_bad_cache_size_rejected(self):
        with pytest.raises(CoherenceError):
            protocol(cache_lines=0)


class TestCoherenceBehaviour:
    def test_write_invalidates_other_copies(self):
        p = protocol()
        p.access(0, cells(0), False)
        p.access(1, cells(0), True)
        assert p.stats.n_copies_invalidated == 1
        # proc 0 refetches after invalidation
        p.access(0, cells(0), False)
        assert p.stats.refetch_bytes == 8

    def test_private_rewrite_is_silent(self):
        p = protocol()
        p.access(0, cells(0), True)
        before = p.stats.total_bytes
        p.access(0, cells(0), True)
        assert p.stats.total_bytes == before

    def test_dirty_supply_flushes(self):
        p = protocol()
        p.access(0, cells(0), True)
        p.access(1, cells(0), False)
        assert p.stats.writeback_bytes == 8


class TestConvergenceToInfinite:
    def test_huge_cache_matches_infinite_model(self):
        """With more frames than lines, the finite model's data traffic
        converges to the infinite-cache protocol's."""
        rng = np.random.default_rng(3)
        trace = ReferenceTrace()
        for i in range(300):
            trace.add(
                float(i),
                int(rng.integers(0, 4)),
                bool(rng.integers(0, 2)),
                rng.integers(0, 32, size=rng.integers(1, 6)),
            )
        amap = AddressMap(2, 16, 8)
        finite = simulate_trace_finite(trace, 4, amap, cache_lines=1024)
        infinite = simulate_trace(trace, 4, amap)
        assert finite.cold_fetch_bytes == infinite.cold_fetch_bytes
        assert finite.refetch_bytes == infinite.refetch_bytes
        assert finite.word_write_bytes == infinite.word_write_bytes

    def test_smaller_cache_never_cheaper(self):
        rng = np.random.default_rng(5)
        trace = ReferenceTrace()
        for i in range(200):
            trace.add(
                float(i),
                int(rng.integers(0, 4)),
                bool(rng.integers(0, 2)),
                rng.integers(0, 32, size=rng.integers(1, 8)),
            )
        amap = AddressMap(2, 16, 8)
        small = simulate_trace_finite(trace, 4, amap, cache_lines=2)
        big = simulate_trace_finite(trace, 4, amap, cache_lines=64)
        assert small.total_bytes >= big.total_bytes
