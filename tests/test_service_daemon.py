"""End-to-end tests for the routing service (daemon, HTTP, CLI, viz).

Everything runs with a pool width of 1 (in-process execution) and
quick 24-wire circuits, so the whole module stays fast and
deterministic.  The acceptance scenario from the issue — two identical
submissions plus one distinct one yield exactly two executions and
three persisted job rows — is ``test_dedup_three_submissions_two_executions``.
"""

from __future__ import annotations

import json
import threading

import pytest

from repro.errors import ServiceError
from repro.harness.cache import ResultCache
from repro.harness.simjobs import SimConfig, run_sim_configs
from repro.obs import telemetry as obs
from repro.service import (
    JobSpec,
    Repository,
    RoutingService,
    ServiceClient,
    execute_job,
    job_key,
    serve,
)
from repro.service.jobs import route_payload
from repro.updates import UpdateSchedule
from repro.viz import ascii_job_timeline

ROUTE_PARAMS = {"which": "bnrE", "n_wires": 24, "iterations": 1, "quick": True}


def quick_route_params(**overrides):
    params = dict(ROUTE_PARAMS)
    params.update(overrides)
    return params


def tiny_mp_params():
    return {
        "which": "bnrE",
        "n_wires": 24,
        "iterations": 1,
        "n_procs": 4,
        "send_rmt": 2,
        "send_loc": 10,
    }


def executed_count():
    return obs.snapshot()["counters"].get("service.jobs.executed", 0)


@pytest.fixture
def service(tmp_path):
    svc = RoutingService(
        Repository(tmp_path / "svc.sqlite"),
        cache=ResultCache(tmp_path / "cache"),
        jobs=1,
        paused=True,
    )
    yield svc
    svc.stop()
    svc.repository.close()


class TestDedup:
    def test_dedup_three_submissions_two_executions(self, service):
        """The issue's acceptance scenario, against a paused queue."""
        before = executed_count()
        a = service.submit("route", quick_route_params())
        b = service.submit("route", quick_route_params())  # identical
        c = service.submit("route", quick_route_params(iterations=2))  # distinct
        assert b["dedup_of"] == a["job_id"]
        assert "dedup_of" not in c
        assert a["fingerprint"] == b["fingerprint"] != c["fingerprint"]

        service.start()
        assert service.drain(timeout_s=60)
        assert executed_count() - before == 2
        assert service.repository.counts() == {"done": 3}

        rows = [service.result(r["job_id"]) for r in (a, b, c)]
        for stored, state in rows:
            assert state == "done"
        assert rows[0][0]["payload"] == rows[1][0]["payload"]
        assert rows[0][0]["fingerprint"] != rows[2][0]["fingerprint"]

        # The dedup'd row kept its own audit trail.
        follower = service.status(b["job_id"])
        assert follower["source"] == "dedup"
        assert follower["dedup_of"] == a["job_id"]

    def test_service_result_matches_direct_execution(self, service):
        record = service.submit("route", quick_route_params())
        service.start()
        assert service.drain(timeout_s=60)
        stored, state = service.result(record["job_id"])
        assert state == "done"
        direct = execute_job(JobSpec.from_params("route", quick_route_params()))
        assert stored["payload"] == direct

    def test_repository_hit_skips_execution(self, service):
        first = service.submit("route", quick_route_params())
        service.start()
        assert service.drain(timeout_s=60)
        before = executed_count()
        again = service.submit("route", quick_route_params())
        assert again["status"] == "done"
        assert executed_count() == before
        assert service.status(again["job_id"])["source"] == "repository"
        assert (
            service.result(again["job_id"])[0]["payload"]
            == service.result(first["job_id"])[0]["payload"]
        )

    def test_force_reexecutes_a_stored_fingerprint(self, service):
        service.start()
        service.submit("route", quick_route_params())
        assert service.drain(timeout_s=60)
        before = executed_count()
        forced = service.submit("route", quick_route_params(), force=True)
        assert forced["status"] == "queued"
        assert service.drain(timeout_s=60)
        assert executed_count() - before == 1

    def test_file_cache_read_through(self, service):
        """A warm file cache answers mp jobs without executing and the
        payload is promoted into the repository."""
        config = SimConfig(
            kind="mp",
            which="bnrE",
            n_wires=24,
            schedule=UpdateSchedule(send_rmt_every=2, send_loc_every=10),
            n_procs=4,
            iterations=1,
        )
        run_sim_configs([config], cache=service.cache)  # warm the file cache
        before = executed_count()
        record = service.submit("mp", tiny_mp_params())
        assert record["status"] == "done"
        assert executed_count() == before
        assert service.status(record["job_id"])["source"] == "file-cache"
        stored = service.repository.get_result(record["fingerprint"])
        assert stored["payload"]["kind"] == "mp"

    def test_unknown_kind_rejected(self, service):
        with pytest.raises(ServiceError, match="unknown job kind"):
            service.submit("teleport", {})

    def test_unknown_parameter_rejected(self, service):
        with pytest.raises(ServiceError, match="unknown parameter"):
            service.submit("route", {"wires": 24})

    def test_runtime_failure_becomes_failed_row(self, service):
        # iterations=0 passes submission validation but the router
        # rejects it at execution time.
        record = service.submit("route", quick_route_params(iterations=0))
        service.start()
        assert service.drain(timeout_s=60)
        stored, state = service.result(record["job_id"])
        assert stored is None and state == "failed"
        job = service.status(record["job_id"])
        assert job["status"] == "failed"
        assert "iteration" in job["error"]

    def test_failed_fingerprint_is_not_cached(self, service):
        service.start()
        bad = service.submit("route", quick_route_params(iterations=0))
        assert service.drain(timeout_s=60)
        again = service.submit("route", quick_route_params(iterations=0))
        assert again["status"] == "queued"  # no done-result to dedup against


@pytest.fixture
def server(tmp_path):
    srv = serve(
        port=0,
        db=str(tmp_path / "svc.sqlite"),
        cache_dir=str(tmp_path / "cache"),
        jobs=1,
    )
    thread = threading.Thread(target=srv.serve_forever, daemon=True)
    thread.start()
    yield srv
    srv.shutdown()
    thread.join(timeout=10)
    srv.service.stop()
    srv.service.repository.close()
    srv.server_close()


@pytest.fixture
def client(server):
    return ServiceClient(f"http://127.0.0.1:{server.server_address[1]}")


class TestHTTP:
    def test_health_and_stats(self, client):
        assert client.health() == {"ok": True}
        stats = client.stats()
        assert stats["pool_jobs"] == 1
        assert "queue_depth" in stats and "repository" in stats

    def test_submit_wait_result_round_trip(self, client):
        record = client.submit("route", quick_route_params())
        finished = client.wait(record["job_id"], timeout_s=60)
        assert finished["status"] == "done"
        result = client.result(record["job_id"])
        assert result["status"] == "done"
        direct = execute_job(JobSpec.from_params("route", quick_route_params()))
        assert result["payload"] == direct

    def test_dedup_over_http(self, client):
        a = client.submit("route", quick_route_params(iterations=2))
        b = client.submit("route", quick_route_params(iterations=2))
        if b.get("status") != "done":  # a may already have finished
            assert b.get("dedup_of") == a["job_id"] or b["status"] == "done"
        client.wait(a["job_id"], timeout_s=60)
        client.wait(b["job_id"], timeout_s=60)
        assert (
            client.result(a["job_id"])["payload"]
            == client.result(b["job_id"])["payload"]
        )

    def test_bad_kind_is_a_400(self, client):
        with pytest.raises(ServiceError, match="unknown job kind"):
            client.submit("teleport", {})

    def test_unknown_job_is_a_404(self, client):
        with pytest.raises(ServiceError, match="unknown job"):
            client.status("nope")
        with pytest.raises(ServiceError, match="unknown job"):
            client.result("nope")

    def test_list_jobs_reflects_history(self, client):
        record = client.submit("route", quick_route_params())
        client.wait(record["job_id"], timeout_s=60)
        jobs = client.list_jobs()
        assert any(j["job_id"] == record["job_id"] for j in jobs)
        assert client.list_jobs(status="failed") == []

    def test_unreachable_service_raises(self):
        bad = ServiceClient("http://127.0.0.1:9", timeout_s=0.5)
        with pytest.raises(ServiceError, match="cannot reach"):
            bad.health()


class TestCLI:
    def test_route_json_matches_service_payload(self, capsys):
        # --wires pins the circuit, so the service job's `quick` flag is
        # irrelevant to the payload and the two paths must agree exactly.
        from repro.cli import main

        assert main(
            ["route", "--wires", "24", "--iterations", "1", "--json"]
        ) == 0
        printed = json.loads(capsys.readouterr().out)
        direct = execute_job(JobSpec.from_params("route", quick_route_params()))
        assert printed == direct

    def test_jobs_submit_wait_and_result(self, server, capsys):
        from repro.cli import main

        url = f"http://127.0.0.1:{server.server_address[1]}"
        assert main(
            [
                "jobs", "--url", url, "submit", "route",
                "--wires", "24", "--iterations", "1", "--quick",
                "--wait", "--json",
            ]
        ) == 0
        # --wait prints the finished job's payload itself.
        printed = json.loads(capsys.readouterr().out)
        assert printed["kind"] == "route"
        assert printed == execute_job(JobSpec.from_params("route", quick_route_params()))

    def test_jobs_list_and_stats(self, server, client, capsys):
        from repro.cli import main

        record = client.submit("route", quick_route_params())
        client.wait(record["job_id"], timeout_s=60)
        url = f"http://127.0.0.1:{server.server_address[1]}"
        assert main(["jobs", "--url", url, "list"]) == 0
        out = capsys.readouterr().out
        assert record["job_id"] in out
        assert main(["jobs", "--url", url, "stats"]) == 0
        assert "queue_depth" in capsys.readouterr().out

    def test_jobs_list_timeline(self, server, client, capsys):
        from repro.cli import main

        record = client.submit("route", quick_route_params())
        client.wait(record["job_id"], timeout_s=60)
        url = f"http://127.0.0.1:{server.server_address[1]}"
        assert main(["jobs", "--url", url, "list", "--timeline"]) == 0
        assert record["job_id"] in capsys.readouterr().out


class TestServiceReport:
    def test_report_renders_repository(self, service, tmp_path):
        from repro.harness.report import main as report_main

        record = service.submit("route", quick_route_params())
        service.start()
        assert service.drain(timeout_s=60)
        out = tmp_path / "report.md"
        assert report_main(
            ["--service", service.repository.path, str(out)]
        ) == 0
        text = out.read_text()
        assert record["job_id"] in text
        assert "## Job counts" in text
        assert "## Stored results" in text


class TestTimelineViz:
    def test_empty_history(self):
        assert ascii_job_timeline([]) == "(no jobs)"

    def test_bars_scale_with_wall_time(self):
        jobs = [
            {
                "job_id": "slow", "kind": "route", "status": "done",
                "started_unix": 100.0, "finished_unix": 102.0,
            },
            {
                "job_id": "fast", "kind": "route", "status": "done",
                "started_unix": 100.0, "finished_unix": 101.0,
            },
            {
                "job_id": "dup", "kind": "route", "status": "done",
                "source": "dedup", "dedup_of": "slow",
                "started_unix": 100.0, "finished_unix": 102.0,
            },
            {"job_id": "wait", "kind": "mp", "status": "queued"},
            {
                "job_id": "hit", "kind": "mp", "status": "done",
                "source": "repository",
            },
        ]
        text = ascii_job_timeline(jobs, max_width=20)
        lines = text.splitlines()
        assert len(lines) == 5
        slow_bar = lines[0].split("|")[1]
        fast_bar = lines[1].split("|")[1]
        assert len(slow_bar) == 2 * len(fast_bar)
        assert "(dedup)" in lines[2]
        assert "." in lines[3]  # queued glyph
        assert "via repository" in lines[4]
