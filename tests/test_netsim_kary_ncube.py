"""Tests for the general k-ary n-cube topology and link utilization."""

from __future__ import annotations

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.errors import NetworkError
from repro.events import Simulator
from repro.netsim import KaryNCubeTopology, MeshTopology, Message, WormholeNetwork


class TestCoordinates:
    def test_round_trip(self):
        topo = KaryNCubeTopology((3, 4, 2))
        for node in range(topo.n_procs):
            assert topo.node_at(topo.coords(node)) == node

    def test_node_count(self):
        assert KaryNCubeTopology((3, 4, 2)).n_procs == 24
        assert KaryNCubeTopology((2, 2, 2, 2)).n_procs == 16

    def test_bad_dims(self):
        with pytest.raises(NetworkError):
            KaryNCubeTopology(())
        with pytest.raises(NetworkError):
            KaryNCubeTopology((4, 0))

    def test_coordinate_count_enforced(self):
        topo = KaryNCubeTopology((2, 2))
        with pytest.raises(NetworkError):
            topo.node_at((1,))


class TestHypercube:
    """A binary n-cube is the k=2 special case the paper names."""

    def test_distance_is_positional_mismatch(self):
        cube = KaryNCubeTopology((2, 2, 2, 2))
        # on a 2-ring every hop is 1 in whichever direction
        assert cube.hop_distance(0, 15) == 4
        assert cube.hop_distance(0, 1) == 1
        assert cube.hop_distance(1, 0) == 1

    def test_route_length_matches_distance(self):
        cube = KaryNCubeTopology((2, 2, 2))
        for src in range(8):
            for dst in range(8):
                assert len(cube.route(src, dst)) == cube.hop_distance(src, dst)


class TestMeshEquivalence:
    def test_matches_mesh_topology_routing(self):
        """The (4, 4) cube is exactly the paper's 4x4 mesh."""
        cube = KaryNCubeTopology((4, 4))
        mesh = MeshTopology(16)
        for src in range(16):
            for dst in range(16):
                assert cube.hop_distance(src, dst) == mesh.hop_distance(src, dst)

    @given(st.integers(0, 15), st.integers(0, 15))
    def test_routes_traverse_valid_links(self, src, dst):
        cube = KaryNCubeTopology((4, 4))
        links = cube.route(src, dst)
        assert all(0 <= l < cube.n_links for l in links)
        assert len(set([])) == 0  # placeholder for uniqueness check below
        # dimension-order routes never revisit a link
        assert len(links) == len(set(links))


class TestWormholeOnCube:
    def test_network_runs_on_hypercube(self):
        sim = Simulator()
        received = []
        net = WormholeNetwork(sim, KaryNCubeTopology((2, 2, 2, 2)), received.append)
        net.send(Message(0, 15, 64, None))
        net.send(Message(3, 12, 64, None))
        sim.run()
        assert len(received) == 2
        assert received[0].hops == 4

    def test_degenerate_dimension_skipped(self):
        topo = KaryNCubeTopology((1, 4))
        assert topo.hop_distance(0, 3) == 3
        assert len(topo.route(0, 3)) == 3


class TestLinkUtilization:
    def test_busy_fraction_bounded(self):
        sim = Simulator()
        net = WormholeNetwork(sim, MeshTopology(4), lambda d: None)
        net.send(Message(0, 1, 100, None))
        end = sim.run()
        util = net.link_utilization(end)
        assert util.shape == (8,)
        assert 0.0 <= util.max() <= 1.0
        assert util.sum() > 0

    def test_requires_positive_elapsed(self):
        sim = Simulator()
        net = WormholeNetwork(sim, MeshTopology(4), lambda d: None)
        with pytest.raises(NetworkError):
            net.link_utilization(0.0)

    def test_hot_link_shows_up(self):
        sim = Simulator()
        net = WormholeNetwork(sim, MeshTopology(4), lambda d: None)
        for _ in range(10):
            net.send(Message(0, 1, 200, None))
        end = sim.run()
        util = net.link_utilization(end)
        hot = net.topology.link_id(0, MeshTopology.X_DIM)
        assert util[hot] == util.max()
        assert util[hot] > 0.5
