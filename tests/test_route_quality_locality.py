"""Tests for the quality metrics and the locality measure."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import AssignmentError
from repro.grid import CostArray, RegionMap
from repro.route import (
    QualityReport,
    RoutePath,
    circuit_height,
    locality_measure,
    track_profile,
)


class TestCircuitHeight:
    def test_empty_array_zero_height(self):
        assert circuit_height(CostArray(4, 20)) == 0

    def test_height_sums_channel_maxima(self):
        cost = CostArray(3, 10)
        cost.data[0, 3] = 4
        cost.data[2, 7] = 2
        assert circuit_height(cost) == 6
        assert list(track_profile(cost)) == [4, 0, 2]

    def test_height_uses_max_not_sum(self):
        cost = CostArray(1, 10)
        cost.data[0, :] = 1
        assert circuit_height(cost) == 1


class TestQualityReport:
    def test_as_dict_and_str(self):
        report = QualityReport(10, 200, 50)
        data = report.as_dict()
        assert data["circuit_height"] == 10
        assert "height=10" in str(report)


def _path(cells, n_grids):
    return RoutePath.from_cells(np.array(cells, dtype=np.int64), n_grids)


class TestLocalityMeasure:
    def test_perfect_locality(self):
        regions = RegionMap(4, 40, 4)  # 2x2 mesh
        box = regions.region(0)
        cells = [box.c_lo * 40 + box.x_lo, box.c_lo * 40 + box.x_lo + 1]
        report = locality_measure(regions, {0: _path(cells, 40)}, [0])
        assert report.mean_hops == 0.0
        assert report.owned_fraction == 1.0

    def test_remote_routing_counts_hops(self):
        regions = RegionMap(4, 40, 4)
        # processor 0 routes cells owned by processor 3 (diagonal: 2 hops)
        box = regions.region(3)
        cells = [box.c_lo * 40 + box.x_lo]
        report = locality_measure(regions, {0: _path(cells, 40)}, [0])
        assert report.mean_hops == 2.0
        assert report.owned_fraction == 0.0

    def test_cell_weighting(self):
        regions = RegionMap(4, 40, 4)
        own = regions.region(0)
        remote = regions.region(1)  # one hop away
        cells = [own.c_lo * 40 + own.x_lo] * 1 + [
            remote.c_lo * 40 + remote.x_lo,
            remote.c_lo * 40 + remote.x_lo + 1,
            remote.c_lo * 40 + remote.x_lo + 2,
        ]
        report = locality_measure(regions, {0: _path(cells, 40)}, [0])
        assert report.mean_hops == pytest.approx(3 / 4)

    def test_per_proc_breakdown(self):
        regions = RegionMap(4, 40, 4)
        p0 = _path([regions.region(0).c_lo * 40 + regions.region(0).x_lo], 40)
        p1 = _path([regions.region(0).c_lo * 40 + regions.region(0).x_lo], 40)
        report = locality_measure(regions, {0: p0, 1: p1}, [0, 1])
        assert report.per_proc_hops[0] == 0.0
        assert report.per_proc_hops[1] > 0.0

    def test_empty_paths_rejected(self):
        regions = RegionMap(4, 40, 4)
        with pytest.raises(AssignmentError):
            locality_measure(regions, {}, [])
