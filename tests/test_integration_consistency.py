"""Cross-paradigm integration invariants.

These tests run the same circuit through every execution engine —
sequential, shared memory, message passing (static and dynamic) — and
assert the relationships that must hold between them regardless of
calibration constants.
"""

from __future__ import annotations

import pytest

from repro.circuits import tiny_test_circuit
from repro.grid import CostArray
from repro.parallel import (
    run_dynamic_assignment,
    run_message_passing,
    run_shared_memory,
)
from repro.route import SequentialRouter
from repro.updates import UpdateSchedule


@pytest.fixture(scope="module")
def circuit():
    return tiny_test_circuit(n_wires=40)


@pytest.fixture(scope="module")
def all_runs(circuit):
    return {
        "sequential": SequentialRouter(circuit, iterations=2).run(),
        "shared": run_shared_memory(circuit, n_procs=4, iterations=2),
        "mp_sender": run_message_passing(
            circuit, UpdateSchedule.sender_initiated(2, 2), n_procs=4, iterations=2
        ),
        "mp_receiver": run_message_passing(
            circuit, UpdateSchedule.receiver_initiated(1, 3), n_procs=4, iterations=2
        ),
        "dynamic": run_dynamic_assignment(circuit, n_procs=4),
    }


class TestSolutionValidity:
    def test_every_engine_routes_every_wire(self, all_runs, circuit):
        for name, result in all_runs.items():
            assert set(result.paths) == set(range(circuit.n_wires)), name

    def test_wire_footprints_connect_pins(self, all_runs, circuit):
        """Every routed path covers all of its wire's pins."""
        for name, result in all_runs.items():
            for w, path in result.paths.items():
                cells = set(path.flat_cells.tolist())
                for pin in circuit.wire(w).pins:
                    assert pin.channel * circuit.n_grids + pin.x in cells, (
                        f"{name}: wire {w} misses pin {pin}"
                    )

    def test_heights_in_a_sane_band(self, all_runs):
        heights = {n: r.quality.circuit_height for n, r in all_runs.items()}
        best = min(heights.values())
        assert all(h <= 2 * best for h in heights.values()), heights


class TestQualityOrdering:
    def test_sequential_is_a_strong_baseline(self, all_runs):
        """No parallel engine beats the sequential baseline by much (the
        sequential router sees perfectly fresh data; parallel runs can only
        tie through luck)."""
        seq = all_runs["sequential"].quality.circuit_height
        for name in ("shared", "mp_sender", "mp_receiver"):
            assert all_runs[name].quality.circuit_height >= seq - 2, name


class TestTrafficOrdering:
    def test_shared_memory_traffic_dominates(self, all_runs):
        sm = all_runs["shared"].mbytes_transferred
        assert sm > all_runs["mp_sender"].mbytes_transferred
        assert sm > all_runs["mp_receiver"].mbytes_transferred


class TestCostArrayConsistency:
    @pytest.mark.parametrize("name", ["shared", "mp_sender", "mp_receiver", "dynamic"])
    def test_truth_equals_path_union(self, all_runs, circuit, name):
        result = all_runs[name]
        reference = CostArray(circuit.n_channels, circuit.n_grids)
        for path in result.paths.values():
            reference.apply_path(path.flat_cells)
        assert reference == result.truth
