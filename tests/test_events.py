"""Tests for the discrete-event kernel."""

from __future__ import annotations

import pytest

from repro.errors import SimulationError
from repro.events import EventQueue, Simulator


class TestEventQueue:
    def test_pops_in_time_order(self):
        q = EventQueue()
        fired = []
        q.push(2.0, lambda: fired.append("b"))
        q.push(1.0, lambda: fired.append("a"))
        while (e := q.pop()) is not None:
            e.action()
        assert fired == ["a", "b"]

    def test_ties_break_by_schedule_order(self):
        q = EventQueue()
        fired = []
        q.push(1.0, lambda: fired.append("first"))
        q.push(1.0, lambda: fired.append("second"))
        while (e := q.pop()) is not None:
            e.action()
        assert fired == ["first", "second"]

    def test_cancel_skips_event(self):
        q = EventQueue()
        fired = []
        handle = q.push(1.0, lambda: fired.append("x"))
        q.push(2.0, lambda: fired.append("y"))
        q.cancel(handle)
        while (e := q.pop()) is not None:
            e.action()
        assert fired == ["y"]

    def test_len_accounts_for_cancelled(self):
        q = EventQueue()
        handle = q.push(1.0, lambda: None)
        q.push(2.0, lambda: None)
        q.cancel(handle)
        assert len(q) == 1

    def test_peek_time_skips_cancelled(self):
        q = EventQueue()
        handle = q.push(1.0, lambda: None)
        q.push(2.0, lambda: None)
        q.cancel(handle)
        assert q.peek_time() == 2.0

    def test_scheduling_in_the_past_rejected(self):
        q = EventQueue()
        q.push(5.0, lambda: None)
        q.pop()
        with pytest.raises(SimulationError):
            q.push(4.0, lambda: None)


class TestSimulator:
    def test_clock_advances_with_events(self):
        sim = Simulator()
        times = []
        sim.at(1.5, lambda: times.append(sim.now))
        sim.at(3.0, lambda: times.append(sim.now))
        final = sim.run()
        assert times == [1.5, 3.0]
        assert final == 3.0

    def test_after_schedules_relative(self):
        sim = Simulator()
        seen = []

        def first():
            sim.after(2.0, lambda: seen.append(sim.now))

        sim.at(1.0, first)
        sim.run()
        assert seen == [3.0]

    def test_negative_delay_rejected(self):
        sim = Simulator()
        with pytest.raises(SimulationError):
            sim.after(-1.0, lambda: None)

    def test_events_can_spawn_events(self):
        sim = Simulator()
        count = [0]

        def tick():
            count[0] += 1
            if count[0] < 5:
                sim.after(1.0, tick)

        sim.at(0.0, tick)
        sim.run()
        assert count[0] == 5
        assert sim.steps == 5

    def test_until_bound_stops_clock(self):
        sim = Simulator()
        fired = []
        sim.at(1.0, lambda: fired.append(1))
        sim.at(10.0, lambda: fired.append(10))
        sim.run(until=5.0)
        assert fired == [1]
        assert sim.now == 5.0

    def test_runaway_guard(self):
        sim = Simulator()

        def forever():
            sim.after(1.0, forever)

        sim.at(0.0, forever)
        with pytest.raises(SimulationError):
            sim.run(max_steps=100)

    def test_cancel_via_simulator(self):
        sim = Simulator()
        fired = []
        handle = sim.at(1.0, lambda: fired.append(1))
        sim.cancel(handle)
        sim.run()
        assert fired == []


class TestCancelEdgeCases:
    def test_cancel_after_fire_is_noop(self):
        q = EventQueue()
        e = q.push(1.0, lambda: None)
        q.push(2.0, lambda: None)
        q.pop()
        q.cancel(e)  # already fired: must not corrupt the live count
        assert len(q) == 1
        assert q.pop() is not None
        assert len(q) == 0

    def test_double_cancel_counted_once(self):
        q = EventQueue()
        e = q.push(1.0, lambda: None)
        q.cancel(e)
        q.cancel(e)
        assert len(q) == 0
        assert q.pop() is None
