"""Tests for lazy-cancellation compaction in the event queue.

Compaction is purely an internal storage optimisation; the observable
contract is that pop order and results are unchanged (events are totally
ordered by unique ``(time, seq)`` keys, so any heap over the same live
set pops the same sequence).
"""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.events.queue import EventQueue


class LazyOnlyQueue(EventQueue):
    """Pre-compaction behaviour for differential comparison."""

    COMPACT_MIN = 1 << 60


def drain_times(queue):
    times = []
    while True:
        event = queue.pop()
        if event is None:
            return times
        times.append((event.time, event.seq))


class TestCompactionTrigger:
    def test_small_heaps_never_compact(self):
        q = EventQueue()
        events = [q.push(float(i), lambda: None) for i in range(EventQueue.COMPACT_MIN - 1)]
        for event in events:
            q.cancel(event)
        assert q.n_compactions == 0

    def test_majority_dead_triggers_compaction(self):
        q = EventQueue()
        doomed = [q.push(float(i), lambda: None) for i in range(100)]
        q.push(1000.0, lambda: None)
        for event in doomed:
            q.cancel(event)
        assert q.n_compactions >= 1
        # The physical heap shed the dead majority (later cancels may
        # re-accumulate below the next trigger point).
        assert len(q._heap) < 100
        assert len(q) == 1

    def test_len_tracks_live_events_through_compaction(self):
        q = EventQueue()
        events = [q.push(float(i), lambda: None) for i in range(200)]
        for event in events[::2]:
            q.cancel(event)
        assert len(q) == 100

    def test_cancel_after_fire_is_noop(self):
        q = EventQueue()
        event = q.push(1.0, lambda: None)
        assert q.pop() is event
        q.cancel(event)
        q.cancel(event)
        assert q._n_cancelled_in_heap == 0

    def test_peek_compacts_dead_prefix(self):
        # Regression: peek_time used to drain cancelled heads one heappop
        # at a time without ever consulting the compaction heuristic.  Set
        # up a dead prefix too small for cancel() to compact (dead entries
        # are not the majority) but well past COMPACT_MIN, then assert a
        # single peek sheds all of them through _compact().
        q = EventQueue()
        doomed = [q.push(float(i), lambda: None) for i in range(100)]
        survivors = [q.push(1000.0 + i, lambda: None) for i in range(300)]
        for event in doomed:
            q.cancel(event)
        assert q.n_compactions == 0  # cancel: 100 dead of 400 is no majority
        assert q.peek_time() == 1000.0
        assert q.n_compactions == 1
        assert q._n_cancelled_in_heap == 0
        assert len(q._heap) == len(survivors)

    def test_peek_drains_small_dead_prefix_without_compacting(self):
        q = EventQueue()
        doomed = [q.push(float(i), lambda: None) for i in range(EventQueue.COMPACT_MIN - 1)]
        q.push(500.0, lambda: None)
        for event in doomed:
            q.cancel(event)
        assert q.peek_time() == 500.0
        assert q.n_compactions == 0
        assert q._n_cancelled_in_heap == 0

    def test_compaction_preserves_pending_pop_order(self):
        q, lazy = EventQueue(), LazyOnlyQueue()
        handles_q, handles_l = [], []
        for i in range(300):
            t = float((i * 37) % 50)
            handles_q.append(q.push(t, lambda: None))
            handles_l.append(lazy.push(t, lambda: None))
        for hq, hl in zip(handles_q[:220], handles_l[:220]):
            q.cancel(hq)
            lazy.cancel(hl)
        assert q.n_compactions >= 1 and lazy.n_compactions == 0
        assert drain_times(q) == drain_times(lazy)


class TestCompactionEquivalence:
    @settings(max_examples=100, deadline=None)
    @given(
        st.lists(
            st.tuples(
                st.floats(min_value=0.0, max_value=100.0, allow_nan=False),
                st.booleans(),
            ),
            min_size=0,
            max_size=300,
        )
    )
    def test_pop_sequence_identical_with_and_without_compaction(self, ops):
        q, lazy = EventQueue(), LazyOnlyQueue()
        for time, doomed in ops:
            eq = q.push(time, lambda: None)
            el = lazy.push(time, lambda: None)
            if doomed:
                q.cancel(eq)
                lazy.cancel(el)
        assert drain_times(q) == drain_times(lazy)

    @settings(max_examples=50, deadline=None)
    @given(st.integers(min_value=0, max_value=400))
    def test_interleaved_pops_and_cancels(self, n):
        q, lazy = EventQueue(), LazyOnlyQueue()
        state = 12345
        live_q, live_l = [], []
        popped_q, popped_l = [], []
        for i in range(n):
            state = (state * 1103515245 + 12345) & (2**31 - 1)
            t = q._last_popped + (state % 1000) / 10.0
            live_q.append(q.push(t, lambda: None))
            live_l.append(lazy.push(t, lambda: None))
            if state % 3 == 0 and live_q:
                k = state % len(live_q)
                q.cancel(live_q.pop(k))
                lazy.cancel(live_l.pop(k))
            if state % 7 == 0:
                eq, el = q.pop(), lazy.pop()
                popped_q.append(None if eq is None else (eq.time, eq.seq))
                popped_l.append(None if el is None else (el.time, el.seq))
        assert popped_q == popped_l
        assert drain_times(q) == drain_times(lazy)
