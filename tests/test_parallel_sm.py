"""Integration tests for the shared memory LocusRoute simulation."""

from __future__ import annotations

import pytest

from repro.assign import RoundRobinAssigner, ThresholdCostAssigner
from repro.circuits import tiny_test_circuit
from repro.errors import SimulationError
from repro.grid import CostArray, RegionMap
from repro.parallel import run_shared_memory
from repro.route import SequentialRouter


@pytest.fixture(scope="module")
def circuit():
    return tiny_test_circuit(n_wires=30)


class TestCompleteness:
    def test_every_wire_routed(self, circuit):
        result = run_shared_memory(circuit, n_procs=4, iterations=2)
        assert set(result.paths) == set(range(circuit.n_wires))

    def test_truth_is_sum_of_paths(self, circuit):
        result = run_shared_memory(circuit, n_procs=4, iterations=2)
        reference = CostArray(circuit.n_channels, circuit.n_grids)
        for path in result.paths.values():
            reference.apply_path(path.flat_cells)
        assert reference == result.truth

    def test_wires_routed_counts(self, circuit):
        result = run_shared_memory(circuit, n_procs=4, iterations=3)
        assert sum(s.wires_routed for s in result.node_summaries) == 3 * circuit.n_wires

    def test_deterministic(self, circuit):
        a = run_shared_memory(circuit, n_procs=4, iterations=2)
        b = run_shared_memory(circuit, n_procs=4, iterations=2)
        assert a.quality == b.quality
        assert a.coherence.total_bytes == b.coherence.total_bytes
        assert a.exec_time_s == b.exec_time_s


class TestSingleProcessorEquivalence:
    def test_one_proc_matches_sequential_router(self, circuit):
        """With one processor and the dynamic loop the SM simulation is
        exactly the sequential algorithm (same wire order, no staleness)."""
        sm = run_shared_memory(circuit, n_procs=1, iterations=3, collect_trace=False)
        seq = SequentialRouter(circuit, iterations=3).run()
        assert sm.quality.circuit_height == seq.quality.circuit_height
        assert sm.quality.occupancy_factor == seq.quality.occupancy_factor
        assert all(sm.paths[w] == seq.paths[w] for w in seq.paths)


class TestStaleness:
    def test_more_processors_do_not_improve_final_congestion(self):
        """Staleness can only add wire overlap in the final solution.

        (The paper's *occupancy factor* is priced at commit time, which
        under-counts concurrently in-flight wires, so on small circuits it
        can move either way; the pairwise overlap of the final cost array
        is the bias-free congestion measure.)
        """
        import numpy as np

        dense = tiny_test_circuit(n_wires=90)

        def overlap(n_procs):
            r = run_shared_memory(dense, n_procs=n_procs, iterations=3, collect_trace=False)
            occ = r.truth.data.astype(np.int64)
            return int((occ * (occ - 1) // 2).sum())

        assert overlap(8) >= overlap(1)

    def test_parallel_run_is_faster(self, circuit):
        one = run_shared_memory(circuit, n_procs=1, iterations=2, collect_trace=False)
        four = run_shared_memory(circuit, n_procs=4, iterations=2, collect_trace=False)
        assert four.exec_time_s < one.exec_time_s


class TestCoherenceIntegration:
    def test_line_size_sweep_in_meta(self, circuit):
        result = run_shared_memory(
            circuit, n_procs=4, iterations=2, line_size=8, extra_line_sizes=(4, 16)
        )
        by_line = result.meta["coherence_by_line_size"]
        assert set(by_line) == {4, 8, 16}
        assert result.coherence.line_size == 8
        assert result.mbytes_transferred == by_line[8]["mbytes"]

    def test_collect_trace_false_skips_coherence(self, circuit):
        result = run_shared_memory(circuit, n_procs=4, iterations=2, collect_trace=False)
        assert result.coherence is None
        assert result.mbytes_transferred == 0.0

    def test_trace_counts_reported(self, circuit):
        result = run_shared_memory(circuit, n_procs=4, iterations=2)
        assert result.meta["trace_records"] > 0
        assert result.meta["trace_references"] > result.meta["trace_records"]

    def test_more_chunks_more_references(self, circuit):
        small = run_shared_memory(circuit, n_procs=4, iterations=2, trace_chunks=2)
        big = run_shared_memory(circuit, n_procs=4, iterations=2, trace_chunks=6)
        assert big.meta["trace_references"] > small.meta["trace_references"]


class TestStaticAssignment:
    def test_static_assignment_routes_everything(self, circuit):
        regions = RegionMap(circuit.n_channels, circuit.n_grids, 4)
        asg = RoundRobinAssigner(circuit, regions).assign()
        result = run_shared_memory(circuit, n_procs=4, iterations=3, assignment=asg)
        assert sum(s.wires_routed for s in result.node_summaries) == 3 * circuit.n_wires
        assert result.meta["assignment"] == "round robin"

    def test_static_wire_router_matches_assignment(self, circuit):
        regions = RegionMap(circuit.n_channels, circuit.n_grids, 4)
        asg = ThresholdCostAssigner(circuit, regions, 30).assign()
        result = run_shared_memory(circuit, n_procs=4, iterations=2, assignment=asg)
        assert list(result.wire_router) == list(asg.owner)

    def test_assignment_mismatch_rejected(self, circuit):
        regions = RegionMap(circuit.n_channels, circuit.n_grids, 8)
        wrong = RoundRobinAssigner(circuit, regions).assign()
        with pytest.raises(SimulationError):
            run_shared_memory(circuit, n_procs=4, assignment=wrong)


class TestTimeScale:
    def test_sm_time_uses_multimax_slowdown(self, circuit):
        """SM times are in Multimax seconds: ~5x the same work on the
        simulated Ametek nodes (paper §2.1 footnote)."""
        from repro.parallel import run_message_passing
        from repro.updates import UpdateSchedule

        # One processor on each side removes load-imbalance noise: the
        # ratio is then the pure processor-speed factor (plus the SM
        # loop-grab overhead).
        sm = run_shared_memory(circuit, n_procs=1, iterations=2, collect_trace=False)
        mp = run_message_passing(circuit, UpdateSchedule(), n_procs=1, iterations=2)
        ratio = sm.exec_time_s / mp.exec_time_s
        assert 4.5 < ratio < 6.0
