"""Unit tests for the invariant checkers and violation records."""

from __future__ import annotations

import numpy as np
import pytest

from repro.circuits import bnre_like
from repro.grid.cost_array import CostArray
from repro.memsim.addressing import AddressMap
from repro.memsim.coherence import WriteBackInvalidate, simulate_trace
from repro.memsim.trace import ReferenceTrace, TraceRecord
from repro.parallel import run_message_passing, run_shared_memory
from repro.route.path import RoutePath
from repro.updates import UpdateSchedule
from repro.verify import (
    CoherenceInvariantChecker,
    CostConservationMonitor,
    InvariantViolation,
    VerificationReport,
    check_truth_is_path_union,
    first_differing_cell,
)


def make_path(cells, n_grids=40):
    flat = np.array(sorted(cells), dtype=np.int64)
    return RoutePath(flat_cells=flat, n_grids=n_grids)


# ----------------------------------------------------------------------
# report mechanics
# ----------------------------------------------------------------------
class TestVerificationReport:
    def test_check_counts_and_records(self):
        report = VerificationReport()
        assert report.check("inv", True, "fine")
        assert not report.check("inv", False, "broken", wire=3)
        assert report.total_checks == 2
        assert report.total_violations == 1
        assert not report.ok
        assert report.violations[0].wire == 3

    def test_merge_folds_everything(self):
        a, b = VerificationReport(), VerificationReport()
        a.check("x", True, "")
        b.check("x", False, "bad")
        b.check("y", True, "")
        a.merge(b)
        assert a.checks_run == {"x": 2, "y": 1}
        assert a.total_violations == 1

    def test_violation_cap_suppresses_flood(self):
        from repro.verify.violations import MAX_VIOLATIONS_PER_INVARIANT

        report = VerificationReport()
        for i in range(MAX_VIOLATIONS_PER_INVARIANT + 10):
            report.check("flood", False, f"v{i}")
        assert len(report.violations) == MAX_VIOLATIONS_PER_INVARIANT
        assert report.suppressed == {"flood": 10}
        assert report.total_violations == MAX_VIOLATIONS_PER_INVARIANT + 10
        assert "suppressed" in report.render()

    def test_as_dict_round_trips_through_json(self):
        import json

        report = VerificationReport()
        report.check("inv", False, "broken", cell=(1, 2), event_time_s=0.5)
        payload = json.loads(json.dumps(report.as_dict()))
        assert payload["ok"] is False
        assert payload["violations"][0]["cell"] == [1, 2]

    def test_violation_describe_includes_context(self):
        v = InvariantViolation(
            invariant="cost-conservation",
            message="m",
            cell=(3, 7),
            wire=12,
            event_time_s=1.25,
        )
        text = v.describe()
        assert "cost-conservation" in text
        assert "c=3" in text and "x=7" in text
        assert "wire=12" in text


# ----------------------------------------------------------------------
# array diff helpers
# ----------------------------------------------------------------------
class TestFirstDifferingCell:
    def test_no_difference(self):
        a = np.arange(12).reshape(3, 4)
        assert first_differing_cell(a, a.copy()) is None

    def test_reports_row_major_first(self):
        a = np.zeros((3, 4), dtype=np.int64)
        b = a.copy()
        b[2, 1] = 5
        b[1, 3] = 2
        assert first_differing_cell(a, b) == (1, 3, 0, 2)


class TestTruthPathUnion:
    def test_exact_union_passes(self):
        truth = CostArray(4, 40)
        paths = {0: make_path([1, 2, 3]), 1: make_path([2, 45])}
        for p in paths.values():
            truth.apply_path(p.flat_cells)
        report = VerificationReport()
        assert check_truth_is_path_union(report, truth, paths)
        assert report.ok

    def test_divergence_names_cell_wire_and_time(self):
        truth = CostArray(4, 40)
        paths = {7: make_path([41, 42, 43])}
        truth.apply_path(paths[7].flat_cells)
        truth.data[1, 2] += 1  # flat 42: phantom extra occupancy
        report = VerificationReport()
        assert not check_truth_is_path_union(
            report, truth, paths, commit_times={7: 1.5}
        )
        v = report.violations[0]
        assert v.cell == (1, 2)
        assert v.wire == 7
        assert v.event_time_s == 1.5
        assert v.actual == 2 and v.expected == 1


class TestCostConservationMonitor:
    def test_clean_commit_stream(self):
        truth = CostArray(4, 40)
        report = VerificationReport()
        monitor = CostConservationMonitor(report, truth, engine="test")
        p = make_path([5, 6, 7])
        truth.apply_path(p.flat_cells)
        monitor.on_commit(0, p, 0.1)
        monitor.at_quiescence(0.2, "barrier 1")
        truth.remove_path(p.flat_cells)
        monitor.on_ripup(0, p, 0.3)
        q = make_path([8, 9])
        truth.apply_path(q.flat_cells)
        monitor.on_commit(0, q, 0.4)
        monitor.at_end({0: q}, 0.5)
        assert report.ok
        assert monitor.commit_times[0] == 0.4

    def test_lost_update_detected_at_commit(self):
        truth = CostArray(4, 40)
        report = VerificationReport()
        monitor = CostConservationMonitor(report, truth, engine="test")
        p = make_path([5, 6, 7])
        # Commit recorded but the array never updated: a lost write.
        monitor.on_commit(0, p, 0.1)
        assert not report.ok
        v = report.violations[0]
        assert v.expected == 3 and v.actual == 0
        assert v.event_time_s == 0.1


# ----------------------------------------------------------------------
# MSI coherence legality
# ----------------------------------------------------------------------
class TestCoherenceChecker:
    def make_trace(self):
        return ReferenceTrace(
            records=[
                TraceRecord(0.0, 0, False, np.array([0, 1, 2], dtype=np.int64)),
                TraceRecord(0.1, 1, True, np.array([1], dtype=np.int64)),
                TraceRecord(0.2, 0, False, np.array([1], dtype=np.int64)),
                TraceRecord(0.3, 1, True, np.array([1, 5], dtype=np.int64)),
            ]
        )

    def test_legal_trace_passes(self):
        amap = AddressMap(4, 40, 8)
        report = VerificationReport()
        checker = CoherenceInvariantChecker(report)
        simulate_trace(self.make_trace(), 2, amap, checker=checker)
        assert report.ok
        assert report.checks_run["msi-legality"] > 0

    def test_checker_does_not_change_traffic(self):
        amap = AddressMap(4, 40, 8)
        plain = simulate_trace(self.make_trace(), 2, amap)
        checked = simulate_trace(
            self.make_trace(), 2, amap, checker=CoherenceInvariantChecker(VerificationReport())
        )
        assert plain.as_dict() == checked.as_dict()

    def test_two_modified_holders_detected(self):
        amap = AddressMap(4, 40, 8)
        protocol = WriteBackInvalidate(2, amap)
        report = VerificationReport()
        checker = CoherenceInvariantChecker(report)
        record = TraceRecord(0.5, 0, True, np.array([0], dtype=np.int64))
        checker.pre(protocol, record)
        protocol.access(0, record.flat_cells, True)
        # Corrupt the state machine behind the checker's back: cache 1
        # also claims the line while 0 holds it modified.
        protocol._sharers[0] |= 0b10
        protocol._ever_held[0] |= 0b10
        checker.post(protocol, record)
        assert not report.ok
        assert any("not exclusive" in v.message or "illegal" in v.message
                   for v in report.violations)

    def test_phantom_sharer_detected(self):
        amap = AddressMap(4, 40, 8)
        protocol = WriteBackInvalidate(3, amap)
        report = VerificationReport()
        checker = CoherenceInvariantChecker(report)
        record = TraceRecord(0.5, 0, False, np.array([0], dtype=np.int64))
        checker.pre(protocol, record)
        protocol.access(0, record.flat_cells, False)
        # A sharer bit for a cache that never fetched the line.
        protocol._sharers[0] |= 0b100
        checker.post(protocol, record)
        assert not report.ok


# ----------------------------------------------------------------------
# checked full runs: every checker fires and passes
# ----------------------------------------------------------------------
class TestCheckedRuns:
    def test_sm_run_clean(self, small_bnre):
        result = run_shared_memory(
            small_bnre, n_procs=4, iterations=2, check_invariants=True
        )
        verification = result.meta["verification"]
        assert verification["ok"]
        assert verification["checks_run"]["cost-conservation"] > 0
        assert verification["checks_run"]["msi-legality"] > 0

    def test_mp_run_clean(self, small_bnre):
        result = run_message_passing(
            small_bnre,
            UpdateSchedule.sender_initiated(2, 10),
            n_procs=4,
            iterations=2,
            check_invariants=True,
        )
        verification = result.meta["verification"]
        assert verification["ok"]
        for name in ("cost-conservation", "flit-conservation", "replica-convergence"):
            assert verification["checks_run"][name] > 0, name

    def test_unchecked_run_has_no_report(self, small_bnre):
        result = run_message_passing(
            bnre_like(n_wires=40),
            UpdateSchedule.sender_initiated(2, 10),
            n_procs=4,
            iterations=1,
        )
        assert "verification" not in result.meta
