"""Unit tests for the synthetic circuit generators."""

from __future__ import annotations

import pytest

from repro.circuits import (
    SyntheticCircuitConfig,
    bnre_like,
    compute_stats,
    generate,
    mdc_like,
    span_histogram,
    tiny_test_circuit,
)
from repro.errors import CircuitError


class TestDeterminism:
    def test_same_seed_same_circuit(self):
        a, b = bnre_like(), bnre_like()
        assert a.wires == b.wires

    def test_different_seed_different_circuit(self):
        assert bnre_like().wires != bnre_like(seed=1).wires

    def test_wire_count_override(self):
        assert bnre_like(n_wires=50).n_wires == 50


class TestPaperDimensions:
    def test_bnre_dimensions(self):
        c = bnre_like()
        assert (c.n_wires, c.n_channels, c.n_grids) == (420, 10, 341)

    def test_mdc_dimensions(self):
        c = mdc_like()
        assert (c.n_wires, c.n_channels, c.n_grids) == (573, 12, 386)


class TestNetlistShape:
    """The statistical properties the reproduction depends on."""

    @pytest.mark.parametrize("circuit", [bnre_like(), mdc_like()], ids=["bnrE", "MDC"])
    def test_short_nets_dominate(self, circuit):
        stats = compute_stats(circuit)
        assert stats.median_x_span < 0.15 * circuit.n_grids

    @pytest.mark.parametrize("circuit", [bnre_like(), mdc_like()], ids=["bnrE", "MDC"])
    def test_long_tail_exists(self, circuit):
        stats = compute_stats(circuit)
        assert stats.max_x_span > 0.4 * circuit.n_grids
        assert 0.03 < stats.long_wire_fraction < 0.35

    @pytest.mark.parametrize("circuit", [bnre_like(), mdc_like()], ids=["bnrE", "MDC"])
    def test_small_pin_counts(self, circuit):
        stats = compute_stats(circuit)
        assert 2.0 <= stats.mean_pins_per_wire <= 4.5
        assert stats.two_pin_fraction > 0.35

    def test_mdc_more_local_than_bnre(self):
        # §5.3.3 orders the circuits by locality; the generators must too.
        bnre, mdc = compute_stats(bnre_like()), compute_stats(mdc_like())
        assert mdc.mean_x_span / 386 < bnre.mean_x_span / 341

    def test_wires_sorted_by_descending_length(self):
        c = bnre_like()
        costs = [w.length_cost() for w in c.wires]
        assert costs == sorted(costs, reverse=True)

    def test_span_histogram_covers_all_wires(self):
        c = tiny_test_circuit()
        counts, edges = span_histogram(c)
        assert counts.sum() == c.n_wires
        assert edges[0] == 0 and edges[-1] == c.n_grids


class TestConfigValidation:
    def base(self, **kw):
        defaults = dict(name="x", n_wires=10, n_channels=4, n_grids=40, seed=1)
        defaults.update(kw)
        return SyntheticCircuitConfig(**defaults)

    def test_valid_config_generates(self):
        assert generate(self.base()).n_wires == 10

    @pytest.mark.parametrize(
        "kw",
        [
            {"n_wires": 0},
            {"n_channels": 1},
            {"n_grids": 2},
            {"local_fraction": 1.5},
            {"pin_geometric_p": 0.0},
            {"max_pins": 1},
            {"global_min_span_frac": 0.9, "global_max_span_frac": 0.5},
        ],
    )
    def test_invalid_configs_rejected(self, kw):
        with pytest.raises(CircuitError):
            generate(self.base(**kw))

    def test_all_pins_on_grid(self):
        c = generate(self.base(n_wires=200))
        for w in c.wires:
            for p in w.pins:
                assert 0 <= p.x < c.n_grids
                assert 0 <= p.channel < c.n_channels
