"""Unit tests for the synthetic circuit generators."""

from __future__ import annotations

import pytest

from repro.circuits import (
    SyntheticCircuitConfig,
    bnre_like,
    compute_stats,
    generate,
    mdc_like,
    span_histogram,
    tiny_test_circuit,
)
from repro.errors import CircuitError


class TestDeterminism:
    def test_same_seed_same_circuit(self):
        a, b = bnre_like(), bnre_like()
        assert a.wires == b.wires

    def test_different_seed_different_circuit(self):
        assert bnre_like().wires != bnre_like(seed=1).wires

    def test_wire_count_override(self):
        assert bnre_like(n_wires=50).n_wires == 50


class TestPaperDimensions:
    def test_bnre_dimensions(self):
        c = bnre_like()
        assert (c.n_wires, c.n_channels, c.n_grids) == (420, 10, 341)

    def test_mdc_dimensions(self):
        c = mdc_like()
        assert (c.n_wires, c.n_channels, c.n_grids) == (573, 12, 386)


class TestNetlistShape:
    """The statistical properties the reproduction depends on."""

    @pytest.mark.parametrize("circuit", [bnre_like(), mdc_like()], ids=["bnrE", "MDC"])
    def test_short_nets_dominate(self, circuit):
        stats = compute_stats(circuit)
        assert stats.median_x_span < 0.15 * circuit.n_grids

    @pytest.mark.parametrize("circuit", [bnre_like(), mdc_like()], ids=["bnrE", "MDC"])
    def test_long_tail_exists(self, circuit):
        stats = compute_stats(circuit)
        assert stats.max_x_span > 0.4 * circuit.n_grids
        assert 0.03 < stats.long_wire_fraction < 0.35

    @pytest.mark.parametrize("circuit", [bnre_like(), mdc_like()], ids=["bnrE", "MDC"])
    def test_small_pin_counts(self, circuit):
        stats = compute_stats(circuit)
        assert 2.0 <= stats.mean_pins_per_wire <= 4.5
        assert stats.two_pin_fraction > 0.35

    def test_mdc_more_local_than_bnre(self):
        # §5.3.3 orders the circuits by locality; the generators must too.
        bnre, mdc = compute_stats(bnre_like()), compute_stats(mdc_like())
        assert mdc.mean_x_span / 386 < bnre.mean_x_span / 341

    def test_wires_sorted_by_descending_length(self):
        c = bnre_like()
        costs = [w.length_cost() for w in c.wires]
        assert costs == sorted(costs, reverse=True)

    def test_span_histogram_covers_all_wires(self):
        c = tiny_test_circuit()
        counts, edges = span_histogram(c)
        assert counts.sum() == c.n_wires
        assert edges[0] == 0 and edges[-1] == c.n_grids


class TestConfigValidation:
    def base(self, **kw):
        defaults = dict(name="x", n_wires=10, n_channels=4, n_grids=40, seed=1)
        defaults.update(kw)
        return SyntheticCircuitConfig(**defaults)

    def test_valid_config_generates(self):
        assert generate(self.base()).n_wires == 10

    @pytest.mark.parametrize(
        "kw",
        [
            {"n_wires": 0},
            {"n_channels": 1},
            {"n_grids": 2},
            {"local_fraction": 1.5},
            {"pin_geometric_p": 0.0},
            {"max_pins": 1},
            {"global_min_span_frac": 0.9, "global_max_span_frac": 0.5},
        ],
    )
    def test_invalid_configs_rejected(self, kw):
        with pytest.raises(CircuitError):
            generate(self.base(**kw))

    def test_all_pins_on_grid(self):
        c = generate(self.base(n_wires=200))
        for w in c.wires:
            for p in w.pins:
                assert 0 <= p.x < c.n_grids
                assert 0 <= p.channel < c.n_channels


class TestScaledGenerator:
    """The S-series Rent-exponent-controlled scale generator."""

    def test_same_seed_same_circuit(self):
        from repro.circuits import generate_scaled

        a = generate_scaled(2_000, seed=5)
        b = generate_scaled(2_000, seed=5)
        assert a.wires == b.wires
        assert (a.n_channels, a.n_grids) == (b.n_channels, b.n_grids)

    def test_different_seed_different_circuit(self):
        from repro.circuits import generate_scaled

        a = generate_scaled(2_000, seed=5)
        b = generate_scaled(2_000, seed=6)
        assert a.wires != b.wires

    def test_default_seed_is_pinned(self):
        from repro.circuits import SCALED_SEED, generate_scaled

        assert generate_scaled(500).wires == generate_scaled(500, seed=SCALED_SEED).wires

    def test_dimensions_scale_with_sqrt_wires(self):
        from repro.circuits import generate_scaled

        small = generate_scaled(1_000)
        large = generate_scaled(16_000)  # 16x wires -> 4x linear dims
        assert large.n_channels == pytest.approx(small.n_channels * 4, rel=0.15)
        assert large.n_grids == pytest.approx(small.n_grids * 4, rel=0.15)

    def test_calibrated_to_bnre_footprint(self):
        from repro.circuits import generate_scaled

        c = generate_scaled(420)
        assert 8 <= c.n_channels <= 12  # bnrE is 10 x 341
        assert 300 <= c.n_grids <= 380

    def test_rent_exponent_controls_span_tail(self):
        """Higher Rent exponent -> flatter Donath tail -> longer wires."""
        from repro.circuits import generate_scaled

        def mean_span(p):
            c = generate_scaled(4_000, rent_exponent=p, seed=3)
            spans = [
                max(pin.x for pin in w.pins) - min(pin.x for pin in w.pins)
                for w in c.wires
            ]
            return sum(spans) / len(spans)

        assert mean_span(0.45) < mean_span(0.6) < mean_span(0.75)

    def test_short_nets_dominate(self):
        """Donath sampling keeps the canonical local-wiring skew."""
        from repro.circuits import generate_scaled

        c = generate_scaled(4_000)
        short = sum(
            1
            for w in c.wires
            if max(p.x for p in w.pins) - min(p.x for p in w.pins)
            <= c.n_grids // 10
        )
        assert short / len(c.wires) > 0.5

    def test_wires_sorted_by_descending_length_cost(self):
        from repro.circuits import generate_scaled

        c = generate_scaled(1_000)
        costs = [w.length_cost() for w in c.wires]
        assert costs == sorted(costs, reverse=True)

    def test_all_pins_on_grid(self):
        from repro.circuits import generate_scaled

        c = generate_scaled(3_000, rent_exponent=0.75, seed=9)
        for w in c.wires:
            for p in w.pins:
                assert 0 <= p.x < c.n_grids
                assert 0 <= p.channel < c.n_channels

    @pytest.mark.parametrize(
        "kw",
        [
            dict(n_wires=0),
            dict(rent_exponent=0.0),
            dict(rent_exponent=1.0),
            dict(max_pins=1),
            dict(pin_geometric_p=0.0),
            dict(channel_geometric_p=1.5),
            dict(n_channels=1),
            dict(n_grids=2),
        ],
    )
    def test_invalid_configs_rejected(self, kw):
        from repro.circuits import ScaledCircuitConfig, generate_scaled

        base = dict(name="bad", n_wires=100)
        base.update(kw)
        with pytest.raises(CircuitError):
            generate_scaled(base["n_wires"], config=ScaledCircuitConfig(**base))

    def test_config_and_keyword_overrides_are_exclusive(self):
        from repro.circuits import ScaledCircuitConfig, generate_scaled

        cfg = ScaledCircuitConfig(name="x", n_wires=100)
        with pytest.raises(CircuitError):
            generate_scaled(100, seed=123, config=cfg)
