"""Tests for the CBS-style network simulator."""

from __future__ import annotations

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.errors import NetworkError
from repro.events import Simulator
from repro.netsim import (
    HOP_TIME_S,
    PROCESS_TIME_S,
    Delivery,
    MeshTopology,
    Message,
    WormholeNetwork,
)


class TestTopology:
    def test_coords_round_trip(self):
        topo = MeshTopology(16)
        for node in range(16):
            r, c = topo.coords(node)
            assert topo.node_at(r, c) == node

    def test_hop_distance_unidirectional_wrap(self):
        topo = MeshTopology(16)  # 4x4
        assert topo.hop_distance(0, 1) == 1
        # unidirectional: going "back" wraps around (3 hops on a 4-ring)
        assert topo.hop_distance(1, 0) == 3
        assert topo.hop_distance(0, 5) == 2

    def test_route_length_matches_distance(self):
        topo = MeshTopology(16)
        for src in range(16):
            for dst in range(16):
                assert len(topo.route(src, dst)) == topo.hop_distance(src, dst)

    def test_route_is_x_then_y(self):
        topo = MeshTopology(16)
        links = topo.route(0, 5)  # (0,0) -> (1,1)
        # first link is node 0's X link, second is node 1's Y link
        assert links[0] == 0 * 2 + MeshTopology.X_DIM
        assert links[1] == 1 * 2 + MeshTopology.Y_DIM

    def test_two_node_machine(self):
        topo = MeshTopology(2)
        assert topo.hop_distance(0, 1) == 1
        assert topo.hop_distance(1, 0) == 1  # wraps on the 2-ring

    def test_bad_shape_rejected(self):
        with pytest.raises(NetworkError):
            MeshTopology(6, shape=(2, 2))

    def test_bad_node_rejected(self):
        topo = MeshTopology(4)
        with pytest.raises(NetworkError):
            topo.coords(4)

    @given(st.integers(0, 15), st.integers(0, 15))
    def test_hop_distance_bounded(self, src, dst):
        topo = MeshTopology(16)
        d = topo.hop_distance(src, dst)
        assert 0 <= d <= 6  # (k-1) per dimension on a unidirectional 4x4


class TestMessage:
    def test_zero_length_rejected(self):
        with pytest.raises(NetworkError):
            Message(0, 1, 0, None)

    def test_self_addressed_message_legal(self):
        msg = Message(1, 1, 10, None)
        assert msg.src == msg.dst == 1


def make_network(n=16):
    sim = Simulator()
    deliveries = []
    net = WormholeNetwork(sim, MeshTopology(n), deliveries.append)
    return sim, net, deliveries


class TestTimingValidation:
    def test_zero_process_time_is_ideal_network_ablation(self):
        """process_time_s=0 (free node/network copies) must be accepted."""
        sim = Simulator()
        net = WormholeNetwork(
            sim, MeshTopology(4), lambda d: None, process_time_s=0.0
        )
        # latency collapses to the pure wire term: HopTime * (D + L)
        assert net.uncontended_latency(0, 1, 100) == pytest.approx(
            HOP_TIME_S * (1 + 100)
        )

    def test_zero_hop_time_rejected(self):
        with pytest.raises(NetworkError, match="hop_time_s"):
            WormholeNetwork(
                Simulator(), MeshTopology(4), lambda d: None, hop_time_s=0.0
            )

    def test_negative_hop_time_rejected(self):
        with pytest.raises(NetworkError, match="hop_time_s"):
            WormholeNetwork(
                Simulator(), MeshTopology(4), lambda d: None, hop_time_s=-1e-9
            )

    def test_negative_process_time_rejected(self):
        with pytest.raises(NetworkError, match="process_time_s"):
            WormholeNetwork(
                Simulator(),
                MeshTopology(4),
                lambda d: None,
                process_time_s=-1e-9,
            )

    def test_messages_flow_with_zero_process_time(self):
        sim = Simulator()
        deliveries = []
        net = WormholeNetwork(
            sim, MeshTopology(4), deliveries.append, process_time_s=0.0
        )
        net.send(Message(0, 1, 50, "payload"))
        sim.run()
        assert len(deliveries) == 1


class TestLatencyFormula:
    def test_uncontended_latency_matches_paper(self):
        _, net, _ = make_network()
        # 2*ProcessTime + HopTime*(D+L), D=1, L=100
        expected = 2 * PROCESS_TIME_S + HOP_TIME_S * (1 + 100)
        assert net.uncontended_latency(0, 1, 100) == pytest.approx(expected)

    def test_single_message_arrives_at_formula_time(self):
        sim, net, deliveries = make_network()
        msg = Message(0, 1, 50, "payload")
        net.send(msg)
        sim.run()
        assert len(deliveries) == 1
        d = deliveries[0]
        assert d.arrive_time == pytest.approx(net.uncontended_latency(0, 1, 50))
        assert d.latency == d.arrive_time - d.inject_time

    def test_longer_messages_take_longer(self):
        _, net, _ = make_network()
        assert net.uncontended_latency(0, 1, 200) > net.uncontended_latency(0, 1, 50)

    def test_farther_destinations_take_longer(self):
        _, net, _ = make_network()
        assert net.uncontended_latency(0, 15, 50) > net.uncontended_latency(0, 1, 50)


class TestContention:
    def test_sequential_messages_on_same_link_queue(self):
        sim, net, deliveries = make_network()
        d1 = net.send(Message(0, 1, 100, "a"))
        d2 = net.send(Message(0, 1, 100, "b"))
        sim.run()
        assert d2.arrive_time > d1.arrive_time
        # the second message waited for the first train to clear the link
        assert d2.latency > net.uncontended_latency(0, 1, 100)

    def test_disjoint_routes_do_not_interfere(self):
        sim, net, _ = make_network()
        d1 = net.send(Message(0, 1, 100, "a"))
        d2 = net.send(Message(10, 11, 100, "b"))
        sim.run()
        assert d1.latency == pytest.approx(d2.latency)

    def test_inject_time_in_past_rejected(self):
        sim, net, _ = make_network()
        sim.at(1.0, lambda: None)
        sim.run()
        with pytest.raises(NetworkError):
            net.send(Message(0, 1, 10, "x"), inject_time=0.5)

    def test_self_delivery_loops_back_locally(self):
        """src == dst delivers after 2*ProcessTime with no link occupancy."""
        sim, net, deliveries = make_network()
        d = net.send(Message(0, 0, 10, "x"))
        sim.run()
        assert deliveries == [d]
        assert d.hops == 0
        assert d.latency == pytest.approx(2 * PROCESS_TIME_S)
        assert net.uncontended_latency(0, 0, 10) == pytest.approx(
            2 * PROCESS_TIME_S
        )
        # the loop-back never touched the network fabric
        assert float(net._link_busy_s.sum()) == 0.0

    def test_self_delivery_does_not_queue_behind_links(self):
        """A busy mesh cannot delay a local loop-back."""
        sim, net, _ = make_network()
        net.send(Message(0, 1, 5000, "big"))  # saturate node 0's X link
        d = net.send(Message(0, 0, 10, "x"))
        sim.run()
        assert d.latency == pytest.approx(2 * PROCESS_TIME_S)


class TestStats:
    def test_byte_accounting(self):
        sim, net, _ = make_network()
        net.send(Message(0, 1, 100, "a"))
        net.send(Message(0, 5, 50, "b"))
        sim.run()
        assert net.stats.n_messages == 2
        assert net.stats.total_bytes == 150
        assert net.stats.mbytes == pytest.approx(150 / 1e6)
        assert net.stats.total_hop_bytes == 100 * 1 + 50 * 2

    def test_kind_breakdown_uses_payload_kind(self):
        class P:
            def __init__(self, kind):
                self.kind = kind

        sim, net, _ = make_network()
        net.send(Message(0, 1, 100, P("alpha")))
        net.send(Message(0, 1, 30, P("alpha")))
        net.send(Message(0, 1, 9, P("beta")))
        sim.run()
        assert net.stats.bytes_by_kind == {"alpha": 130, "beta": 9}
        assert net.stats.messages_by_kind == {"alpha": 2, "beta": 1}

    def test_mean_latency(self):
        sim, net, _ = make_network()
        net.send(Message(0, 1, 100, "a"))
        sim.run()
        assert net.stats.mean_latency_s > 0
        assert net.stats.max_latency_s >= net.stats.mean_latency_s

    def test_rates_over_elapsed_time(self):
        sim, net, _ = make_network()
        net.send(Message(0, 1, 100, "a"))
        net.send(Message(0, 2, 50, "b"))
        sim.run()
        rates = net.stats.rates(2.0)
        assert rates["messages_per_s"] == pytest.approx(1.0)
        assert rates["bytes_per_s"] == pytest.approx(net.stats.total_bytes / 2.0)

    def test_rates_rejects_non_positive_elapsed(self):
        _, net, _ = make_network()
        with pytest.raises(ValueError):
            net.stats.rates(0.0)
