"""Tests for the lightweight telemetry module (repro.obs)."""

from __future__ import annotations

import pytest

from repro.obs import Telemetry
from repro.obs import telemetry as obs


class TestTelemetry:
    def test_counters_accumulate(self):
        tel = Telemetry()
        tel.incr("x")
        tel.incr("x", 4)
        assert tel.count("x") == 5
        assert tel.count("absent") == 0

    def test_span_records_wall_and_cpu(self):
        tel = Telemetry()
        with tel.span("work"):
            sum(range(1000))
        snap = tel.snapshot()
        assert snap["spans"]["work"]["calls"] == 1
        assert snap["spans"]["work"]["wall_s"] >= 0.0

    def test_rate(self):
        tel = Telemetry()
        tel.incr("events", 100)
        tel.record_span("run", wall_s=2.0, cpu_s=1.0)
        assert tel.rate("events", "run") == pytest.approx(50.0)

    def test_rate_without_span_is_none(self):
        tel = Telemetry()
        tel.incr("events", 10)
        assert tel.rate("events", "missing") is None

    def test_merge_sums_counters_and_spans(self):
        a, b = Telemetry(), Telemetry()
        a.incr("x", 1)
        b.incr("x", 2)
        b.incr("y", 3)
        b.record_span("s", 1.0, 0.5)
        a.merge(b.snapshot())
        assert a.count("x") == 3
        assert a.count("y") == 3
        assert a.snapshot()["spans"]["s"]["calls"] == 1

    def test_merge_empty_snapshot_noop(self):
        tel = Telemetry()
        tel.incr("x")
        tel.merge({})
        assert tel.count("x") == 1

    def test_reset(self):
        tel = Telemetry()
        tel.incr("x")
        tel.record_span("s", 1.0, 1.0)
        tel.reset()
        assert tel.snapshot() == {"counters": {}, "spans": {}}

    def test_snapshot_is_detached(self):
        tel = Telemetry()
        tel.incr("x")
        snap = tel.snapshot()
        tel.incr("x")
        assert snap["counters"]["x"] == 1


class TestGlobalTelemetry:
    def test_module_helpers_hit_the_global(self):
        before = obs.get_telemetry().count("test.counter")
        obs.incr("test.counter", 2)
        assert obs.get_telemetry().count("test.counter") == before + 2

    def test_sim_run_counts_events(self):
        from repro.events import Simulator

        sim = Simulator()
        fired = []
        sim.at(0.0, lambda: fired.append(1))
        before = obs.get_telemetry().count("sim.events")
        sim.run()
        assert fired == [1]
        assert obs.get_telemetry().count("sim.events") == before + 1
