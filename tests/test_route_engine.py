"""Tests for the sequential rip-up-and-reroute engine."""

from __future__ import annotations

import numpy as np
import pytest

from repro.circuits import Circuit, Pin, Wire, tiny_test_circuit
from repro.errors import RoutingError
from repro.grid import CostArray
from repro.route import SequentialRouter, circuit_height


class TestBasicRuns:
    def test_routes_every_wire(self, tiny_circuit):
        result = SequentialRouter(tiny_circuit, iterations=2).run()
        assert set(result.paths) == set(range(tiny_circuit.n_wires))

    def test_cost_array_is_sum_of_paths(self, tiny_circuit):
        result = SequentialRouter(tiny_circuit, iterations=2).run()
        reference = CostArray(tiny_circuit.n_channels, tiny_circuit.n_grids)
        for path in result.paths.values():
            reference.apply_path(path.flat_cells)
        assert reference == result.cost

    def test_quality_fields_consistent(self, tiny_circuit):
        result = SequentialRouter(tiny_circuit, iterations=2).run()
        assert result.quality.circuit_height == circuit_height(result.cost)
        assert result.quality.total_wire_cells == result.cost.total_occupancy()
        assert result.quality.occupancy_factor > 0

    def test_deterministic(self, tiny_circuit):
        a = SequentialRouter(tiny_circuit, iterations=2).run()
        b = SequentialRouter(tiny_circuit, iterations=2).run()
        assert a.quality == b.quality
        assert all(a.paths[w] == b.paths[w] for w in a.paths)


class TestIterations:
    def test_iterations_do_not_hurt_height(self, tiny_circuit):
        result = SequentialRouter(tiny_circuit, iterations=4).run()
        heights = result.per_iteration_height
        assert len(heights) == 4
        assert heights[-1] <= heights[0]

    def test_single_iteration_allowed(self, tiny_circuit):
        result = SequentialRouter(tiny_circuit, iterations=1).run()
        assert len(result.per_iteration_height) == 1

    def test_zero_iterations_rejected(self, tiny_circuit):
        with pytest.raises(RoutingError):
            SequentialRouter(tiny_circuit, iterations=0)


class TestWireOrder:
    def test_custom_order_accepted(self, tiny_circuit):
        order = list(reversed(range(tiny_circuit.n_wires)))
        result = SequentialRouter(tiny_circuit, iterations=2).run(wire_order=order)
        assert set(result.paths) == set(range(tiny_circuit.n_wires))

    def test_non_permutation_rejected(self, tiny_circuit):
        with pytest.raises(RoutingError):
            SequentialRouter(tiny_circuit).run(wire_order=[0, 0, 1])

    def test_order_changes_solution_not_validity(self, tiny_circuit):
        forward = SequentialRouter(tiny_circuit, iterations=1).run()
        backward = SequentialRouter(tiny_circuit, iterations=1).run(
            wire_order=list(reversed(range(tiny_circuit.n_wires)))
        )
        # Different orders may pick different bends (and multi-pin unions
        # of different sizes), but both must be complete, and total
        # occupancy can only differ by the multi-pin overlap slack.
        assert set(backward.paths) == set(forward.paths)
        assert (
            abs(forward.cost.total_occupancy() - backward.cost.total_occupancy())
            < 0.1 * forward.cost.total_occupancy()
        )


class TestCongestionAvoidance:
    def test_router_spreads_parallel_wires(self):
        """Identical wires stacked on one channel should spread vertically."""
        wires = [
            Wire(f"w{i}", [Pin(0, 1), Pin(19, 1)]) for i in range(3)
        ]
        circuit = Circuit("stack", 4, 20, wires)
        result = SequentialRouter(circuit, iterations=3).run()
        # With rip-up and reroute, tracks should spread below the naive
        # all-on-one-channel worst case.
        assert result.quality.circuit_height <= 3 * len(wires)
        assert result.cost.channel_maxima().max() <= len(wires)
