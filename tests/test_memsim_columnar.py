"""Equivalence and unit tests for the columnar coherence engine.

The contract under test: :func:`repro.memsim.columnar.simulate_trace_columnar`
is *bit-identical* to the scalar :func:`repro.memsim.coherence.simulate_trace`
for every trace and line size.  The scalar engine is the oracle (it
mirrors the protocol description record by record); hypothesis fuzzes
the equivalence, the unit tests pin the edge cases the fuzz is unlikely
to hold still.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import CoherenceError
from repro.memsim.addressing import AddressMap
from repro.memsim.coherence import simulate_trace
from repro.memsim.columnar import ColumnarTrace, simulate_trace_columnar
from repro.memsim.trace import ReferenceTrace

N_CHANNELS = 6
N_GRIDS = 32
LINE_SIZES = (4, 8, 16, 32)


def build_trace(bursts) -> ReferenceTrace:
    """bursts: iterable of (proc, is_write, [flat cells])."""
    trace = ReferenceTrace()
    for t, (proc, is_write, cells) in enumerate(bursts):
        trace.add(float(t), proc, is_write, np.asarray(cells, dtype=np.int64))
    return trace


def assert_equivalent(trace: ReferenceTrace, n_procs: int) -> None:
    columnar = ColumnarTrace.from_trace(trace)
    for ls in LINE_SIZES:
        amap = AddressMap(N_CHANNELS, N_GRIDS, ls)
        scalar = simulate_trace(trace, n_procs, amap)
        vector = simulate_trace_columnar(columnar, n_procs, amap)
        assert scalar == vector, f"diverged at line size {ls}"


burst_strategy = st.tuples(
    st.integers(min_value=0, max_value=7),  # proc
    st.booleans(),  # is_write
    st.lists(
        st.integers(min_value=0, max_value=N_CHANNELS * N_GRIDS - 1),
        min_size=1,
        max_size=12,
    ),
)


class TestScalarColumnarEquivalence:
    @settings(max_examples=150, deadline=None)
    @given(st.lists(burst_strategy, min_size=0, max_size=60))
    def test_random_traces_bit_identical(self, bursts):
        assert_equivalent(build_trace(bursts), n_procs=8)

    @settings(max_examples=50, deadline=None)
    @given(
        st.lists(burst_strategy, min_size=1, max_size=40),
        st.integers(min_value=1, max_value=8),
    )
    def test_any_processor_count(self, bursts, n_procs):
        bursts = [(proc % n_procs, w, cells) for proc, w, cells in bursts]
        assert_equivalent(build_trace(bursts), n_procs=n_procs)

    def test_empty_trace(self):
        assert_equivalent(build_trace([]), n_procs=4)

    def test_single_processor_never_invalidates(self):
        trace = build_trace([(0, False, [0, 1]), (0, True, [0]), (0, False, [1])])
        stats = simulate_trace_columnar(trace, 1, AddressMap(N_CHANNELS, N_GRIDS, 8))
        assert stats.n_invalidation_events == 0
        assert_equivalent(trace, n_procs=1)

    def test_write_then_remote_read_forces_writeback(self):
        # Proc 0 dirties a line; proc 1's read must trigger exactly one
        # writeback in both engines.
        trace = build_trace([(0, True, [5]), (1, False, [5])])
        amap = AddressMap(N_CHANNELS, N_GRIDS, 8)
        scalar = simulate_trace(trace, 2, amap)
        vector = simulate_trace_columnar(trace, 2, amap)
        assert scalar == vector
        assert vector.writeback_bytes == 8

    def test_burst_spanning_many_lines(self):
        trace = build_trace(
            [(0, True, list(range(0, 64))), (1, False, list(range(32, 96)))]
        )
        assert_equivalent(trace, n_procs=2)

    def test_repeated_cells_within_one_burst(self):
        # Duplicate (record, line) events must collapse to one access.
        trace = build_trace([(0, False, [3, 3, 3, 4]), (1, True, [4, 4, 3])])
        assert_equivalent(trace, n_procs=2)


class TestColumnarTrace:
    def test_reuse_across_line_sizes_matches_fresh_flatten(self):
        trace = build_trace(
            [(i % 4, i % 3 == 0, [i, i + 1, (i * 7) % 100]) for i in range(50)]
        )
        shared = ColumnarTrace.from_trace(trace)
        for ls in LINE_SIZES:
            amap = AddressMap(N_CHANNELS, N_GRIDS, ls)
            assert shared.replay(4, amap) == simulate_trace_columnar(trace, 4, amap)

    def test_rejects_bad_processor_count(self):
        trace = build_trace([(0, False, [1])])
        columnar = ColumnarTrace.from_trace(trace)
        amap = AddressMap(N_CHANNELS, N_GRIDS, 8)
        with pytest.raises(CoherenceError):
            columnar.replay(0, amap)
        with pytest.raises(CoherenceError):
            columnar.replay(64, amap)

    def test_rejects_out_of_range_processor(self):
        trace = build_trace([(5, False, [1])])
        with pytest.raises(CoherenceError):
            simulate_trace_columnar(trace, 2, AddressMap(N_CHANNELS, N_GRIDS, 8))

    def test_int32_overflow_guard(self):
        trace = ReferenceTrace()
        trace.add(0.0, 0, False, np.array([np.iinfo(np.int32).max], dtype=np.int64))
        with pytest.raises(CoherenceError):
            ColumnarTrace.from_trace(trace)

    def test_accepts_reference_trace_directly(self):
        trace = build_trace([(0, True, [2]), (1, False, [2])])
        amap = AddressMap(N_CHANNELS, N_GRIDS, 4)
        assert simulate_trace_columnar(trace, 2, amap) == simulate_trace(
            trace, 2, amap
        )
