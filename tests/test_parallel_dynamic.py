"""Tests for dynamic wire assignment and interrupt-driven reception."""

from __future__ import annotations

from dataclasses import replace

import pytest

from repro.circuits import tiny_test_circuit
from repro.errors import ProtocolError
from repro.grid import CostArray
from repro.parallel import run_dynamic_assignment, run_message_passing
from repro.updates import UpdateSchedule


@pytest.fixture(scope="module")
def circuit():
    return tiny_test_circuit(n_wires=30)


class TestDynamicAssignment:
    def test_routes_every_wire(self, circuit):
        result = run_dynamic_assignment(circuit, n_procs=4)
        assert set(result.paths) == set(range(circuit.n_wires))
        assert result.exec_time_s > 0

    def test_truth_is_sum_of_paths(self, circuit):
        result = run_dynamic_assignment(circuit, n_procs=4)
        reference = CostArray(circuit.n_channels, circuit.n_grids)
        for path in result.paths.values():
            reference.apply_path(path.flat_cells)
        assert reference == result.truth

    def test_deterministic(self, circuit):
        a = run_dynamic_assignment(circuit, n_procs=4)
        b = run_dynamic_assignment(circuit, n_procs=4)
        assert a.quality == b.quality and a.exec_time_s == b.exec_time_s

    def test_wait_statistics_reported(self, circuit):
        result = run_dynamic_assignment(circuit, n_procs=4)
        assert result.meta["mean_task_wait_s"] >= 0
        assert result.meta["assignment"] == "dynamic (polled)"

    def test_interrupt_variant_lowers_wait(self, circuit):
        polled = run_dynamic_assignment(circuit, n_procs=4)
        schedule = replace(UpdateSchedule(), interrupt_reception=True)
        interrupt = run_dynamic_assignment(circuit, schedule, n_procs=4)
        assert interrupt.meta["assignment"] == "dynamic (interrupt)"
        assert (
            interrupt.meta["mean_task_wait_s"] <= polled.meta["mean_task_wait_s"]
        )

    def test_sender_updates_flow(self, circuit):
        schedule = UpdateSchedule.sender_initiated(1, 1)
        result = run_dynamic_assignment(circuit, schedule, n_procs=4)
        assert result.network.bytes_by_kind.get("SEND_LOC_DATA", 0) > 0

    def test_receiver_schedules_rejected(self, circuit):
        with pytest.raises(ProtocolError):
            run_dynamic_assignment(circuit, UpdateSchedule.receiver_initiated(1, 5))

    def test_wire_router_covers_all_procs_eventually(self, circuit):
        result = run_dynamic_assignment(circuit, n_procs=4)
        assert set(result.wire_router.tolist()) <= set(range(4))
        # self-scheduling should spread the work
        assert len(set(result.wire_router.tolist())) >= 2


class TestInterruptReception:
    def test_interrupts_serviced_counter(self, circuit):
        schedule = replace(
            UpdateSchedule.receiver_initiated(1, 3), interrupt_reception=True
        )
        result = run_message_passing(circuit, schedule, n_procs=4, iterations=2)
        # the run completes and every wire is routed with interrupts on
        assert set(result.paths) == set(range(circuit.n_wires))

    def test_interrupts_reduce_blocking_penalty(self, circuit):
        polled = run_message_passing(
            circuit,
            UpdateSchedule.receiver_initiated(1, 3, blocking=True),
            n_procs=4,
            iterations=2,
        )
        interrupt = run_message_passing(
            circuit,
            replace(
                UpdateSchedule.receiver_initiated(1, 3, blocking=True),
                interrupt_reception=True,
            ),
            n_procs=4,
            iterations=2,
        )
        assert interrupt.exec_time_s <= polled.exec_time_s

    def test_interrupt_run_still_consistent(self, circuit):
        schedule = replace(
            UpdateSchedule.receiver_initiated(1, 3, blocking=True),
            interrupt_reception=True,
        )
        result = run_message_passing(circuit, schedule, n_procs=4, iterations=2)
        reference = CostArray(circuit.n_channels, circuit.n_grids)
        for path in result.paths.values():
            reference.apply_path(path.flat_cells)
        assert reference == result.truth
