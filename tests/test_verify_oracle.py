"""The differential oracle and the ``repro verify`` CLI.

The acceptance path for the verification subsystem: a clean run passes
everything and exits 0; a deliberately corrupted delta schedule (a node
silently dropping its remote deltas instead of shipping them) makes the
oracle — and the CLI — fail with a structured divergence report naming
the first differing cell.
"""

from __future__ import annotations

import json

import pytest

from repro.circuits import bnre_like
from repro.cli import main
from repro.parallel.node import MPNode
from repro.verify import run_differential_oracle, run_verification


@pytest.fixture
def corrupt_node_zero(monkeypatch):
    """Node 0 drops its accumulated remote deltas instead of sending them."""
    original = MPNode._send_rmt_data

    def corrupted(self):
        if self.proc == 0:
            for owner in range(self.regions.n_procs):
                if owner != self.proc:
                    self.delta.clear_region(self.regions.region(owner))
            return
        original(self)

    monkeypatch.setattr(MPNode, "_send_rmt_data", corrupted)


class TestOracle:
    def test_clean_run_passes(self, small_bnre):
        report = run_differential_oracle(small_bnre, n_procs=4, iterations=2)
        assert report.ok
        assert not report.divergences
        # every engine reported quality, all checkers fired
        assert set(report.quality) == {
            "sequential",
            "shared_memory",
            "message_passing",
        }
        for name in (
            "cost-conservation",
            "msi-legality",
            "flit-conservation",
            "replica-convergence",
            "wire-set",
            "pin-coverage",
        ):
            assert report.verification.checks_run[name] > 0, name

    def test_corrupted_deltas_diverge_with_first_cell(
        self, small_bnre, corrupt_node_zero
    ):
        report = run_differential_oracle(small_bnre, n_procs=4, iterations=2)
        assert not report.ok
        convergence = [
            d
            for d in report.divergences
            if "replica" in d.message or "diverges from ground truth" in d.message
        ]
        assert convergence, [d.kind for d in report.divergences]
        first = convergence[0]
        assert first.engines == ("message_passing",)
        assert first.cell is not None  # the first differing cell, named
        assert first.event_time_s is not None
        # structured, not a bare assert: survives JSON round-trip
        payload = json.loads(json.dumps(report.as_dict()))
        assert payload["ok"] is False
        assert payload["divergences"][0]["cell"] is not None

    def test_render_mentions_divergence(self, small_bnre, corrupt_node_zero):
        report = run_differential_oracle(small_bnre, n_procs=4, iterations=2)
        text = report.render()
        assert "DIVERGED" in text
        assert "first differing cell" in text


class TestRunner:
    def test_quick_sweep_passes(self):
        run = run_verification(quick=True, circuit=bnre_like(n_wires=60))
        assert run.ok
        assert set(run.extra_runs) == {"mixed", "receiver-blocking"}
        assert run.combined.total_checks > run.oracle.verification.total_checks


class TestCli:
    def test_verify_quick_exits_zero(self, capsys):
        assert main(["verify", "--quick", "--wires", "60"]) == 0
        out = capsys.readouterr().out
        assert "PASS" in out

    def test_verify_quick_corrupted_exits_nonzero(self, corrupt_node_zero, capsys):
        assert main(["verify", "--quick", "--wires", "60"]) == 1
        out = capsys.readouterr().out
        assert "DIVERGENCE" in out
        assert "first differing cell" in out

    def test_verify_json_reports_structure(self, corrupt_node_zero, capsys):
        assert main(["verify", "--quick", "--wires", "60", "--json"]) == 1
        payload = json.loads(capsys.readouterr().out)
        assert payload["ok"] is False
        cells = [
            d.get("cell")
            for d in payload["oracle"]["divergences"]
            if d.get("cell") is not None
        ]
        assert cells, "expected a divergence naming the first differing cell"

    def test_mp_check_invariants_flag(self, capsys):
        code = main(
            [
                "mp",
                "--wires",
                "40",
                "--procs",
                "4",
                "--iterations",
                "1",
                "--send-rmt",
                "2",
                "--send-loc",
                "10",
                "--check-invariants",
            ]
        )
        assert code == 0
        assert "invariants:" in capsys.readouterr().out

    def test_sm_check_invariants_flag(self, capsys):
        code = main(
            [
                "sm",
                "--wires",
                "40",
                "--procs",
                "4",
                "--iterations",
                "1",
                "--check-invariants",
            ]
        )
        assert code == 0
        assert "invariants:" in capsys.readouterr().out
