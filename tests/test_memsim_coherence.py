"""Tests for the write-back-invalidate coherence simulator."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import CoherenceError
from repro.memsim import AddressMap, ReferenceTrace, WriteBackInvalidate, simulate_trace


def protocol(line_size=4, n_procs=4, n_channels=2, n_grids=16):
    return WriteBackInvalidate(n_procs, AddressMap(n_channels, n_grids, line_size))


def cells(*idx):
    return np.array(idx, dtype=np.int64)


class TestReads:
    def test_cold_miss_fetches_line(self):
        p = protocol(line_size=8)
        p.access(0, cells(0), is_write=False)
        assert p.stats.cold_fetch_bytes == 8
        assert p.stats.refetch_bytes == 0

    def test_repeat_read_hits(self):
        p = protocol()
        p.access(0, cells(0), is_write=False)
        p.access(0, cells(0), is_write=False)
        assert p.stats.cold_fetch_bytes == 4

    def test_same_line_shared_by_two_readers(self):
        p = protocol(line_size=8)
        p.access(0, cells(0), is_write=False)
        p.access(1, cells(1), is_write=False)  # same 8B line
        assert p.stats.cold_fetch_bytes == 16  # one cold miss each
        assert p.stats.n_invalidation_events == 0

    def test_burst_dedupes_within_line(self):
        p = protocol(line_size=16)
        p.access(0, cells(0, 1, 2, 3), is_write=False)
        assert p.stats.cold_fetch_bytes == 16  # one line


class TestWrites:
    def test_first_write_is_word_write(self):
        p = protocol()
        p.access(0, cells(0), is_write=False)
        p.access(0, cells(0), is_write=True)
        assert p.stats.word_write_bytes == 4

    def test_second_write_by_owner_is_silent(self):
        p = protocol()
        p.access(0, cells(0), is_write=True)
        before = p.stats.total_bytes
        p.access(0, cells(0), is_write=True)
        assert p.stats.total_bytes == before

    def test_write_miss_fetches_line(self):
        p = protocol(line_size=8)
        p.access(0, cells(0), is_write=True)
        assert p.stats.write_miss_fetch_bytes == 8
        assert p.stats.word_write_bytes == 4

    def test_write_invalidates_sharers(self):
        p = protocol()
        p.access(0, cells(0), is_write=False)
        p.access(1, cells(0), is_write=False)
        p.access(2, cells(0), is_write=True)
        assert p.stats.n_invalidation_events == 1
        assert p.stats.n_copies_invalidated == 2

    def test_invalidated_reader_refetches(self):
        p = protocol(line_size=8)
        p.access(0, cells(0), is_write=False)  # cold
        p.access(1, cells(0), is_write=True)  # invalidates proc 0
        p.access(0, cells(0), is_write=False)  # refetch
        assert p.stats.refetch_bytes == 8

    def test_false_sharing_across_words(self):
        """Writes to *different* words of one line still ping-pong it."""
        p = protocol(line_size=8)  # words 0 and 1 share a line
        p.access(0, cells(0), is_write=True)
        p.access(1, cells(1), is_write=True)
        p.access(0, cells(0), is_write=True)
        # three word writes: every write found the line non-dirty-by-self
        assert p.stats.word_write_bytes == 12

    def test_no_false_sharing_with_word_lines(self):
        p = protocol(line_size=4)
        p.access(0, cells(0), is_write=True)
        p.access(1, cells(1), is_write=True)
        p.access(0, cells(0), is_write=True)
        # the second write by proc 0 hits its still-dirty private line
        assert p.stats.word_write_bytes == 8


class TestDirtyTransfer:
    def test_read_of_dirty_line_cleans_it(self):
        p = protocol()
        p.access(0, cells(0), is_write=True)
        p.access(1, cells(0), is_write=False)
        assert p.line_state(0)["dirty_owner"] == -1
        assert sorted(p.line_state(0)["sharers"]) == [0, 1]

    def test_read_of_dirty_line_writes_it_back(self):
        p = protocol(line_size=8)
        p.access(0, cells(0), is_write=True)
        p.access(1, cells(0), is_write=False)
        assert p.stats.writeback_bytes == 8

    def test_write_of_dirty_line_writes_it_back(self):
        p = protocol(line_size=8)
        p.access(0, cells(0), is_write=True)
        p.access(1, cells(0), is_write=True)
        assert p.stats.writeback_bytes == 8

    def test_clean_transfer_has_no_writeback(self):
        p = protocol(line_size=8)
        p.access(0, cells(0), is_write=False)
        p.access(1, cells(0), is_write=False)
        assert p.stats.writeback_bytes == 0

    def test_write_takes_exclusive_ownership(self):
        p = protocol()
        p.access(0, cells(0), is_write=False)
        p.access(1, cells(0), is_write=True)
        assert p.line_state(0)["sharers"] == [1]
        assert p.line_state(0)["dirty_owner"] == 1


class TestValidation:
    def test_bad_proc_rejected(self):
        p = protocol(n_procs=2)
        with pytest.raises(CoherenceError):
            p.access(2, cells(0), is_write=False)

    def test_too_many_procs_rejected(self):
        with pytest.raises(CoherenceError):
            WriteBackInvalidate(64, AddressMap(2, 16, 4))

    def test_empty_access_noop(self):
        p = protocol()
        p.access(0, np.empty(0, dtype=np.int64), is_write=True)
        assert p.stats.total_bytes == 0


class TestTraceReplay:
    def test_simulate_trace_orders_by_time(self):
        trace = ReferenceTrace()
        # appended out of order; replay must apply write before second read
        trace.add(3.0, 0, False, cells(0))
        trace.add(2.0, 1, True, cells(0))
        trace.add(1.0, 0, False, cells(0))
        stats = simulate_trace(trace, 2, AddressMap(2, 16, 8))
        assert stats.refetch_bytes == 8  # proc 0's read at t=3 refetches

    def test_stats_reference_counts(self):
        trace = ReferenceTrace()
        trace.add(0.0, 0, False, cells(0, 1, 2))
        trace.add(1.0, 0, True, cells(0))
        stats = simulate_trace(trace, 2, AddressMap(2, 16, 4))
        assert stats.n_read_refs == 3
        assert stats.n_write_refs == 1


@settings(max_examples=25, deadline=None)
@given(
    accesses=st.lists(
        st.tuples(
            st.integers(0, 3),  # proc
            st.integers(0, 31),  # word
            st.booleans(),  # write?
        ),
        min_size=1,
        max_size=60,
    ),
    line_size=st.sampled_from([4, 8, 16]),
)
def test_traffic_invariants(accesses, line_size):
    """Protocol invariants over arbitrary access sequences."""
    p = protocol(line_size=line_size, n_procs=4, n_channels=2, n_grids=16)
    for proc, word, is_write in accesses:
        p.access(proc, cells(word), is_write)
    s = p.stats
    # All byte counters non-negative and line-size aligned where applicable.
    assert s.cold_fetch_bytes % line_size == 0
    assert s.refetch_bytes % line_size == 0
    assert s.write_miss_fetch_bytes % line_size == 0
    assert s.word_write_bytes % 4 == 0
    # Cold fetches can never exceed one line per (proc, line) pair.
    assert s.cold_fetch_bytes <= 4 * 32 * line_size
    assert s.writeback_bytes % line_size == 0
    # Total is the sum of its parts.
    assert s.total_bytes == (
        s.cold_fetch_bytes
        + s.refetch_bytes
        + s.word_write_bytes
        + s.write_miss_fetch_bytes
        + s.writeback_bytes
    )
    # A line can only be flushed if someone wrote it first.
    if s.writeback_bytes:
        assert s.n_write_refs > 0
