"""Tests for the profiling layer (phase timers, hot counters, cProfile hook)."""

from __future__ import annotations

import pytest

from repro import obs
from repro.obs.profiling import PhaseTimer, hot_counters, profile_call


class TestPhaseTimer:
    def test_records_phases_in_order(self):
        timer = PhaseTimer()
        with timer.phase("build"):
            pass
        with timer.phase("simulate"):
            pass
        assert [r.name for r in timer.records] == ["build", "simulate"]
        assert all(r.wall_s >= 0 and r.cpu_s >= 0 for r in timer.records)

    def test_repeated_phases_keep_every_occurrence(self):
        timer = PhaseTimer()
        for _ in range(3):
            with timer.phase("iteration"):
                pass
        assert len(timer.records) == 3
        assert timer.total_wall_s == sum(r.wall_s for r in timer.records)

    def test_phase_recorded_even_when_body_raises(self):
        timer = PhaseTimer()
        with pytest.raises(ValueError):
            with timer.phase("boom"):
                raise ValueError("x")
        assert timer.records[0].name == "boom"

    def test_reports_into_telemetry_spans(self):
        obs.reset()
        timer = PhaseTimer()
        with timer.phase("spanned"):
            pass
        spans = obs.get_telemetry().spans
        assert "profile.spanned" in spans

    def test_as_dict_and_render(self):
        timer = PhaseTimer()
        with timer.phase("only"):
            pass
        d = timer.as_dict()
        assert d["phases"][0]["name"] == "only"
        assert "total_wall_s" in d
        text = timer.render()
        assert "only" in text and "share" in text

    def test_render_empty_timer(self):
        assert "total" in PhaseTimer().render()


class TestHotCounters:
    def test_filters_to_kernel_namespaces(self):
        obs.reset()
        obs.incr("sim.events", 5)
        obs.incr("route.wires", 2)
        obs.incr("unrelated.thing", 9)
        counters = hot_counters()
        assert counters == {"route.wires": 2, "sim.events": 5}

    def test_real_run_populates_counters(self):
        from repro.harness import run_experiment

        obs.reset()
        run_experiment("T6", quick=True)
        counters = hot_counters()
        assert any(name.startswith("sim.") for name in counters)


class TestProfileCall:
    def test_returns_result_and_stats(self):
        result, stats = profile_call(lambda: sum(range(1000)))
        assert result == 499500
        assert "function calls" in stats

    def test_propagates_exceptions(self):
        with pytest.raises(RuntimeError):
            profile_call(lambda: (_ for _ in ()).throw(RuntimeError("x")))

    def test_sort_and_top_forwarded(self):
        _, stats = profile_call(lambda: [i**2 for i in range(100)], sort="calls", top=3)
        assert stats  # formatted table produced


class TestMemorySnapshot:
    def test_reports_positive_rss(self):
        from repro.obs import memory_snapshot

        snap = memory_snapshot()
        assert snap["rss_bytes"] > 0
        assert snap["peak_rss_bytes"] >= snap["rss_bytes"] or snap["peak_rss_bytes"] > 0

    def test_traced_fields_only_while_tracing(self):
        import tracemalloc

        from repro.obs import memory_snapshot

        assert "traced_bytes" not in memory_snapshot()
        tracemalloc.start()
        try:
            snap = memory_snapshot()
            assert snap["traced_bytes"] >= 0
            assert snap["traced_peak_bytes"] >= snap["traced_bytes"]
        finally:
            tracemalloc.stop()

    def test_record_peak_memory_feeds_telemetry(self):
        from repro.obs import record_peak_memory
        from repro.obs.telemetry import get_telemetry

        snap = record_peak_memory()
        assert snap["peak_rss_bytes"] > 0
        assert get_telemetry().counters.get("mem.peak_rss_bytes", 0) > 0


class TestPhaseTimerMemoryTracking:
    def test_track_memory_records_peak_rss(self):
        timer = PhaseTimer(track_memory=True)
        with timer.phase("work"):
            _ = bytearray(1_000_000)
        rec = timer.records[0]
        assert rec.peak_rss_bytes > 0
        d = timer.as_dict()
        assert d["phases"][0]["peak_rss_bytes"] == rec.peak_rss_bytes
        assert d["peak_rss_bytes"] >= rec.peak_rss_bytes
        assert "peakRSS" in timer.render()

    def test_default_timer_omits_memory_columns(self):
        timer = PhaseTimer()
        with timer.phase("work"):
            pass
        assert timer.records[0].peak_rss_bytes == 0
        assert "peakRSS" not in timer.render()
        assert "peak_rss_bytes" not in timer.as_dict()["phases"][0] or (
            timer.as_dict()["phases"][0].get("peak_rss_bytes", 0) == 0
        )
