"""Differential tests: ColumnarEventQueue vs the reference EventQueue.

The columnar queue stores sort keys and callbacks in separate columns but
promises the exact pop order of the reference queue — both order by
unique ``(time, seq)`` with sequence numbers assigned at schedule time.
These tests drive both queues through the same schedules and demand
identical observable behaviour, including under cancellation churn and
compaction.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import SimulationError
from repro.events.columnar import ColumnarEventQueue
from repro.events.queue import EventQueue
from repro.events.sim import Simulator
from repro.kernels import use_kernels


def drain(queue):
    times = []
    while True:
        nxt = queue.pop_next()
        if nxt is None:
            return times
        times.append(nxt[0])


class TestQueueContract:
    def test_pop_next_returns_time_and_action(self):
        q = ColumnarEventQueue()
        fired = []
        q.push(2.0, lambda: fired.append("late"))
        q.push(1.0, lambda: fired.append("early"))
        time, action = q.pop_next()
        assert time == 1.0
        action()
        assert fired == ["early"]

    def test_simultaneous_events_fire_in_schedule_order(self):
        q = ColumnarEventQueue()
        order = []
        for tag in range(5):
            q.push(3.0, lambda t=tag: order.append(t))
        while True:
            nxt = q.pop_next()
            if nxt is None:
                break
            nxt[1]()
        assert order == [0, 1, 2, 3, 4]

    def test_push_before_last_popped_raises(self):
        q = ColumnarEventQueue()
        q.push(5.0, lambda: None)
        q.pop_next()
        with pytest.raises(SimulationError):
            q.push(4.0, lambda: None)

    def test_cancel_after_fire_is_noop(self):
        q = ColumnarEventQueue()
        handle = q.push(1.0, lambda: None)
        assert q.pop_next() is not None
        q.cancel(handle)
        q.cancel(handle)
        assert len(q) == 0
        assert not q._cancelled

    def test_len_counts_live_events(self):
        q = ColumnarEventQueue()
        handles = [q.push(float(i), lambda: None) for i in range(10)]
        for h in handles[::2]:
            q.cancel(h)
        assert len(q) == 5

    def test_cancel_releases_callback_immediately(self):
        q = ColumnarEventQueue()
        handle = q.push(1.0, lambda: None)
        q.cancel(handle)
        assert len(q._actions) == 0

    def test_peek_skips_cancelled_heads(self):
        q = ColumnarEventQueue()
        doomed = q.push(1.0, lambda: None)
        q.push(2.0, lambda: None)
        q.cancel(doomed)
        assert q.peek_time() == 2.0


class TestCompaction:
    def test_majority_dead_triggers_compaction(self):
        q = ColumnarEventQueue()
        doomed = [q.push(float(i), lambda: None) for i in range(100)]
        q.push(1000.0, lambda: None)
        for h in doomed:
            q.cancel(h)
        assert q.n_compactions >= 1
        assert len(q._heap) < 100
        assert len(q) == 1

    def test_peek_compacts_dead_prefix(self):
        # Mirror of the EventQueue regression: a dead prefix below the
        # cancel-side majority threshold must still be shed in one batch
        # by a peek, not drained a heappop at a time.
        q = ColumnarEventQueue()
        doomed = [q.push(float(i), lambda: None) for i in range(100)]
        for i in range(300):
            q.push(1000.0 + i, lambda: None)
        for h in doomed:
            q.cancel(h)
        assert q.n_compactions == 0
        assert q.peek_time() == 1000.0
        assert q.n_compactions == 1
        assert not q._cancelled


class TestDifferentialEquivalence:
    @settings(max_examples=100, deadline=None)
    @given(
        st.lists(
            st.tuples(
                st.floats(min_value=0.0, max_value=100.0, allow_nan=False),
                st.booleans(),
            ),
            min_size=0,
            max_size=300,
        )
    )
    def test_pop_sequence_matches_reference(self, ops):
        ref, col = EventQueue(), ColumnarEventQueue()
        for time, doomed in ops:
            hr = ref.push(time, lambda: None)
            hc = col.push(time, lambda: None)
            if doomed:
                ref.cancel(hr)
                col.cancel(hc)
        ref_times = []
        while True:
            event = ref.pop()
            if event is None:
                break
            ref_times.append(event.time)
        assert drain(col) == ref_times

    @settings(max_examples=50, deadline=None)
    @given(st.integers(min_value=0, max_value=400))
    def test_interleaved_pops_and_cancels(self, n):
        ref, col = EventQueue(), ColumnarEventQueue()
        state = 12345
        live_r, live_c = [], []
        popped_r, popped_c = [], []
        for _ in range(n):
            state = (state * 1103515245 + 12345) & (2**31 - 1)
            t = ref._last_popped + (state % 1000) / 10.0
            live_r.append(ref.push(t, lambda: None))
            live_c.append(col.push(t, lambda: None))
            if state % 3 == 0 and live_r:
                k = state % len(live_r)
                ref.cancel(live_r.pop(k))
                col.cancel(live_c.pop(k))
            if state % 7 == 0:
                er = ref.pop()
                ec = col.pop_next()
                popped_r.append(None if er is None else er.time)
                popped_c.append(None if ec is None else ec[0])
                assert ref.peek_time() == col.peek_time()
        assert popped_r == popped_c


class TestSimulatorDispatch:
    def test_mode_selects_queue_class(self):
        with use_kernels("vectorized"):
            assert isinstance(Simulator()._queue, ColumnarEventQueue)
        with use_kernels("reference"):
            assert isinstance(Simulator()._queue, EventQueue)

    def test_same_trace_under_both_queues(self):
        def run() -> list:
            sim = Simulator()
            fired = []

            def spawn(depth: int):
                fired.append((round(sim.now, 9), depth))
                if depth < 5:
                    sim.after(0.5, lambda: spawn(depth + 1))
                    doomed = sim.after(0.25, lambda: fired.append("never"))
                    sim.cancel(doomed)

            sim.at(1.0, lambda: spawn(0))
            sim.at(1.0, lambda: spawn(10))
            sim.run()
            return fired

        with use_kernels("reference"):
            ref = run()
        with use_kernels("vectorized"):
            vec = run()
        assert ref == vec
        assert "never" not in ref

    def test_bounded_run_stops_at_until(self):
        with use_kernels("vectorized"):
            sim = Simulator()
            fired = []
            sim.at(1.0, lambda: fired.append(1.0))
            sim.at(3.0, lambda: fired.append(3.0))
            assert sim.run(until=2.0) == 2.0
            assert fired == [1.0]
            assert sim.run() == 3.0
            assert fired == [1.0, 3.0]
