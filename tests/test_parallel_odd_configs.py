"""Integration tests for unusual processor counts and configurations.

The paper only runs square-ish meshes (2, 4, 9, 16); these tests pin down
that nothing in the stack assumes squareness, divisibility, or any
particular processor count.
"""

from __future__ import annotations

import pytest

from repro.circuits import tiny_test_circuit
from repro.grid import CostArray, RegionMap, proc_grid_shape
from repro.parallel import CostModel, run_message_passing, run_shared_memory
from repro.updates import UpdateSchedule


@pytest.fixture(scope="module")
def circuit():
    # 4 channels x 40 grids: forces uneven channel bands for 3+ proc rows
    return tiny_test_circuit(n_wires=30)


class TestOddProcessorCounts:
    @pytest.mark.parametrize("n_procs", [3, 5, 6, 8])
    def test_mp_runs_on_non_square_meshes(self, circuit, n_procs):
        result = run_message_passing(
            circuit,
            UpdateSchedule.sender_initiated(2, 3),
            n_procs=n_procs,
            iterations=2,
        )
        assert set(result.paths) == set(range(circuit.n_wires))
        reference = CostArray(circuit.n_channels, circuit.n_grids)
        for path in result.paths.values():
            reference.apply_path(path.flat_cells)
        assert reference == result.truth

    @pytest.mark.parametrize("n_procs", [3, 6])
    def test_sm_runs_on_non_square_meshes(self, circuit, n_procs):
        result = run_shared_memory(circuit, n_procs=n_procs, iterations=2)
        assert set(result.paths) == set(range(circuit.n_wires))

    def test_prime_count_degenerates_to_row(self, circuit):
        # 5 processors -> 1x5 mesh: only the x dimension exists
        shape = proc_grid_shape(5)
        assert shape == (1, 5)
        regions = RegionMap(circuit.n_channels, circuit.n_grids, 5)
        assert regions.p_rows == 1

    def test_uneven_channel_bands_partition(self):
        # 4 channels over 3 proc rows: bands of 2/1/1
        regions = RegionMap(4, 40, 3, shape=(3, 1))
        heights = [regions.region(p).height for p in range(3)]
        assert sorted(heights, reverse=True) == [2, 1, 1]
        assert sum(heights) == 4


class TestMoreProcsThanWork:
    def test_more_procs_than_wires(self):
        tiny = tiny_test_circuit(n_wires=4)
        result = run_message_passing(
            tiny, UpdateSchedule.sender_initiated(1, 1), n_procs=8, iterations=2
        )
        assert set(result.paths) == set(range(4))
        # idle processors simply never route
        assert sum(s.wires_routed for s in result.node_summaries) == 8

    def test_sm_more_procs_than_wires(self):
        tiny = tiny_test_circuit(n_wires=4)
        result = run_shared_memory(tiny, n_procs=8, iterations=2)
        assert set(result.paths) == set(range(4))


class TestNumaQualityInvariance:
    def test_numa_changes_time_not_routing(self, circuit):
        """The hierarchical memory model only scales time: the routed
        solution must be identical to the flat-machine run."""
        # NUMA scaling changes each wire's duration and therefore the
        # interleaving of the dynamic loop, so paths may differ — but with
        # a *static* assignment the wire->proc mapping and per-proc order
        # are fixed, and only timing shifts.
        from repro.assign import RoundRobinAssigner
        from repro.grid import RegionMap as RM

        regions = RM(circuit.n_channels, circuit.n_grids, 4)
        asg = RoundRobinAssigner(circuit, regions).assign()
        flat = run_shared_memory(
            circuit, n_procs=4, iterations=2, assignment=asg, collect_trace=False
        )
        numa = run_shared_memory(
            circuit,
            n_procs=4,
            iterations=2,
            assignment=asg,
            collect_trace=False,
            cost_model=CostModel(numa_remote_factor=10.0),
        )
        assert numa.exec_time_s > flat.exec_time_s
        assert set(numa.paths) == set(flat.paths)


class TestInterruptsPreserveAccounting:
    def test_message_counters_consistent_under_interrupts(self, circuit):
        from dataclasses import replace

        schedule = replace(
            UpdateSchedule.receiver_initiated(1, 2, blocking=True),
            interrupt_reception=True,
        )
        result = run_message_passing(circuit, schedule, n_procs=4, iterations=2)
        sent = sum(s.messages_sent for s in result.node_summaries)
        received = sum(s.messages_received for s in result.node_summaries)
        assert sent == received == result.network.n_messages
