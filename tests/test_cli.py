"""Tests for the command line interface."""

from __future__ import annotations

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_subcommand(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_version_flag(self, capsys):
        with pytest.raises(SystemExit) as exc:
            build_parser().parse_args(["--version"])
        assert exc.value.code == 0

    def test_mp_defaults(self):
        args = build_parser().parse_args(["mp"])
        assert args.procs == 16 and args.iterations == 3
        assert args.send_loc is None


class TestCircuitCommand:
    def test_describe(self, capsys):
        assert main(["circuit", "--name", "bnrE", "--wires", "50"]) == 0
        out = capsys.readouterr().out
        assert "50 wires" in out

    def test_stats(self, capsys):
        assert main(["circuit", "--name", "MDC", "--wires", "40", "--stats"]) == 0
        assert "mean_x_span" in capsys.readouterr().out

    def test_save_and_reload(self, tmp_path, capsys):
        path = tmp_path / "c.json"
        assert main(["circuit", "--wires", "30", "--save-json", str(path)]) == 0
        assert path.exists()
        assert main(["circuit", "--load", str(path)]) == 0

    def test_save_text(self, tmp_path):
        path = tmp_path / "c.txt"
        assert main(["circuit", "--wires", "30", "--save-text", str(path)]) == 0
        assert path.read_text().startswith("#")

    def test_unknown_circuit_name(self):
        with pytest.raises(SystemExit):
            main(["circuit", "--name", "nope"])


class TestRouteCommand:
    def test_route_reports_quality(self, capsys):
        assert main(["route", "--wires", "40", "--iterations", "2"]) == 0
        out = capsys.readouterr().out
        assert "circuit height" in out
        assert "occupancy factor" in out


class TestMpCommand:
    def test_sender_initiated_run(self, capsys):
        code = main(
            ["mp", "--wires", "40", "--procs", "4", "--iterations", "2",
             "--send-rmt", "2", "--send-loc", "5"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "SLD=5 SRD=2" in out
        assert "mbytes" in out

    def test_blocking_receiver_run(self, capsys):
        code = main(
            ["mp", "--wires", "40", "--procs", "4", "--iterations", "2",
             "--req-loc", "1", "--req-rmt", "3", "--blocking"]
        )
        assert code == 0
        assert "blocking" in capsys.readouterr().out


class TestSmCommand:
    def test_line_size_sweep(self, capsys):
        code = main(
            ["sm", "--wires", "40", "--procs", "4", "--iterations", "2",
             "--line-sizes", "4", "8"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "line  4B" in out and "line  8B" in out


class TestRunCommand:
    def test_live_sm(self, capsys):
        code = main(
            ["run", "--live", "sm", "--wires", "24", "--procs", "2",
             "--iterations", "2"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "shared_memory_live" in out
        assert "replay_ok: True" in out

    def test_live_mp_with_schedule(self, capsys):
        code = main(
            ["run", "--live", "mp", "--wires", "24", "--procs", "2",
             "--iterations", "2", "--send-rmt", "1", "--send-loc", "1"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "message_passing_live" in out
        assert "traffic:" in out

    def test_live_sm_json(self, capsys):
        import json

        code = main(
            ["run", "--live", "sm", "--wires", "24", "--procs", "1",
             "--iterations", "2", "--json"]
        )
        assert code == 0
        data = json.loads(capsys.readouterr().out)
        assert data["paradigm"] == "shared_memory_live"
        assert data["replay_ok"] is True
        assert data["n_wires"] == 24

    def test_quick_defaults(self):
        args = build_parser().parse_args(["run", "--live", "sm", "--quick"])
        assert args.procs == 2 and args.iterations == 3 and args.quick

    def test_requires_live_flag(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["run"])


class TestExperimentCommand:
    def test_single_quick_experiment(self, capsys, tmp_path):
        code = main(["experiment", "X4", "--quick", "--out", str(tmp_path)])
        assert code == 0
        assert (tmp_path / "x4.json").exists()
        assert "[X4]" in capsys.readouterr().out

    def test_parser_defaults_for_harness_flags(self):
        args = build_parser().parse_args(["experiment", "all"])
        assert args.jobs == 1
        assert args.cache_dir == ".locusroute_cache"
        assert args.no_cache is False
        assert args.timeout is None

    def test_jobs_flag_runs_parallel(self, capsys, tmp_path):
        code = main(
            ["experiment", "X4", "T6", "--quick", "--jobs", "2",
             "--cache-dir", str(tmp_path / "cache"),
             "--out", str(tmp_path)]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "[X4]" in out and "[T6]" in out
        assert (tmp_path / "BENCH_harness.json").exists()

    def test_cache_dir_warm_second_run(self, capsys, tmp_path):
        argv = ["experiment", "X4", "--quick",
                "--cache-dir", str(tmp_path / "cache")]
        assert main(argv) == 0
        assert (tmp_path / "cache" / "experiments").exists()
        assert main(argv) == 0  # warm pass serves from the cache
        assert "[X4]" in capsys.readouterr().out

    def test_no_cache_flag_writes_nothing(self, capsys, tmp_path):
        cache_dir = tmp_path / "cache"
        code = main(
            ["experiment", "X4", "--quick", "--no-cache",
             "--cache-dir", str(cache_dir)]
        )
        assert code == 0
        assert not cache_dir.exists()

    def test_bench_flag_explicit_path(self, capsys, tmp_path):
        import json

        bench = tmp_path / "bench.json"
        code = main(
            ["experiment", "X4", "--quick", "--no-cache",
             "--bench", str(bench)]
        )
        assert code == 0
        payload = json.loads(bench.read_text())
        assert payload["schema"] == "bench-harness/1"
        assert payload["experiments"][0]["exp_id"] == "X4"


class TestJsonOutput:
    def test_mp_json(self, capsys):
        import json

        code = main(
            ["mp", "--wires", "30", "--procs", "4", "--iterations", "1",
             "--send-rmt", "2", "--send-loc", "5", "--json"]
        )
        assert code == 0
        data = json.loads(capsys.readouterr().out)
        assert data["paradigm"] == "message_passing"
        assert data["n_wires"] == 30
        assert "network" in data and len(data["nodes"]) == 4

    def test_sm_json_with_protocol(self, capsys):
        import json

        code = main(
            ["sm", "--wires", "30", "--procs", "4", "--iterations", "1",
             "--protocol", "update", "--json"]
        )
        assert code == 0
        data = json.loads(capsys.readouterr().out)
        assert data["meta"]["protocol"] == "update"
        assert "coherence" in data


class TestDynamicCommand:
    def test_dynamic_run(self, capsys):
        code = main(["dynamic", "--wires", "30", "--procs", "4"])
        assert code == 0
        out = capsys.readouterr().out
        assert "dynamic (polled)" in out
        assert "mean task wait" in out

    def test_dynamic_interrupts(self, capsys):
        code = main(["dynamic", "--wires", "30", "--procs", "4", "--interrupts"])
        assert code == 0
        assert "dynamic (interrupt)" in capsys.readouterr().out


class TestPacketStructureOption:
    def test_full_region_encoding(self, capsys):
        code = main(
            ["mp", "--wires", "30", "--procs", "4", "--iterations", "1",
             "--send-rmt", "2", "--send-loc", "5",
             "--packet-structure", "full-region"]
        )
        assert code == 0
        assert "full-region" in capsys.readouterr().out


class TestErrorBoundary:
    def test_library_errors_become_clean_messages(self, capsys):
        code = main(["mp", "--wires", "30", "--blocking"])
        assert code == 2
        err = capsys.readouterr().err
        assert err.startswith("error:") and "Traceback" not in err

    def test_unknown_experiment_clean_error(self, capsys):
        code = main(["experiment", "T99"])
        assert code == 2
        err = capsys.readouterr().err
        assert "unknown experiment" in err
        assert "valid ids" in err and "T1" in err and "X5" in err
        assert "Traceback" not in err

    def test_unknown_id_mixed_with_valid_runs_nothing(self, capsys):
        code = main(["experiment", "X4", "NOPE", "--quick"])
        assert code == 2
        captured = capsys.readouterr()
        assert "NOPE" in captured.err
        assert "[X4]" not in captured.out  # rejected before any run

    def test_corrupt_circuit_file_clean_error(self, tmp_path, capsys):
        bad = tmp_path / "bad.json"
        bad.write_text('{"name": "x"}')
        code = main(["route", "--load", str(bad)])
        assert code == 2
        assert "error:" in capsys.readouterr().err


class TestProfileCommand:
    def test_profile_defaults(self, capsys):
        assert main(["profile", "--quick"]) == 0
        out = capsys.readouterr().out
        assert "kernels: vectorized" in out
        assert "T3" in out and "share" in out
        assert "hot-path counters:" in out

    def test_profile_json(self, capsys):
        import json as json_mod

        assert main(["profile", "T6", "--quick", "--json"]) == 0
        payload = json_mod.loads(capsys.readouterr().out)
        assert payload["kernels"] == "vectorized"
        assert payload["passed"] == {"T6": True}
        assert payload["timing"]["phases"][0]["name"] == "T6"

    def test_profile_with_cprofile_table(self, capsys):
        assert main(["profile", "T6", "--quick", "--cprofile", "--top", "5"]) == 0
        out = capsys.readouterr().out
        assert "--- cProfile T6" in out
        assert "function calls" in out

    def test_kernels_flag_selects_reference_mode(self, capsys):
        from repro.kernels import active_kernels, set_kernels

        try:
            assert main(["--kernels", "reference", "profile", "T6", "--quick"]) == 0
            assert "kernels: reference" in capsys.readouterr().out
            assert active_kernels() == "reference"
        finally:
            set_kernels("vectorized")

    def test_kernels_flag_rejects_unknown(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["--kernels", "turbo", "profile"])

    def test_unknown_experiment_clean_error(self, capsys):
        assert main(["profile", "T99", "--quick"]) == 2
        assert "error:" in capsys.readouterr().err


class TestScaledCircuit:
    def test_circuit_scaled_name(self, capsys):
        assert main(["circuit", "--name", "scaled", "--wires", "500"]) == 0
        out = capsys.readouterr().out
        assert "scaled-500w" in out

    def test_scaled_rent_and_seed_flags(self, capsys):
        assert (
            main(
                [
                    "circuit",
                    "--name",
                    "scaled",
                    "--wires",
                    "500",
                    "--rent",
                    "0.75",
                    "--circuit-seed",
                    "42",
                    "--stats",
                ]
            )
            == 0
        )
        assert "p0.75" in capsys.readouterr().out

    def test_route_scaled_circuit(self, capsys):
        assert (
            main(
                ["route", "--name", "s1", "--wires", "400", "--iterations", "1"]
            )
            == 0
        )
        out = capsys.readouterr().out
        assert "height" in out.lower()

    def test_profile_reports_memory(self, capsys):
        assert main(["profile", "--quick"]) == 0
        assert "peak rss" in capsys.readouterr().out

    def test_profile_json_includes_memory(self, capsys):
        import json as _json

        assert main(["profile", "T6", "--quick", "--json"]) == 0
        payload = _json.loads(capsys.readouterr().out)
        assert payload["memory"]["peak_rss_bytes"] > 0
