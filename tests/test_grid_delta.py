"""Unit and property tests for the delta array."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.errors import GridError
from repro.grid import BBox, DeltaArray
from repro.grid.regions import RegionMap


def flat(cells, n_grids=12):
    return np.unique(np.array([c * n_grids + x for c, x in cells], dtype=np.int64))


class TestRecording:
    def test_record_and_cancel(self):
        delta = DeltaArray(4, 12)
        cells = flat([(1, 3), (1, 4)])
        delta.record_path(cells, +1)
        assert not delta.is_clean()
        delta.record_path(cells, -1)
        assert delta.is_clean()

    def test_partial_cancellation(self):
        """Rip-up + reroute over a mostly shared path leaves only the
        symmetric difference dirty — the §5.2 cancellation effect."""
        delta = DeltaArray(4, 12)
        old = flat([(1, 3), (1, 4), (1, 5)])
        new = flat([(1, 4), (1, 5), (1, 6)])
        delta.record_path(old, -1)
        delta.record_path(new, +1)
        assert delta.nonzero_count() == 2
        assert delta.data[1, 3] == -1 and delta.data[1, 6] == 1

    def test_empty_record_noop(self):
        delta = DeltaArray(4, 12)
        delta.record_path(np.empty(0, dtype=np.int64), 1)
        assert delta.is_clean()


class TestRegionScan:
    def test_dirty_bbox_absolute_coordinates(self):
        delta = DeltaArray(6, 12)
        region = BBox(2, 4, 5, 11)
        delta.record_path(flat([(3, 6), (4, 9)]), +1)
        assert delta.region_dirty_bbox(region) == BBox(3, 6, 4, 9)

    def test_dirty_bbox_none_for_clean_region(self):
        delta = DeltaArray(6, 12)
        delta.record_path(flat([(0, 0)]), +1)
        assert delta.region_dirty_bbox(BBox(3, 3, 5, 11)) is None

    def test_dirty_bbox_clips_to_region(self):
        delta = DeltaArray(6, 12)
        delta.record_path(flat([(0, 0), (3, 6)]), +1)
        region = BBox(2, 4, 5, 11)
        assert delta.region_dirty_bbox(region) == BBox(3, 6, 3, 6)

    def test_clear_region_only_clears_region(self):
        delta = DeltaArray(6, 12)
        delta.record_path(flat([(0, 0), (3, 6)]), +1)
        delta.clear_region(BBox(2, 4, 5, 11))
        assert delta.data[3, 6] == 0
        assert delta.data[0, 0] == 1

    def test_clear_all(self):
        delta = DeltaArray(6, 12)
        delta.record_path(flat([(0, 0), (3, 6)]), +1)
        delta.clear_all()
        assert delta.is_clean()


class TestExtractAccumulate:
    def test_extract_values(self):
        delta = DeltaArray(6, 12)
        delta.record_path(flat([(3, 6)]), -1)
        block = delta.extract(BBox(3, 6, 3, 6))
        assert block.shape == (1, 1) and block[0, 0] == -1

    def test_extract_out_of_range(self):
        delta = DeltaArray(6, 12)
        with pytest.raises(GridError):
            delta.extract(BBox(0, 0, 6, 6))

    def test_accumulate_folds_in(self):
        delta = DeltaArray(6, 12)
        box = BBox(1, 1, 2, 2)
        delta.accumulate(box, np.ones((2, 2), dtype=np.int32))
        delta.accumulate(box, -np.ones((2, 2), dtype=np.int32))
        assert delta.is_clean()

    def test_accumulate_shape_mismatch(self):
        delta = DeltaArray(6, 12)
        with pytest.raises(GridError):
            delta.accumulate(BBox(0, 0, 1, 1), np.ones((3, 3), dtype=np.int32))


class TestBatchedOwnerScan:
    """dirty_bboxes_by_owner == region_dirty_bbox per owned region."""

    @given(
        st.lists(
            st.tuples(st.integers(0, 5), st.integers(0, 11)),
            min_size=0,
            max_size=40,
            unique=True,
        ),
        st.sampled_from([1, 2, 4, 6]),
    )
    def test_matches_per_region_scan(self, cells, n_procs):
        delta = DeltaArray(6, 12)
        if cells:
            delta.record_path(flat(cells), +1)
        regions = RegionMap(6, 12, n_procs)
        batched = delta.dirty_bboxes_by_owner(regions)
        for proc in range(n_procs):
            expected = delta.region_dirty_bbox(regions.region(proc))
            assert batched.get(proc) == expected

    def test_clean_array_yields_empty_dict(self):
        delta = DeltaArray(6, 12)
        assert delta.dirty_bboxes_by_owner(RegionMap(6, 12, 4)) == {}

    def test_negative_deltas_count_as_dirty(self):
        delta = DeltaArray(6, 12)
        delta.record_path(flat([(1, 2)]), -1)
        regions = RegionMap(6, 12, 4)
        owner = regions.owner_of(1, 2)
        assert delta.dirty_bboxes_by_owner(regions) == {owner: BBox(1, 2, 1, 2)}


@given(
    st.lists(
        st.tuples(st.integers(0, 5), st.integers(0, 11)),
        min_size=1,
        max_size=30,
        unique=True,
    )
)
def test_record_then_clear_dirty_bbox_is_exhaustive(cells):
    """After clearing every region's dirty bbox, the array is clean."""
    delta = DeltaArray(6, 12)
    delta.record_path(flat(cells), +1)
    whole = BBox(0, 0, 5, 11)
    dirty = delta.region_dirty_bbox(whole)
    assert dirty is not None
    delta.clear_region(dirty)
    assert delta.is_clean()
