"""Tests for the write-update coherence protocol."""

from __future__ import annotations

import numpy as np
import pytest

from repro.circuits import tiny_test_circuit
from repro.errors import CoherenceError, SimulationError
from repro.memsim import AddressMap, ReferenceTrace, WriteUpdate, simulate_trace_write_update
from repro.parallel import run_shared_memory


def protocol(line_size=4, n_procs=4):
    return WriteUpdate(n_procs, AddressMap(2, 16, line_size))


def cells(*idx):
    return np.array(idx, dtype=np.int64)


class TestReads:
    def test_cold_miss_then_hit(self):
        p = protocol(line_size=8)
        p.access(0, cells(0), is_write=False)
        p.access(0, cells(0), is_write=False)
        assert p.stats.cold_fetch_bytes == 8
        assert p.stats.total_bytes == 8

    def test_no_refetches_ever(self):
        p = protocol()
        p.access(0, cells(0), is_write=False)
        p.access(1, cells(0), is_write=True)
        p.access(0, cells(0), is_write=False)  # still valid: updated, not invalidated
        assert p.stats.refetch_bytes == 0
        assert p.stats.cold_fetch_bytes == 4 + 0  # proc 0's original miss only


class TestWrites:
    def test_private_writes_are_silent(self):
        p = protocol()
        p.access(0, cells(0), is_write=True)  # write-allocate miss only
        first = p.stats.total_bytes
        p.access(0, cells(0), is_write=True)
        assert p.stats.total_bytes == first
        assert p.stats.word_write_bytes == 0

    def test_shared_writes_broadcast_words(self):
        p = protocol()
        p.access(1, cells(0), is_write=False)
        p.access(0, cells(0, 1), is_write=True)
        # cell 0's line is shared with proc 1 -> one 4B broadcast;
        # cell 1's line is private -> silent
        assert p.stats.word_write_bytes == 4

    def test_broadcast_counts_per_cell_not_per_line(self):
        p = protocol(line_size=16)  # 4 words per line
        p.access(1, cells(0), is_write=False)
        p.access(0, cells(0, 1, 2, 3), is_write=True)
        assert p.stats.word_write_bytes == 16  # four word broadcasts

    def test_write_allocate_fetches_line_once(self):
        p = protocol(line_size=8)
        p.access(0, cells(0, 1), is_write=True)  # both cells in one line
        assert p.stats.write_miss_fetch_bytes == 8


class TestValidation:
    def test_bad_proc(self):
        with pytest.raises(CoherenceError):
            protocol(n_procs=2).access(5, cells(0), is_write=False)

    def test_empty_burst_noop(self):
        p = protocol()
        p.access(0, np.empty(0, dtype=np.int64), is_write=True)
        assert p.stats.total_bytes == 0


class TestTraceReplay:
    def test_replay_matches_incremental(self):
        trace = ReferenceTrace()
        trace.add(0.0, 0, False, cells(0, 1))
        trace.add(1.0, 1, True, cells(0))
        stats = simulate_trace_write_update(trace, 2, AddressMap(2, 16, 4))
        assert stats.word_write_bytes == 4
        assert stats.cold_fetch_bytes == 8


class TestSmIntegration:
    def test_protocol_switch(self):
        circuit = tiny_test_circuit(n_wires=25)
        inv = run_shared_memory(circuit, n_procs=4, iterations=2)
        upd = run_shared_memory(circuit, n_procs=4, iterations=2, protocol="update")
        assert inv.meta["protocol"] == "invalidate"
        assert upd.meta["protocol"] == "update"
        # identical routing either way (the protocol only measures traffic)
        assert inv.quality == upd.quality
        assert upd.coherence.refetch_bytes == 0

    def test_unknown_protocol_rejected(self):
        circuit = tiny_test_circuit(n_wires=10)
        with pytest.raises(SimulationError):
            run_shared_memory(circuit, n_procs=2, protocol="mesi")
