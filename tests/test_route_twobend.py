"""Unit and property tests for the two-bend route evaluator."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.circuits import Pin, Wire
from repro.errors import RoutingError
from repro.grid import CostArray
from repro.route import route_segment, route_wire, segment_cells
from repro.route.twobend import MAX_CANDIDATES


def brute_force_best(cost: CostArray, a: Pin, b: Pin):
    """Enumerate every candidate column and path cost the slow way."""
    best = None
    for xv in range(a.x, b.x + 1):
        cells = segment_cells(a, b, xv, cost.n_grids)
        total = int(cost.data.reshape(-1)[cells].sum())
        if best is None or total < best[1]:
            best = (xv, total)
    return best


class TestStraightSegments:
    def test_same_channel_routes_straight(self, empty_cost):
        seg = route_segment(empty_cost, Pin(3, 1), Pin(9, 1))
        assert seg.xv == 3
        assert seg.cost == 0
        cells = segment_cells(Pin(3, 1), Pin(9, 1), seg.xv, 40)
        assert len(cells) == 7

    def test_cost_counts_occupancy(self, empty_cost):
        empty_cost.data[1, 4:7] = 2
        seg = route_segment(empty_cost, Pin(3, 1), Pin(9, 1))
        assert seg.cost == 6


class TestBendChoice:
    def test_prefers_cheap_column(self, empty_cost):
        # Make every column expensive except column 7.
        empty_cost.data[1:3, :] = 5
        empty_cost.data[1:3, 7] = 0
        seg = route_segment(empty_cost, Pin(2, 0), Pin(12, 3))
        assert seg.xv == 7

    def test_tie_break_directions(self, empty_cost):
        a, b = Pin(2, 0), Pin(12, 3)
        first = route_segment(empty_cost, a, b, tie_break=0)
        last = route_segment(empty_cost, a, b, tie_break=1)
        assert first.xv == 2
        assert last.xv == 12
        assert first.cost == last.cost

    def test_bad_tie_break(self, empty_cost):
        with pytest.raises(RoutingError):
            route_segment(empty_cost, Pin(0, 0), Pin(1, 1), tie_break=2)

    def test_out_of_order_pins_rejected(self, empty_cost):
        with pytest.raises(RoutingError):
            route_segment(empty_cost, Pin(9, 1), Pin(3, 1))

    @settings(max_examples=40, deadline=None)
    @given(
        x1=st.integers(0, 30),
        span=st.integers(0, 9),
        c1=st.integers(0, 3),
        c2=st.integers(0, 3),
        seed=st.integers(0, 1000),
    )
    def test_matches_brute_force_on_short_segments(self, x1, span, c1, c2, seed):
        """The vectorised evaluator finds the brute-force optimum."""
        rng = np.random.default_rng(seed)
        cost = CostArray(4, 40, rng.integers(0, 6, size=(4, 40)).astype(np.int32))
        a, b = Pin(x1, c1), Pin(x1 + span, c2)
        seg = route_segment(cost, a, b)
        _, best_cost = brute_force_best(cost, a, b)
        assert seg.cost == best_cost
        cells = segment_cells(a, b, seg.xv, 40)
        assert int(cost.data.reshape(-1)[cells].sum()) == seg.cost


class TestSegmentCells:
    def test_no_duplicates_within_segment(self):
        cells = segment_cells(Pin(2, 0), Pin(12, 3), 7, 40)
        assert len(cells) == len(set(cells.tolist()))

    def test_cells_cover_endpoints(self):
        cells = set(segment_cells(Pin(2, 0), Pin(12, 3), 7, 40).tolist())
        assert 0 * 40 + 2 in cells  # source pin
        assert 3 * 40 + 12 in cells  # destination pin

    def test_interior_column_at_xv(self):
        cells = set(segment_cells(Pin(2, 0), Pin(12, 3), 7, 40).tolist())
        assert 1 * 40 + 7 in cells and 2 * 40 + 7 in cells

    def test_xv_out_of_range_rejected(self):
        with pytest.raises(RoutingError):
            segment_cells(Pin(2, 0), Pin(12, 3), 13, 40)

    def test_path_length_constant_over_candidates(self):
        a, b = Pin(2, 0), Pin(12, 3)
        lengths = {len(segment_cells(a, b, xv, 40)) for xv in range(2, 13)}
        assert len(lengths) == 1


class TestCandidateSampling:
    def test_long_segments_sample_candidates(self):
        cost = CostArray(4, 400)
        a, b = Pin(0, 0), Pin(399, 3)
        seg = route_segment(cost, a, b)
        assert seg.candidates.size <= MAX_CANDIDATES
        assert seg.candidates[0] == 0 and seg.candidates[-1] == 399

    def test_short_segments_enumerate_all(self, empty_cost):
        seg = route_segment(empty_cost, Pin(2, 0), Pin(12, 3))
        assert seg.candidates.size == 11

    def test_work_matches_candidates(self, empty_cost):
        seg = route_segment(empty_cost, Pin(2, 0), Pin(12, 3))
        # 11 candidates x (span+2+interior) = 11 * (10+2+2)
        assert seg.work_cells == 11 * 14


class TestReadCells:
    def test_straight_read_is_the_run(self, empty_cost):
        seg = route_segment(empty_cost, Pin(3, 1), Pin(9, 1))
        cells = seg.read_cells(40)
        assert len(cells) == 7

    def test_bent_read_covers_rows_and_sampled_interior(self, empty_cost):
        seg = route_segment(empty_cost, Pin(2, 0), Pin(12, 3))
        cells = set(seg.read_cells(40).tolist())
        # both pin rows fully
        for x in range(2, 13):
            assert 0 * 40 + x in cells and 3 * 40 + x in cells
        # interior rows at candidate columns
        assert 1 * 40 + 2 in cells and 2 * 40 + 12 in cells


class TestRouteWire:
    def test_multi_pin_union(self, empty_cost):
        wire = Wire("w", [Pin(2, 0), Pin(8, 2), Pin(14, 1)])
        result = route_wire(empty_cost, wire)
        # segments share the middle pin cell: union must dedupe
        total_with_dupes = sum(
            len(segment_cells(a, b, s.xv, 40))
            for (a, b), s in zip(wire.segments(), result.segments)
        )
        assert result.path.n_cells < total_with_dupes

    def test_cost_is_path_cost_on_array(self, empty_cost):
        empty_cost.data[:] = 1
        wire = Wire("w", [Pin(2, 0), Pin(8, 2)])
        result = route_wire(empty_cost, wire)
        assert result.cost == result.path.n_cells

    def test_does_not_modify_cost_array(self, empty_cost):
        before = empty_cost.data.copy()
        route_wire(empty_cost, Wire("w", [Pin(2, 0), Pin(8, 2)]))
        assert np.array_equal(empty_cost.data, before)

    def test_deterministic(self, empty_cost):
        wire = Wire("w", [Pin(2, 0), Pin(8, 2), Pin(14, 1)])
        a = route_wire(empty_cost, wire)
        b = route_wire(empty_cost, wire)
        assert a.path == b.path and a.cost == b.cost
