"""Integration tests for the message passing LocusRoute simulation."""

from __future__ import annotations

import numpy as np
import pytest

from repro.assign import RoundRobinAssigner, ThresholdCostAssigner
from repro.circuits import tiny_test_circuit
from repro.errors import SimulationError
from repro.grid import CostArray, RegionMap
from repro.parallel import run_message_passing
from repro.updates import UpdateSchedule


@pytest.fixture(scope="module")
def circuit():
    return tiny_test_circuit(n_wires=30)


def run(circuit, schedule, **kw):
    kw.setdefault("n_procs", 4)
    kw.setdefault("iterations", 2)
    return run_message_passing(circuit, schedule, **kw)


SCHEDULES = {
    "sender": UpdateSchedule.sender_initiated(2, 5),
    "receiver": UpdateSchedule.receiver_initiated(1, 3),
    "blocking": UpdateSchedule.receiver_initiated(1, 3, blocking=True),
    "mixed": UpdateSchedule.mixed_example(),
    "silent": UpdateSchedule(),
}


class TestCompleteness:
    @pytest.mark.parametrize("name", list(SCHEDULES))
    def test_every_wire_routed(self, circuit, name):
        result = run(circuit, SCHEDULES[name])
        assert set(result.paths) == set(range(circuit.n_wires))
        assert result.exec_time_s > 0

    @pytest.mark.parametrize("name", list(SCHEDULES))
    def test_truth_is_sum_of_paths(self, circuit, name):
        """The ground-truth cost array must exactly equal the union of the
        final committed paths — rip-up bookkeeping never leaks."""
        result = run(circuit, SCHEDULES[name])
        reference = CostArray(circuit.n_channels, circuit.n_grids)
        for path in result.paths.values():
            reference.apply_path(path.flat_cells)
        assert reference == result.truth

    def test_all_nodes_finish(self, circuit):
        result = run(circuit, SCHEDULES["sender"])
        assert all(s.wires_routed > 0 or True for s in result.node_summaries)
        assert sum(s.wires_routed for s in result.node_summaries) == 2 * circuit.n_wires


class TestDeterminism:
    @pytest.mark.parametrize("name", ["sender", "receiver", "mixed"])
    def test_repeat_runs_identical(self, circuit, name):
        a = run(circuit, SCHEDULES[name])
        b = run(circuit, SCHEDULES[name])
        assert a.quality == b.quality
        assert a.exec_time_s == b.exec_time_s
        assert a.network.total_bytes == b.network.total_bytes


class TestTrafficSemantics:
    def test_silent_schedule_sends_nothing(self, circuit):
        result = run(circuit, SCHEDULES["silent"])
        assert result.network.n_messages == 0
        assert result.mbytes_transferred == 0.0

    def test_sender_traffic_by_kind(self, circuit):
        result = run(circuit, SCHEDULES["sender"])
        kinds = set(result.network.bytes_by_kind)
        assert kinds <= {"SEND_LOC_DATA", "SEND_RMT_DATA"}
        assert result.network.total_bytes > 0

    def test_receiver_traffic_by_kind(self, circuit):
        result = run(circuit, SCHEDULES["receiver"])
        kinds = set(result.network.bytes_by_kind)
        assert "REQ_RMT_DATA" in kinds
        assert "RSP_RMT_DATA" in kinds
        # every request gets exactly one response
        assert (
            result.network.messages_by_kind["REQ_RMT_DATA"]
            == result.network.messages_by_kind["RSP_RMT_DATA"]
        )

    def test_more_frequent_updates_more_traffic(self, circuit):
        frequent = run(circuit, UpdateSchedule.sender_initiated(1, 1))
        sparse = run(circuit, UpdateSchedule.sender_initiated(10, 10))
        assert frequent.network.total_bytes > sparse.network.total_bytes


class TestBlocking:
    def test_blocking_not_faster(self, circuit):
        non = run(circuit, SCHEDULES["receiver"])
        blk = run(circuit, SCHEDULES["blocking"])
        assert blk.exec_time_s >= non.exec_time_s
        assert any(s.blocked_time_s > 0 for s in blk.node_summaries)

    def test_non_blocking_never_blocks(self, circuit):
        non = run(circuit, SCHEDULES["receiver"])
        assert all(s.blocked_time_s == 0 for s in non.node_summaries)


class TestQualityVsStaleness:
    def test_updates_help_quality(self, circuit):
        """Silent (never-updating) nodes route blind; any update scheme
        should do at least as well on occupancy."""
        silent = run(circuit, SCHEDULES["silent"], iterations=3)
        updated = run(circuit, UpdateSchedule.sender_initiated(1, 1), iterations=3)
        assert updated.quality.occupancy_factor <= silent.quality.occupancy_factor * 1.05

    def test_single_processor_matches_low_staleness(self, circuit):
        """One processor has nothing to be stale about."""
        single = run(circuit, UpdateSchedule(), n_procs=1, iterations=3)
        many = run(circuit, UpdateSchedule(), n_procs=4, iterations=3)
        assert single.quality.occupancy_factor <= many.quality.occupancy_factor


class TestConfiguration:
    def test_assignment_mismatch_rejected(self, circuit):
        regions = RegionMap(circuit.n_channels, circuit.n_grids, 8)
        wrong = RoundRobinAssigner(circuit, regions).assign()
        with pytest.raises(SimulationError):
            run(circuit, SCHEDULES["sender"], n_procs=4, assignment=wrong)

    def test_custom_assignment_respected(self, circuit):
        regions = RegionMap(circuit.n_channels, circuit.n_grids, 4)
        asg = ThresholdCostAssigner(circuit, regions, 30).assign()
        result = run(circuit, SCHEDULES["sender"], assignment=asg)
        assert np.array_equal(result.wire_router, asg.owner)
        assert result.meta["assignment"] == "ThresholdCost=30"

    def test_meta_echoes_configuration(self, circuit):
        result = run(circuit, SCHEDULES["mixed"])
        assert result.meta["n_procs"] == 4
        assert result.meta["schedule"] == SCHEDULES["mixed"].describe()
        assert result.paradigm == "message_passing"

    def test_two_processors(self, circuit):
        result = run(circuit, SCHEDULES["sender"], n_procs=2)
        assert set(result.paths) == set(range(circuit.n_wires))


class TestNodeAccounting:
    def test_work_and_messages_recorded(self, circuit):
        result = run(circuit, SCHEDULES["sender"])
        total_sent = sum(s.messages_sent for s in result.node_summaries)
        total_recv = sum(s.messages_received for s in result.node_summaries)
        assert total_sent == total_recv == result.network.n_messages
        assert all(s.route_units > 0 for s in result.node_summaries if s.wires_routed)

    def test_message_overhead_fraction_bounded(self, circuit):
        result = run(circuit, UpdateSchedule.sender_initiated(1, 1))
        for s in result.node_summaries:
            assert 0.0 <= s.message_overhead_fraction < 0.9
