"""Tests for update packet construction and sizing."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import ProtocolError
from repro.grid import BBox, CostArray, DeltaArray
from repro.updates import (
    ENTRY_BYTES,
    HEADER_BYTES,
    UpdateKind,
    UpdatePacket,
    build_loc_data,
    build_request,
    build_response,
    build_rmt_data,
    is_data,
    is_request,
    is_sender_initiated,
    packet_bytes,
)


@pytest.fixture
def state():
    cost = CostArray(4, 40)
    delta = DeltaArray(4, 40)
    return cost, delta


def touch(cost, delta, cells):
    flat = np.array([c * 40 + x for c, x in cells], dtype=np.int64)
    cost.apply_path(flat)
    delta.record_path(flat, +1)


class TestClassification:
    def test_sender_initiated_kinds(self):
        assert is_sender_initiated(UpdateKind.SEND_LOC_DATA)
        assert is_sender_initiated(UpdateKind.SEND_RMT_DATA)
        assert not is_sender_initiated(UpdateKind.REQ_RMT_DATA)

    def test_request_kinds(self):
        assert is_request(UpdateKind.REQ_RMT_DATA)
        assert is_request(UpdateKind.REQ_LOC_DATA)
        assert not is_request(UpdateKind.RSP_RMT_DATA)

    def test_data_kinds(self):
        for kind in (
            UpdateKind.SEND_LOC_DATA,
            UpdateKind.SEND_RMT_DATA,
            UpdateKind.RSP_RMT_DATA,
            UpdateKind.RSP_LOC_DATA,
        ):
            assert is_data(kind)
        assert not is_data(UpdateKind.REQ_RMT_DATA)


class TestPacketSizes:
    def test_request_is_header_only(self):
        assert packet_bytes(UpdateKind.REQ_RMT_DATA, BBox(0, 0, 3, 9)) == HEADER_BYTES

    def test_data_packet_counts_cells(self):
        box = BBox(0, 0, 1, 4)  # 2x5 = 10 cells
        expected = HEADER_BYTES + ENTRY_BYTES * 10
        assert packet_bytes(UpdateKind.SEND_LOC_DATA, box) == expected

    def test_packet_length_property(self, state):
        cost, delta = state
        touch(cost, delta, [(1, 5), (1, 6)])
        pkt = build_loc_data(0, 1, cost, delta, BBox(0, 0, 3, 39))
        assert pkt.length_bytes == HEADER_BYTES + ENTRY_BYTES * pkt.payload_cells


class TestBuildLocData:
    def test_clean_region_returns_none(self, state):
        cost, delta = state
        assert build_loc_data(0, 1, cost, delta, BBox(0, 0, 3, 39)) is None

    def test_dirty_region_ships_absolute_values(self, state):
        cost, delta = state
        touch(cost, delta, [(1, 5), (2, 8)])
        pkt = build_loc_data(0, 1, cost, delta, BBox(0, 0, 3, 39))
        assert pkt.kind is UpdateKind.SEND_LOC_DATA
        assert pkt.bbox == BBox(1, 5, 2, 8)
        assert pkt.values[0, 0] == 1  # absolute cost value at (1,5)
        assert pkt.region_owner == 0

    def test_only_in_region_changes_count(self, state):
        cost, delta = state
        touch(cost, delta, [(0, 1), (3, 30)])
        pkt = build_loc_data(0, 1, cost, delta, BBox(0, 0, 1, 19))
        assert pkt.bbox == BBox(0, 1, 0, 1)


class TestBuildRmtData:
    def test_ships_deltas_not_absolutes(self, state):
        cost, delta = state
        cost.data[1, 5] = 7  # pre-existing occupancy not in delta
        flat = np.array([1 * 40 + 5], dtype=np.int64)
        delta.record_path(flat, -1)
        pkt = build_rmt_data(0, 1, delta, BBox(0, 0, 3, 39))
        assert pkt.kind is UpdateKind.SEND_RMT_DATA
        assert pkt.values[0, 0] == -1

    def test_clean_region_returns_none(self, state):
        _, delta = state
        assert build_rmt_data(0, 1, delta, BBox(0, 0, 3, 39)) is None


class TestRequestsResponses:
    def test_build_request(self):
        box = BBox(1, 2, 3, 4)
        pkt = build_request(UpdateKind.REQ_RMT_DATA, 2, 5, box, region_owner=5)
        assert pkt.length_bytes == HEADER_BYTES
        assert pkt.values is None

    def test_build_request_rejects_data_kinds(self):
        with pytest.raises(ProtocolError):
            build_request(UpdateKind.SEND_LOC_DATA, 0, 1, BBox(0, 0, 1, 1), 1)

    def test_response_echoes_and_flips_direction(self):
        box = BBox(1, 2, 2, 4)
        req = build_request(UpdateKind.REQ_RMT_DATA, 2, 5, box, region_owner=5)
        rsp = build_response(req, np.zeros((2, 3), dtype=np.int32))
        assert rsp.kind is UpdateKind.RSP_RMT_DATA
        assert (rsp.src, rsp.dst) == (5, 2)
        assert rsp.bbox == box

    def test_req_loc_gets_rsp_loc(self):
        box = BBox(0, 0, 0, 0)
        req = build_request(UpdateKind.REQ_LOC_DATA, 1, 3, box, region_owner=1)
        rsp = build_response(req, np.zeros((1, 1), dtype=np.int32))
        assert rsp.kind is UpdateKind.RSP_LOC_DATA

    def test_response_to_data_packet_rejected(self):
        pkt = UpdatePacket(
            UpdateKind.SEND_LOC_DATA, 0, 1, BBox(0, 0, 0, 0),
            np.zeros((1, 1), dtype=np.int32), 0,
        )
        with pytest.raises(ProtocolError):
            build_response(pkt, np.zeros((1, 1), dtype=np.int32))


class TestPacketValidation:
    def test_request_with_payload_rejected(self):
        with pytest.raises(ProtocolError):
            UpdatePacket(
                UpdateKind.REQ_RMT_DATA, 0, 1, BBox(0, 0, 0, 0),
                np.zeros((1, 1), dtype=np.int32), 1,
            )

    def test_data_without_payload_rejected(self):
        with pytest.raises(ProtocolError):
            UpdatePacket(UpdateKind.SEND_LOC_DATA, 0, 1, BBox(0, 0, 0, 0), None, 0)

    def test_payload_shape_must_match_bbox(self):
        with pytest.raises(ProtocolError):
            UpdatePacket(
                UpdateKind.SEND_LOC_DATA, 0, 1, BBox(0, 0, 1, 1),
                np.zeros((3, 3), dtype=np.int32), 0,
            )
