"""Unit and property tests for the cost array."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.errors import GridError
from repro.grid import BBox, CostArray


def flat(cells, n_grids=10):
    return np.unique(np.array([c * n_grids + x for c, x in cells], dtype=np.int64))


class TestConstruction:
    def test_zeros_by_default(self):
        cost = CostArray(3, 10)
        assert cost.total_occupancy() == 0
        assert cost.shape == (3, 10)

    def test_initial_data_copied(self):
        data = np.ones((3, 10), dtype=np.int32)
        cost = CostArray(3, 10, data)
        data[0, 0] = 99
        assert cost[0, 0] == 1

    def test_bad_shape_rejected(self):
        with pytest.raises(GridError):
            CostArray(0, 10)
        with pytest.raises(GridError):
            CostArray(3, 10, np.zeros((2, 10), dtype=np.int32))


class TestPaths:
    def test_apply_and_remove_inverse(self):
        cost = CostArray(3, 10)
        cells = flat([(0, 1), (0, 2), (1, 2)])
        cost.apply_path(cells)
        assert cost.total_occupancy() == 3
        cost.remove_path(cells)
        assert cost.total_occupancy() == 0

    def test_remove_strict_detects_double_ripup(self):
        cost = CostArray(3, 10)
        cells = flat([(0, 1)])
        cost.apply_path(cells)
        cost.remove_path(cells)
        with pytest.raises(GridError):
            cost.remove_path(cells)

    def test_remove_non_strict_goes_negative(self):
        cost = CostArray(3, 10)
        cells = flat([(0, 1)])
        cost.remove_path(cells, strict=False)
        assert cost[0, 1] == -1

    def test_apply_remove_delta_round_trip(self):
        cost = CostArray(3, 10)
        cells = flat([(0, 1), (1, 2)])
        cost.apply_path(cells, delta=3)
        assert cost[0, 1] == 3
        cost.remove_path(cells, delta=3)
        assert cost.total_occupancy() == 0

    def test_remove_strict_checks_against_delta(self):
        """Rip-up of a delta-3 path from a 2-high cell must fail strictly."""
        cost = CostArray(3, 10)
        cells = flat([(0, 1)])
        cost.apply_path(cells, delta=2)
        with pytest.raises(GridError):
            cost.remove_path(cells, delta=3)
        assert cost[0, 1] == 2  # strict failure left the array untouched

    def test_remove_partial_delta_leaves_remainder(self):
        cost = CostArray(3, 10)
        cells = flat([(0, 1)])
        cost.apply_path(cells, delta=5)
        cost.remove_path(cells, delta=2)
        assert cost[0, 1] == 3

    def test_remove_delta_non_strict_goes_negative(self):
        cost = CostArray(3, 10)
        cells = flat([(0, 1)])
        cost.apply_path(cells)
        cost.remove_path(cells, delta=4, strict=False)
        assert cost[0, 1] == -3

    def test_path_cost_sums_entries(self):
        cost = CostArray(3, 10)
        a = flat([(0, 1), (0, 2)])
        b = flat([(0, 2), (1, 2)])
        cost.apply_path(a)
        assert cost.path_cost(b) == 1  # only the shared cell is occupied

    def test_empty_path_noops(self):
        cost = CostArray(3, 10)
        empty = np.empty(0, dtype=np.int64)
        cost.apply_path(empty)
        cost.remove_path(empty)
        assert cost.path_cost(empty) == 0

    @given(
        st.lists(
            st.lists(
                st.tuples(st.integers(0, 4), st.integers(0, 19)),
                min_size=1,
                max_size=15,
                unique=True,
            ),
            min_size=1,
            max_size=10,
        )
    )
    def test_array_equals_sum_of_indicators(self, paths):
        """Invariant: cost array == sum of applied path indicator vectors."""
        cost = CostArray(5, 20)
        reference = np.zeros((5, 20), dtype=np.int64)
        applied = []
        for cells in paths:
            fc = flat(cells, n_grids=20)
            cost.apply_path(fc)
            applied.append(fc)
            for c in fc:
                reference[c // 20, c % 20] += 1
        assert np.array_equal(cost.data, reference)
        for fc in applied:
            cost.remove_path(fc)
        assert cost.total_occupancy() == 0


class TestEvaluationHelpers:
    def test_row_prefix_inclusive_sums(self):
        cost = CostArray(2, 6)
        cost.data[0] = [1, 2, 3, 4, 5, 6]
        p = cost.row_prefix(0)
        assert p[0] == 0
        # inclusive sum over [1..3] = 2+3+4
        assert p[4] - p[1] == 9

    def test_column_range_sums(self):
        cost = CostArray(4, 6)
        cost.data[1, 2] = 5
        cost.data[2, 2] = 7
        sums = cost.column_range_sums(1, 2, 0, 5)
        assert sums[2] == 12 and sums.sum() == 12

    def test_column_range_empty_rows(self):
        cost = CostArray(4, 6)
        cost.data[:] = 9
        sums = cost.column_range_sums(2, 1, 0, 5)
        assert np.array_equal(sums, np.zeros(6, dtype=np.int64))


class TestRegions:
    def test_extract_replace_round_trip(self):
        cost = CostArray(4, 8)
        cost.data[:] = np.arange(32).reshape(4, 8)
        box = BBox(1, 2, 2, 5)
        block = cost.extract(box)
        cost.replace(box, np.zeros_like(block))
        assert cost.data[1:3, 2:6].sum() == 0
        cost.replace(box, block)
        assert np.array_equal(cost.data, np.arange(32).reshape(4, 8))

    def test_accumulate_adds(self):
        cost = CostArray(4, 8)
        box = BBox(0, 0, 1, 1)
        cost.accumulate(box, np.ones((2, 2), dtype=np.int32))
        cost.accumulate(box, np.ones((2, 2), dtype=np.int32))
        assert cost[0, 0] == 2

    def test_shape_mismatch_rejected(self):
        cost = CostArray(4, 8)
        with pytest.raises(GridError):
            cost.replace(BBox(0, 0, 1, 1), np.zeros((3, 3), dtype=np.int32))

    def test_out_of_range_box_rejected(self):
        cost = CostArray(4, 8)
        with pytest.raises(GridError):
            cost.extract(BBox(0, 0, 4, 4))

    def test_channel_maxima(self):
        cost = CostArray(3, 5)
        cost.data[1, 4] = 7
        assert list(cost.channel_maxima()) == [0, 7, 0]


class TestEquality:
    def test_copy_equal_but_independent(self):
        cost = CostArray(3, 5)
        cost.data[1, 1] = 3
        dup = cost.copy()
        assert dup == cost
        dup.data[1, 1] = 4
        assert dup != cost
