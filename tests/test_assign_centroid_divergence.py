"""Tests for the centroid assigner and divergence tracking."""

from __future__ import annotations

import math

import pytest

from repro.assign import CentroidAssigner, ThresholdCostAssigner
from repro.circuits import Circuit, Pin, Wire, bnre_like, tiny_test_circuit
from repro.grid import RegionMap
from repro.parallel import run_message_passing
from repro.updates import UpdateSchedule


class TestCentroidAssigner:
    def test_assigns_by_bbox_center(self):
        # one wire spanning the full width: leftmost pin is in region 0's
        # columns, but the centre falls in the middle of the grid.
        circuit = Circuit("c", 4, 40, [Wire("w", [Pin(0, 0), Pin(39, 0)])])
        regions = RegionMap(4, 40, 4)  # 2x2
        centroid = CentroidAssigner(circuit, regions, math.inf).assign()
        leftmost = ThresholdCostAssigner(circuit, regions, math.inf).assign()
        assert leftmost.owner[0] == regions.owner_of(0, 0)
        assert centroid.owner[0] == regions.owner_of(0, 19)

    def test_method_name_tagged(self):
        circuit = tiny_test_circuit()
        regions = RegionMap(4, 40, 4)
        assigner = CentroidAssigner(circuit, regions, 1000)
        assert assigner.method_name.startswith("Centroid/")

    def test_long_wires_still_balanced(self):
        circuit = bnre_like(n_wires=120)
        regions = RegionMap(10, 341, 16)
        asg = CentroidAssigner(circuit, regions, 30).assign()
        counts = asg.load_counts()
        assert counts.sum() == 120
        assert counts.max() <= counts.mean() * 3

    def test_same_threshold_semantics_as_parent(self):
        """Wires above the threshold are balanced identically."""
        circuit = bnre_like(n_wires=120)
        regions = RegionMap(10, 341, 16)
        a = CentroidAssigner(circuit, regions, 30)
        b = ThresholdCostAssigner(circuit, regions, 30)
        for w in range(circuit.n_wires):
            assert a.wire_cost(w) == b.wire_cost(w)

    def test_improves_locality_over_leftmost(self):
        from repro.route import locality_measure

        circuit = bnre_like(n_wires=150)
        regions = RegionMap(10, 341, 16)
        schedule = UpdateSchedule.sender_initiated(2, 10)
        hops = {}
        for label, cls in (("left", ThresholdCostAssigner), ("cent", CentroidAssigner)):
            asg = cls(circuit, regions, math.inf).assign()
            result = run_message_passing(
                circuit, schedule, assignment=asg, iterations=1
            )
            hops[label] = locality_measure(
                regions, result.paths, result.wire_router
            ).mean_hops
        assert hops["cent"] < hops["left"]


class TestDivergenceTracking:
    @pytest.fixture(scope="class")
    def circuit(self):
        return tiny_test_circuit(n_wires=30)

    def test_divergence_meta_present_when_tracked(self, circuit):
        result = run_message_passing(
            circuit, UpdateSchedule(), n_procs=4, iterations=1, track_divergence=True
        )
        d = result.meta["divergence"]
        assert d["mean_l1"] >= 0
        assert d["max_l1"] >= d["mean_l1"] * 0  # well-formed
        assert len(d["per_proc_mean_l1"]) == 4

    def test_divergence_absent_by_default(self, circuit):
        result = run_message_passing(circuit, UpdateSchedule(), n_procs=4, iterations=1)
        assert "divergence" not in result.meta

    def test_single_processor_never_diverges(self, circuit):
        result = run_message_passing(
            circuit, UpdateSchedule(), n_procs=1, iterations=2, track_divergence=True
        )
        assert result.meta["divergence"]["mean_l1"] == 0.0

    def test_updates_reduce_divergence(self, circuit):
        silent = run_message_passing(
            circuit, UpdateSchedule(), n_procs=4, iterations=1, track_divergence=True
        )
        eager = run_message_passing(
            circuit,
            UpdateSchedule.sender_initiated(1, 1),
            n_procs=4,
            iterations=1,
            track_divergence=True,
        )
        assert (
            eager.meta["divergence"]["mean_l1"]
            <= silent.meta["divergence"]["mean_l1"]
        )
