"""Protocol-level unit tests of :class:`repro.parallel.node.MPNode`.

These drive a single node against a scripted harness (no network, no
other nodes) to pin down the update-protocol behaviours the integration
tests can only observe in aggregate.
"""

from __future__ import annotations

from typing import List, Tuple

import numpy as np
import pytest

from repro.circuits import Circuit, Pin, Wire
from repro.grid import BBox, RegionMap
from repro.parallel import DEFAULT_COST_MODEL
from repro.parallel.node import MPNode, NodePhase, NodeServices
from repro.updates import UpdateKind, UpdateSchedule, build_request
from repro.updates.packets import UpdatePacket


class Harness:
    """Scripted services: runs the node's events immediately in order."""

    def __init__(self):
        self.sent: List[Tuple[UpdatePacket, float]] = []
        self.commits: List[Tuple[int, int, float]] = []
        self.ripups: List[Tuple[int, int, float]] = []
        self._queue: List[Tuple[float, int, callable]] = []
        self._seq = 0

    def services(self) -> NodeServices:
        return NodeServices(
            send_packet=lambda pkt, t: self.sent.append((pkt, t)),
            schedule=self._schedule,
            on_ripup=lambda p, w, path, t: self.ripups.append((p, w, t)),
            on_commit=lambda p, w, path, t: self.commits.append((p, w, t)),
            on_finished=lambda p, t: None,
            cancel=self._cancel,
        )

    def _schedule(self, time, action):
        self._seq += 1
        handle = [time, self._seq, action, True]
        self._queue.append(handle)
        return handle

    def _cancel(self, handle):
        handle[3] = False

    def run(self, max_events: int = 10_000) -> None:
        """Drain scheduled events in (time, seq) order."""
        count = 0
        while True:
            live = [h for h in self._queue if h[3]]
            if not live:
                return
            live.sort(key=lambda h: (h[0], h[1]))
            handle = live[0]
            handle[3] = False
            handle[2]()
            count += 1
            if count > max_events:
                raise AssertionError("node did not quiesce")


@pytest.fixture
def circuit():
    wires = [
        Wire("w0", [Pin(2, 0), Pin(10, 1)]),
        Wire("w1", [Pin(5, 2), Pin(30, 3)]),
        Wire("w2", [Pin(1, 0), Pin(6, 0)]),
    ]
    return Circuit("unit", 4, 40, wires)


@pytest.fixture
def regions():
    return RegionMap(4, 40, 4)  # 2x2 mesh


def make_node(circuit, regions, schedule, wires=(0, 1, 2), iterations=1, harness=None):
    harness = harness or Harness()
    node = MPNode(
        proc=0,
        circuit=circuit,
        regions=regions,
        schedule=schedule,
        wires=list(wires),
        iterations=iterations,
        cost_model=DEFAULT_COST_MODEL,
        services=harness.services(),
    )
    return node, harness


class TestSenderInitiated:
    def test_send_loc_goes_to_neighbors_only(self, circuit, regions):
        node, harness = make_node(
            circuit, regions, UpdateSchedule.sender_initiated(100, 1)
        )
        node.start()
        harness.run()
        loc = [p for p, _ in harness.sent if p.kind is UpdateKind.SEND_LOC_DATA]
        assert loc, "no SendLocData sent"
        assert {p.dst for p in loc} <= set(regions.neighbors(0))

    def test_send_loc_clears_own_region_delta(self, circuit, regions):
        node, harness = make_node(
            circuit, regions, UpdateSchedule.sender_initiated(100, 1)
        )
        node.start()
        harness.run()
        assert node.delta.region_dirty_bbox(node.own_region) is None

    def test_send_rmt_targets_region_owners(self, circuit, regions):
        node, harness = make_node(
            circuit, regions, UpdateSchedule.sender_initiated(1, 100)
        )
        node.start()
        harness.run()
        rmt = [p for p, _ in harness.sent if p.kind is UpdateKind.SEND_RMT_DATA]
        # wire w1 crosses into remote regions, so deltas must flow
        assert rmt
        for p in rmt:
            assert p.region_owner == p.dst
            region = regions.region(p.dst)
            assert region.intersect(p.bbox) == p.bbox

    def test_clean_regions_send_nothing(self, circuit, regions):
        # only wire w2, fully inside region 0: no remote deltas to push
        node, harness = make_node(
            circuit, regions, UpdateSchedule.sender_initiated(1, 100), wires=(2,)
        )
        node.start()
        harness.run()
        assert not [p for p, _ in harness.sent if p.kind is UpdateKind.SEND_RMT_DATA]

    def test_update_interval_respected(self, circuit, regions):
        node, harness = make_node(
            circuit, regions, UpdateSchedule.sender_initiated(100, 2)
        )
        node.start()
        harness.run()
        loc_sends = {p.bbox for p, _ in harness.sent if p.kind is UpdateKind.SEND_LOC_DATA}
        # 3 wires at interval 2 -> exactly one SendLocData burst
        assert len(loc_sends) <= 1


class TestReceiverInitiated:
    def test_lookahead_issues_requests_before_routing(self, circuit, regions):
        node, harness = make_node(
            circuit, regions, UpdateSchedule.receiver_initiated(100, 1)
        )
        node.start()
        harness.run()
        reqs = [p for p, _ in harness.sent if p.kind is UpdateKind.REQ_RMT_DATA]
        assert reqs
        assert node.outstanding_responses == len(reqs)

    def test_response_decrements_outstanding(self, circuit, regions):
        node, harness = make_node(
            circuit, regions, UpdateSchedule.receiver_initiated(100, 1)
        )
        node.start()
        harness.run()
        req = next(p for p, _ in harness.sent if p.kind is UpdateKind.REQ_RMT_DATA)
        response = UpdatePacket(
            kind=UpdateKind.RSP_RMT_DATA,
            src=req.dst,
            dst=0,
            bbox=req.bbox,
            values=np.zeros((req.bbox.height, req.bbox.width), dtype=np.int32),
            region_owner=req.dst,
        )
        before = node.outstanding_responses
        node.deliver(response, arrive_time=node.clock + 1.0)
        harness.run()
        assert node.outstanding_responses == before - 1

    def test_owner_answers_req_rmt(self, circuit, regions):
        node, harness = make_node(circuit, regions, UpdateSchedule(), wires=())
        node.start()
        harness.run()
        request = build_request(
            UpdateKind.REQ_RMT_DATA, 1, 0, regions.region(0), region_owner=0
        )
        node.deliver(request, arrive_time=1.0)
        harness.run()
        rsp = [p for p, _ in harness.sent if p.kind is UpdateKind.RSP_RMT_DATA]
        assert len(rsp) == 1
        assert rsp[0].dst == 1
        assert rsp[0].bbox == regions.region(0)

    def test_req_loc_triggered_by_repeat_requesters(self, circuit, regions):
        schedule = UpdateSchedule(req_loc_every=2, req_rmt_every=100)
        node, harness = make_node(circuit, regions, schedule, wires=())
        node.start()
        harness.run()
        request = build_request(
            UpdateKind.REQ_RMT_DATA, 1, 0, regions.region(0), region_owner=0
        )
        node.deliver(request, arrive_time=1.0)
        harness.run()
        assert not [p for p, _ in harness.sent if p.kind is UpdateKind.REQ_LOC_DATA]
        node.deliver(request, arrive_time=2.0)
        harness.run()
        req_loc = [p for p, _ in harness.sent if p.kind is UpdateKind.REQ_LOC_DATA]
        assert len(req_loc) == 1 and req_loc[0].dst == 1

    def test_req_loc_answered_with_deltas(self, circuit, regions):
        # node 0 routes wire w1 (channels 2-3, cols 5-30: it crosses the
        # bottom regions 2 and 3), then owner 3 pulls its deltas.
        node, harness = make_node(
            circuit, regions, UpdateSchedule(), wires=(1,)
        )
        node.start()
        harness.run()
        assert node.delta.region_dirty_bbox(regions.region(3)) is not None
        req = build_request(
            UpdateKind.REQ_LOC_DATA, 3, 0, regions.region(3), region_owner=3
        )
        node.deliver(req, arrive_time=node.clock + 1.0)
        harness.run()
        rsp = [p for p, _ in harness.sent if p.kind is UpdateKind.RSP_LOC_DATA]
        assert len(rsp) == 1 and rsp[0].dst == 3
        # the served deltas are cleared so they are never double-reported
        assert node.delta.region_dirty_bbox(regions.region(3)) is None


class TestViewMaintenance:
    def test_send_loc_data_replaces_view(self, circuit, regions):
        node, harness = make_node(circuit, regions, UpdateSchedule(), wires=())
        node.start()
        harness.run()
        box = BBox(0, 20, 1, 25)
        values = np.full((2, 6), 7, dtype=np.int32)
        packet = UpdatePacket(UpdateKind.SEND_LOC_DATA, 1, 0, box, values, 1)
        node.deliver(packet, arrive_time=1.0)
        harness.run()
        assert node.view[0, 22] == 7

    def test_send_rmt_data_accumulates_into_view_and_delta(self, circuit, regions):
        node, harness = make_node(circuit, regions, UpdateSchedule(), wires=())
        node.start()
        harness.run()
        own = regions.region(0)
        box = BBox(own.c_lo, own.x_lo, own.c_lo, own.x_lo)
        values = np.array([[3]], dtype=np.int32)
        packet = UpdatePacket(UpdateKind.SEND_RMT_DATA, 1, 0, box, values, 0)
        node.deliver(packet, arrive_time=1.0)
        harness.run()
        assert node.view[own.c_lo, own.x_lo] == 3
        assert node.delta.data[own.c_lo, own.x_lo] == 3

    def test_done_node_still_serves_requests(self, circuit, regions):
        node, harness = make_node(
            circuit, regions, UpdateSchedule.sender_initiated(100, 100)
        )
        node.start()
        harness.run()
        assert node.is_done and node.phase == NodePhase.DONE
        request = build_request(
            UpdateKind.REQ_RMT_DATA, 2, 0, regions.region(0), region_owner=0
        )
        node.deliver(request, arrive_time=node.clock + 5.0)
        harness.run()
        assert any(p.kind is UpdateKind.RSP_RMT_DATA for p, _ in harness.sent)


class TestIterations:
    def test_two_iterations_route_each_wire_twice(self, circuit, regions):
        node, harness = make_node(
            circuit, regions, UpdateSchedule(), wires=(0, 2), iterations=2
        )
        node.start()
        harness.run()
        assert node.qi == 4
        commits = [w for _, w, _ in harness.commits]
        assert commits == [0, 2, 0, 2]
        ripups = [w for _, w, _ in harness.ripups]
        assert ripups == [0, 2]

    def test_clock_monotone_through_run(self, circuit, regions):
        node, harness = make_node(
            circuit, regions, UpdateSchedule.sender_initiated(2, 2), iterations=2
        )
        node.start()
        harness.run()
        times = [t for _, _, t in harness.commits]
        assert times == sorted(times)
        assert node.finish_time_s == pytest.approx(node.clock)
