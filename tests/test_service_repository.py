"""Tests for the SQLite result repository (service.repository)."""

from __future__ import annotations

import multiprocessing
import sqlite3

import pytest

from repro.service.repository import REPOSITORY_SCHEMA, Repository


@pytest.fixture
def repo(tmp_path):
    r = Repository(tmp_path / "svc.sqlite")
    yield r
    r.close()


class TestJobs:
    def test_add_and_get_round_trip(self, repo):
        repo.add_job("j1", "fp1", "route", {"which": "bnrE", "iterations": 2})
        job = repo.get_job("j1")
        assert job["job_id"] == "j1"
        assert job["fingerprint"] == "fp1"
        assert job["status"] == "queued"
        assert job["config"] == {"which": "bnrE", "iterations": 2}
        assert job["submitted_unix"] > 0
        assert job["started_unix"] is None

    def test_get_missing_job_is_none(self, repo):
        assert repo.get_job("absent") is None

    def test_status_lifecycle_stamps_timestamps(self, repo):
        repo.add_job("j1", "fp1", "route", {})
        repo.set_status("j1", "running")
        running = repo.get_job("j1")
        assert running["status"] == "running"
        assert running["started_unix"] is not None
        repo.set_status("j1", "done")
        done = repo.get_job("j1")
        assert done["status"] == "done"
        assert done["finished_unix"] >= done["started_unix"]

    def test_failed_status_records_error(self, repo):
        repo.add_job("j1", "fp1", "route", {})
        repo.set_status("j1", "failed", error="boom")
        assert repo.get_job("j1")["error"] == "boom"

    def test_dedup_submission_keeps_its_own_row(self, repo):
        repo.add_job("j1", "fp1", "route", {})
        repo.add_job("j2", "fp1", "route", {}, source="dedup", dedup_of="j1")
        assert repo.get_job("j2")["dedup_of"] == "j1"
        assert len(repo.jobs()) == 2

    def test_jobs_filter_and_counts(self, repo):
        repo.add_job("j1", "fp1", "route", {})
        repo.add_job("j2", "fp2", "mp", {}, status="done")
        repo.add_job("j3", "fp3", "sm", {}, status="done")
        assert {j["job_id"] for j in repo.jobs(status="done")} == {"j2", "j3"}
        assert repo.counts() == {"queued": 1, "done": 2}


class TestResults:
    def test_record_and_get_round_trip(self, repo):
        repo.record_result(
            "fp1", "route", {"which": "bnrE"}, {"quality": 42},
            telemetry={"counters": {"x": 1}}, wall_s=0.5,
        )
        record = repo.get_result("fp1")
        assert record["payload"] == {"quality": 42}
        assert record["config"] == {"which": "bnrE"}
        assert record["telemetry"] == {"counters": {"x": 1}}
        assert record["wall_s"] == 0.5

    def test_miss_is_none(self, repo):
        assert repo.get_result("absent") is None

    def test_record_is_idempotent_per_fingerprint(self, repo):
        repo.record_result("fp1", "route", {}, {"v": 1})
        repo.record_result("fp1", "route", {}, {"v": 2})
        assert repo.get_result("fp1")["payload"] == {"v": 2}
        assert len(repo.history()) == 1

    def test_wrong_schema_version_is_a_miss(self, repo):
        repo.record_result("fp1", "route", {}, {"v": 1})
        with repo._lock:
            repo._conn.execute(
                "UPDATE results SET schema_version = ?", (REPOSITORY_SCHEMA + 1,)
            )
            repo._conn.commit()
        assert repo.get_result("fp1") is None

    def test_undecodable_payload_is_a_miss(self, repo):
        repo.record_result("fp1", "route", {}, {"v": 1})
        with repo._lock:
            repo._conn.execute(
                "UPDATE results SET payload = ?", ("{not json",)
            )
            repo._conn.commit()
        assert repo.get_result("fp1") is None

    def test_history_filters_by_kind(self, repo):
        repo.record_result("fp1", "route", {}, {})
        repo.record_result("fp2", "experiment", {}, {})
        kinds = [r["kind"] for r in repo.history(kind="experiment")]
        assert kinds == ["experiment"]


class TestCorruptionRecovery:
    def test_garbage_file_is_moved_aside_and_recreated(self, tmp_path):
        db = tmp_path / "svc.sqlite"
        db.write_bytes(b"\x00\x01 this is not a database " * 10)
        repo = Repository(db)
        try:
            assert repo.get_result("anything") is None
            repo.record_result("fp1", "route", {}, {"v": 1})
            assert repo.get_result("fp1")["payload"] == {"v": 1}
        finally:
            repo.close()
        assert (tmp_path / "svc.sqlite.corrupt.0").exists()

    def test_truncated_database_recovers(self, tmp_path):
        db = tmp_path / "svc.sqlite"
        first = Repository(db)
        first.record_result("fp1", "route", {}, {"v": 1})
        first.close()
        db.write_bytes(db.read_bytes()[:100])
        repo = Repository(db)
        try:
            # Whether sqlite rejects the truncated header at open (file
            # moved aside) or only at first read, the contract holds:
            # degrade to a miss, stay writable.
            assert repo.get_result("fp1") is None
            repo.record_result("fp2", "route", {}, {"v": 2})
            assert repo.get_result("fp2")["payload"] == {"v": 2}
        finally:
            repo.close()

    def test_memory_database_never_recovers_silently(self):
        repo = Repository(":memory:")
        repo.record_result("fp1", "route", {}, {"v": 1})
        assert repo.get_result("fp1")["payload"] == {"v": 1}
        repo.close()


def _record_from_process(item):
    """Module-level pool worker (picklable under spawn)."""
    db_path, worker_id = item
    repo = Repository(db_path)
    try:
        for n in range(10):
            repo.record_result(
                "shared-fp", "route", {"worker": worker_id},
                {"worker": worker_id, "n": n},
            )
            repo.add_job(f"w{worker_id}-j{n}", "shared-fp", "route", {})
    finally:
        repo.close()
    return worker_id


class TestConcurrentAccess:
    def test_two_processes_racing_on_one_fingerprint(self, tmp_path):
        db = tmp_path / "svc.sqlite"
        ctx = multiprocessing.get_context("spawn")
        with ctx.Pool(2) as pool:
            results = pool.map(
                _record_from_process, [(str(db), 1), (str(db), 2)]
            )
        assert sorted(results) == [1, 2]
        repo = Repository(db)
        try:
            record = repo.get_result("shared-fp")
            assert record["payload"]["worker"] in (1, 2)
            assert len(repo.jobs(limit=100)) == 20  # every submission kept
            # The database itself is intact.
            check = repo._conn.execute("PRAGMA integrity_check").fetchone()[0]
            assert check == "ok"
        finally:
            repo.close()

    def test_threaded_use_through_one_instance(self, repo):
        import threading

        def work(worker_id):
            for n in range(25):
                repo.record_result(f"fp-{worker_id}-{n}", "route", {}, {"n": n})
                repo.add_job(f"j-{worker_id}-{n}", f"fp-{worker_id}-{n}", "route", {})

        threads = [threading.Thread(target=work, args=(i,)) for i in range(4)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert len(repo.history(limit=200)) == 100
        assert repo.counts() == {"queued": 100}
