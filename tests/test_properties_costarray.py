"""Property-based tests for the CostArray (hypothesis).

The cost array is the data structure everything else balances on: the
router prices candidates through ``row_prefix`` / ``column_range_sums``,
the simulators mutate it through ``apply_path`` / ``remove_path`` /
``accumulate``, and the verification layer assumes those operations are
exact inverses.  These properties pin the algebra down against brute
force over arbitrary shapes and contents.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import GridError
from repro.grid.bbox import BBox
from repro.grid.cost_array import CostArray

MAX_CHANNELS = 8
MAX_GRIDS = 24


@st.composite
def grids(draw):
    """A small CostArray with arbitrary non-negative contents."""
    n_channels = draw(st.integers(1, MAX_CHANNELS))
    n_grids = draw(st.integers(1, MAX_GRIDS))
    values = draw(
        st.lists(
            st.integers(0, 9),
            min_size=n_channels * n_grids,
            max_size=n_channels * n_grids,
        )
    )
    data = np.array(values, dtype=np.int32).reshape(n_channels, n_grids)
    return CostArray(n_channels, n_grids, data)


@st.composite
def grids_with_cells(draw):
    """A CostArray plus a unique sorted flat cell subset (a path's cells)."""
    array = draw(grids())
    total = array.n_channels * array.n_grids
    cells = draw(
        st.lists(st.integers(0, total - 1), unique=True, max_size=min(total, 32))
    )
    return array, np.array(sorted(cells), dtype=np.int64)


@st.composite
def grids_with_box(draw):
    """A CostArray plus a bbox inside it."""
    array = draw(grids())
    c_lo = draw(st.integers(0, array.n_channels - 1))
    c_hi = draw(st.integers(c_lo, array.n_channels - 1))
    x_lo = draw(st.integers(0, array.n_grids - 1))
    x_hi = draw(st.integers(x_lo, array.n_grids - 1))
    return array, BBox(c_lo, x_lo, c_hi, x_hi)


@given(grids_with_cells(), st.integers(1, 3))
def test_apply_remove_round_trip(array_cells, delta):
    array, cells = array_cells
    before = array.data.copy()
    array.apply_path(cells, delta)
    assert array.total_occupancy() == before.sum() + delta * cells.size
    array.remove_path(cells, delta)
    np.testing.assert_array_equal(array.data, before)


@given(grids_with_cells())
def test_apply_adds_exactly_one_per_cell(array_cells):
    array, cells = array_cells
    before = array.data.copy()
    array.apply_path(cells)
    diff = array.data.reshape(-1) - before.reshape(-1)
    expected = np.zeros(array.n_channels * array.n_grids, dtype=np.int32)
    if cells.size:
        expected[cells] = 1
    np.testing.assert_array_equal(diff, expected)


@given(grids_with_cells())
def test_path_cost_is_brute_force_sum(array_cells):
    array, cells = array_cells
    expected = sum(int(array.data.reshape(-1)[c]) for c in cells)
    assert array.path_cost(cells) == expected


@given(grids_with_cells())
def test_strict_remove_rejects_unapplied_path(array_cells):
    array, cells = array_cells
    if cells.size == 0:
        return
    # Zero one covered cell, then rip up at a delta its entry can't cover.
    array.data.reshape(-1)[cells[0]] = 0
    with pytest.raises(GridError):
        array.remove_path(cells, delta=1, strict=True)


@given(grids())
def test_row_prefix_matches_brute_force(array):
    for c in range(array.n_channels):
        p = array.row_prefix(c)
        assert p.shape == (array.n_grids + 1,)
        assert p[0] == 0
        for x in range(array.n_grids):
            assert p[x + 1] == int(array.data[c, : x + 1].sum())


@given(grids_with_box())
def test_row_prefix_range_identity(array_box):
    array, box = array_box
    # The router's inclusive range-sum identity: sum[a..b] == p[b+1] - p[a].
    for c in range(array.n_channels):
        p = array.row_prefix(c)
        expected = int(array.data[c, box.x_lo : box.x_hi + 1].sum())
        assert p[box.x_hi + 1] - p[box.x_lo] == expected


@given(grids_with_box())
def test_column_range_sums_match_brute_force(array_box):
    array, box = array_box
    sums = array.column_range_sums(box.c_lo, box.c_hi, box.x_lo, box.x_hi)
    assert sums.shape == (box.width,)
    for i, x in enumerate(range(box.x_lo, box.x_hi + 1)):
        expected = sum(int(array.data[c, x]) for c in range(box.c_lo, box.c_hi + 1))
        assert sums[i] == expected


@given(grids_with_box())
def test_column_range_sums_empty_row_range(array_box):
    array, box = array_box
    sums = array.column_range_sums(box.c_hi + 1, box.c_hi, box.x_lo, box.x_hi)
    np.testing.assert_array_equal(sums, np.zeros(box.width, dtype=np.int64))


@given(grids_with_box())
def test_extract_replace_round_trip(array_box):
    array, box = array_box
    before = array.data.copy()
    block = array.extract(box)
    assert block.shape == (box.height, box.width)
    # extract must copy, never alias
    block += 1
    np.testing.assert_array_equal(array.data, before)
    array.replace(box, block)
    rows, cols = box.slices()
    np.testing.assert_array_equal(array.data[rows, cols], before[rows, cols] + 1)


@given(grids_with_box(), st.integers(-3, 3))
def test_accumulate_is_elementwise_add(array_box, delta):
    array, box = array_box
    before = array.data.copy()
    deltas = np.full((box.height, box.width), delta, dtype=np.int32)
    array.accumulate(box, deltas)
    rows, cols = box.slices()
    np.testing.assert_array_equal(array.data[rows, cols], before[rows, cols] + delta)
    # cells outside the box untouched
    mask = np.ones(array.shape, dtype=bool)
    mask[rows, cols] = False
    np.testing.assert_array_equal(array.data[mask], before[mask])


@settings(max_examples=50)
@given(grids())
def test_total_occupancy_and_channel_maxima(array):
    assert array.total_occupancy() == int(array.data.sum())
    maxima = array.channel_maxima()
    assert maxima.shape == (array.n_channels,)
    for c in range(array.n_channels):
        assert maxima[c] == int(array.data[c].max())
