"""The grid-paint wave planner vs the O(n^2) recurrence oracle.

``plan_waves`` replaced the per-wire vectorized overlap test against all
earlier wires with a grid-paint skyline index; ``plan_waves_reference``
keeps the original recurrence as the differential oracle.  Contract:
identical wave decompositions for *every* order and footprint set —
including degenerate all-overlapping stacks (everything serializes into
size-1 waves), all-disjoint layouts (one wave), inverted boxes (defined
only by the recurrence's interval tests; the index must defer), and
giant footprints spanning the whole grid (exercising the lazy/coarse
slot layers).
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.route.wavefront import (
    WAVE_CACHE_MAX_ORDERS,
    _INDEX_MIN_WIRES,
    plan_waves,
    plan_waves_reference,
)

# Everything here runs above the small-input cutoff so the indexed code
# path (not the reference fallback) is what's exercised.
N_WIRES = max(_INDEX_MIN_WIRES, 96) + 32


def footprint_strategy(allow_inverted: bool):
    coord = st.integers(min_value=0, max_value=19)
    x = st.integers(min_value=0, max_value=220)
    if allow_inverted:
        return st.tuples(coord, x, coord, x)

    def ordered(c0, x0, dc, dx):
        return (c0, x0, c0 + dc, x0 + dx)

    return st.builds(
        ordered,
        coord,
        x,
        st.integers(min_value=0, max_value=6),
        st.integers(min_value=0, max_value=90),
    )


@settings(max_examples=60, deadline=None)
@given(data=st.data(), allow_inverted=st.booleans())
def test_index_matches_recurrence(data, allow_inverted):
    footprints = {
        i: data.draw(footprint_strategy(allow_inverted), label=f"fp{i}")
        for i in range(N_WIRES)
    }
    order = data.draw(st.permutations(list(range(N_WIRES))))
    assert plan_waves(order, footprints) == plan_waves_reference(order, footprints)


@settings(max_examples=25, deadline=None)
@given(data=st.data())
def test_index_matches_recurrence_partial_orders(data):
    footprints = {
        i: data.draw(footprint_strategy(False), label=f"fp{i}")
        for i in range(N_WIRES * 2)
    }
    subset = data.draw(
        st.lists(
            st.sampled_from(list(range(N_WIRES * 2))),
            min_size=N_WIRES,
            max_size=N_WIRES,
            unique=True,
        )
    )
    assert plan_waves(subset, footprints) == plan_waves_reference(subset, footprints)


def test_degenerate_all_overlapping():
    footprints = {i: (0, 0, 40, 3000) for i in range(N_WIRES)}
    order = list(range(N_WIRES))
    waves = plan_waves(order, footprints)
    assert waves == plan_waves_reference(order, footprints)
    assert waves == [[i] for i in order]  # full serialization


def test_degenerate_all_disjoint():
    footprints = {i: (i % 30, (i // 30) * 9, i % 30, (i // 30) * 9 + 7) for i in range(N_WIRES)}
    order = list(range(N_WIRES))
    waves = plan_waves(order, footprints)
    assert waves == plan_waves_reference(order, footprints)
    assert waves == [order]  # one wave: nothing overlaps


def test_giant_and_tiny_mixture():
    footprints = {}
    for i in range(N_WIRES):
        if i % 17 == 0:
            footprints[i] = (0, 0, 25, 2900)  # spans many coarse slots
        else:
            c, x = (i * 7) % 26, (i * 131) % 2800
            footprints[i] = (c, x, c + 1, x + 12)
    order = list(range(N_WIRES))
    assert plan_waves(order, footprints) == plan_waves_reference(order, footprints)


def test_small_inputs_fall_back_to_reference():
    footprints = {i: (0, i, 0, i + 1) for i in range(4)}
    assert plan_waves([0, 1, 2, 3], footprints) == plan_waves_reference(
        [0, 1, 2, 3], footprints
    )


def test_wave_cache_is_bounded():
    from repro.circuits import Circuit, Pin, Wire
    from repro.route.wavefront import route_iteration_wavefront
    from repro.grid import CostArray

    n = WAVE_CACHE_MAX_ORDERS + 8  # more wires than trials: rotations stay distinct
    wires = [
        Wire(f"w{i}", {Pin(x=i, channel=0), Pin(x=i + 1, channel=1)})
        for i in range(n)
    ]
    circuit = Circuit("cache-test", 4, n + 2, wires)
    cost = CostArray(circuit.n_channels, circuit.n_grids)
    base = list(range(len(wires)))
    orders = []
    for k in range(WAVE_CACHE_MAX_ORDERS + 5):
        order = base[k % len(base) :] + base[: k % len(base)]
        orders.append(tuple(order))
        route_iteration_wavefront(cost, circuit, order, {}, tie_break=0)
    cache = getattr(circuit, "_wf_waves")
    assert len(cache) <= WAVE_CACHE_MAX_ORDERS
    # Most-recently-used orders survive; the oldest were evicted.
    for order in orders[-WAVE_CACHE_MAX_ORDERS:]:
        assert order in cache
    assert orders[0] not in cache
