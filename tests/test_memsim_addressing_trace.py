"""Tests for address mapping and reference traces."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import CoherenceError
from repro.memsim import AddressMap, ReferenceTrace, WORD_BYTES


class TestAddressMap:
    def test_words_per_line(self):
        amap = AddressMap(4, 40, 16)
        assert amap.words_per_line == 4
        assert amap.line_size == 16

    def test_line_count_covers_array(self):
        amap = AddressMap(4, 40, 8)
        assert amap.n_lines == (4 * 40 * WORD_BYTES) // 8

    def test_extra_words_extend_line_count(self):
        base = AddressMap(4, 40, 8)
        extended = AddressMap(4, 40, 8, extra_words=100)
        assert extended.n_lines > base.n_lines

    @pytest.mark.parametrize("bad", [2, 3, 12, 0])
    def test_bad_line_sizes_rejected(self, bad):
        with pytest.raises(CoherenceError):
            AddressMap(4, 40, bad)

    def test_negative_extra_words_rejected(self):
        with pytest.raises(CoherenceError):
            AddressMap(4, 40, 8, extra_words=-1)

    def test_cells_to_lines_dedupes(self):
        amap = AddressMap(4, 40, 16)  # 4 words per line
        cells = np.array([0, 1, 2, 3, 4], dtype=np.int64)
        assert list(amap.cells_to_lines(cells)) == [0, 1]

    def test_word_sized_lines_one_per_cell(self):
        amap = AddressMap(4, 40, 4)
        cells = np.array([0, 7, 19], dtype=np.int64)
        assert list(amap.cells_to_lines(cells)) == [0, 7, 19]

    def test_cell_address(self):
        amap = AddressMap(4, 40, 8)
        assert list(amap.cell_address(np.array([0, 3]))) == [0, 12]

    def test_rect_to_lines(self):
        amap = AddressMap(4, 40, 8)  # 2 words/line; rows are 20 lines wide
        lines = amap.rect_to_lines(0, 0, 1, 3)
        # row 0 cols 0-3 -> lines 0,1 ; row 1 cols 0-3 -> words 40-43 -> lines 20,21
        assert list(lines) == [0, 1, 20, 21]

    def test_rect_degenerate_rejected(self):
        amap = AddressMap(4, 40, 8)
        with pytest.raises(CoherenceError):
            amap.rect_to_lines(2, 0, 1, 3)


class TestReferenceTrace:
    def test_add_and_counts(self):
        trace = ReferenceTrace()
        trace.add(0.0, 0, False, np.array([1, 2, 3]))
        trace.add(1.0, 1, True, np.array([4]))
        assert trace.n_records == 2
        assert trace.n_references == 4

    def test_empty_bursts_dropped(self):
        trace = ReferenceTrace()
        trace.add(0.0, 0, False, np.empty(0, dtype=np.int64))
        assert trace.n_records == 0

    def test_negative_time_rejected(self):
        trace = ReferenceTrace()
        with pytest.raises(CoherenceError):
            trace.add(-1.0, 0, False, np.array([1]))

    def test_sorted_records_interleaves_by_time(self):
        trace = ReferenceTrace()
        trace.add(2.0, 0, False, np.array([1]))
        trace.add(1.0, 1, True, np.array([2]))
        trace.add(1.0, 2, False, np.array([3]))
        ordered = list(trace.sorted_records())
        assert [r.time for r in ordered] == [1.0, 1.0, 2.0]
        # ties keep append order
        assert [r.proc for r in ordered] == [1, 2, 0]


class TestTraceIO:
    """Round-trip and export tests for trace files."""

    def _sample_trace(self):
        trace = ReferenceTrace()
        trace.add(0.5, 0, False, np.array([1, 2, 3]))
        trace.add(0.1, 2, True, np.array([7]))
        trace.add(0.9, 1, False, np.array([4, 5]))
        return trace

    def test_npz_round_trip(self, tmp_path):
        from repro.memsim import load_trace, save_trace

        trace = self._sample_trace()
        path = tmp_path / "t.npz"
        save_trace(trace, path)
        loaded = load_trace(path)
        assert loaded.n_records == trace.n_records
        assert loaded.n_references == trace.n_references
        for a, b in zip(trace.records, loaded.records):
            assert a.time == b.time and a.proc == b.proc
            assert a.is_write == b.is_write
            assert list(a.flat_cells) == list(b.flat_cells)

    def test_round_trip_preserves_coherence_results(self, tmp_path):
        from repro.memsim import load_trace, save_trace, simulate_trace

        trace = self._sample_trace()
        path = tmp_path / "t.npz"
        save_trace(trace, path)
        amap = AddressMap(2, 16, 8)
        assert (
            simulate_trace(trace, 4, amap).as_dict()
            == simulate_trace(load_trace(path), 4, amap).as_dict()
        )

    def test_empty_trace_round_trip(self, tmp_path):
        from repro.memsim import load_trace, save_trace

        path = tmp_path / "empty.npz"
        save_trace(ReferenceTrace(), path)
        assert load_trace(path).n_records == 0

    def test_dinero_export(self, tmp_path):
        from repro.memsim import export_dinero

        trace = self._sample_trace()
        path = tmp_path / "t.din"
        n = export_dinero(trace, path)
        lines = path.read_text().splitlines()
        assert n == len(lines) == trace.n_references
        # time-ordered: the write at t=0.1 comes first
        assert lines[0] == "1 1c"  # cell 7 * 4 bytes = 0x1c
        assert all(line.split()[0] in ("0", "1") for line in lines)
