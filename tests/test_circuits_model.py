"""Unit tests for the circuit data model."""

from __future__ import annotations

import pytest

from repro.circuits import Circuit, Pin, Wire
from repro.errors import CircuitError


class TestPin:
    def test_ordering_by_x_then_channel(self):
        assert Pin(1, 5) < Pin(2, 0)
        assert Pin(2, 1) < Pin(2, 3)

    def test_negative_coordinates_rejected(self):
        with pytest.raises(CircuitError):
            Pin(-1, 0)
        with pytest.raises(CircuitError):
            Pin(0, -2)

    def test_as_tuple(self):
        assert Pin(7, 3).as_tuple() == (7, 3)

    def test_pins_hashable_and_equal(self):
        assert Pin(1, 2) == Pin(1, 2)
        assert len({Pin(1, 2), Pin(1, 2), Pin(2, 1)}) == 2


class TestWire:
    def test_pins_sorted_on_construction(self):
        wire = Wire("w", [Pin(9, 1), Pin(2, 0), Pin(5, 3)])
        assert [p.x for p in wire.pins] == [2, 5, 9]

    def test_requires_two_pins(self):
        with pytest.raises(CircuitError):
            Wire("w", [Pin(1, 1)])

    def test_duplicate_pins_rejected(self):
        with pytest.raises(CircuitError):
            Wire("w", [Pin(1, 1), Pin(1, 1)])

    def test_leftmost_pin(self):
        wire = Wire("w", [Pin(9, 1), Pin(2, 0)])
        assert wire.leftmost_pin == Pin(2, 0)

    def test_spans(self):
        wire = Wire("w", [Pin(2, 0), Pin(12, 3), Pin(7, 1)])
        assert wire.x_span == 10
        assert wire.channel_span == 3

    def test_bounding_box(self):
        wire = Wire("w", [Pin(2, 3), Pin(12, 1)])
        assert wire.bounding_box == (1, 2, 3, 12)

    def test_length_cost_is_chain_manhattan(self):
        wire = Wire("w", [Pin(0, 0), Pin(5, 2), Pin(9, 0)])
        # chain: (0,0)->(5,2): 5+2=7; (5,2)->(9,0): 4+2=6
        assert wire.length_cost() == 13

    def test_segments_are_consecutive_pairs(self):
        wire = Wire("w", [Pin(0, 0), Pin(5, 2), Pin(9, 0)])
        segs = list(wire.segments())
        assert len(segs) == 2
        assert segs[0] == (Pin(0, 0), Pin(5, 2))
        assert segs[1] == (Pin(5, 2), Pin(9, 0))


class TestCircuit:
    def test_valid_circuit(self):
        circuit = Circuit("c", 4, 20, [Wire("a", [Pin(0, 0), Pin(5, 1)])])
        assert circuit.n_wires == 1
        assert circuit.shape == (4, 20)

    def test_rejects_off_grid_pins(self):
        with pytest.raises(CircuitError):
            Circuit("c", 4, 20, [Wire("a", [Pin(0, 0), Pin(25, 1)])])
        with pytest.raises(CircuitError):
            Circuit("c", 4, 20, [Wire("a", [Pin(0, 0), Pin(5, 4)])])

    def test_rejects_duplicate_wire_names(self):
        wires = [
            Wire("a", [Pin(0, 0), Pin(5, 1)]),
            Wire("a", [Pin(1, 0), Pin(6, 1)]),
        ]
        with pytest.raises(CircuitError):
            Circuit("c", 4, 20, wires)

    def test_rejects_degenerate_dimensions(self):
        with pytest.raises(CircuitError):
            Circuit("c", 0, 20)

    def test_iteration_and_indexing(self):
        wires = [Wire("a", [Pin(0, 0), Pin(5, 1)]), Wire("b", [Pin(1, 0), Pin(2, 1)])]
        circuit = Circuit("c", 4, 20, wires)
        assert list(circuit) == list(wires)
        assert circuit.wire(1).name == "b"
        assert len(circuit) == 2

    def test_with_wires_replaces(self):
        circuit = Circuit("c", 4, 20, [Wire("a", [Pin(0, 0), Pin(5, 1)])])
        other = circuit.with_wires([Wire("z", [Pin(2, 2), Pin(3, 3)])])
        assert other.n_wires == 1
        assert other.wire(0).name == "z"
        assert circuit.wire(0).name == "a"

    def test_describe_mentions_size(self):
        circuit = Circuit("c", 4, 20, [Wire("a", [Pin(0, 0), Pin(5, 1)])])
        text = circuit.describe()
        assert "4 channels" in text and "20 routing grids" in text
