"""Tests for the fault-injection and graceful-degradation layer."""

from __future__ import annotations

import pytest

from repro.circuits import bnre_like
from repro.errors import FaultPlanError
from repro.events import Simulator
from repro.faults import (
    FaultInjector,
    FaultPlan,
    LinkWindow,
    NodeStall,
    RecoveryPolicy,
)
from repro.harness.cache import jsonify, stable_hash
from repro.netsim import MeshTopology, Message, WormholeNetwork
from repro.parallel import run_message_passing
from repro.updates import UpdateSchedule


def quick_run(**kwargs):
    circuit = bnre_like(n_wires=160)
    schedule = kwargs.pop(
        "schedule", UpdateSchedule.receiver_initiated(1, 5, blocking=True)
    )
    return run_message_passing(circuit, schedule, iterations=2, **kwargs)


class TestFaultPlanValidation:
    def test_default_plan_is_fault_free(self):
        plan = FaultPlan()
        assert not plan.has_packet_faults
        assert plan.recovery is not None  # recovery armed by default

    @pytest.mark.parametrize("field", ["drop_prob", "duplicate_prob", "delay_prob", "reorder_prob"])
    @pytest.mark.parametrize("value", [-0.1, 1.5])
    def test_bad_probability_rejected(self, field, value):
        with pytest.raises(FaultPlanError):
            FaultPlan(**{field: value})

    def test_bad_kind_probability_rejected(self):
        with pytest.raises(FaultPlanError):
            FaultPlan(drop_prob_by_kind=(("RSP_RMT_DATA", 2.0),))

    def test_bad_window_rejected(self):
        with pytest.raises(FaultPlanError):
            LinkWindow(link=0, start_s=2.0, end_s=1.0)
        with pytest.raises(FaultPlanError):
            LinkWindow(link=0, start_s=0.0, end_s=1.0, slowdown=0.5)

    def test_bad_stall_rejected(self):
        with pytest.raises(FaultPlanError):
            NodeStall(proc=-1, start_s=0.0, end_s=1.0)

    def test_bad_recovery_rejected(self):
        with pytest.raises(FaultPlanError):
            RecoveryPolicy(watchdog_timeout_s=0.0)
        with pytest.raises(FaultPlanError):
            RecoveryPolicy(backoff_factor=0.5)
        with pytest.raises(FaultPlanError):
            RecoveryPolicy(max_retries=-1)

    def test_kind_overrides_fall_back_to_global(self):
        plan = FaultPlan(drop_prob=0.1, drop_prob_by_kind=(("RSP_RMT_DATA", 0.9),))
        assert plan.kind_drop_prob("RSP_RMT_DATA") == 0.9
        assert plan.kind_drop_prob("REQ_RMT_DATA") == 0.1
        assert plan.kind_drop_prob(None) == 0.1


class TestInjectorDeterminism:
    def _decisions(self, seed, n=200):
        injector = FaultInjector(FaultPlan(seed=seed, drop_prob=0.3, duplicate_prob=0.2))
        msgs = [Message(0, 1, 10, None) for _ in range(n)]
        return [(d.drop, d.copies, d.extra_delay_s) for d in map(injector.on_send, msgs)]

    def test_same_seed_same_decisions(self):
        assert self._decisions(42) == self._decisions(42)

    def test_different_seed_different_decisions(self):
        assert self._decisions(1) != self._decisions(2)

    def test_stats_track_decisions(self):
        injector = FaultInjector(FaultPlan(seed=0, drop_prob=1.0))
        d = injector.on_send(Message(0, 1, 10, None))
        assert d.drop and d.copies == 0
        assert injector.stats.send_attempts == 1
        assert injector.stats.dropped == 1
        assert injector.stats.bytes_dropped == 10
        assert injector.stats.lossy


class TestNetworkFaultHooks:
    def _net(self, plan):
        sim = Simulator()
        deliveries = []
        net = WormholeNetwork(
            sim, MeshTopology(16), deliveries.append, faults=FaultInjector(plan)
        )
        return sim, net, deliveries

    def test_dropped_packet_never_enters_counters(self):
        sim, net, deliveries = self._net(FaultPlan(drop_prob=1.0))
        assert net.send(Message(0, 1, 10, "x")) is None
        sim.run()
        assert deliveries == []
        assert net.messages_injected == 0
        assert net.in_flight == 0
        assert float(net._link_busy_s.sum()) == 0.0

    def test_duplicate_transmits_two_copies(self):
        sim, net, deliveries = self._net(FaultPlan(duplicate_prob=1.0))
        net.send(Message(0, 1, 10, "x"))
        sim.run()
        assert len(deliveries) == 2
        assert net.messages_injected == net.messages_delivered == 2

    def test_outage_window_defers_train_start(self):
        # Link 0 is node 0's X link (route 0 -> 1); out for [0, 1ms).
        plan = FaultPlan(link_windows=(LinkWindow(link=0, start_s=0.0, end_s=1e-3),))
        sim, net, deliveries = self._net(plan)
        net.send(Message(0, 1, 10, "x"))
        sim.run()
        assert deliveries[0].arrive_time > 1e-3
        assert net.faults.stats.outage_deferrals == 1

    def test_slowdown_window_stretches_transfer(self):
        plan = FaultPlan(
            link_windows=(LinkWindow(link=0, start_s=0.0, end_s=1.0, slowdown=3.0),)
        )
        sim, net, deliveries = self._net(plan)
        net.send(Message(0, 1, 10, "x"))
        sim.run()
        base = net.uncontended_latency(0, 1, 10)
        assert deliveries[0].latency > base
        assert net.faults.stats.slowdown_hits == 1

    def test_node_stall_holds_delivery(self):
        plan = FaultPlan(node_stalls=(NodeStall(proc=1, start_s=0.0, end_s=5e-3),))
        sim, net, deliveries = self._net(plan)
        net.send(Message(0, 1, 10, "x"))
        sim.run()
        assert deliveries[0].arrive_time == pytest.approx(5e-3)
        assert net.faults.stats.deliveries_stalled == 1


class TestGracefulDegradation:
    def test_blocking_run_survives_total_response_loss(self):
        """100% RSP_RMT_DATA drop: the watchdog must prevent deadlock."""
        plan = FaultPlan(seed=3, drop_prob_by_kind=(("RSP_RMT_DATA", 1.0),))
        result = quick_run(faults=plan)
        # every wire routed, in bounded virtual time (each doomed request
        # costs at most 1+2+4+8 ms of watchdog waiting)
        assert len(result.paths) == 160
        assert result.exec_time_s < 30.0
        recovery = result.meta["faults"]["recovery"]
        assert recovery["requests_abandoned"] > 0
        assert recovery["retries_sent"] > 0
        injected = result.meta["faults"]["injected"]
        assert injected["dropped_by_kind"].get("RSP_RMT_DATA", 0) > 0

    def test_without_recovery_total_loss_deadlocks(self):
        """recovery=None really is the pre-watchdog behaviour."""
        from repro.errors import SimulationError

        plan = FaultPlan(
            seed=3, drop_prob_by_kind=(("RSP_RMT_DATA", 1.0),), recovery=None
        )
        with pytest.raises(SimulationError, match="deadlock"):
            quick_run(faults=plan)

    def test_duplicate_responses_are_ignored_not_fatal(self):
        """Satellite fix: duplicated responses must not crash the node."""
        plan = FaultPlan(seed=5, duplicate_prob_by_kind=(("RSP_RMT_DATA", 1.0),))
        result = quick_run(faults=plan)
        recovery = result.meta["faults"]["recovery"]
        assert recovery["duplicate_responses_ignored"] > 0
        assert len(result.paths) == 160

    def test_invariants_green_under_drop_and_duplication(self):
        plan = FaultPlan(seed=11, drop_prob=0.15, duplicate_prob=0.1)
        result = quick_run(faults=plan, check_invariants=True)
        verification = result.meta["verification"]
        assert verification["ok"], verification["violations"]
        # the replica check was waived visibly, not silently skipped
        assert verification["checks_run"].get("replica-convergence-waived", 0) > 0

    def test_faultfree_run_reports_no_faults(self):
        result = quick_run(faults=FaultPlan(seed=9))
        injected = result.meta["faults"]["injected"]
        assert injected["dropped"] == 0 and injected["duplicated"] == 0
        # No request is ever *abandoned* fault-free: the watchdog may fire
        # on slow (not lost) responses, but a response always lands within
        # the retry budget.
        recovery = result.meta["faults"]["recovery"]
        assert recovery["requests_abandoned"] == 0
        assert len(result.paths) == 160

    def test_fault_plan_none_leaves_meta_clean(self):
        result = quick_run()
        assert "faults" not in result.meta


class TestDeterministicFingerprints:
    def _fingerprint(self, seed):
        result = quick_run(faults=FaultPlan(seed=seed, drop_prob=0.2))
        return stable_hash(jsonify(result.summary_dict()))

    def test_same_fault_seed_identical_fingerprint(self):
        assert self._fingerprint(7) == self._fingerprint(7)

    def test_different_fault_seed_different_fingerprint(self):
        assert self._fingerprint(7) != self._fingerprint(8)


class TestCliFaultFlags:
    def test_quick_fault_smoke_exits_zero(self, capsys):
        from repro.cli import main

        rc = main(
            ["mp", "--quick", "--fault-drop", "0.2", "--check-invariants"]
        )
        out = capsys.readouterr().out
        assert rc == 0
        assert "faults:" in out and "recovery:" in out
        assert "0 violations" in out

    def test_fault_seed_changes_fault_stream(self, capsys):
        from repro.cli import main

        outputs = []
        for seed in ("1", "1", "2"):
            assert (
                main(
                    ["mp", "--quick", "--fault-drop", "0.3", "--fault-seed", seed, "--json"]
                )
                == 0
            )
            outputs.append(capsys.readouterr().out)
        assert outputs[0] == outputs[1]
        assert outputs[0] != outputs[2]

    def test_fault_free_cli_has_no_fault_block(self, capsys):
        from repro.cli import main

        assert main(["mp", "--quick"]) == 0
        assert "faults:" not in capsys.readouterr().out
