"""Property-based tests for BBox algebra (hypothesis).

Update packets carry bounding boxes (paper §4.3.1); the protocol
machinery leans on union/intersect/contains being a correct interval
algebra.  Properties are checked against the point-set semantics: a box
IS the set of cells it contains.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.errors import GridError
from repro.grid.bbox import BBox

COORD = st.integers(0, 12)


@st.composite
def boxes(draw):
    c_lo, c_hi = sorted((draw(COORD), draw(COORD)))
    x_lo, x_hi = sorted((draw(COORD), draw(COORD)))
    return BBox(c_lo, x_lo, c_hi, x_hi)


def cell_set(box: BBox) -> set:
    return set(box.cells())


@given(boxes())
def test_area_and_cells_agree(a):
    cells = list(a.cells())
    assert len(cells) == a.area == a.height * a.width
    assert all(a.contains(c, x) for c, x in cells)


@given(boxes(), COORD, COORD)
def test_contains_matches_point_set(a, c, x):
    assert a.contains(c, x) == ((c, x) in cell_set(a))


@given(boxes(), boxes())
def test_union_is_smallest_cover(a, b):
    u = a.union(b)
    assert cell_set(a) <= cell_set(u)
    assert cell_set(b) <= cell_set(u)
    # minimality: every boundary row/column of the union touches a or b
    assert u.c_lo == min(a.c_lo, b.c_lo)
    assert u.c_hi == max(a.c_hi, b.c_hi)
    assert u.x_lo == min(a.x_lo, b.x_lo)
    assert u.x_hi == max(a.x_hi, b.x_hi)


@given(boxes(), boxes())
def test_union_commutative_and_idempotent(a, b):
    assert a.union(b) == b.union(a)
    assert a.union(a) == a


@given(boxes(), boxes())
def test_intersect_matches_point_set(a, b):
    overlap = cell_set(a) & cell_set(b)
    inter = a.intersect(b)
    if inter is None:
        assert overlap == set()
    else:
        assert cell_set(inter) == overlap


@given(boxes(), boxes())
def test_intersect_commutative(a, b):
    assert a.intersect(b) == b.intersect(a)


@given(boxes(), boxes(), boxes())
def test_union_associative(a, b, c):
    assert a.union(b).union(c) == a.union(b.union(c))


@given(boxes(), boxes())
def test_intersection_inside_union(a, b):
    inter = a.intersect(b)
    if inter is not None:
        u = a.union(b)
        assert cell_set(inter) <= cell_set(u)


@given(boxes())
def test_from_points_round_trip(a):
    points = np.array(list(a.cells()), dtype=np.int64)
    assert BBox.from_points(points) == a


@given(boxes(), st.integers(13, 20), st.integers(13, 20))
def test_of_nonzero_recovers_box(a, n_channels, n_grids):
    array = np.zeros((n_channels, n_grids), dtype=np.int32)
    rows, cols = a.slices()
    array[rows, cols] = 1
    assert BBox.of_nonzero(array) == a
    assert BBox.of_nonzero(np.zeros_like(array)) is None


@given(boxes())
def test_slices_select_exactly_the_box(a):
    array = np.zeros((21, 21), dtype=np.int32)
    rows, cols = a.slices()
    array[rows, cols] = 1
    assert int(array.sum()) == a.area


def test_degenerate_and_negative_boxes_rejected():
    with pytest.raises(GridError):
        BBox(3, 0, 2, 5)
    with pytest.raises(GridError):
        BBox(0, 5, 2, 4)
    with pytest.raises(GridError):
        BBox(-1, 0, 2, 4)
