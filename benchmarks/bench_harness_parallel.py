"""Harness smoke bench — parallel fan-out and result caching (quick mode).

Unlike the per-experiment benches this one exercises the *harness
machinery* end to end at quick scale: a serial baseline, a ``jobs > 1``
fan-out over experiment ids, and a warm second pass over a shared cache.
Correctness (row identity, cache hits, a well-formed
``BENCH_harness.json``) is asserted; timing is *reported* only — the
speedup depends on how many cores the host actually has, so a hard
assertion would be flaky on small CI machines.
"""

from __future__ import annotations

import json
import os

from repro.harness import run_all
from repro.harness.runner import BENCH_FILENAME
from repro.obs import telemetry as obs

#: A mixed, sweep-heavy subset: two table sweeps, two single-row checks.
SMOKE_IDS = ["T1", "T6", "X2", "X4"]


def _quiet_run(**kwargs):
    return run_all(SMOKE_IDS, quick=True, echo=False, **kwargs)


def test_parallel_rows_match_serial(benchmark, capsys):
    """Fan-out over ids must be row-identical to the serial baseline."""
    serial = _quiet_run()
    jobs = min(4, os.cpu_count() or 1)
    parallel = benchmark.pedantic(
        lambda: _quiet_run(jobs=jobs), rounds=1, iterations=1
    )
    assert [r.exp_id for r in parallel] == SMOKE_IDS
    for a, b in zip(serial, parallel):
        assert a.rows == b.rows, f"{a.exp_id} rows diverged under jobs={jobs}"
        assert a.checks == b.checks
    with capsys.disabled():
        print(f"\n  parallel harness ok: {len(parallel)} experiments, "
              f"jobs={jobs}, rows identical to serial")


def test_warm_cache_serves_identical_results(benchmark, capsys, tmp_path):
    """A warm cache pass must hit every experiment and change nothing."""
    cache_dir = tmp_path / "cache"
    cold = _quiet_run(cache_dir=cache_dir)
    before = obs.snapshot()["counters"].get("cache.experiment.hits", 0)
    warm = benchmark.pedantic(
        lambda: _quiet_run(cache_dir=cache_dir), rounds=1, iterations=1
    )
    hits = obs.snapshot()["counters"].get("cache.experiment.hits", 0) - before
    assert hits == len(SMOKE_IDS), "warm pass missed the cache"
    for a, b in zip(cold, warm):
        assert a.rows == b.rows
        assert a.checks == b.checks
    with capsys.disabled():
        print(f"\n  warm cache ok: {hits}/{len(SMOKE_IDS)} experiment hits")


def test_bench_record_well_formed(benchmark, capsys, tmp_path):
    """The harness telemetry record carries totals worth reporting."""
    result = benchmark.pedantic(
        lambda: _quiet_run(out_dir=tmp_path, cache_dir=tmp_path / "cache"),
        rounds=1,
        iterations=1,
    )
    assert all(r.passed for r in result)
    payload = json.loads((tmp_path / BENCH_FILENAME).read_text())
    assert payload["schema"] == "bench-harness/1"
    assert payload["totals"]["experiments"] == len(SMOKE_IDS)
    assert payload["totals"]["events_processed"] > 0
    assert payload["totals"]["events_per_s"] > 0
    with capsys.disabled():
        totals = payload["totals"]
        print(f"\n  {totals['events_processed']} events in "
              f"{totals['wall_s']:.2f}s wall "
              f"({totals['events_per_s']:.0f} events/s), "
              f"cache {totals['cache']}")
