#!/usr/bin/env python
"""Performance regression suite for the simulation kernels.

Measures the reference (scalar) and vectorized (columnar NumPy) kernels
on the same workloads, asserts their outputs are bit-identical, and
writes the results as JSON (``BENCH_perf.json`` at the repo root is the
committed baseline).  Two modes:

``--out PATH``
    Run the suite and write a fresh results file (the default writes
    ``BENCH_perf.json`` next to the repo root).

``--check PATH``
    Run the suite and compare against a committed baseline.  The gate is
    *ratio-based* so it is robust to machine speed: for every entry
    present in both runs, the fresh ``speedup`` (reference_s /
    vectorized_s) must be at least ``CHECK_RATIO`` (0.75) of the
    committed speedup.  A fresh speedup below that means the vectorized
    kernel lost more than 25% of its advantage — a perf regression —
    and the script exits 1.  Entries whose committed speedup is below
    ``GATE_MIN_SPEEDUP`` (near parity) are exempt from the speedup-ratio
    check — 0.75x of ~1.0x is indistinguishable from noise — but they are
    still gated against *absolute* regression: the vectorized kernel must
    finish within ``PARITY_SLOWDOWN`` (1.25x) of the scalar reference in
    the fresh run, so a change that makes a near-parity kernel outright
    slower than the code it replaces cannot pass silently.  Bit-identity
    failures always exit 1, for every entry.

All timings are warmed best-of-N wall clock (cProfile would inflate the
Python-call-dense reference kernels; see ``repro.obs.profiling``).

Usage::

    PYTHONPATH=src python benchmarks/bench_perf_suite.py --quick
    PYTHONPATH=src python benchmarks/bench_perf_suite.py --quick --check BENCH_perf.json
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from pathlib import Path
from typing import Callable, Dict, List, Optional, Tuple

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.kernels import use_kernels  # noqa: E402

SCHEMA = "locusroute-perf/1"
CHECK_RATIO = 0.75  # fresh speedup must keep >= 75% of the committed speedup
#: Entries whose committed speedup is below this are exempt from the
#: speedup-ratio check: 0.75x of a near-parity speedup is
#: indistinguishable from measurement noise, so ratio-gating them would
#: only produce flaky CI failures.  They are still held to the absolute
#: :data:`PARITY_SLOWDOWN` floor below, and bit-identity is gated for
#: every entry regardless.
GATE_MIN_SPEEDUP = 1.5
#: Absolute regression floor for near-parity entries: the vectorized
#: variant may be at most this much slower than the scalar reference in
#: the fresh run.  Catches the failure mode where a "vectorized" kernel
#: quietly becomes slower than the code it replaces while staying under
#: the ratio gate's radar.
PARITY_SLOWDOWN = 1.25

#: Seed-tree wall clocks (quick mode, warmed best-of-5) measured before the
#: kernel work landed, kept for context in reports.  The regression gate
#: never reads these — it compares speedup ratios within one machine/run.
SEED_BASELINE = {
    "t3_quick_s": 0.365,
    "t6_quick_s": 0.263,
    "note": "pre-vectorization tree, same machine as the committed entries",
}


def interleaved_best(
    fns: Dict[str, Callable[[], object]], repeats: int
) -> Tuple[Dict[str, float], Dict[str, object]]:
    """Best-of-*repeats* wall time per variant, measured interleaved.

    Round 0 is an untimed warm-up (imports, caches, allocator) whose
    results are kept for the bit-identity check.  Timed rounds alternate
    between the variants so sustained background load on a noisy machine
    slows every variant rather than biasing whichever ran last.
    """
    times = {name: float("inf") for name in fns}
    outputs: Dict[str, object] = {}
    for rep in range(repeats + 1):
        for name, fn in fns.items():
            t0 = time.perf_counter()
            out = fn()
            elapsed = time.perf_counter() - t0
            if rep == 0:
                outputs[name] = out
            else:
                times[name] = min(times[name], elapsed)
    return times, outputs


def _in_mode(mode: str, fn: Callable[[], object]) -> Callable[[], object]:
    """Wrap *fn* to run under kernel mode *mode*."""

    def run() -> object:
        with use_kernels(mode):
            return fn()

    return run


def compare_kernel_modes(
    fn: Callable[[], object], repeats: int
) -> Tuple[Dict[str, float], Dict[str, object]]:
    """Interleaved best-of timing of *fn* under each kernel mode."""
    return interleaved_best(
        {mode: _in_mode(mode, fn) for mode in ("reference", "vectorized")}, repeats
    )


def entry(
    entry_id: str,
    kind: str,
    reference_s: float,
    vectorized_s: float,
    bit_identical: bool,
    note: str,
) -> Dict[str, object]:
    return {
        "id": entry_id,
        "kind": kind,
        "reference_s": round(reference_s, 6),
        "vectorized_s": round(vectorized_s, 6),
        "speedup": round(reference_s / vectorized_s, 3) if vectorized_s else 0.0,
        "bit_identical": bit_identical,
        "note": note,
    }


# ---------------------------------------------------------------------------
# Whole-run experiments


def bench_whole_run(exp_id: str, quick: bool, repeats: int) -> Dict[str, object]:
    from repro.harness import run_experiment

    times, results = compare_kernel_modes(
        lambda: run_experiment(exp_id, quick=quick), repeats
    )
    same = (
        results["reference"].rows == results["vectorized"].rows
        and results["reference"].checks == results["vectorized"].checks
    )
    return entry(
        f"{exp_id.lower()}_whole_run",
        "whole_run",
        times["reference"],
        times["vectorized"],
        same,
        f"run_experiment({exp_id!r}, quick={quick}) under each kernel mode",
    )


# ---------------------------------------------------------------------------
# Coherence kernel: scalar replay vs columnar replay on a synthetic trace


def _synthetic_trace(n_records: int, n_procs: int, n_cells: int):
    """Deterministic burst trace with read/write mix and line reuse."""
    import numpy as np

    from repro.memsim.trace import ReferenceTrace

    trace = ReferenceTrace()
    state = 0x2545F4914F6CDD1D
    for i in range(n_records):
        state = (state * 6364136223846793005 + 1442695040888963407) & (2**64 - 1)
        proc = (state >> 32) % n_procs
        is_write = (state >> 12) % 3 == 0
        base = (state >> 20) % n_cells
        burst = 1 + (state >> 8) % 6
        cells = np.arange(base, base + burst, dtype=np.int64) % n_cells
        trace.add(float(i), proc, is_write, cells)
    return trace


def bench_coherence_sweep(quick: bool, repeats: int) -> Dict[str, object]:
    from repro.memsim.addressing import AddressMap
    from repro.memsim.coherence import simulate_trace
    from repro.memsim.columnar import ColumnarTrace, simulate_trace_columnar

    n_records = 2_000 if quick else 20_000
    n_procs = 16
    n_channels, n_grids = 40, 200
    trace = _synthetic_trace(n_records, n_procs, n_channels * n_grids)
    line_sizes = (4, 8, 16, 32)

    def scalar() -> list:
        return [
            simulate_trace(trace, n_procs, AddressMap(n_channels, n_grids, ls))
            for ls in line_sizes
        ]

    def columnar() -> list:
        ct = ColumnarTrace.from_trace(trace)
        return [
            simulate_trace_columnar(ct, n_procs, AddressMap(n_channels, n_grids, ls))
            for ls in line_sizes
        ]

    times, outputs = interleaved_best(
        {"reference": scalar, "vectorized": columnar}, repeats
    )
    return entry(
        "coherence_sweep",
        "kernel",
        times["reference"],
        times["vectorized"],
        outputs["reference"] == outputs["vectorized"],
        f"{n_records} bursts x {len(line_sizes)} line sizes, {n_procs} procs",
    )


# ---------------------------------------------------------------------------
# Two-bend routing under commit churn (the router's real access pattern)


def bench_twobend_routing(quick: bool, repeats: int) -> Dict[str, object]:
    from repro.grid.cost_array import CostArray
    from repro.harness.experiments import quick_circuit
    from repro.route.twobend import route_wire

    circuit = quick_circuit("bnrE", True)
    iterations = 2 if quick else 4

    def churn() -> Tuple[bytes, int]:
        # Same loop shape as route.engine: rip-up + reroute with an
        # alternating tie break, committing every path to the cost array.
        cost = CostArray(circuit.n_channels, circuit.n_grids)
        paths = {}
        total_cost = 0
        for iteration in range(iterations):
            for wire_idx in range(circuit.n_wires):
                if wire_idx in paths:
                    cost.remove_path(paths[wire_idx].flat_cells)
                result = route_wire(
                    cost, circuit.wire(wire_idx), tie_break=iteration % 2
                )
                total_cost += result.cost
                cost.apply_path(result.path.flat_cells)
                paths[wire_idx] = result.path
        return cost.data.tobytes(), total_cost

    times, outputs = compare_kernel_modes(churn, repeats)
    return entry(
        "twobend_routing",
        "kernel",
        times["reference"],
        times["vectorized"],
        outputs["reference"] == outputs["vectorized"],
        f"{circuit.n_wires} wires x {iterations} rip-up/reroute iterations",
    )


# ---------------------------------------------------------------------------
# Wave-front batched routing (the full engine loop, not per-wire calls)


def bench_wavefront_routing(quick: bool, repeats: int) -> Dict[str, object]:
    from repro.harness.experiments import quick_circuit
    from repro.route.engine import SequentialRouter

    # The engine is where the wave-front kernel actually engages: under
    # vectorized kernels SequentialRouter hands each iteration's wire list
    # to route_iteration_wavefront, which partitions it into independence
    # classes and routes each wave as one fused evaluation with grouped
    # rip-up/commit passes.  The reference mode runs the scalar per-wire
    # loop over the same wires in the same order.
    circuit = quick_circuit("bnrE", True)
    iterations = 2 if quick else 4

    def run() -> Tuple[object, ...]:
        res = SequentialRouter(circuit, iterations=iterations).run()
        return (
            res.cost.data.tobytes(),
            res.quality,
            res.work_cells,
            tuple(res.per_iteration_height),
            {w: p.flat_cells.tobytes() for w, p in res.paths.items()},
        )

    times, outputs = compare_kernel_modes(run, repeats)
    return entry(
        "wavefront_routing",
        "kernel",
        times["reference"],
        times["vectorized"],
        outputs["reference"] == outputs["vectorized"],
        f"SequentialRouter, {circuit.n_wires} wires x {iterations} iterations; "
        f"scalar loop vs wave-front batches",
    )


# ---------------------------------------------------------------------------
# Columnar event kernel on a T6-shaped schedule


def bench_event_kernel(quick: bool, repeats: int) -> Dict[str, object]:
    from repro.events.sim import Simulator

    # T6-shaped event traffic: thousands of tiny events where fired
    # actions schedule their own follow-ups (a node activation schedules
    # its commit) and retry churn cancels pending events.  The Simulator
    # picks its queue by kernel mode — the per-event dataclass heap under
    # reference, the columnar (time, seq) heap under vectorized — so this
    # measures exactly what the queue swap buys on a live schedule.
    n_seed_events = 2_000 if quick else 20_000

    def run() -> Tuple[Tuple[Tuple[int, int], ...], int]:
        sim = Simulator()
        fired: List[Tuple[int, int]] = []
        pending: List[object] = []
        state = [0x123456789ABCDEF0]

        def make_action(tag: int, depth: int):
            def action() -> None:
                fired.append((round(sim.now * 1e9), tag))
                s = (state[0] * 6364136223846793005 + 1442695040888963407) & (
                    2**64 - 1
                )
                state[0] = s
                # Retry/rendezvous churn: cancel-and-replace a pending
                # event (cancelling one that already fired is a no-op in
                # both queues, matching the routers' cancel semantics).
                if pending and s % 3 == 0:
                    sim.cancel(pending.pop())
                if depth:
                    dt = 1e-6 + ((s >> 40) % 100) * 1e-7
                    pending.append(
                        sim.after(dt, make_action(tag + 1_000_000, depth - 1))
                    )

            return action

        for i in range(n_seed_events):
            sim.at(i * 1e-6, make_action(i, 2))
        sim.run()
        return tuple(fired), sim.steps

    times, outputs = compare_kernel_modes(run, repeats)
    return entry(
        "t6_event_kernel",
        "kernel",
        times["reference"],
        times["vectorized"],
        outputs["reference"] == outputs["vectorized"],
        f"{n_seed_events} seed events, depth-2 follow-up chains with "
        f"cancel churn; reference vs columnar queue",
    )


# ---------------------------------------------------------------------------
# Wormhole link occupancy updates


def bench_wormhole_links(quick: bool, repeats: int) -> Dict[str, object]:
    from repro.events.sim import Simulator
    from repro.netsim.message import Message
    from repro.netsim.topology import MeshTopology
    from repro.netsim.wormhole import WormholeNetwork

    # MAX_PROCS-sized mesh: route lengths span both sides of the
    # BATCH_MIN_HOPS crossover, so the scalar and batched reservation
    # updates are both exercised.  Traffic mirrors the message passing
    # router: mostly master<->worker task/result pairs (heavily repeated
    # routes, warming the route cache) plus some worker-to-worker noise.
    n_procs = 63
    n_messages = 1_000 if quick else 10_000

    def run() -> Tuple[int, ...]:
        sim = Simulator()
        deliveries: List[object] = []
        net = WormholeNetwork(sim, MeshTopology(n_procs), deliveries.append)
        state = 0x9E3779B97F4A7C15
        for i in range(n_messages):
            state = (state * 6364136223846793005 + 1) & (2**64 - 1)
            worker = 1 + (state >> 40) % (n_procs - 1)
            if i % 4 == 0:
                src, dst = (state >> 16) % n_procs, (state >> 32) % n_procs
            elif i % 2 == 0:
                src, dst = 0, worker
            else:
                src, dst = worker, 0
            net.send(Message(src, dst, 8 + (state >> 4) % 56, payload=i))
        sim.run()
        return tuple(
            (d.message.payload, round(d.arrive_time * 1e12)) for d in deliveries
        )

    times, outputs = compare_kernel_modes(run, repeats)
    return entry(
        "wormhole_links",
        "kernel",
        times["reference"],
        times["vectorized"],
        outputs["reference"] == outputs["vectorized"],
        f"{n_messages} random messages on a {n_procs}-node mesh",
    )


# ---------------------------------------------------------------------------
# Event queue lazy cancellation + compaction


def bench_event_queue(quick: bool, repeats: int) -> Dict[str, object]:
    from repro.events.queue import EventQueue

    class NoCompactQueue(EventQueue):
        """The pre-compaction behaviour: dead entries linger in the heap."""

        COMPACT_MIN = 1 << 60

    n_events = 5_000 if quick else 50_000

    def workload(queue_cls) -> Tuple[float, ...]:
        q = queue_cls()
        live = []
        state = 0xC0FFEE
        for i in range(n_events):
            state = (state * 1103515245 + 12345) & (2**31 - 1)
            live.append(q.push(state / 1e6, lambda: None))
            # Retry/rendezvous pattern: most scheduled events get
            # cancelled and replaced before they fire.
            if len(live) >= 8:
                for ev in live[:6]:
                    q.cancel(ev)
                del live[:6]
        times = []
        while True:
            ev = q.pop()
            if ev is None:
                break
            times.append(ev.time)
        return tuple(times)

    times, outputs = interleaved_best(
        {
            "reference": lambda: workload(NoCompactQueue),
            "vectorized": lambda: workload(EventQueue),
        },
        repeats,
    )
    return entry(
        "event_queue_cancel",
        "kernel",
        times["reference"],
        times["vectorized"],
        outputs["reference"] == outputs["vectorized"],
        f"{n_events} pushes with 75% cancellation; compaction off vs on",
    )


# ---------------------------------------------------------------------------
# Driver


def bench_live_sm(quick: bool, repeats: int) -> Dict[str, object]:
    """Live SM router wall clock, 1 vs N processes (kind="live").

    Host-dependent by nature (real cores, real scheduler), so
    :func:`check_against` reports it without gating on it.
    """
    try:  # script execution ("python benchmarks/bench_perf_suite.py")
        from bench_live_vs_sim import bench_live_sm_speedup
    except ImportError:  # package import (pytest collects benchmarks/)
        from .bench_live_vs_sim import bench_live_sm_speedup
    return bench_live_sm_speedup(quick, repeats)


def _s1_bench(name: str) -> Callable[[bool, int], Dict[str, object]]:
    """Late-bound S-series scaling entries (bench_s1_scaling.py)."""

    def run(quick: bool, repeats: int) -> Dict[str, object]:
        try:  # script execution ("python benchmarks/bench_perf_suite.py")
            from bench_s1_scaling import S1_BENCHES
        except ImportError:  # package import (pytest collects benchmarks/)
            from .bench_s1_scaling import S1_BENCHES
        return S1_BENCHES[name](quick, repeats)

    return run


BENCHES = {
    "t3_whole_run": lambda quick, repeats: bench_whole_run("T3", quick, repeats),
    "t6_whole_run": lambda quick, repeats: bench_whole_run("T6", quick, repeats),
    "coherence_sweep": bench_coherence_sweep,
    "twobend_routing": bench_twobend_routing,
    "wavefront_routing": bench_wavefront_routing,
    "t6_event_kernel": bench_event_kernel,
    "wormhole_links": bench_wormhole_links,
    "event_queue_cancel": bench_event_queue,
    "live_sm_speedup": bench_live_sm,
    "s1_plan_waves_10k": _s1_bench("s1_plan_waves_10k"),
    "s1_route_scaling_10k": _s1_bench("s1_route_scaling_10k"),
    "s1_stream_replay": _s1_bench("s1_stream_replay"),
}


def run_suite(quick: bool, repeats: int, only: Optional[List[str]] = None) -> Dict:
    entries = []
    for name, bench in BENCHES.items():
        if only and name not in only:
            continue
        print(f"[bench] {name} ...", flush=True)
        e = bench(quick, repeats)
        print(
            f"[bench] {name}: reference {e['reference_s'] * 1e3:.1f}ms, "
            f"vectorized {e['vectorized_s'] * 1e3:.1f}ms, "
            f"speedup {e['speedup']}x, bit_identical={e['bit_identical']}",
            flush=True,
        )
        entries.append(e)
    return {
        "schema": SCHEMA,
        "quick": quick,
        "entries": entries,
        "seed_baseline": SEED_BASELINE,
    }


def check_against(fresh: Dict, baseline_path: Path) -> int:
    """Ratio gate: fail if any entry lost >25% of its committed speedup."""
    committed = json.loads(baseline_path.read_text())
    committed_by_id = {e["id"]: e for e in committed.get("entries", [])}
    failures = []
    for e in fresh["entries"]:
        if not e["bit_identical"]:
            failures.append(f"{e['id']}: outputs diverged between kernel modes")
            continue
        if e.get("kind") == "live":
            # Real-parallelism wall clock depends on the host's core count
            # and scheduler; report it, never gate on it.  (Replay
            # integrity rode in through bit_identical above.)
            print(
                f"[bench] {e['id']}: live speedup {e['speedup']}x "
                f"(informational, not gated)",
                flush=True,
            )
            continue
        base = committed_by_id.get(e["id"])
        if base is None:
            continue
        if base["speedup"] < GATE_MIN_SPEEDUP:
            # Near parity: exempt from the speedup-ratio check, but the
            # vectorized kernel must not be outright slower than the
            # scalar reference it is supposed to replace.
            limit = PARITY_SLOWDOWN * e["reference_s"]
            if e["vectorized_s"] > limit:
                failures.append(
                    f"{e['id']}: vectorized {e['vectorized_s'] * 1e3:.1f}ms "
                    f"exceeds {PARITY_SLOWDOWN} x reference "
                    f"{e['reference_s'] * 1e3:.1f}ms (near-parity absolute gate)"
                )
            else:
                print(
                    f"[bench] {e['id']}: committed speedup {base['speedup']}x "
                    f"is near parity; ratio check skipped, absolute gate "
                    f"(<= {PARITY_SLOWDOWN}x reference) passed",
                    flush=True,
                )
            continue
        floor = CHECK_RATIO * base["speedup"]
        if e["speedup"] < floor:
            failures.append(
                f"{e['id']}: speedup {e['speedup']}x fell below "
                f"{floor:.2f}x ({CHECK_RATIO} x committed {base['speedup']}x)"
            )
    if failures:
        print("[bench] PERF REGRESSION:", flush=True)
        for f in failures:
            print(f"  - {f}", flush=True)
        return 1
    print(
        f"[bench] OK: all {len(fresh['entries'])} entries bit-identical and "
        f"within {CHECK_RATIO} of committed speedups",
        flush=True,
    )
    return 0


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--quick", action="store_true", help="small workloads (CI)")
    parser.add_argument(
        "--repeats", type=int, default=3, help="timed repeats after warm-up (best-of)"
    )
    parser.add_argument(
        "--only", nargs="*", choices=sorted(BENCHES), help="subset of benchmarks"
    )
    parser.add_argument("--out", type=Path, help="write fresh results JSON here")
    parser.add_argument(
        "--check",
        type=Path,
        metavar="BASELINE",
        help="compare against a committed results file; exit 1 on regression",
    )
    args = parser.parse_args(argv)

    fresh = run_suite(args.quick, args.repeats, args.only)
    if args.out:
        args.out.write_text(json.dumps(fresh, indent=2) + "\n")
        print(f"[bench] wrote {args.out}", flush=True)
    if args.check:
        return check_against(fresh, args.check)
    bad = [e["id"] for e in fresh["entries"] if not e["bit_identical"]]
    if bad:
        print(f"[bench] outputs diverged: {', '.join(bad)}", flush=True)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
