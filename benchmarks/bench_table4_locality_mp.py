"""Table 4 — locality effects, message passing (experiment T4).

Regenerates the paper artefact at full benchmark scale and asserts its
shape checks; see EXPERIMENTS.md for the recorded paper-vs-measured rows.
"""

from .conftest import run_and_report


def test_table4_locality_mp(benchmark, capsys):
    """Reproduce T4 and verify its qualitative claims."""
    run_and_report(benchmark, capsys, "T4")
