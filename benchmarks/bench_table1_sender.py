"""Table 1 — sender initiated update strategies (experiment T1).

Regenerates the paper artefact at full benchmark scale and asserts its
shape checks; see EXPERIMENTS.md for the recorded paper-vs-measured rows.
"""

from .conftest import run_and_report


def test_table1_sender(benchmark, capsys):
    """Reproduce T1 and verify its qualitative claims."""
    run_and_report(benchmark, capsys, "T1")
