"""Table 3 — shared memory traffic vs cache line size (experiment T3).

Regenerates the paper artefact at full benchmark scale and asserts its
shape checks; see EXPERIMENTS.md for the recorded paper-vs-measured rows.
"""

from .conftest import run_and_report


def test_table3_cacheline(benchmark, capsys):
    """Reproduce T3 and verify its qualitative claims."""
    run_and_report(benchmark, capsys, "T3")
