#!/usr/bin/env python
"""Live (real-core) routers vs the event-driven simulators.

Times the live shared-memory router at 1 and N worker processes (wall
clock of the routing phase, process setup excluded), the live
message-passing router, and the two simulators on the same circuit, then
prints the side-by-side comparison the X7 experiment tabulates.

Also exports :func:`bench_live_sm_speedup`, the ``live_sm_speedup`` entry
of the main perf suite (``bench_perf_suite.py``): ``reference_s`` is the
1-process live wall, ``vectorized_s`` the N-process wall, ``speedup``
their ratio, and ``bit_identical`` the commit-log replay verdict of every
run.  The entry's ``kind`` is ``"live"`` — real-parallelism wall clock
depends on the host's core count, so the suite's regression gate reports
it without gating on it.

Usage::

    PYTHONPATH=src python benchmarks/bench_live_vs_sim.py --quick
    PYTHONPATH=src python benchmarks/bench_live_vs_sim.py --procs 8
"""

from __future__ import annotations

import argparse
import json
import os
import sys
from pathlib import Path
from typing import Dict, List, Optional

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))


def _default_procs() -> int:
    return max(2, min(4, os.cpu_count() or 1))


def bench_live_sm_speedup(quick: bool, repeats: int) -> Dict[str, object]:
    """The perf-suite entry: live SM wall at 1 process vs N processes."""
    from repro.harness.experiments import quick_circuit
    from repro.parallel.live import run_live_shared_memory

    circuit = quick_circuit("bnrE", quick)
    iterations = 2 if quick else 3
    n_procs = _default_procs()
    solo_s = parallel_s = float("inf")
    replay_ok = True
    for rep in range(repeats + 1):  # round 0 is the untimed warm-up
        solo = run_live_shared_memory(circuit, n_procs=1, iterations=iterations)
        many = run_live_shared_memory(
            circuit, n_procs=n_procs, iterations=iterations
        )
        replay_ok = replay_ok and solo.replay_ok and many.replay_ok
        if rep:
            solo_s = min(solo_s, solo.routing_wall_s)
            parallel_s = min(parallel_s, many.routing_wall_s)
    return {
        "id": "live_sm_speedup",
        "kind": "live",
        "reference_s": round(solo_s, 6),
        "vectorized_s": round(parallel_s, 6),
        "speedup": round(solo_s / parallel_s, 3) if parallel_s else 0.0,
        "bit_identical": replay_ok,
        "note": f"live SM router wall, 1 vs {n_procs} worker processes on "
        f"{os.cpu_count()} cores (informational: host-dependent)",
    }


def run_comparison(
    quick: bool, n_procs: int, iterations: int
) -> List[Dict[str, object]]:
    """One row per implementation: quality, time, clock kind, messages."""
    from repro.harness.experiments import quick_circuit
    from repro.parallel import run_message_passing, run_shared_memory
    from repro.parallel.live import run_live_message_passing, run_live_shared_memory
    from repro.updates import UpdateSchedule

    circuit = quick_circuit("bnrE", quick)
    schedule = UpdateSchedule.sender_initiated(1, 1)

    rows: List[Dict[str, object]] = []

    def add(impl, procs, quality, time_s, clock, messages=None, replay=None):
        rows.append(
            {
                "implementation": impl,
                "procs": procs,
                "ckt_height": quality.circuit_height,
                "occupancy": quality.occupancy_factor,
                "time_s": round(time_s, 4),
                "clock": clock,
                "messages": messages,
                "replay_ok": replay,
            }
        )

    sm_sim = run_shared_memory(
        circuit, n_procs=n_procs, iterations=iterations, collect_trace=False
    )
    add("sm simulated", n_procs, sm_sim.quality, sm_sim.exec_time_s, "virtual")
    for procs in (1, n_procs):
        live = run_live_shared_memory(
            circuit, n_procs=procs, iterations=iterations
        )
        add(
            "sm live", procs, live.quality, live.routing_wall_s, "wall",
            replay=live.replay_ok,
        )

    mp_sim = run_message_passing(
        circuit, schedule, n_procs=n_procs, iterations=iterations
    )
    add(
        "mp simulated", n_procs, mp_sim.quality, mp_sim.exec_time_s, "virtual",
        messages=mp_sim.network.n_messages,
    )
    live_mp = run_live_message_passing(
        circuit, schedule, n_procs=n_procs, iterations=iterations
    )
    add(
        "mp live", n_procs, live_mp.quality, live_mp.routing_wall_s, "wall",
        messages=live_mp.meta["traffic"]["messages_sent"],
        replay=live_mp.replay_ok,
    )
    return rows


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--quick", action="store_true", help="small circuit (CI)")
    parser.add_argument(
        "--procs", type=int, default=_default_procs(), help="parallel process count"
    )
    parser.add_argument("--iterations", type=int, default=None)
    parser.add_argument(
        "--repeats", type=int, default=3, help="timed repeats for the speedup entry"
    )
    parser.add_argument("--json", action="store_true", help="JSON output")
    args = parser.parse_args(argv)
    iterations = args.iterations or (2 if args.quick else 3)

    rows = run_comparison(args.quick, args.procs, iterations)
    speedup_entry = bench_live_sm_speedup(args.quick, args.repeats)
    if args.json:
        print(json.dumps({"rows": rows, "live_sm_speedup": speedup_entry}, indent=1))
    else:
        for row in rows:
            msgs = "" if row["messages"] is None else f"  messages={row['messages']}"
            replay = "" if row["replay_ok"] is None else f"  replay_ok={row['replay_ok']}"
            print(
                f"{row['implementation']:>14} procs={row['procs']:<2} "
                f"height={row['ckt_height']:<4} occupancy={row['occupancy']:<7} "
                f"{row['time_s']:.4f}s ({row['clock']}){msgs}{replay}"
            )
        print(
            f"live SM speedup: {speedup_entry['speedup']}x "
            f"({speedup_entry['note']})"
        )
    ok = all(r["replay_ok"] in (None, True) for r in rows) and speedup_entry[
        "bit_identical"
    ]
    return 0 if ok else 1


if __name__ == "__main__":
    sys.exit(main())
