"""Shared helpers for the benchmark suite.

Each benchmark runs one paper experiment at full scale, prints the
paper-vs-measured table (bypassing pytest capture so it lands in the
console / tee'd log), asserts the experiment's shape checks, and reports
its wall time through pytest-benchmark.
"""

from __future__ import annotations

import pytest

from repro.harness import ExperimentResult, run_experiment


def run_and_report(benchmark, capsys, exp_id: str) -> ExperimentResult:
    """Benchmark one experiment driver and print its rendered table."""
    result = benchmark.pedantic(
        lambda: run_experiment(exp_id, quick=False), rounds=1, iterations=1
    )
    with capsys.disabled():
        print()
        print(result.render())
    failing = [name for name, ok in result.checks.items() if not ok]
    assert not failing, f"{exp_id} failed shape checks: {failing}"
    return result
