"""§4.2 ablation — dynamic wire distribution (experiment A3).

An ablation of a design choice the paper discusses but could not measure;
see repro.harness.ablations and EXPERIMENTS.md for details.
"""

from .conftest import run_and_report


def test_a3_dynamic_assignment(benchmark, capsys):
    """Run ablation A3 and verify its qualitative claims."""
    run_and_report(benchmark, capsys, "A3")
