"""§5.2 — shared memory vs message passing summary (experiment X3).

Regenerates the paper artefact at full benchmark scale and asserts its
shape checks; see EXPERIMENTS.md for the recorded paper-vs-measured rows.
"""

from .conftest import run_and_report


def test_x3_sm_vs_mp(benchmark, capsys):
    """Reproduce X3 and verify its qualitative claims."""
    run_and_report(benchmark, capsys, "X3")
