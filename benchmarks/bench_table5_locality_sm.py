"""Table 5 — locality effects, shared memory (experiment T5).

Regenerates the paper artefact at full benchmark scale and asserts its
shape checks; see EXPERIMENTS.md for the recorded paper-vs-measured rows.
"""

from .conftest import run_and_report


def test_table5_locality_sm(benchmark, capsys):
    """Reproduce T5 and verify its qualitative claims."""
    run_and_report(benchmark, capsys, "T5")
