"""§5.3.3 — the circuit locality measure (experiment X4).

Regenerates the paper artefact at full benchmark scale and asserts its
shape checks; see EXPERIMENTS.md for the recorded paper-vs-measured rows.
"""

from .conftest import run_and_report


def test_x4_locality_measure(benchmark, capsys):
    """Reproduce X4 and verify its qualitative claims."""
    run_and_report(benchmark, capsys, "X4")
