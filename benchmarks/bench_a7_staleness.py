"""staleness ablation — view divergence vs update schedule (experiment A7)."""

from .conftest import run_and_report


def test_a7_staleness(benchmark, capsys):
    """Run ablation A7 and verify its qualitative claims."""
    run_and_report(benchmark, capsys, "A7")
