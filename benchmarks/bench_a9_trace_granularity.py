"""Trace-granularity ablation — burst vs per-reference replay (A9)."""

from .conftest import run_and_report


def test_a9_trace_granularity(benchmark, capsys):
    """Run ablation A9 and verify its qualitative claims."""
    run_and_report(benchmark, capsys, "A9")
