"""Microbenchmarks of the individual substrates.

These time the building blocks in isolation — the two-bend evaluator, a
full sequential routing run, the wormhole network under load, and the
coherence protocol over a synthetic trace — so regressions in any layer
show up independently of the experiment-level numbers.
"""

from __future__ import annotations

import numpy as np

from repro.circuits import Pin, bnre_like
from repro.events import Simulator
from repro.grid import CostArray
from repro.memsim import AddressMap, ReferenceTrace, simulate_trace
from repro.netsim import MeshTopology, Message, WormholeNetwork
from repro.route import SequentialRouter, route_segment


def test_two_bend_segment_eval(benchmark):
    """One cross-channel segment evaluation on a congested array."""
    rng = np.random.default_rng(42)
    cost = CostArray(10, 341, rng.integers(0, 8, size=(10, 341)).astype(np.int32))
    a, b = Pin(10, 1), Pin(250, 8)
    seg = benchmark(lambda: route_segment(cost, a, b))
    assert seg.cost >= 0


def test_sequential_route_full_bnre(benchmark):
    """Three full rip-up-and-reroute iterations over bnrE-like."""
    circuit = bnre_like()

    def run():
        return SequentialRouter(circuit, iterations=3).run()

    result = benchmark.pedantic(run, rounds=1, iterations=1)
    assert result.quality.circuit_height > 0


def test_wormhole_network_throughput(benchmark):
    """Two thousand contended messages through the 4x4 mesh."""
    rng = np.random.default_rng(7)
    pairs = [
        (int(s), int(d))
        for s, d in rng.integers(0, 16, size=(2000, 2))
        if s != d
    ]

    def run():
        sim = Simulator()
        count = []
        net = WormholeNetwork(sim, MeshTopology(16), count.append)
        for i, (s, d) in enumerate(pairs):
            sim.at(i * 1e-6, lambda s=s, d=d: net.send(Message(s, d, 64, None)))
        sim.run()
        return len(count)

    delivered = benchmark.pedantic(run, rounds=1, iterations=1)
    assert delivered == len(pairs)


def test_coherence_protocol_throughput(benchmark):
    """Replay a 2000-burst synthetic trace through the protocol."""
    rng = np.random.default_rng(13)
    trace = ReferenceTrace()
    for i in range(2000):
        cells = rng.integers(0, 10 * 341, size=rng.integers(1, 64))
        trace.add(i * 1e-6, int(rng.integers(0, 16)), bool(rng.integers(0, 2)), cells)
    amap = AddressMap(10, 341, 8)

    stats = benchmark.pedantic(
        lambda: simulate_trace(trace, 16, amap), rounds=1, iterations=1
    )
    assert stats.total_bytes > 0
