"""§4.3.1 ablation — update packet structures (experiment A1).

An ablation of a design choice the paper discusses but could not measure;
see repro.harness.ablations and EXPERIMENTS.md for details.
"""

from .conftest import run_and_report


def test_a1_packet_structures(benchmark, capsys):
    """Run ablation A1 and verify its qualitative claims."""
    run_and_report(benchmark, capsys, "A1")
