#!/usr/bin/env python
"""S-series scaling benchmarks: the router at 10k-100k wires.

The paper's circuits are ~500 wires; this family measures the scaling
work that makes big inputs practical (see docs/PERFORMANCE.md):

``s1_plan_waves_10k``
    The grid-paint wave planner (``route.wavefront.plan_waves``) against
    the O(n^2) layering recurrence it replaced
    (``plan_waves_reference``), on a 10k-wire ``generate_scaled``
    circuit.  Bit-identity is the oracle check: both must produce the
    same wave decomposition.

``s1_route_scaling_10k``
    End-to-end ``SequentialRouter`` superlinearity gate.  ``reference_s``
    is the 1k-wire wall time extrapolated linearly to 10k wires;
    ``vectorized_s`` is the measured 10k wall time.  The resulting
    "speedup" sits near parity by construction, so the perf suite's
    near-parity absolute gate fires exactly when 10k routing drifts more
    than ``PARITY_SLOWDOWN`` above linear scaling — a superlinear
    regression.  Peak RSS per point rides along in ``extra``.

``s1_stream_replay``
    Bounded-memory streaming coherence replay
    (``memsim.columnar.simulate_trace_streaming`` from a
    ``save_trace_stream`` file) against the in-memory columnar engine on
    the same trace (~1.1M references full, ~270k quick).  Gated on
    bit-identity with the in-memory path.

Usage::

    PYTHONPATH=src python benchmarks/bench_s1_scaling.py --quick
    PYTHONPATH=src python benchmarks/bench_s1_scaling.py --full-sweep
"""

from __future__ import annotations

import argparse
import json
import sys
import tempfile
import time
from pathlib import Path
from typing import Dict, List, Optional

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))

#: Wire counts of the committed scaling points (quick and full) and of
#: the ``--full-sweep`` report.
S1_POINTS_QUICK = (1_000, 10_000)
S1_SWEEP_POINTS = (1_000, 10_000, 100_000)


def _entry(*args, **kwargs) -> Dict[str, object]:
    try:  # script execution ("python benchmarks/bench_s1_scaling.py")
        from bench_perf_suite import entry
    except ImportError:  # package import (pytest collects benchmarks/)
        from .bench_perf_suite import entry
    return entry(*args, **kwargs)


def _interleaved_best(fns, repeats):
    try:
        from bench_perf_suite import interleaved_best
    except ImportError:
        from .bench_perf_suite import interleaved_best
    return interleaved_best(fns, repeats)


def _footprints(circuit):
    """Wire bounding boxes keyed by wire index (the planner's input)."""
    footprints = {}
    for i, wire in enumerate(circuit.wires):
        channels = [p.channel for p in wire.pins]
        xs = [p.x for p in wire.pins]
        footprints[i] = (min(channels), min(xs), max(channels), max(xs))
    return footprints


def bench_s1_plan_waves(quick: bool, repeats: int) -> Dict[str, object]:
    """Grid-paint planner vs the quadratic recurrence, 10k wires."""
    from repro.circuits import generate_scaled
    from repro.route.wavefront import plan_waves, plan_waves_reference

    n_wires = 10_000  # the acceptance point; quick only trims repeats
    circuit = generate_scaled(n_wires)
    footprints = _footprints(circuit)
    order = list(range(n_wires))

    times, outputs = _interleaved_best(
        {
            "reference": lambda: plan_waves_reference(order, footprints),
            "vectorized": lambda: plan_waves(order, footprints),
        },
        max(repeats, 3 if quick else 5),
    )
    return _entry(
        "s1_plan_waves_10k",
        "kernel",
        times["reference"],
        times["vectorized"],
        outputs["reference"] == outputs["vectorized"],
        f"wave decomposition of {n_wires} wires (generate_scaled, Rent 0.6); "
        f"grid-paint skyline vs O(n^2) recurrence, identical waves required",
    )


def _route_point(n_wires: int, repeats: int) -> Dict[str, object]:
    """Best-of wall time and peak RSS for one wire-count point."""
    from repro.circuits import generate_scaled
    from repro.obs import memory_snapshot
    from repro.route import SequentialRouter

    circuit = generate_scaled(n_wires)
    best = float("inf")
    heights = set()
    for rep in range(repeats + 1):
        t0 = time.perf_counter()
        result = SequentialRouter(circuit, iterations=1).run()
        elapsed = time.perf_counter() - t0
        if rep > 0:  # round 0 warms caches, untimed
            best = min(best, elapsed)
        heights.add(result.quality.circuit_height)
    return {
        "n_wires": n_wires,
        "wall_s": round(best, 6),
        "peak_rss_bytes": memory_snapshot()["peak_rss_bytes"],
        "deterministic": len(heights) == 1,
        "height": heights.pop(),
    }


#: Budgeted superlinearity of the 1k->10k route point: the measured wall
#: ratio is ~1.4x over linear (per-wave numpy overhead grows with wave
#: count), so the extrapolated "reference" time carries this allowance
#: and the perf suite's near-parity absolute gate (PARITY_SLOWDOWN,
#: 1.25x) fires only when 10k routing drifts beyond ~1.9x over linear.
S1_SUPERLINEAR_ALLOWANCE = 1.5


def bench_s1_route_scaling(quick: bool, repeats: int) -> Dict[str, object]:
    """Superlinearity gate: 10k route vs budgeted extrapolation from 1k."""
    reps = max(1, repeats if quick else repeats + 2)
    points = [_route_point(n, reps) for n in S1_POINTS_QUICK]
    t_1k = points[0]["wall_s"]
    t_10k = points[1]["wall_s"]
    result = _entry(
        "s1_route_scaling_10k",
        "scaling",
        t_1k * 10.0 * S1_SUPERLINEAR_ALLOWANCE,  # budgeted linear prediction
        t_10k,  # measured
        all(p["deterministic"] for p in points),
        f"SequentialRouter wall at 10k wires vs {S1_SUPERLINEAR_ALLOWANCE} x "
        f"10 x the 1k wall; the near-parity absolute gate fails a "
        f"superlinear drift.  bit_identical = per-point determinism "
        f"across repeats",
    )
    result["extra"] = {"points": points}
    return result


def _synthetic_stream_trace(n_records: int, seed: int):
    """Deterministic burst trace sized for the streaming entry."""
    import numpy as np

    from repro.memsim import ReferenceTrace

    rng = np.random.default_rng(seed)
    n_cells = 16 * 600
    procs = rng.integers(0, 12, n_records)
    writes = rng.random(n_records) < 0.35
    sizes = rng.integers(2, 8, n_records)
    bases = rng.integers(0, n_cells, n_records)
    trace = ReferenceTrace()
    t = 0.0
    for i in range(n_records):
        t += 1.0
        cells = (bases[i] + np.arange(sizes[i], dtype=np.int64)) % n_cells
        trace.add(t, int(procs[i]), bool(writes[i]), cells)
    return trace


def bench_s1_stream_replay(quick: bool, repeats: int) -> Dict[str, object]:
    """Streaming replay from disk vs the in-memory columnar engine."""
    from repro.memsim import (
        AddressMap,
        save_trace_stream,
        simulate_trace_columnar,
        simulate_trace_streaming,
    )

    n_records = 60_000 if quick else 250_000
    trace = _synthetic_stream_trace(n_records, seed=19890816)
    n_refs = trace.n_references
    amap = AddressMap(16, 600, 16)

    with tempfile.TemporaryDirectory() as tmp:
        path = Path(tmp) / "s1_trace.lrts"
        save_trace_stream(trace, path)
        times, outputs = _interleaved_best(
            {
                "reference": lambda: simulate_trace_columnar(
                    trace, 12, amap
                ).as_dict(),
                "vectorized": lambda: simulate_trace_streaming(
                    path, 12, amap
                ).as_dict(),
            },
            repeats,
        )
    return _entry(
        "s1_stream_replay",
        "kernel",
        times["reference"],
        times["vectorized"],
        outputs["reference"] == outputs["vectorized"],
        f"{n_refs} references, 12 procs: in-memory columnar replay vs "
        f"chunked streaming replay from a trace-stream file "
        f"(bounded peak memory); identical stats required",
    )


S1_BENCHES = {
    "s1_plan_waves_10k": bench_s1_plan_waves,
    "s1_route_scaling_10k": bench_s1_route_scaling,
    "s1_stream_replay": bench_s1_stream_replay,
}


def full_sweep(repeats: int) -> List[Dict[str, object]]:
    """Wall time and peak RSS at every S-series point (docs table)."""
    return [_route_point(n, repeats) for n in S1_SWEEP_POINTS]


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--quick", action="store_true", help="small workloads (CI)")
    parser.add_argument("--repeats", type=int, default=3)
    parser.add_argument(
        "--full-sweep",
        action="store_true",
        help="route-time/RSS table at 1k/10k/100k wires instead of the entries",
    )
    args = parser.parse_args(argv)
    if args.full_sweep:
        print(json.dumps(full_sweep(args.repeats), indent=2))
        return 0
    entries = []
    for name, bench in S1_BENCHES.items():
        print(f"[bench] {name} ...", flush=True)
        e = bench(args.quick, args.repeats)
        print(
            f"[bench] {name}: reference {e['reference_s'] * 1e3:.1f}ms, "
            f"vectorized {e['vectorized_s'] * 1e3:.1f}ms, "
            f"speedup {e['speedup']}x, bit_identical={e['bit_identical']}",
            flush=True,
        )
        entries.append(e)
    print(json.dumps(entries, indent=2))
    return 0 if all(e["bit_identical"] for e in entries) else 1


if __name__ == "__main__":
    sys.exit(main())
