"""coherence protocol ablation — write-update vs invalidate (experiment A5)."""

from .conftest import run_and_report


def test_a5_write_update(benchmark, capsys):
    """Run experiment A5 and verify its qualitative claims."""
    run_and_report(benchmark, capsys, "A5")
