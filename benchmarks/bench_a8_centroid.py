"""heuristic ablation — centroid vs leftmost-pin assignment (experiment A8)."""

from .conftest import run_and_report


def test_a8_centroid(benchmark, capsys):
    """Run ablation A8 and verify its qualitative claims."""
    run_and_report(benchmark, capsys, "A8")
