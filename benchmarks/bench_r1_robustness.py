"""Robustness sweep — core orderings across perturbed seeds (R1)."""

from .conftest import run_and_report


def test_r1_robustness(benchmark, capsys):
    """Run the multi-seed robustness experiment."""
    run_and_report(benchmark, capsys, "R1")
