"""Table 2 — non-blocking receiver initiated strategies (experiment T2).

Regenerates the paper artefact at full benchmark scale and asserts its
shape checks; see EXPERIMENTS.md for the recorded paper-vs-measured rows.
"""

from .conftest import run_and_report


def test_table2_receiver(benchmark, capsys):
    """Reproduce T2 and verify its qualitative claims."""
    run_and_report(benchmark, capsys, "T2")
