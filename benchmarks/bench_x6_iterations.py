"""§3 — rip-up and reroute convergence (experiment X6)."""

from .conftest import run_and_report


def test_x6_iterations(benchmark, capsys):
    """Run experiment X6 and verify its qualitative claims."""
    run_and_report(benchmark, capsys, "X6")
