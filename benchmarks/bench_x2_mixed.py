"""§5.1.3 — the mixed update schedule (experiment X2).

Regenerates the paper artefact at full benchmark scale and asserts its
shape checks; see EXPERIMENTS.md for the recorded paper-vs-measured rows.
"""

from .conftest import run_and_report


def test_x2_mixed(benchmark, capsys):
    """Reproduce X2 and verify its qualitative claims."""
    run_and_report(benchmark, capsys, "X2")
