"""§5.3.2 ablation — hierarchical shared memory (experiment A4).

An ablation of a design choice the paper discusses but could not measure;
see repro.harness.ablations and EXPERIMENTS.md for details.
"""

from .conftest import run_and_report


def test_a4_numa_locality(benchmark, capsys):
    """Run ablation A4 and verify its qualitative claims."""
    run_and_report(benchmark, capsys, "A4")
