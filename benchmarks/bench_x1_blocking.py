"""§5.1.3 — blocking vs non-blocking receivers (experiment X1).

Regenerates the paper artefact at full benchmark scale and asserts its
shape checks; see EXPERIMENTS.md for the recorded paper-vs-measured rows.
"""

from .conftest import run_and_report


def test_x1_blocking(benchmark, capsys):
    """Reproduce X1 and verify its qualitative claims."""
    run_and_report(benchmark, capsys, "X1")
