"""§5.1.3 ablation — blocking under interrupt reception (experiment A2).

An ablation of a design choice the paper discusses but could not measure;
see repro.harness.ablations and EXPERIMENTS.md for details.
"""

from .conftest import run_and_report


def test_a2_interrupts(benchmark, capsys):
    """Run ablation A2 and verify its qualitative claims."""
    run_and_report(benchmark, capsys, "A2")
