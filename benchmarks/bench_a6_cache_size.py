"""Footnote-3 ablation — coherence traffic vs finite cache size (A6)."""

from .conftest import run_and_report


def test_a6_cache_size(benchmark, capsys):
    """Run ablation A6 and verify its qualitative claims."""
    run_and_report(benchmark, capsys, "A6")
