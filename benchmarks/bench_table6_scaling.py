"""Table 6 — processor-count scaling and speedup (experiment T6).

Regenerates the paper artefact at full benchmark scale and asserts its
shape checks; see EXPERIMENTS.md for the recorded paper-vs-measured rows.
"""

from .conftest import run_and_report


def test_table6_scaling(benchmark, capsys):
    """Reproduce T6 and verify its qualitative claims."""
    run_and_report(benchmark, capsys, "T6")
