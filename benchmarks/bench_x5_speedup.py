"""§5.4 — speedup at 16 processors (experiment X5).

Regenerates the paper artefact at full benchmark scale and asserts its
shape checks; see EXPERIMENTS.md for the recorded paper-vs-measured rows.
"""

from .conftest import run_and_report


def test_x5_speedup(benchmark, capsys):
    """Reproduce X5 and verify its qualitative claims."""
    run_and_report(benchmark, capsys, "X5")
