"""Deterministic event queue for the discrete-event kernel.

A thin wrapper over :mod:`heapq` that totally orders events by
``(time, sequence)``.  The sequence number is assigned at scheduling time,
so simultaneous events fire in the order they were scheduled — this is
what makes every simulation in this package bit-for-bit reproducible.
"""

from __future__ import annotations

import heapq
import itertools
from dataclasses import dataclass, field
from typing import Any, Callable, List, Optional, Tuple

from ..errors import SimulationError

__all__ = ["Event", "EventQueue"]


@dataclass(frozen=True, order=True)
class Event:
    """A scheduled callback.

    Ordering compares ``(time, seq)`` only; the callback and the
    cancellation flag are excluded via ``field(compare=False)``.  The
    flag lives on the event itself (mutated through
    ``object.__setattr__``) so cancelling an event that already fired is
    a harmless no-op rather than corrupting the queue's bookkeeping.
    """

    time: float
    seq: int
    action: Callable[[], Any] = field(compare=False)
    cancelled: bool = field(default=False, compare=False)
    fired: bool = field(default=False, compare=False)


class EventQueue:
    """Min-heap of :class:`Event` with monotonic pop times."""

    #: Compaction floor on the *dead count*: no compaction happens until at
    #: least this many cancelled entries linger in the heap (filtering a
    #: heap to shed a handful of dead entries costs more than skipping
    #: them).  The heap size only enters through the majority condition in
    #: :meth:`cancel` — dead entries must also outnumber the live ones.
    COMPACT_MIN = 64

    def __init__(self) -> None:
        self._heap: List[Event] = []
        self._counter = itertools.count()
        self._last_popped = 0.0
        self._n_cancelled_in_heap = 0
        self.n_compactions = 0

    def __len__(self) -> int:
        return len(self._heap) - self._n_cancelled_in_heap

    def push(self, time: float, action: Callable[[], Any]) -> Event:
        """Schedule *action* at absolute *time*; returns a cancellable handle."""
        if time < self._last_popped:
            raise SimulationError(
                f"cannot schedule at {time} before current time {self._last_popped}"
            )
        event = Event(time, next(self._counter), action)
        heapq.heappush(self._heap, event)
        return event

    def cancel(self, event: Event) -> None:
        """Mark *event* as cancelled (skipped on pop).

        Cancelling an event that has already fired, or cancelling twice,
        is a no-op.
        """
        if event.cancelled or event.fired:
            return
        object.__setattr__(event, "cancelled", True)
        # A fired event was already removed by pop(); only events still in
        # the heap affect the live count.
        self._n_cancelled_in_heap += 1
        # Lazy cancellation leaves dead entries in the heap; long
        # fault-injection runs (heavy retry churn) can accumulate far more
        # dead events than live ones, inflating every subsequent push/pop.
        # Rebuild without them once they outnumber the live entries.
        dead = self._n_cancelled_in_heap
        if dead >= self.COMPACT_MIN and dead * 2 > len(self._heap):
            self._compact()

    def _compact(self) -> None:
        """Drop cancelled entries and re-heapify.

        Pop order is unaffected: events are totally ordered by their
        unique ``(time, seq)`` keys, so any heap over the same live set
        pops the same sequence.
        """
        self._heap = [e for e in self._heap if not e.cancelled]
        heapq.heapify(self._heap)
        self._n_cancelled_in_heap = 0
        self.n_compactions += 1

    def pop(self) -> Optional[Event]:
        """Pop the earliest live event, or ``None`` if the queue is empty."""
        while self._heap:
            event = heapq.heappop(self._heap)
            if event.cancelled:
                self._n_cancelled_in_heap -= 1
                continue
            self._last_popped = event.time
            object.__setattr__(event, "fired", True)
            return event
        return None

    def pop_next(self) -> Optional[Tuple[float, Callable[[], Any]]]:
        """Pop the earliest live event as a ``(time, action)`` pair.

        The queue-protocol form of :meth:`pop` shared with
        :class:`~repro.events.columnar.ColumnarEventQueue`: the simulator
        loop only needs the fire time and the callback, not the handle.
        """
        event = self.pop()
        if event is None:
            return None
        return event.time, event.action

    def peek_time(self) -> Optional[float]:
        """Time of the earliest live event without popping it.

        A cancelled head is removed through the same compaction heuristic
        :meth:`cancel` uses: once :data:`COMPACT_MIN` dead entries have
        accumulated, one :meth:`_compact` sheds them all.  Draining them
        one heappop at a time would make a peek-heavy caller (the
        simulator main loop peeks every step) pay O(dead log n) after
        retry churn leaves a dead prefix at the top of the heap.
        """
        while self._heap and self._heap[0].cancelled:
            if self._n_cancelled_in_heap >= self.COMPACT_MIN:
                self._compact()
                break
            heapq.heappop(self._heap)
            self._n_cancelled_in_heap -= 1
        return self._heap[0].time if self._heap else None
