"""Minimal discrete-event simulator.

Both the CBS-style network simulation and the Tango-style shared memory
multiplexer run on this kernel: schedule callbacks at absolute virtual
times, run until the queue drains (or a step/time bound trips, which is
treated as a runaway-simulation error rather than silently truncating).
"""

from __future__ import annotations

from typing import Any, Callable, Optional

from ..errors import SimulationError
from ..kernels import active_kernels
from ..obs import telemetry as obs
from .columnar import ColumnarEventQueue
from .queue import EventQueue

__all__ = ["Simulator"]


class Simulator:
    """Event loop with a virtual clock.

    The clock starts at 0.0 and only moves forward, driven by event pops.

    The queue implementation is chosen by the kernel mode at construction
    time: :class:`ColumnarEventQueue` (scalar sort keys, C-speed heap
    comparisons) under ``vectorized``, :class:`EventQueue` (the per-event
    dataclass reference) under ``reference``.  Both pop in the same
    ``(time, seq)`` order, so the choice never changes simulation results
    — ``locusroute verify`` and the bench suite replay both to prove it.
    """

    def __init__(self) -> None:
        if active_kernels() == "vectorized":
            self._queue = ColumnarEventQueue()
        else:
            self._queue = EventQueue()
        self._now = 0.0
        self._steps = 0
        self._probes: list = []

    @property
    def now(self) -> float:
        """Current virtual time (seconds)."""
        return self._now

    @property
    def steps(self) -> int:
        """Number of events executed so far."""
        return self._steps

    def at(self, time: float, action: Callable[[], Any]) -> object:
        """Schedule *action* at absolute virtual *time*.

        Returns an opaque cancellable handle (an :class:`Event` under the
        reference queue, a key tuple under the columnar queue); pass it
        back to :meth:`cancel`, do not inspect it.
        """
        return self._queue.push(time, action)

    def after(self, delay: float, action: Callable[[], Any]) -> object:
        """Schedule *action* ``delay`` seconds from now."""
        if delay < 0:
            raise SimulationError(f"negative delay {delay}")
        return self._queue.push(self._now + delay, action)

    def cancel(self, event: object) -> None:
        """Cancel a previously scheduled event by its handle."""
        self._queue.cancel(event)

    def add_probe(self, action: Callable[[], Any], interval: int) -> None:
        """Call *action* every *interval* executed events.

        Probes run after the triggering event's action, at the same
        virtual time.  The loop pays a single truthiness check per event
        when no probes are registered.
        """
        if interval <= 0:
            raise SimulationError(f"probe interval must be positive, got {interval}")
        self._probes.append((interval, action))

    def run(
        self,
        max_steps: int = 50_000_000,
        until: Optional[float] = None,
    ) -> float:
        """Execute events until the queue is empty.

        ``max_steps`` guards against runaway simulations; ``until`` stops
        the clock at a given virtual time (events beyond it stay queued).
        Returns the final virtual time.

        Telemetry: the number of events executed by this call is added to
        the global ``sim.events`` counter on exit (one batched increment,
        nothing per-event), including when an event's action raises.
        """
        steps_before = self._steps
        queue = self._queue
        bounded = until is not None
        try:
            while True:
                if bounded:
                    # Only a time-bounded run needs to look before leaping;
                    # the common unbounded run pops directly, halving the
                    # heap traffic per event.
                    next_time = queue.peek_time()
                    if next_time is None:
                        return self._now
                    if next_time > until:
                        self._now = until
                        return self._now
                nxt = queue.pop_next()
                if nxt is None:
                    return self._now
                self._now, action = nxt
                self._steps += 1
                if self._steps > max_steps:
                    raise SimulationError(f"simulation exceeded {max_steps} events")
                action()
                if self._probes:
                    for interval, probe in self._probes:
                        if self._steps % interval == 0:
                            probe()
        finally:
            obs.incr("sim.events", self._steps - steps_before)
