"""Columnar event queue: scalar sort keys, payload columns, batched cleanup.

:class:`~repro.events.queue.EventQueue` orders frozen :class:`Event`
dataclasses; every heap sift compares them through a generated Python
``__lt__``, and every schedule allocates an object that carries its
callback and bookkeeping flags along the heap.  On the T6 path
(``mp_sim``/``sm_sim``) the event loop is thousands of tiny events, so
those per-event Python frames are pure overhead.

This module applies the :mod:`repro.memsim.columnar` storage trick to the
event kernel: keep each *column* of the event table in the structure that
serves it at machine speed, instead of one Python object per row.

- **sort keys** — plain ``(time, seq)`` tuples of scalars.  CPython
  compares these without entering a Python frame, so every heap sift runs
  at C speed.
- **callbacks** — a ``seq -> action`` dict, touched exactly twice per
  event (schedule, fire) instead of travelling through every comparison.
- **liveness** — a set of cancelled ``seq`` values; cancellation is a set
  insert, and dead entries are shed in *batch* by one filtered rebuild
  (:meth:`_compact`) under the same dead-count heuristic as
  :class:`EventQueue`, including from :meth:`peek_time`.

What deliberately did **not** land: batch-advancing a whole window of
ready events in one vectorised step, the full order-statistics replay of
``memsim.columnar``.  A fired action may schedule *into* the window being
advanced (a node activation schedules its own commit at ``now + dt``), so
the ready set is not known until each callback has run — the replay trick
needs a closed trace, and the live event loop is not one.  The columnar
storage above is the part of the trick that survives contact with a live
schedule; ``benchmarks/bench_perf_suite.py`` (``t6_event_kernel``)
measures what it buys.

Pop order is bit-identical to :class:`EventQueue`: both order strictly by
unique ``(time, seq)`` keys with sequence numbers assigned at schedule
time, so any mix of the two queues over the same schedule fires the same
callbacks in the same order at the same virtual times.
"""

from __future__ import annotations

import heapq
import itertools
from typing import Any, Callable, Dict, List, Optional, Set, Tuple

from ..errors import SimulationError

__all__ = ["ColumnarEventQueue"]

#: Opaque cancellable handle: the event's ``(time, seq)`` sort key.
Handle = Tuple[float, int]


class ColumnarEventQueue:
    """Min-heap of ``(time, seq)`` scalar keys with columnar payloads.

    Drop-in protocol match for :class:`~repro.events.queue.EventQueue`
    as the simulator uses it: ``push`` returns an opaque cancellable
    handle, ``pop_next`` yields ``(time, action)`` pairs in ``(time,
    seq)`` order, ``peek_time``/``cancel``/``__len__`` behave
    identically (including the monotonic-time guard and the
    cancel-after-fire no-op).
    """

    #: Compaction floor on the dead count — same heuristic and threshold
    #: as :attr:`EventQueue.COMPACT_MIN`, so both queues rebuild at the
    #: same points under the same cancellation load.
    COMPACT_MIN = 64

    __slots__ = (
        "_heap",
        "_actions",
        "_cancelled",
        "_counter",
        "_last_popped",
        "n_compactions",
    )

    def __init__(self) -> None:
        self._heap: List[Handle] = []
        self._actions: Dict[int, Callable[[], Any]] = {}
        self._cancelled: Set[int] = set()
        self._counter = itertools.count()
        self._last_popped = 0.0
        self.n_compactions = 0

    def __len__(self) -> int:
        return len(self._actions)

    def push(self, time: float, action: Callable[[], Any]) -> Handle:
        """Schedule *action* at absolute *time*; returns a cancellable handle."""
        if time < self._last_popped:
            raise SimulationError(
                f"cannot schedule at {time} before current time {self._last_popped}"
            )
        seq = next(self._counter)
        heapq.heappush(self._heap, (time, seq))
        self._actions[seq] = action
        return (time, seq)

    def cancel(self, handle: Handle) -> None:
        """Mark *handle* cancelled (skipped on pop).

        Cancelling an event that already fired, or cancelling twice, is a
        no-op.  The callback column is released immediately; the dead key
        stays in the heap until a batched :meth:`_compact` sheds it.
        """
        seq = handle[1]
        if seq not in self._actions:
            return  # already fired or already cancelled
        del self._actions[seq]
        self._cancelled.add(seq)
        dead = len(self._cancelled)
        if dead >= self.COMPACT_MIN and dead * 2 > len(self._heap):
            self._compact()

    def _compact(self) -> None:
        """Shed every dead key in one filtered rebuild + heapify.

        Pop order is unaffected: keys are unique, so any heap over the
        same live key set pops the same sequence.
        """
        cancelled = self._cancelled
        self._heap = [key for key in self._heap if key[1] not in cancelled]
        heapq.heapify(self._heap)
        cancelled.clear()
        self.n_compactions += 1

    def pop_next(self) -> Optional[Tuple[float, Callable[[], Any]]]:
        """Pop the earliest live event as ``(time, action)``, else ``None``."""
        heap = self._heap
        cancelled = self._cancelled
        while heap:
            time, seq = heapq.heappop(heap)
            if cancelled:
                if seq in cancelled:
                    cancelled.discard(seq)
                    continue
            self._last_popped = time
            return time, self._actions.pop(seq)
        return None

    def peek_time(self) -> Optional[float]:
        """Time of the earliest live event without popping it.

        Dead heads are shed through the same batched compaction path as
        :meth:`EventQueue.peek_time` once :data:`COMPACT_MIN` dead keys
        have accumulated.
        """
        while True:
            heap = self._heap  # _compact() rebinds the heap list
            if not heap:
                return None
            if heap[0][1] not in self._cancelled:
                return heap[0][0]
            if len(self._cancelled) >= self.COMPACT_MIN:
                self._compact()
            else:
                self._cancelled.discard(heapq.heappop(heap)[1])
