"""Deterministic discrete-event kernel shared by both architecture simulators."""

from .columnar import ColumnarEventQueue
from .queue import Event, EventQueue
from .sim import Simulator

__all__ = ["ColumnarEventQueue", "Event", "EventQueue", "Simulator"]
