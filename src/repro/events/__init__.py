"""Deterministic discrete-event kernel shared by both architecture simulators."""

from .queue import Event, EventQueue
from .sim import Simulator

__all__ = ["Event", "EventQueue", "Simulator"]
