"""ASCII table rendering for experiment results.

Benches print each experiment as a fixed-width table with measured values
next to the paper's published ones (where available), in the same row
order as the paper.  Rendering is dependency-free and deterministic.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

__all__ = ["render_table", "format_value", "render_checks"]


def format_value(value: object) -> str:
    """Human-format one cell: floats get 3-4 significant places."""
    if value is None:
        return "-"
    if isinstance(value, bool):
        return "yes" if value else "no"
    if isinstance(value, float):
        if value == 0:
            return "0"
        if abs(value) >= 100:
            return f"{value:.0f}"
        if abs(value) >= 1:
            return f"{value:.3g}"
        return f"{value:.3f}"
    return str(value)


def render_table(
    title: str,
    columns: Sequence[str],
    rows: Sequence[Dict[str, object]],
    note: Optional[str] = None,
) -> str:
    """Render *rows* (dicts keyed by column name) as an ASCII table."""
    cells: List[List[str]] = [[format_value(row.get(col)) for col in columns] for row in rows]
    widths = [
        max(len(col), *(len(r[i]) for r in cells)) if cells else len(col)
        for i, col in enumerate(columns)
    ]
    sep = "+-" + "-+-".join("-" * w for w in widths) + "-+"
    header = "| " + " | ".join(col.ljust(w) for col, w in zip(columns, widths)) + " |"
    lines = [title, sep, header, sep]
    for r in cells:
        lines.append("| " + " | ".join(v.rjust(w) for v, w in zip(r, widths)) + " |")
    lines.append(sep)
    if note:
        lines.append(note)
    return "\n".join(lines)


def render_checks(checks: Dict[str, bool]) -> str:
    """Render the shape-check outcomes of an experiment."""
    lines = ["shape checks:"]
    for name, ok in checks.items():
        lines.append(f"  [{'PASS' if ok else 'FAIL'}] {name}")
    return "\n".join(lines)
