"""Experiment harness: paper reference values, per-table drivers with
shape checks, table rendering, the run-everything runner, and its
parallel/cached execution machinery (pool, simjobs, cache,
parallel_runner)."""

from .cache import ResultCache, stable_hash
from .experiments import EXPERIMENTS, ExperimentResult, run_experiment
from .runner import load_result, resolve_ids, run_all, save_result
from .simjobs import SimConfig, run_sim_configs
from .tables import format_value, render_checks, render_table

__all__ = [
    "EXPERIMENTS",
    "ExperimentResult",
    "run_experiment",
    "run_all",
    "save_result",
    "load_result",
    "resolve_ids",
    "ResultCache",
    "stable_hash",
    "SimConfig",
    "run_sim_configs",
    "render_table",
    "render_checks",
    "format_value",
]
