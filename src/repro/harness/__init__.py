"""Experiment harness: paper reference values, per-table drivers with
shape checks, table rendering, and the run-everything runner."""

from .experiments import EXPERIMENTS, ExperimentResult, run_experiment
from .runner import load_result, run_all, save_result
from .tables import format_value, render_checks, render_table

__all__ = [
    "EXPERIMENTS",
    "ExperimentResult",
    "run_experiment",
    "run_all",
    "save_result",
    "load_result",
    "render_table",
    "render_checks",
    "format_value",
]
