"""Per-row simulation jobs: the harness's inner level of parallelism.

The paper's sweep tables (Tables 1, 2, 6; the X5 speedup pair) are
embarrassingly parallel: every row is one independent
``run_message_passing`` / ``run_shared_memory`` call.  This module gives
the experiment drivers a declarative way to say so — build a list of
:class:`SimConfig` records and hand it to :func:`run_sim_configs` —
which unlocks, transparently to the drivers:

- **fan-out**: rows execute across a process pool when the harness has
  configured inner jobs (:func:`configure`), serially otherwise;
- **row caching**: each config is content-addressed (circuit netlist
  digest, schedule fields, processor/iteration counts, cost-model
  fields, code digest), so overlapping sweeps and warm re-runs skip
  rows that were already computed — e.g. the sender-initiated ``(2, 10)``
  configuration appears in T1, T6, and X5 but simulates once.

Results come back in config order either way, so driver code is
identical under every execution strategy.  Configuration is process
local; worker processes of the *outer* experiment pool inherit the
defaults (serial, cache from their own setup), so pools never nest.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import lru_cache
from typing import Dict, List, Optional, Tuple

from ..circuits import Circuit, bnre_like, mdc_like
from ..errors import ExperimentError
from ..faults.plan import FaultPlan
from ..parallel import run_message_passing, run_shared_memory
from ..parallel.results import ParallelRunResult
from ..parallel.timing import DEFAULT_COST_MODEL
from ..obs import telemetry as obs
from ..updates import UpdateSchedule
from .cache import (
    ResultCache,
    circuit_fingerprint,
    code_fingerprint,
    cost_model_fingerprint,
    stable_hash,
)
from .pool import pool_map

__all__ = [
    "SimConfig",
    "sim_fingerprint",
    "sim_key",
    "run_sim_config",
    "run_sim_configs",
    "configure",
]


@dataclass(frozen=True)
class SimConfig:
    """One independent simulation row of a sweep (picklable).

    ``kind`` selects the paradigm: ``"mp"`` (requires ``schedule``) or
    ``"sm"``.  The circuit is named, not embedded, so configs stay tiny
    on the wire: ``which`` is ``"bnrE"`` or ``"MDC"``, sized by ``quick``
    exactly as :func:`~repro.harness.experiments.quick_circuit` does, or
    overridden to ``n_wires`` wires (tests and smoke benches).
    """

    kind: str
    which: str = "bnrE"
    quick: bool = False
    n_wires: Optional[int] = None
    schedule: Optional[UpdateSchedule] = None
    n_procs: int = 16
    iterations: int = 3
    # shared memory only
    line_size: int = 8
    extra_line_sizes: Tuple[int, ...] = ()
    protocol: str = "invalidate"
    collect_trace: bool = True
    #: Run the repro.verify invariant checkers alongside the simulation.
    check_invariants: bool = False
    #: Fault-injection plan (message passing only); ``None`` = fault-free.
    faults: Optional[FaultPlan] = None

    def __post_init__(self) -> None:
        if self.kind not in ("mp", "sm"):
            raise ExperimentError(f"unknown sim kind {self.kind!r}")
        if self.kind == "mp" and self.schedule is None:
            raise ExperimentError("message passing configs need a schedule")
        if self.kind == "sm" and self.faults is not None:
            raise ExperimentError(
                "fault injection targets the message passing network; "
                "shared memory configs cannot carry a FaultPlan"
            )


@lru_cache(maxsize=32)
def _named_circuit(which: str, quick: bool, n_wires: Optional[int]) -> Circuit:
    """Build (and memoise) the named benchmark circuit for a config."""
    if which == "bnrE":
        base_quick_wires = 160
        maker = bnre_like
    elif which == "MDC":
        base_quick_wires = 200
        maker = mdc_like
    else:
        raise ExperimentError(f"unknown circuit {which!r}")
    if n_wires is not None:
        return maker(n_wires=n_wires)
    return maker(n_wires=base_quick_wires) if quick else maker()


@lru_cache(maxsize=32)
def _named_circuit_fingerprint(
    which: str, quick: bool, n_wires: Optional[int]
) -> str:
    return circuit_fingerprint(_named_circuit(which, quick, n_wires))


def sim_fingerprint(config: SimConfig) -> Dict[str, object]:
    """Everything that determines this row's result, as a plain dict."""
    return {
        "unit": "sim",
        "kind": config.kind,
        "circuit": _named_circuit_fingerprint(
            config.which, config.quick, config.n_wires
        ),
        "schedule": config.schedule,  # dataclass; jsonified by stable_hash
        "n_procs": config.n_procs,
        "iterations": config.iterations,
        "line_size": config.line_size,
        "extra_line_sizes": config.extra_line_sizes,
        "protocol": config.protocol,
        "collect_trace": config.collect_trace,
        "check_invariants": config.check_invariants,
        "faults": config.faults,  # dataclass (or None); jsonified by stable_hash
        "cost_model": cost_model_fingerprint(DEFAULT_COST_MODEL),
        "code": code_fingerprint(),
    }


def sim_key(config: SimConfig) -> str:
    """The content-addressed cache key of one simulation config."""
    return stable_hash(sim_fingerprint(config))


def _run_sim_config_in_worker(
    config: SimConfig,
) -> Tuple[ParallelRunResult, Dict[str, object]]:
    """Pool-worker wrapper: run one config and report its telemetry.

    The worker's global telemetry is reset first (fork-started workers
    inherit the parent's counters, which the parent already owns), so
    the returned snapshot is exactly this task's delta.
    """
    obs.reset()
    result = run_sim_config(config)
    return result, obs.snapshot()


def run_sim_config(config: SimConfig) -> ParallelRunResult:
    """Execute one simulation row (no caching; used by pool workers)."""
    circuit = _named_circuit(config.which, config.quick, config.n_wires)
    if config.kind == "mp":
        return run_message_passing(
            circuit,
            config.schedule,
            n_procs=config.n_procs,
            iterations=config.iterations,
            check_invariants=config.check_invariants,
            faults=config.faults,
        )
    return run_shared_memory(
        circuit,
        n_procs=config.n_procs,
        iterations=config.iterations,
        line_size=config.line_size,
        extra_line_sizes=config.extra_line_sizes,
        protocol=config.protocol,
        collect_trace=config.collect_trace,
        check_invariants=config.check_invariants,
    )


# ----------------------------------------------------------------------
# harness-installed execution strategy (process local)
# ----------------------------------------------------------------------
@dataclass
class _Strategy:
    jobs: int = 1
    cache: Optional[ResultCache] = None
    timeout_s: Optional[float] = None


_STRATEGY = _Strategy()


def configure(
    jobs: Optional[int] = None,
    cache: Optional[ResultCache] = None,
    timeout_s: Optional[float] = None,
    reset: bool = False,
) -> None:
    """Install the execution strategy the harness wants for sim rows.

    ``reset=True`` restores the defaults (serial, uncached) first; other
    arguments then override individual fields.  Drivers never call this —
    only the runner / parallel runner and tests do.
    """
    global _STRATEGY
    if reset:
        _STRATEGY = _Strategy()
    if jobs is not None:
        _STRATEGY.jobs = jobs
    if cache is not None:
        _STRATEGY.cache = cache
    if timeout_s is not None:
        _STRATEGY.timeout_s = timeout_s


def run_sim_configs(
    configs: List[SimConfig],
    jobs: Optional[int] = None,
    cache: Optional[ResultCache] = None,
    timeout_s: Optional[float] = None,
) -> List[ParallelRunResult]:
    """Execute every config, in config order, with caching and fan-out.

    Explicit arguments override the :func:`configure`-installed strategy;
    the default (no configuration, no arguments) is serial and uncached —
    identical to calling the simulators directly.
    """
    jobs = _STRATEGY.jobs if jobs is None else jobs
    cache = _STRATEGY.cache if cache is None else cache
    timeout_s = _STRATEGY.timeout_s if timeout_s is None else timeout_s

    results: Dict[int, ParallelRunResult] = {}
    missing: List[int] = []
    keys: List[Optional[str]] = [None] * len(configs)
    if cache is not None:
        for i, config in enumerate(configs):
            keys[i] = sim_key(config)
            hit = cache.get_sim(keys[i])
            if hit is None:
                missing.append(i)
            else:
                results[i] = hit
    else:
        missing = list(range(len(configs)))

    if missing:
        if jobs > 1 and len(missing) > 1:
            # Pool workers carry their own telemetry globals; each task
            # returns a snapshot so the parent's counters stay complete.
            outs = pool_map(
                _run_sim_config_in_worker,
                [configs[i] for i in missing],
                jobs=jobs,
                timeout_s=timeout_s,
                label="sim config",
            )
            computed = []
            for result, tel_snapshot in outs:
                obs.get_telemetry().merge(tel_snapshot)
                computed.append(result)
        else:
            computed = pool_map(
                run_sim_config,
                [configs[i] for i in missing],
                jobs=1,
                timeout_s=timeout_s,
                label="sim config",
            )
        for i, result in zip(missing, computed):
            results[i] = result
            if cache is not None:
                cache.put_sim(keys[i], result)
    obs.incr("harness.sim_rows", len(configs))
    return [results[i] for i in range(len(configs))]
