"""Deterministic process-pool mapping with per-task timeout and retry.

Both fan-out levels of the parallel harness — experiment ids in
:mod:`repro.harness.parallel_runner`, and per-row simulation configs in
:mod:`repro.harness.simjobs` — need the same primitive: map a picklable
function over independent items on a ``ProcessPoolExecutor`` and get the
results back *in item order* regardless of completion order, with a
per-task timeout and one retry for robustness.

Failure policy
--------------
A task that raises in its worker, or exceeds ``timeout_s``, is retried
**once, serially, in the parent process** after the pool pass finishes.
Serial retry sidesteps a potentially broken/saturated pool and makes the
second attempt easy to debug (the traceback is the real one, not a
pickled copy).  A task that fails twice raises :class:`ExperimentError`
carrying the original failure.

Timeout semantics: ``timeout_s`` bounds how long the parent waits for
each task *from the moment it starts waiting on it* (tasks are awaited
in submission order, so time spent waiting on earlier tasks also counts
towards later ones — a late task only trips the timeout if it is still
unfinished ``timeout_s`` after all earlier tasks were collected).  A
timed-out worker cannot be interrupted mid-task; the pool is shut down
without waiting and the orphaned worker exits when its simulation
completes (every simulation terminates — the event kernel has a
``max_steps`` guard).
"""

from __future__ import annotations

import os
from concurrent.futures import ProcessPoolExecutor
from concurrent.futures import TimeoutError as FutureTimeoutError
from typing import Callable, List, Optional, Sequence, TypeVar

from ..errors import ExperimentError

__all__ = ["pool_map", "default_jobs"]

T = TypeVar("T")
R = TypeVar("R")


def default_jobs() -> int:
    """A sensible ``--jobs auto`` value: the machine's CPU count."""
    return os.cpu_count() or 1


def _run_with_retry(fn: Callable[[T], R], item: T, label: str, index: int) -> R:
    """Serial execution with the same retry-once contract as the pool."""
    try:
        return fn(item)
    except ExperimentError:
        raise
    except Exception:
        try:
            return fn(item)
        except Exception as exc:
            raise ExperimentError(
                f"{label} {index} ({item!r}) failed twice: {exc}"
            ) from exc


def pool_map(
    fn: Callable[[T], R],
    items: Sequence[T],
    jobs: int = 1,
    timeout_s: Optional[float] = None,
    label: str = "task",
) -> List[R]:
    """Map *fn* over *items*, results in item order (see module docstring).

    ``jobs <= 1`` (or a single item) runs serially in-process, still with
    the retry-once contract, so callers need exactly one code path.
    """
    items = list(items)
    if not items:
        return []
    if jobs <= 1 or len(items) == 1:
        return [
            _run_with_retry(fn, item, label, i) for i, item in enumerate(items)
        ]

    results: dict = {}
    failures: List[int] = []
    executor = ProcessPoolExecutor(max_workers=min(jobs, len(items)))
    try:
        futures = [executor.submit(fn, item) for item in items]
        for i, future in enumerate(futures):
            try:
                results[i] = future.result(timeout=timeout_s)
            except FutureTimeoutError:
                future.cancel()
                failures.append(i)
            except Exception:
                failures.append(i)
    finally:
        # Don't block on a timed-out worker; pending tasks were either
        # collected or recorded as failures.
        executor.shutdown(wait=not failures, cancel_futures=True)

    for i in failures:
        try:
            results[i] = fn(items[i])
        except Exception as exc:
            raise ExperimentError(
                f"{label} {i} ({items[i]!r}) failed twice "
                f"(once in a worker, once on serial retry): {exc}"
            ) from exc
    return [results[i] for i in range(len(items))]
