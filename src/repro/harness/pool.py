"""Deterministic process-pool mapping with per-task timeout and retry.

Both fan-out levels of the parallel harness — experiment ids in
:mod:`repro.harness.parallel_runner`, and per-row simulation configs in
:mod:`repro.harness.simjobs` — need the same primitive: map a picklable
function over independent items on a ``ProcessPoolExecutor`` and get the
results back *in item order* regardless of completion order, with a
per-task timeout and one retry for robustness.

Failure policy
--------------
A task that raises in its worker, or exceeds ``timeout_s``, is retried
**once, serially, in the parent process** after the pool pass finishes.
Serial retry sidesteps a potentially broken/saturated pool and makes the
second attempt easy to debug (the traceback is the real one, not a
pickled copy).  A task that fails twice raises :class:`ExperimentError`
carrying the original failure.

A pool whose worker *process* dies (OOM kill, segfault, a fault-injected
crash experiment taking out its host) surfaces as
``BrokenProcessPool``.  That poisons every outstanding future, so the
pool pass respawns the executor — up to :data:`MAX_POOL_RESPAWNS` times,
with exponential backoff — and resubmits only the uncollected items.
If the respawn budget runs out, the survivors' results are kept and the
stragglers fall through to the serial retry like any other failure.

:func:`pool_map_salvage` is the non-raising variant: instead of raising
on the first twice-failed task it returns a :class:`PoolReport` with
``None`` holes for the casualties and a structured
:class:`PoolFailure` record per loss, so sweep callers can salvage the
partial results (a 47/48-cell sweep is still a sweep).

Timeout semantics: ``timeout_s`` bounds how long the parent waits for
each task *from the moment it starts waiting on it* (tasks are awaited
in submission order, so time spent waiting on earlier tasks also counts
towards later ones — a late task only trips the timeout if it is still
unfinished ``timeout_s`` after all earlier tasks were collected).  A
timed-out worker cannot be interrupted mid-task; the pool is shut down
without waiting and the orphaned worker exits when its simulation
completes (every simulation terminates — the event kernel has a
``max_steps`` guard).
"""

from __future__ import annotations

import multiprocessing
import os
import time
from concurrent.futures import ProcessPoolExecutor
from concurrent.futures import TimeoutError as FutureTimeoutError
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass, field
from typing import (
    Any,
    Callable,
    Dict,
    List,
    Optional,
    Sequence,
    Tuple,
    TypeVar,
)

from ..errors import ExperimentError
from ..kernels import active_kernels, set_kernels

__all__ = [
    "MAX_POOL_RESPAWNS",
    "RESPAWN_BACKOFF_S",
    "START_METHOD_ENV",
    "PoolFailure",
    "PoolReport",
    "mp_context",
    "pool_map",
    "pool_map_salvage",
    "default_jobs",
]

T = TypeVar("T")
R = TypeVar("R")

#: How many times a broken pool is rebuilt before giving up on it.
MAX_POOL_RESPAWNS = 2
#: Backoff before the first respawn; doubles on each subsequent one.
RESPAWN_BACKOFF_S = 0.25
#: Environment override for the multiprocessing start method used by every
#: process fan-out in the repo (the experiment pools and the live
#: routers): ``fork`` / ``spawn`` / ``forkserver``.  Unset or empty keeps
#: the platform default.  CI runs the suite under ``spawn`` through this.
START_METHOD_ENV = "REPRO_MP_START_METHOD"


def mp_context(method: Optional[str] = None):
    """The multiprocessing context the repo's process fan-out uses.

    *method* overrides explicitly; otherwise :data:`START_METHOD_ENV` is
    consulted, falling back to the platform default.  Validates against
    the platform's available start methods so a typo fails loudly instead
    of silently using the default.
    """
    if method is None:
        method = os.environ.get(START_METHOD_ENV, "").strip() or None
    if method is not None and method not in multiprocessing.get_all_start_methods():
        raise ExperimentError(
            f"start method {method!r} not available on this platform "
            f"(have: {multiprocessing.get_all_start_methods()})"
        )
    return multiprocessing.get_context(method)


def _pool_worker_init(kernel_mode: str) -> None:
    """Pool-worker initializer: re-establish per-process global state.

    Under ``fork`` workers inherit the parent's globals, but under
    ``spawn``/``forkserver`` they start from a fresh interpreter — the
    :mod:`repro.kernels` mode would silently revert to its default and
    telemetry would start dirty.  Explicitly propagating the kernel mode
    keeps worker behaviour identical across start methods.
    """
    set_kernels(kernel_mode)
    from ..obs import telemetry

    telemetry.reset()


def default_jobs() -> int:
    """A sensible ``--jobs auto`` value: the machine's CPU count."""
    return os.cpu_count() or 1


@dataclass(frozen=True)
class PoolFailure:
    """One task that failed both its pool pass and its serial retry."""

    index: int  #: position in the input sequence
    item: Any  #: the input item itself
    stage: str  #: where the first failure happened: worker/timeout/pool-broken/serial
    attempts: int  #: total execution attempts made
    error: str  #: repr of the final (serial-retry) exception

    def describe(self, label: str = "task") -> str:
        return (
            f"{label} {self.index} ({self.item!r}) failed "
            f"{self.attempts} times (first: {self.stage}): {self.error}"
        )


@dataclass
class PoolReport:
    """Outcome of :func:`pool_map_salvage`: partial results plus losses."""

    results: List[Optional[Any]]  #: item-order results, ``None`` per failure
    failures: List[PoolFailure] = field(default_factory=list)
    respawns: int = 0  #: broken-pool rebuilds performed

    @property
    def ok(self) -> bool:
        return not self.failures

    def to_dict(self) -> Dict[str, Any]:
        """Structured failure report for logs / run metadata."""
        return {
            "tasks": len(self.results),
            "salvaged": sum(1 for r in self.results if r is not None),
            "failed": len(self.failures),
            "respawns": self.respawns,
            "failures": [
                {
                    "index": f.index,
                    "item": repr(f.item),
                    "stage": f.stage,
                    "attempts": f.attempts,
                    "error": f.error,
                }
                for f in self.failures
            ],
        }


def _run_with_retry(fn: Callable[[T], R], item: T, label: str, index: int) -> R:
    """Serial execution with the same retry-once contract as the pool."""
    try:
        return fn(item)
    except ExperimentError:
        raise
    except Exception:
        try:
            return fn(item)
        except Exception as exc:
            raise ExperimentError(
                f"{label} {index} ({item!r}) failed twice: {exc}"
            ) from exc


def _failure_stage(exc: BaseException) -> str:
    if isinstance(exc, FutureTimeoutError):
        return "timeout"
    if isinstance(exc, BrokenProcessPool):
        return "pool-broken"
    return "worker"


def _pool_pass(
    fn: Callable[[T], R],
    items: Sequence[T],
    jobs: int,
    timeout_s: Optional[float],
) -> Tuple[Dict[int, R], List[Tuple[int, BaseException]], int]:
    """One pool stage over all items, respawning on ``BrokenProcessPool``.

    Returns ``(results, failures, respawns)`` where *failures* pairs each
    uncollected index with the exception that sank its first attempt.
    The caller decides what a failure means (retry-or-raise for
    :func:`pool_map`, record-and-salvage for :func:`pool_map_salvage`).
    """
    pending = list(range(len(items)))
    results: Dict[int, R] = {}
    failures: List[Tuple[int, BaseException]] = []
    respawns = 0
    while pending:
        executor = ProcessPoolExecutor(
            max_workers=min(jobs, len(pending)),
            mp_context=mp_context(),
            initializer=_pool_worker_init,
            initargs=(active_kernels(),),
        )
        broken: Optional[BaseException] = None
        resubmit: List[int] = []
        try:
            futures = [(i, executor.submit(fn, items[i])) for i in pending]
        except BrokenProcessPool as exc:
            broken = exc
            futures = []
            resubmit = list(pending)
        for i, future in futures:
            if broken is not None:
                # The pool died mid-collection; every outstanding future
                # is poisoned, so resubmit rather than fail the items.
                resubmit.append(i)
                continue
            try:
                results[i] = future.result(timeout=timeout_s)
            except FutureTimeoutError as exc:
                future.cancel()
                failures.append((i, exc))
            except BrokenProcessPool as exc:
                broken = exc
                resubmit.append(i)
            except Exception as exc:
                failures.append((i, exc))
        # Don't block on a timed-out or dead worker; pending tasks were
        # collected, recorded as failures, or queued for resubmission.
        executor.shutdown(wait=broken is None and not failures, cancel_futures=True)
        if broken is None:
            break
        respawns += 1
        if respawns > MAX_POOL_RESPAWNS:
            failures.extend((i, broken) for i in resubmit)
            break
        time.sleep(RESPAWN_BACKOFF_S * 2 ** (respawns - 1))
        pending = resubmit
    return results, failures, respawns


def pool_map(
    fn: Callable[[T], R],
    items: Sequence[T],
    jobs: int = 1,
    timeout_s: Optional[float] = None,
    label: str = "task",
) -> List[R]:
    """Map *fn* over *items*, results in item order (see module docstring).

    ``jobs <= 1`` (or a single item) runs serially in-process, still with
    the retry-once contract, so callers need exactly one code path.
    """
    items = list(items)
    if not items:
        return []
    if jobs <= 1 or len(items) == 1:
        return [
            _run_with_retry(fn, item, label, i) for i, item in enumerate(items)
        ]

    results, failures, _respawns = _pool_pass(fn, items, jobs, timeout_s)
    for i, _first_exc in failures:
        try:
            results[i] = fn(items[i])
        except Exception as exc:
            raise ExperimentError(
                f"{label} {i} ({items[i]!r}) failed twice "
                f"(once in a worker, once on serial retry): {exc}"
            ) from exc
    return [results[i] for i in range(len(items))]


def pool_map_salvage(
    fn: Callable[[T], R],
    items: Sequence[T],
    jobs: int = 1,
    timeout_s: Optional[float] = None,
    label: str = "task",
) -> PoolReport:
    """Like :func:`pool_map`, but a twice-failed task never raises.

    Each casualty leaves a ``None`` hole in ``report.results`` and a
    :class:`PoolFailure` record; everything that did complete is kept.
    ``label`` only flavours failure descriptions.
    """
    items = list(items)
    if not items:
        return PoolReport(results=[])
    collected: Dict[int, R] = {}
    losses: List[PoolFailure] = []
    respawns = 0
    if jobs <= 1 or len(items) == 1:
        for i, item in enumerate(items):
            try:
                collected[i] = _run_with_retry(fn, item, label, i)
            except Exception as exc:
                losses.append(
                    PoolFailure(
                        index=i, item=item, stage="serial",
                        attempts=2, error=repr(exc),
                    )
                )
    else:
        collected, pool_failures, respawns = _pool_pass(
            fn, items, jobs, timeout_s
        )
        for i, first_exc in pool_failures:
            try:
                collected[i] = fn(items[i])
            except Exception as exc:
                losses.append(
                    PoolFailure(
                        index=i,
                        item=items[i],
                        stage=_failure_stage(first_exc),
                        attempts=2,
                        error=repr(exc),
                    )
                )
    losses.sort(key=lambda f: f.index)
    return PoolReport(
        results=[collected.get(i) for i in range(len(items))],
        failures=losses,
        respawns=respawns,
    )
