"""Multi-seed robustness of the reproduced orderings (experiment R1).

The benchmark circuits are synthetic stand-ins built from one fixed seed
each.  A reproduction claim is only as good as its stability: this
experiment regenerates the bnrE-like circuit under several different
seeds and re-checks the paper's core qualitative orderings on every one —

- locality-aware assignment does not lose to round robin on quality;
- full locality minimises message passing traffic but costs time;
- shared memory coherence traffic exceeds message passing traffic;
- the 16-processor speedup stays in the paper's band.

If any ordering held only for the canonical seed, it would fail here.
"""

from __future__ import annotations

import math
from typing import Dict, List

from ..assign import RoundRobinAssigner, ThresholdCostAssigner
from ..circuits import bnre_like
from ..grid import RegionMap
from ..parallel import run_message_passing, run_shared_memory
from ..updates import UpdateSchedule
from .experiments import ExperimentResult, _iters

__all__ = ["run_r1_robustness"]

#: Alternative seeds for the perturbed bnrE-like instances.
ROBUSTNESS_SEEDS = (1, 77, 4242)


def _seed_checks(seed: int, quick: bool) -> Dict[str, bool]:
    """Evaluate the core orderings on one perturbed circuit."""
    circuit = bnre_like(seed=seed, n_wires=160 if quick else None)
    regions = RegionMap(circuit.n_channels, circuit.n_grids, 16)
    schedule = UpdateSchedule.sender_initiated(2, 10)
    iters = _iters(quick)

    rr_asg = RoundRobinAssigner(circuit, regions).assign()
    tc30_asg = ThresholdCostAssigner(circuit, regions, 30).assign()
    inf_asg = ThresholdCostAssigner(circuit, regions, math.inf).assign()

    rr = run_message_passing(circuit, schedule, assignment=rr_asg, iterations=iters)
    tc30 = run_message_passing(circuit, schedule, assignment=tc30_asg, iterations=iters)
    inf = run_message_passing(circuit, schedule, assignment=inf_asg, iterations=iters)
    sm = run_shared_memory(circuit, iterations=iters, line_size=4)
    # True 16-processor speedup: a real 1-processor baseline against the
    # best-balanced 16-processor run.  (An earlier version approximated
    # t1 as 2 * t2, but the 2-processor run already pays communication
    # and load-imbalance costs, so the extrapolation overstated t1 and
    # inflated the speedup.)  Communication overhead means the honest
    # quick-scale speedup sits below the ideal 16x; the band brackets
    # the measured values across the perturbed seeds with headroom.
    t1 = run_message_passing(circuit, schedule, n_procs=1, iterations=iters).exec_time_s
    speedup = t1 / tc30.exec_time_s

    return {
        "locality quality >= round robin": min(
            tc30.quality.occupancy_factor, inf.quality.occupancy_factor
        )
        <= rr.quality.occupancy_factor * 1.01,
        "full locality minimises traffic": inf.mbytes_transferred
        < rr.mbytes_transferred,
        "full locality costs time": inf.exec_time_s > tc30.exec_time_s,
        "SM traffic > MP traffic": sm.mbytes_transferred > tc30.mbytes_transferred,
        "speedup in band": 4.0 <= speedup <= 17.0,
    }


def run_r1_robustness(quick: bool = False) -> ExperimentResult:
    """R1: re-check the core orderings across perturbed circuit seeds."""
    seeds = ROBUSTNESS_SEEDS[: 2 if quick else len(ROBUSTNESS_SEEDS)]
    rows: List[Dict[str, object]] = []
    all_checks: Dict[str, bool] = {}
    for seed in seeds:
        outcomes = _seed_checks(seed, quick)
        rows.append(
            {
                "seed": seed,
                **{name: ("pass" if ok else "FAIL") for name, ok in outcomes.items()},
            }
        )
        for name, ok in outcomes.items():
            key = f"{name} (all seeds)"
            all_checks[key] = all_checks.get(key, True) and ok
    columns = ["seed"] + [
        "locality quality >= round robin",
        "full locality minimises traffic",
        "full locality costs time",
        "SM traffic > MP traffic",
        "speedup in band",
    ]
    return ExperimentResult(
        exp_id="R1",
        title="Robustness: core orderings across perturbed circuit seeds",
        columns=columns,
        rows=rows,
        checks=all_checks,
        notes=f"seeds tested: {list(seeds)} (canonical benchmark uses its own fixed seed)",
    )
