"""Ablation experiments beyond the paper's tables.

Each ablation tests a design choice the paper *discusses* but could not or
did not measure, using the same shape-check machinery as the table
experiments:

- **A1** — the three §4.3.1 packet structures (wire-based / full-region /
  bounding-box), justifying the paper's choice by measurement.
- **A2** — blocking receivers under interrupt-driven reception and a
  faster network: the §5.1.3 prediction that "with a higher performance
  interconnection network [and] lower overhead on message reception ...
  the blocking strategy would probably become more effective".
- **A3** — the two dynamic wire-distribution schemes of §4.2 (polled and
  interrupt-serviced wire assignment processor) against static
  assignment, measuring the task-wait latency the paper reasoned about.
- **A4** — the hierarchical (NUMA) shared memory machine of §5.3.2, where
  remote references cost ~10x local ones, showing locality-aware
  assignment becoming a first-order execution-time effect.
"""

from __future__ import annotations

import math
from dataclasses import replace
from typing import Dict, List

from ..assign import RoundRobinAssigner, ThresholdCostAssigner
from ..grid import RegionMap
from ..parallel import CostModel, run_dynamic_assignment, run_message_passing, run_shared_memory
from ..updates import PacketStructure, UpdateSchedule
from .experiments import ExperimentResult, _iters, quick_circuit

__all__ = [
    "run_a1_packet_structures",
    "run_a2_interrupts",
    "run_a3_dynamic_assignment",
    "run_a4_numa_locality",
]


def run_a1_packet_structures(quick: bool = False) -> ExperimentResult:
    """A1: measure the §4.3.1 packet-structure tradeoff."""
    circuit = quick_circuit("bnrE", quick)
    base = UpdateSchedule.sender_initiated(2, 10)
    rows: List[Dict[str, object]] = []
    traffic: Dict[PacketStructure, float] = {}
    for structure in (
        PacketStructure.WIRE_BASED,
        PacketStructure.FULL_REGION,
        PacketStructure.BOUNDING_BOX,
    ):
        result = run_message_passing(
            circuit, replace(base, packet_structure=structure), iterations=_iters(quick)
        )
        traffic[structure] = result.mbytes_transferred
        rows.append({"structure": structure.value, **result.table_row()})
    checks = {
        # "it uses a large number of bytes" — full-region is the most
        # expensive encoding.
        "full-region costs the most traffic": traffic[PacketStructure.FULL_REGION]
        == max(traffic.values()),
        # "it reduces network traffic compared to the other method" — the
        # bbox optimisation beats shipping whole regions by a wide margin.
        "bounding box halves full-region traffic": traffic[PacketStructure.BOUNDING_BOX]
        < 0.6 * traffic[PacketStructure.FULL_REGION],
        # wire-based encodings are competitive with bounding boxes (the
        # paper rejected them on processing convenience, not size).
        "wire-based is size-competitive": traffic[PacketStructure.WIRE_BASED]
        < 2.0 * traffic[PacketStructure.BOUNDING_BOX],
    }
    return ExperimentResult(
        exp_id="A1",
        title="Ablation: §4.3.1 update packet structures (sender 2/10)",
        columns=["structure", "ckt_height", "occupancy", "mbytes", "time_s"],
        rows=rows,
        checks=checks,
    )


def run_a2_interrupts(quick: bool = False) -> ExperimentResult:
    """A2: blocking receivers with interrupt reception / faster network."""
    circuit = quick_circuit("bnrE", quick)
    slow = CostModel()
    fast = replace(
        slow,
        hop_time_s=slow.hop_time_s / 10,
        process_time_s=slow.process_time_s / 10,
        packet_fixed_s=slow.packet_fixed_s / 10,
    )
    rows: List[Dict[str, object]] = []
    penalty: Dict[str, float] = {}
    for label, cm, interrupts in (
        ("paper network, polled", slow, False),
        ("paper network, interrupts", slow, True),
        ("10x network, interrupts", fast, True),
    ):
        nb = replace(
            UpdateSchedule.receiver_initiated(1, 5), interrupt_reception=interrupts
        )
        bl = replace(
            UpdateSchedule.receiver_initiated(1, 5, blocking=True),
            interrupt_reception=interrupts,
        )
        t_nb = run_message_passing(
            circuit, nb, cost_model=cm, iterations=_iters(quick)
        ).exec_time_s
        t_bl = run_message_passing(
            circuit, bl, cost_model=cm, iterations=_iters(quick)
        ).exec_time_s
        penalty[label] = t_bl / t_nb - 1.0
        rows.append(
            {
                "configuration": label,
                "non_blocking_s": round(t_nb, 3),
                "blocking_s": round(t_bl, 3),
                "blocking_penalty": f"{penalty[label]:+.0%}",
            }
        )
    checks = {
        # §5.1.3: blocking pays a large penalty on the paper's machine
        # (smaller quick-mode circuits have fewer requests per region, so
        # the bar is lower there) ...
        "blocking penalty large when polled": penalty["paper network, polled"]
        > (0.08 if quick else 0.15),
        # ... and the paper's prediction: low reception overhead makes
        # blocking viable.
        "interrupt reception collapses the penalty": penalty[
            "paper network, interrupts"
        ] < 0.5 * penalty["paper network, polled"],
        "fast network keeps the penalty small": penalty["10x network, interrupts"]
        < 0.5 * penalty["paper network, polled"],
    }
    return ExperimentResult(
        exp_id="A2",
        title="Ablation: the §5.1.3 blocking prediction (RLD=1 RRD=5)",
        columns=["configuration", "non_blocking_s", "blocking_s", "blocking_penalty"],
        rows=rows,
        checks=checks,
        notes=(
            "the paper: 'With a higher performance interconnection network, "
            "lower overhead on message reception ... the blocking strategy "
            "would probably become more effective.'"
        ),
    )


def run_a3_dynamic_assignment(quick: bool = False) -> ExperimentResult:
    """A3: the §4.2 dynamic wire-distribution schemes vs static."""
    circuit = quick_circuit("bnrE", quick)
    schedule = UpdateSchedule.sender_initiated(2, 10)
    static = run_message_passing(circuit, schedule, iterations=1)
    polled = run_dynamic_assignment(circuit, schedule)
    interrupt = run_dynamic_assignment(
        circuit, replace(schedule, interrupt_reception=True)
    )
    rows = []
    for label, result in (
        ("static (ThresholdCost=1000)", static),
        ("dynamic, polled master", polled),
        ("dynamic, interrupt master", interrupt),
    ):
        row = {"assignment": label, **result.table_row()}
        row["mean_task_wait_ms"] = (
            round(result.meta["mean_task_wait_s"] * 1e3, 2)
            if "mean_task_wait_s" in result.meta
            else None
        )
        rows.append(row)
    checks = {
        # §4.2: "the time spent waiting for a requested task can be large"
        # when the master polls between wires ...
        "polled task wait is large": polled.meta["mean_task_wait_s"] > 2e-3,
        # ... and interrupts "offer wire distribution with lower latency".
        "interrupts cut the task wait": interrupt.meta["mean_task_wait_s"]
        < 0.5 * polled.meta["mean_task_wait_s"],
        "interrupts speed up the dynamic run": interrupt.exec_time_s
        < polled.exec_time_s,
        "all schemes route every wire": all(
            len(r.paths) == circuit.n_wires for r in (static, polled, interrupt)
        ),
    }
    return ExperimentResult(
        exp_id="A3",
        title="Ablation: §4.2 dynamic wire distribution (single iteration)",
        columns=[
            "assignment",
            "ckt_height",
            "occupancy",
            "mbytes",
            "time_s",
            "mean_task_wait_ms",
        ],
        rows=rows,
        checks=checks,
    )


def run_a4_numa_locality(quick: bool = False) -> ExperimentResult:
    """A4: locality on a hierarchical (NUMA) shared memory machine."""
    circuit = quick_circuit("bnrE", quick)
    regions = RegionMap(circuit.n_channels, circuit.n_grids, 16)
    numa = CostModel(numa_remote_factor=10.0)
    rows: List[Dict[str, object]] = []
    slowdown: Dict[str, float] = {}
    for label, assignment in (
        ("round robin", RoundRobinAssigner(circuit, regions).assign()),
        ("TC=30", ThresholdCostAssigner(circuit, regions, 30).assign()),
        ("TC=inf", ThresholdCostAssigner(circuit, regions, math.inf).assign()),
    ):
        flat = run_shared_memory(
            circuit, assignment=assignment, collect_trace=False, iterations=_iters(quick)
        )
        hier = run_shared_memory(
            circuit,
            assignment=assignment,
            collect_trace=False,
            cost_model=numa,
            iterations=_iters(quick),
        )
        slowdown[label] = hier.exec_time_s / flat.exec_time_s
        rows.append(
            {
                "assignment": label,
                "flat_time_s": round(flat.exec_time_s, 2),
                "numa_time_s": round(hier.exec_time_s, 2),
                "slowdown": round(slowdown[label], 2),
            }
        )
    checks = {
        # §5.3.2: on hierarchical machines locality becomes first-order —
        # the most local assignment suffers the smallest NUMA penalty.
        "full locality suffers the least NUMA slowdown": slowdown["TC=inf"]
        == min(slowdown.values()),
        "round robin suffers the most NUMA slowdown": slowdown["round robin"]
        == max(slowdown.values()),
    }
    return ExperimentResult(
        exp_id="A4",
        title="Ablation: §5.3.2 hierarchical shared memory (remote refs 10x)",
        columns=["assignment", "flat_time_s", "numa_time_s", "slowdown"],
        rows=rows,
        checks=checks,
        notes=(
            "the paper: 'in hierarchical shared memory architectures ... a "
            "local reference can be more than an order of magnitude faster "
            "... locality will become an important part of future program "
            "design.'"
        ),
    )


def run_a5_write_update(quick: bool = False) -> ExperimentResult:
    """A5: write-update vs write-back-invalidate coherence protocols."""
    from ..parallel import run_shared_memory as _run_sm

    circuit = quick_circuit("bnrE", quick)
    line_sizes = [4, 8, 16, 32]
    results = {}
    for protocol in ("invalidate", "update"):
        run = _run_sm(
            circuit,
            iterations=_iters(quick),
            line_size=line_sizes[0],
            extra_line_sizes=line_sizes[1:],
            protocol=protocol,
        )
        results[protocol] = run.meta["coherence_by_line_size"]
    rows: List[Dict[str, object]] = []
    for ls in line_sizes:
        inv = results["invalidate"][ls]
        upd = results["update"][ls]
        rows.append(
            {
                "line_size": ls,
                "invalidate_mb": round(inv["mbytes"], 4),
                "update_mb": round(upd["mbytes"], 4),
                "update_broadcast_mb": round(upd["word_write_bytes"] / 1e6, 4),
            }
        )
    inv_growth = (
        results["invalidate"][32]["mbytes"] / results["invalidate"][4]["mbytes"]
    )
    upd_growth = results["update"][32]["mbytes"] / results["update"][4]["mbytes"]
    checks = {
        # LocusRoute's cost-array sharing is read-dominated (many sweep
        # reads per occupancy write), the regime where Archibald & Baer
        # found update protocols cheaper than invalidation.
        "update protocol moves fewer bytes here": all(
            results["update"][ls]["mbytes"] < results["invalidate"][ls]["mbytes"]
            for ls in line_sizes
        ),
        # Updates broadcast words, so their traffic barely depends on the
        # line size, unlike invalidation's refetch growth.
        "update traffic flatter across line sizes": upd_growth < inv_growth + 0.05,
        "broadcasts dominate update-protocol bytes": results["update"][32][
            "word_write_bytes"
        ]
        > 0.3 * results["update"][32]["total_bytes"],
    }
    return ExperimentResult(
        exp_id="A5",
        title="Ablation: write-update vs write-back-invalidate coherence",
        columns=["line_size", "invalidate_mb", "update_mb", "update_broadcast_mb"],
        rows=rows,
        checks=checks,
        notes=(
            "the paper's protocol choice follows Archibald & Baer; this "
            "ablation runs their other protocol family on the same traces."
        ),
    )


def run_a6_cache_size(quick: bool = False) -> ExperimentResult:
    """A6: the footnote-3 effect — traffic vs finite cache size."""
    from ..memsim import AddressMap, simulate_trace, simulate_trace_finite
    from ..parallel import run_shared_memory as _run_sm

    circuit = quick_circuit("bnrE", quick)
    result = _run_sm(circuit, iterations=_iters(quick), line_size=8, keep_trace=True)
    trace = result.meta["trace"]
    layout = result.meta["layout"]
    amap = AddressMap(
        circuit.n_channels,
        circuit.n_grids,
        8,
        extra_words=layout.total_words - layout.array_words,
    )

    infinite = simulate_trace(trace, 16, amap)
    sizes = [64, 256, 1024]
    rows: List[Dict[str, object]] = []
    totals: List[float] = []
    for cache_lines in sizes:
        stats = simulate_trace_finite(trace, 16, amap, cache_lines)
        totals.append(stats.mbytes)
        rows.append(
            {
                "cache_lines": cache_lines,
                "cache_bytes": cache_lines * 8,
                "mbytes": round(stats.mbytes, 4),
                "writeback_mb": round(stats.writeback_bytes / 1e6, 4),
            }
        )
    rows.append(
        {
            "cache_lines": "infinite",
            "cache_bytes": "-",
            "mbytes": round(infinite.mbytes, 4),
            "writeback_mb": round(infinite.writeback_bytes / 1e6, 4),
        }
    )
    checks = {
        # footnote 3: "a small cache will have a higher miss rate
        # requiring more data fetches from main memory".
        "traffic decreases with cache size": all(
            b <= a * 1.02 for a, b in zip(totals, totals[1:])
        ),
        "finite caches cost at least the infinite-cache traffic": totals[-1]
        >= infinite.mbytes * 0.98,
        "tiny caches cost much more": totals[0] > 1.5 * infinite.mbytes,
    }
    return ExperimentResult(
        exp_id="A6",
        title="Ablation: footnote 3 — traffic vs finite cache size (8B lines)",
        columns=["cache_lines", "cache_bytes", "mbytes", "writeback_mb"],
        rows=rows,
        checks=checks,
    )


def run_a7_staleness(quick: bool = False) -> ExperimentResult:
    """A7: staleness, measured — view divergence vs update schedule."""
    circuit = quick_circuit("bnrE", quick)
    schedules = [
        ("sender eager (1,1)", UpdateSchedule.sender_initiated(1, 1)),
        ("sender lazy (10,20)", UpdateSchedule.sender_initiated(10, 20)),
        ("receiver (1,5)", UpdateSchedule.receiver_initiated(1, 5)),
        ("silent", UpdateSchedule()),
    ]
    rows: List[Dict[str, object]] = []
    divergence: Dict[str, float] = {}
    for label, schedule in schedules:
        # Single iteration isolates staleness from rip-up churn: quality
        # feedback between iterations otherwise couples the schedules.
        result = run_message_passing(
            circuit, schedule, iterations=1, track_divergence=True
        )
        d = result.meta["divergence"]
        divergence[label] = d["mean_l1"]
        rows.append(
            {
                "schedule": label,
                "mean_view_error_L1": round(d["mean_l1"], 2),
                "max_view_error_L1": round(d["max_l1"], 1),
                "occupancy": result.quality.occupancy_factor,
                "mbytes": round(result.mbytes_transferred, 4),
            }
        )
    checks = {
        # The mechanism behind every quality number in the paper: updates
        # keep the routing view closer to reality.
        "eager updates reduce view error vs silent": divergence["sender eager (1,1)"]
        < divergence["silent"],
        "any updates beat no updates": all(
            divergence[label] <= divergence["silent"] * 1.02
            for label, _ in schedules[:-1]
        ),
        "receiver-initiated requests also reduce error": divergence["receiver (1,5)"]
        < divergence["silent"],
    }
    return ExperimentResult(
        exp_id="A7",
        title="Ablation: staleness measured — local-view error vs update schedule",
        columns=[
            "schedule",
            "mean_view_error_L1",
            "max_view_error_L1",
            "occupancy",
            "mbytes",
        ],
        rows=rows,
        checks=checks,
        notes=(
            "view error = L1 distance between the routing node's view and "
            "the true cost array over each committed route's cells (single "
            "routing iteration; across rip-up iterations, route churn from "
            "eager updates partially offsets their freshness advantage)."
        ),
    )


def run_a8_centroid(quick: bool = False) -> ExperimentResult:
    """A8: the paper's suggested smarter heuristic — centroid assignment."""
    from ..assign import CentroidAssigner
    from ..route import locality_measure

    circuit = quick_circuit("bnrE", quick)
    regions = RegionMap(circuit.n_channels, circuit.n_grids, 16)
    schedule = UpdateSchedule.sender_initiated(2, 10)
    rows: List[Dict[str, object]] = []
    metrics: Dict[str, Dict[str, float]] = {}
    for label, cls in (
        ("leftmost pin (paper)", ThresholdCostAssigner),
        ("bounding-box centroid", CentroidAssigner),
    ):
        assignment = cls(circuit, regions, 1000).assign()
        result = run_message_passing(
            circuit, schedule, assignment=assignment, iterations=_iters(quick)
        )
        report = locality_measure(regions, result.paths, result.wire_router)
        metrics[label] = {
            "hops": report.mean_hops,
            "mbytes": result.mbytes_transferred,
            "time": result.exec_time_s,
        }
        rows.append(
            {
                "heuristic": label,
                "mean_hops": round(report.mean_hops, 3),
                "owned_fraction": round(report.owned_fraction, 3),
                "ckt_height": result.quality.circuit_height,
                "mbytes": round(result.mbytes_transferred, 4),
                "time_s": round(result.exec_time_s, 3),
            }
        )
    left = metrics["leftmost pin (paper)"]
    cent = metrics["bounding-box centroid"]
    checks = {
        # conclusions: "more sophisticated wire assignment heuristics may
        # further improve quality and reduce traffic" ...
        "centroid improves locality": cent["hops"] < left["hops"],
        "centroid reduces traffic": cent["mbytes"] < left["mbytes"] * 1.02,
        # ... but locality concentration costs load balance, the same
        # §5.3.3 tension as ThresholdCost=infinity.
        "locality gain is not free (time)": cent["time"] > 0.9 * left["time"],
    }
    return ExperimentResult(
        exp_id="A8",
        title="Ablation: centroid vs leftmost-pin wire assignment (TC=1000)",
        columns=[
            "heuristic",
            "mean_hops",
            "owned_fraction",
            "ckt_height",
            "mbytes",
            "time_s",
        ],
        rows=rows,
        checks=checks,
    )


def run_a9_trace_granularity(quick: bool = False) -> ExperimentResult:
    """A9: trace granularity — where the T3 magnitude gap comes from."""
    from ..memsim import AddressMap, simulate_trace
    from ..memsim.reference_level import simulate_trace_reference_level
    from ..parallel import run_shared_memory as _run_sm

    circuit = quick_circuit("bnrE", quick)
    iters = _iters(quick)

    # Part 1: burst-level protocol processing is *lossless* — replaying
    # the same trace one reference at a time yields identical traffic.
    base = _run_sm(circuit, iterations=iters, line_size=8, keep_trace=True)
    trace, layout = base.meta["trace"], base.meta["layout"]
    extra = layout.total_words - layout.array_words
    equivalent = True
    rows: List[Dict[str, object]] = []
    for ls in (4, 8, 32):
        amap = AddressMap(circuit.n_channels, circuit.n_grids, ls, extra_words=extra)
        burst = simulate_trace(trace, 16, amap)
        ref = simulate_trace_reference_level(trace, 16, amap)
        burst_nwb = burst.total_bytes - burst.writeback_bytes
        equivalent &= burst_nwb == ref.total_bytes
        rows.append(
            {
                "comparison": f"replay granularity @ {ls}B lines",
                "burst_mb": round(burst_nwb / 1e6, 4),
                "per_reference_mb": round(ref.mbytes, 4),
            }
        )

    # Part 2: what actually moves traffic is the *recorded interleaving*
    # granularity: finer sweeps expose more invalidation refetches.
    totals: List[float] = []
    for chunks in (1, 2, 4, 8):
        run = _run_sm(circuit, iterations=iters, line_size=8, trace_chunks=chunks)
        totals.append(run.coherence.mbytes)
        rows.append(
            {
                "comparison": f"recorded interleaving: {chunks} sweeps/evaluation",
                "burst_mb": round(run.coherence.mbytes, 4),
                "per_reference_mb": None,
            }
        )
    checks = {
        # burst processing loses nothing for a fixed trace ...
        "per-reference replay equals burst replay": equivalent,
        # ... the T3 magnitude gap is recording granularity: finer
        # interleaving of the same execution raises measured traffic.
        "finer recorded interleaving raises traffic": all(
            b >= a * 0.99 for a, b in zip(totals, totals[1:])
        )
        and totals[-1] > totals[0],
    }
    return ExperimentResult(
        exp_id="A9",
        title="Ablation: trace granularity (burst vs per-reference; sweep count)",
        columns=["comparison", "burst_mb", "per_reference_mb"],
        rows=rows,
        checks=checks,
        notes=(
            "conclusion: the muted Table 3 growth is a property of how "
            "finely the trace records interleaving (Tango recorded every "
            "reference; we record a few sweeps per evaluation), not of "
            "burst-level protocol processing, which is provably lossless "
            "for a given trace."
        ),
    )
