"""Process-pool fan-out over experiment ids.

:func:`run_parallel` is the ``jobs > 1`` engine behind
:func:`repro.harness.runner.run_all`:

- **Many ids** → each experiment id becomes one pool task
  (:func:`repro.harness.pool.pool_map` supplies deterministic result
  ordering, a per-task timeout, and retry-once).  Workers execute the
  same cached path as the serial runner
  (:func:`repro.harness.runner.run_one_cached`), so parallel and serial
  runs produce row-identical results and share one cache.
- **One id** → fanning out a single task would buy nothing, so the
  experiment runs in-process with its *per-row simulation configs*
  fanned out instead (:mod:`repro.harness.simjobs`); sweep tables like
  T1 (12 independent rows) parallelise this way.

Worker telemetry (events processed, cache hits, span timers) comes back
with each task and is merged into the parent's global telemetry, so
``BENCH_harness.json`` sees the whole picture regardless of where the
work ran.  Workers never nest pools: a pool worker runs its experiment's
sim rows serially.
"""

from __future__ import annotations

import os
from functools import partial
from typing import Dict, List, Optional, Tuple

from ..obs import telemetry as obs
from . import simjobs
from .cache import ResultCache
from .experiments import ExperimentResult
from .pool import pool_map
from .runner import run_one_cached

__all__ = ["run_parallel"]

_WorkerOut = Tuple[ExperimentResult, Dict[str, object], Dict[str, object]]


def _run_experiment_task(
    exp_id: str,
    quick: bool,
    cache_dir: Optional[str],
    parent_pid: int,
) -> _WorkerOut:
    """Pool-worker body: one experiment id, returning its telemetry.

    In a pool worker the global telemetry is reset first (fork-started
    workers inherit the parent's counters, which the parent already
    owns), so the returned snapshot is exactly this task's delta.  When
    :func:`repro.harness.pool.pool_map` retries a failed task serially
    *in the parent* (detected via ``parent_pid``), the telemetry already
    lands in the parent's live global, so an empty snapshot is returned
    instead of a double-counting copy.

    Each worker opens its own handle on the shared cache directory —
    entries are content-addressed and written atomically, so concurrent
    writers are safe (last writer wins with identical bytes).
    """
    in_worker = os.getpid() != parent_pid
    if in_worker:
        obs.reset()
    cache = ResultCache(cache_dir) if cache_dir is not None else None
    simjobs.configure(reset=True, cache=cache)
    result, record = run_one_cached(exp_id, quick, cache)
    return result, record, obs.snapshot() if in_worker else {}


def run_parallel(
    exp_ids: List[str],
    quick: bool = False,
    jobs: int = 2,
    cache: Optional[ResultCache] = None,
    timeout_s: Optional[float] = None,
) -> Tuple[List[ExperimentResult], List[Dict[str, object]]]:
    """Run *exp_ids* with ``jobs`` workers; results in id order.

    Returns ``(results, records)`` — the experiment results plus the
    per-experiment bench records (wall time, events/sec, cache hits)
    that :func:`repro.harness.runner.write_bench_record` consumes.
    """
    if len(exp_ids) <= 1:
        # One experiment: parallelise its sim rows instead of the id.
        simjobs.configure(
            reset=True, jobs=jobs, cache=cache, timeout_s=timeout_s
        )
        try:
            pairs = [run_one_cached(exp_id, quick, cache) for exp_id in exp_ids]
        finally:
            simjobs.configure(reset=True)
        results = [result for result, _ in pairs]
        records = [record for _, record in pairs]
        return results, records

    worker = partial(
        _run_experiment_task,
        quick=quick,
        cache_dir=str(cache.directory) if cache is not None else None,
        parent_pid=os.getpid(),
    )
    outs: List[_WorkerOut] = pool_map(
        worker, exp_ids, jobs=jobs, timeout_s=timeout_s, label="experiment"
    )
    tel = obs.get_telemetry()
    results, records = [], []
    for result, record, tel_snapshot in outs:
        tel.merge(tel_snapshot)
        results.append(result)
        records.append(record)
    return results, records
