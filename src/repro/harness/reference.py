"""The paper's published numbers, transcribed for side-by-side reporting.

Every table of Martonosi & Gupta (ICPP '89) plus the in-text results the
benchmarks reproduce.  These are *reference shapes*: our benchmark
circuits are synthetic stand-ins (DESIGN.md §2), so absolute values are
not expected to match — the benches print these columns next to the
measured ones so the reader can compare trends, orderings and ratios.
"""

from __future__ import annotations

from typing import Dict, List, Optional

__all__ = [
    "TABLE1_SENDER",
    "TABLE2_RECEIVER",
    "TABLE3_LINESIZE",
    "TABLE4_LOCALITY_MP",
    "TABLE5_LOCALITY_SM",
    "TABLE6_SCALING",
    "TEXT_RESULTS",
    "paper_row",
]

#: Table 1 — sender initiated updates, bnrE, 16 processors.
#: Keys: (SendRmtData, SendLocData) -> row.
TABLE1_SENDER: Dict[tuple, Dict[str, float]] = {
    (2, 1): {"ckt_height": 142, "occupancy": 426109, "mbytes": 0.862, "time_s": 1.893},
    (2, 5): {"ckt_height": 143, "occupancy": 428558, "mbytes": 0.222, "time_s": 1.515},
    (2, 10): {"ckt_height": 141, "occupancy": 429589, "mbytes": 0.140, "time_s": 1.445},
    (2, 20): {"ckt_height": 145, "occupancy": 432360, "mbytes": 0.101, "time_s": 1.426},
    (5, 1): {"ckt_height": 144, "occupancy": 425576, "mbytes": 0.859, "time_s": 1.668},
    (5, 5): {"ckt_height": 143, "occupancy": 430046, "mbytes": 0.212, "time_s": 1.306},
    (5, 10): {"ckt_height": 146, "occupancy": 430580, "mbytes": 0.133, "time_s": 1.260},
    (5, 20): {"ckt_height": 145, "occupancy": 431366, "mbytes": 0.094, "time_s": 1.240},
    (10, 1): {"ckt_height": 142, "occupancy": 426706, "mbytes": 0.840, "time_s": 1.553},
    (10, 5): {"ckt_height": 143, "occupancy": 429423, "mbytes": 0.208, "time_s": 1.282},
    (10, 10): {"ckt_height": 146, "occupancy": 431662, "mbytes": 0.128, "time_s": 1.243},
    (10, 20): {"ckt_height": 145, "occupancy": 432169, "mbytes": 0.087, "time_s": 1.219},
}

#: Table 2 — non-blocking receiver initiated updates, bnrE, 16 processors.
#: Keys: (ReqLocData, ReqRmtData) -> row.
TABLE2_RECEIVER: Dict[tuple, Dict[str, float]] = {
    (1, 5): {"ckt_height": 144, "occupancy": 430686, "mbytes": 0.130, "time_s": 1.166},
    (1, 10): {"ckt_height": 150, "occupancy": 436496, "mbytes": 0.056, "time_s": 1.159},
    (1, 30): {"ckt_height": 151, "occupancy": 437956, "mbytes": 0.009, "time_s": 1.099},
    (2, 5): {"ckt_height": 143, "occupancy": 431936, "mbytes": 0.112, "time_s": 1.156},
    (2, 10): {"ckt_height": 149, "occupancy": 437088, "mbytes": 0.045, "time_s": 1.126},
    (2, 30): {"ckt_height": 151, "occupancy": 437956, "mbytes": 0.009, "time_s": 1.113},
    (10, 5): {"ckt_height": 142, "occupancy": 430868, "mbytes": 0.088, "time_s": 1.133},
    (10, 10): {"ckt_height": 149, "occupancy": 437797, "mbytes": 0.039, "time_s": 1.135},
    (10, 30): {"ckt_height": 151, "occupancy": 437956, "mbytes": 0.009, "time_s": 1.097},
}

#: Table 3 — shared memory traffic vs cache line size, bnrE, 16 procs.
TABLE3_LINESIZE: Dict[int, Dict[str, float]] = {
    4: {"mbytes": 2.15},
    8: {"mbytes": 3.73},
    16: {"mbytes": 6.87},
    32: {"mbytes": 13.5},
}

#: Table 4 — effect of locality, message passing (sender initiated).
#: Keys: (circuit, method) with method in {"round robin", "TC=30",
#: "TC=1000", "TC=inf"}.
TABLE4_LOCALITY_MP: Dict[tuple, Dict[str, float]] = {
    ("bnrE", "round robin"): {"ckt_height": 147, "mbytes": 0.156, "time_s": 1.478},
    ("bnrE", "TC=30"): {"ckt_height": 141, "mbytes": 0.153, "time_s": 1.392},
    ("bnrE", "TC=1000"): {"ckt_height": 141, "mbytes": 0.140, "time_s": 1.445},
    ("bnrE", "TC=inf"): {"ckt_height": 140, "mbytes": 0.139, "time_s": 2.468},
    ("MDC", "round robin"): {"ckt_height": 150, "mbytes": 0.242, "time_s": 2.181},
    ("MDC", "TC=30"): {"ckt_height": 146, "mbytes": 0.232, "time_s": 1.768},
    ("MDC", "TC=1000"): {"ckt_height": 147, "mbytes": 0.217, "time_s": 1.866},
    ("MDC", "TC=inf"): {"ckt_height": 146, "mbytes": 0.220, "time_s": 3.684},
}

#: Table 5 — effect of locality in the shared memory version (8 B lines).
TABLE5_LOCALITY_SM: Dict[tuple, Dict[str, float]] = {
    ("bnrE", "round robin"): {"ckt_height": 139, "mbytes": 3.96},
    ("bnrE", "TC=30"): {"ckt_height": 134, "mbytes": 3.77},
    ("bnrE", "TC=1000"): {"ckt_height": 131, "mbytes": 3.73},
    ("bnrE", "TC=inf"): {"ckt_height": 139, "mbytes": 3.73},
    ("MDC", "round robin"): {"ckt_height": 144, "mbytes": 4.833},
    ("MDC", "TC=30"): {"ckt_height": 138, "mbytes": 4.625},
    ("MDC", "TC=1000"): {"ckt_height": 143, "mbytes": 4.600},
    ("MDC", "TC=inf"): {"ckt_height": 143, "mbytes": 4.687},
}

#: Table 6 — effect of the number of processors (sender initiated), bnrE.
#: The paper's table prints rows for 2, 4, 9 and 16 processors (the
#: 4-processor occupancy cell is illegible in the scan and left None).
TABLE6_SCALING: Dict[int, Dict[str, Optional[float]]] = {
    2: {"ckt_height": 131, "occupancy": 415142, "mbytes": 0.245, "time_s": 8.438},
    4: {"ckt_height": None, "occupancy": None, "mbytes": 0.263, "time_s": 4.378},
    9: {"ckt_height": 143, "occupancy": 425426, "mbytes": 0.178, "time_s": 2.184},
    16: {"ckt_height": 141, "occupancy": 429589, "mbytes": 0.140, "time_s": 1.445},
}

#: In-text results referenced by the X-experiments.
TEXT_RESULTS: Dict[str, object] = {
    # §5.2: shared memory quality for bnrE, ~8 % better than sender init.
    "sm_height_bnre": 131,
    # §5.2: >80 % of shared memory bytes are caused by writes.
    "sm_write_fraction_min": 0.80,
    # §5.1.3: blocking execution time up to 75 % larger than non-blocking.
    "blocking_penalty_max": 0.75,
    # §5.1.3: the mixed schedule's occupancy factor and traffic.
    "mixed_occupancy": 424337,
    "mixed_mbytes": 0.311,
    # §5.3.3: locality measure, hops from owner under most-local assignment.
    "locality_bnre": 1.21,
    "locality_mdc": 0.91,
    # §5.4: speedups at 16 processors (normalised to the 2-processor run).
    "speedup_bnre": 12.0,
    "speedup_mdc": 12.8,
    # §5.3.1: receiver-initiated traffic reduction from locality, up to 63 %.
    "locality_traffic_reduction_receiver": 0.63,
    # Conclusions: SM traffic ~10x sender initiated ~10x receiver initiated.
    "sm_over_sender_ratio": 10.0,
    "sender_over_receiver_ratio": 10.0,
}


def paper_row(table: Dict, key) -> Optional[Dict[str, float]]:
    """Look up a reference row, returning ``None`` when absent."""
    return table.get(key)
