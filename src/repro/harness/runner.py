"""Run experiments and persist their results.

:func:`run_all` executes every registered experiment in id order, prints
the rendered tables, and optionally writes a JSON record per experiment —
the file EXPERIMENTS.md's numbers come from.
"""

from __future__ import annotations

import json
import time
from pathlib import Path
from typing import Dict, Iterable, List, Optional, Union

from .experiments import EXPERIMENTS, ExperimentResult, run_experiment

__all__ = ["run_all", "save_result", "load_result"]

PathLike = Union[str, Path]


def save_result(result: ExperimentResult, directory: PathLike) -> Path:
    """Write one experiment result as JSON; returns the file path."""
    directory = Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    path = directory / f"{result.exp_id.lower()}.json"
    payload = {
        "exp_id": result.exp_id,
        "title": result.title,
        "columns": result.columns,
        "rows": result.rows,
        "checks": result.checks,
        "notes": result.notes,
        "passed": result.passed,
    }
    path.write_text(json.dumps(payload, indent=1, default=str))
    return path


def load_result(exp_id: str, directory: PathLike) -> Optional[dict]:
    """Load a previously saved result, or ``None`` if absent."""
    path = Path(directory) / f"{exp_id.lower()}.json"
    if not path.exists():
        return None
    return json.loads(path.read_text())


def run_all(
    exp_ids: Optional[Iterable[str]] = None,
    quick: bool = False,
    out_dir: Optional[PathLike] = None,
    echo: bool = True,
) -> List[ExperimentResult]:
    """Run the selected experiments (default: all), in registry order."""
    ids = list(exp_ids) if exp_ids is not None else list(EXPERIMENTS)
    results: List[ExperimentResult] = []
    for exp_id in ids:
        start = time.time()
        result = run_experiment(exp_id, quick=quick)
        elapsed = time.time() - start
        results.append(result)
        if echo:
            print(result.render())
            print(f"({elapsed:.1f}s wall)\n")
        if out_dir is not None:
            save_result(result, out_dir)
    if echo:
        failed = [r.exp_id for r in results if not r.passed]
        print(
            f"{len(results)} experiments, "
            f"{sum(r.passed for r in results)} fully passing shape checks"
            + (f"; check failures in: {failed}" if failed else "")
        )
    return results
