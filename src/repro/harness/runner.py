"""Run experiments and persist their results.

:func:`run_all` executes the selected experiments (default: all, in
registry order), prints the rendered tables, and optionally writes a
JSON record per experiment — the file EXPERIMENTS.md's numbers come
from.

Three orthogonal capabilities wrap the plain drivers:

- **Parallel fan-out** (``jobs > 1``): experiment ids run across a
  process pool (:mod:`repro.harness.parallel_runner`); a single id
  instead fans out its per-row simulation configs
  (:mod:`repro.harness.simjobs`).  Results are returned in id order and
  are row-identical to a serial run.
- **Result caching** (``cache_dir``): experiments and individual
  simulation rows are content-addressed
  (:mod:`repro.harness.cache`) so warm re-runs and overlapping sweeps
  skip already-computed work.  Pass ``use_cache=False`` (CLI
  ``--no-cache``) to bypass reads *and* writes.
- **Telemetry**: per-experiment wall/CPU time, events processed and
  events/second land in a ``BENCH_harness.json`` record next to the
  results (or at an explicit ``bench_path``).
"""

from __future__ import annotations

import json
import time
from pathlib import Path
from typing import Dict, Iterable, List, Optional, Tuple, Union

from .. import __version__
from ..errors import ExperimentError
from ..obs import telemetry as obs
from . import simjobs
from .cache import (
    ResultCache,
    atomic_write_text,
    circuit_fingerprint,
    code_fingerprint,
    cost_model_fingerprint,
    jsonify,
    stable_hash,
)
from .experiments import EXPERIMENTS, ExperimentResult, quick_circuit, run_experiment

__all__ = [
    "run_all",
    "save_result",
    "load_result",
    "resolve_ids",
    "experiment_cache_key",
    "write_bench_record",
    "BENCH_FILENAME",
]

PathLike = Union[str, Path]

#: Default file name of the harness telemetry record.
BENCH_FILENAME = "BENCH_harness.json"


def save_result(result: ExperimentResult, directory: PathLike) -> Path:
    """Write one experiment result as JSON (atomically); returns the path."""
    directory = Path(directory)
    path = directory / f"{result.exp_id.lower()}.json"
    payload = {
        "exp_id": result.exp_id,
        "title": result.title,
        "columns": result.columns,
        "rows": result.rows,
        "checks": result.checks,
        "notes": result.notes,
        "passed": result.passed,
    }
    return atomic_write_text(path, json.dumps(payload, indent=1, default=str))


def load_result(exp_id: str, directory: PathLike) -> Optional[dict]:
    """Load a previously saved result, or ``None`` if absent."""
    path = Path(directory) / f"{exp_id.lower()}.json"
    if not path.exists():
        return None
    return json.loads(path.read_text())


def resolve_ids(exp_ids: Optional[Iterable[str]]) -> List[str]:
    """Normalise and validate experiment ids (default: every registered id).

    Raises :class:`ExperimentError` listing the valid ids when any
    requested id is unknown — before any experiment runs.
    """
    if exp_ids is None:
        return list(EXPERIMENTS)
    ids = [str(i).upper() for i in exp_ids]
    unknown = sorted({i for i in ids if i not in EXPERIMENTS})
    if unknown:
        raise ExperimentError(
            f"unknown experiment id(s) {', '.join(unknown)}; "
            f"valid ids: {', '.join(sorted(EXPERIMENTS))}"
        )
    return ids


# ----------------------------------------------------------------------
# experiment-level cache plumbing
# ----------------------------------------------------------------------
def experiment_cache_key(exp_id: str, quick: bool) -> str:
    """Content-addressed key of one experiment run.

    Covers everything that determines the output: the experiment id and
    scale, both benchmark circuits' netlists at that scale, the
    cost-model fields, and a digest of the package source (the schedule
    fields baked into each driver are code, hence covered by the code
    digest; rows additionally hit the finer-grained sim cache keyed on
    their exact schedule/processor fields).
    """
    return stable_hash(
        {
            "unit": "experiment",
            "exp_id": exp_id.upper(),
            "quick": quick,
            "circuits": {
                which: circuit_fingerprint(quick_circuit(which, quick))
                for which in ("bnrE", "MDC")
            },
            "cost_model": cost_model_fingerprint(),
            "code": code_fingerprint(),
        }
    )


def result_to_payload(result: ExperimentResult) -> dict:
    """JSON-safe payload of an :class:`ExperimentResult` for the cache."""
    return {
        "exp_id": result.exp_id,
        "title": result.title,
        "columns": list(result.columns),
        "rows": jsonify(result.rows),
        "checks": jsonify(result.checks),
        "notes": result.notes,
        "extras": jsonify(result.extras),
    }


def payload_to_result(payload: dict) -> ExperimentResult:
    """Rebuild an :class:`ExperimentResult` from a cached payload.

    ``extras`` come back in their JSON form (tuple dict keys became
    strings); rows, checks, and notes round-trip exactly.
    """
    return ExperimentResult(
        exp_id=payload["exp_id"],
        title=payload["title"],
        columns=list(payload["columns"]),
        rows=list(payload["rows"]),
        checks=dict(payload["checks"]),
        notes=payload.get("notes", ""),
        extras=payload.get("extras", {}) or {},
    )


def run_one_cached(
    exp_id: str, quick: bool, cache: Optional[ResultCache]
) -> Tuple[ExperimentResult, Dict[str, object]]:
    """Run one experiment through the cache; returns (result, bench record).

    The record carries the per-experiment telemetry that lands in
    ``BENCH_harness.json``: wall/CPU seconds, whether the cache served
    it, and how many simulator events were actually processed (0 for a
    full cache hit).
    """
    tel = obs.get_telemetry()
    events0 = tel.count("sim.events")
    messages0 = tel.count("sim.mp.messages_sent")
    wall0, cpu0 = time.perf_counter(), time.process_time()

    result: Optional[ExperimentResult] = None
    key = experiment_cache_key(exp_id, quick) if cache is not None else None
    if cache is not None:
        payload = cache.get_experiment(key)
        if payload is not None:
            result = payload_to_result(payload)
    cache_hit = result is not None
    if result is None:
        result = run_experiment(exp_id, quick=quick)
        if cache is not None:
            cache.put_experiment(key, result_to_payload(result))

    wall = time.perf_counter() - wall0
    cpu = time.process_time() - cpu0
    events = tel.count("sim.events") - events0
    obs.record_span("harness.experiment", wall, cpu)
    record: Dict[str, object] = {
        "exp_id": result.exp_id,
        "wall_s": round(wall, 6),
        "cpu_s": round(cpu, 6),
        "cache_hit": cache_hit,
        "passed": result.passed,
        "events_processed": int(events),
        "events_per_s": round(events / wall, 1) if wall > 0 else 0.0,
        "messages_sent": int(tel.count("sim.mp.messages_sent") - messages0),
    }
    return result, record


# ----------------------------------------------------------------------
# the bench record
# ----------------------------------------------------------------------
def _counter_delta(before: Dict[str, object], name: str) -> float:
    return obs.get_telemetry().count(name) - before.get("counters", {}).get(name, 0)


def write_bench_record(
    path: PathLike,
    records: List[Dict[str, object]],
    wall_s: float,
    quick: bool,
    jobs: int,
    telemetry_before: Dict[str, object],
) -> Path:
    """Write the ``BENCH_harness.json`` telemetry record (atomically).

    ``telemetry_before`` is a global-telemetry snapshot taken when the
    run started, so totals are this run's deltas even when several
    ``run_all`` calls share a process.
    """
    events = sum(r["events_processed"] for r in records)
    payload = {
        "schema": "bench-harness/1",
        "package_version": __version__,
        "unix_time": time.time(),
        "quick": quick,
        "jobs": jobs,
        "experiments": records,
        "totals": {
            "experiments": len(records),
            "wall_s": round(wall_s, 6),
            "events_processed": int(events),
            "events_per_s": round(events / wall_s, 1) if wall_s > 0 else 0.0,
            "messages_sent": int(sum(r["messages_sent"] for r in records)),
            "cache": {
                name: int(_counter_delta(telemetry_before, f"cache.{name}"))
                for name in (
                    "experiment.hits",
                    "experiment.misses",
                    "sim.hits",
                    "sim.misses",
                )
            },
            "verify": {
                "checks": int(_counter_delta(telemetry_before, "verify.checks")),
                "violations": int(
                    _counter_delta(telemetry_before, "verify.violations")
                ),
            },
        },
    }
    return atomic_write_text(path, json.dumps(jsonify(payload), indent=1))


# ----------------------------------------------------------------------
# the runner
# ----------------------------------------------------------------------
def run_all(
    exp_ids: Optional[Iterable[str]] = None,
    quick: bool = False,
    out_dir: Optional[PathLike] = None,
    echo: bool = True,
    jobs: int = 1,
    cache_dir: Optional[PathLike] = None,
    use_cache: bool = True,
    timeout_s: Optional[float] = None,
    bench_path: Optional[PathLike] = None,
) -> List[ExperimentResult]:
    """Run the selected experiments (default: all), in registry order.

    Parameters
    ----------
    exp_ids, quick, out_dir, echo:
        As before: which experiments, at which scale, where to save JSON
        results, and whether to print tables.
    jobs:
        Process-pool width.  ``1`` (default) runs serially in-process;
        ``N > 1`` fans experiment ids out across ``N`` workers — or, for
        a single id, fans out its per-row simulation configs instead.
    cache_dir:
        Enable the content-addressed result cache rooted here.  ``None``
        (default) disables caching entirely, preserving the historical
        behaviour.
    use_cache:
        Set ``False`` to ignore ``cache_dir`` (the CLI's ``--no-cache``).
    timeout_s:
        Per-task timeout for pool execution (see
        :func:`repro.harness.pool.pool_map` for the exact semantics).
    bench_path:
        Where to write the ``BENCH_harness.json`` telemetry record.
        Defaults to ``out_dir/BENCH_harness.json`` when ``out_dir`` is
        given; with neither, no record is written.
    """
    ids = resolve_ids(exp_ids)
    cache = (
        ResultCache(cache_dir) if (cache_dir is not None and use_cache) else None
    )
    telemetry_before = obs.snapshot()
    wall0 = time.perf_counter()

    if jobs > 1:
        from .parallel_runner import run_parallel

        results, records = run_parallel(
            ids, quick=quick, jobs=jobs, cache=cache, timeout_s=timeout_s
        )
        if echo:
            for result, record in zip(results, records):
                print(result.render())
                print(f"({record['wall_s']:.1f}s wall)\n")
    else:
        simjobs.configure(reset=True, cache=cache, timeout_s=timeout_s)
        results, records = [], []
        try:
            for exp_id in ids:
                result, record = run_one_cached(exp_id, quick, cache)
                results.append(result)
                records.append(record)
                if echo:
                    print(result.render())
                    print(f"({record['wall_s']:.1f}s wall)\n")
        finally:
            simjobs.configure(reset=True)

    wall = time.perf_counter() - wall0
    if out_dir is not None:
        for result in results:
            save_result(result, out_dir)
    if bench_path is None and out_dir is not None:
        bench_path = Path(out_dir) / BENCH_FILENAME
    if bench_path is not None:
        write_bench_record(
            bench_path, records, wall, quick=quick, jobs=jobs,
            telemetry_before=telemetry_before,
        )

    if echo:
        failed = [r.exp_id for r in results if not r.passed]
        print(
            f"{len(results)} experiments, "
            f"{sum(r.passed for r in results)} fully passing shape checks"
            + (f"; check failures in: {failed}" if failed else "")
        )
    return results
