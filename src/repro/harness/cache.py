"""Content-addressed result cache for the experiment harness.

Every cacheable unit of work — a whole experiment, or one simulation row
inside a sweep — is identified by a *fingerprint*: a plain dict of every
input that determines its output (experiment id, circuit parameters,
schedule fields, processor count, iteration count, cost-model fields,
and a digest of the package source).  :func:`stable_hash` canonicalises
the fingerprint to JSON and hashes it, so the same configuration always
maps to the same cache file and *any* single field change maps to a
different one.

Two storage namespaces share one directory:

- ``experiments/<key>.json`` — rendered :class:`ExperimentResult`
  payloads (rows, checks, notes), human-inspectable JSON;
- ``sims/<key>.pkl`` — pickled
  :class:`~repro.parallel.results.ParallelRunResult` objects for the
  per-row simulation cache (they carry numpy arrays and routed paths,
  which JSON cannot round-trip).

All writes are atomic *and durable* (tmp file + fsync + ``os.replace``
in the same directory, then a directory fsync), so a reader can never
observe a half-written entry and a committed entry survives power loss;
a corrupted or truncated entry is treated as a miss and overwritten on
the next run.  Set :data:`NO_FSYNC_ENV` (``REPRO_NO_FSYNC=1``) to skip
the fsyncs — tests and throwaway runs where durability is not worth the
syscalls.  Hits and misses are counted in the global telemetry
(``cache.experiment.hits`` etc.) so ``BENCH_harness.json`` can report
them.
"""

from __future__ import annotations

import hashlib
import json
import os
import pickle
import re
import tempfile
from dataclasses import asdict, is_dataclass
from enum import Enum
from functools import lru_cache
from pathlib import Path
from typing import Any, Dict, Optional, Union

import numpy as np

from .. import __version__
from ..errors import ExperimentError
from ..obs import telemetry as obs
from ..parallel.timing import DEFAULT_COST_MODEL, CostModel

__all__ = [
    "ResultCache",
    "stable_hash",
    "jsonify",
    "atomic_write_text",
    "atomic_write_bytes",
    "code_fingerprint",
    "circuit_fingerprint",
    "cost_model_fingerprint",
    "NO_FSYNC_ENV",
]

PathLike = Union[str, Path]

#: Bump to invalidate every existing cache entry on a format change.
#: 2: type-tagged non-string dict keys in :func:`jsonify` (an ``int`` key
#: and its string spelling used to canonicalise identically, so two
#: different fingerprints could share a cache key).
CACHE_SCHEMA = 2

#: Set to ``1`` to skip the fsyncs in :func:`atomic_write_bytes`
#: (atomicity is kept; crash durability is given up).
NO_FSYNC_ENV = "REPRO_NO_FSYNC"


# ----------------------------------------------------------------------
# canonicalisation and hashing
# ----------------------------------------------------------------------
#: String keys that *look* like a type tag must themselves be tagged,
#: otherwise the string key ``"int:1"`` would collide with the int key 1.
_TAGGED_KEY = re.compile(r"^\w+:")


def _jsonify_key(key: Any) -> str:
    """Canonical string form of a dict key, collision-free across types.

    Non-string keys are type-tagged (``1`` -> ``"int:1"``, ``True`` ->
    ``"bool:True"``, ``(2, 10)`` -> ``"tuple:(2, 10)"``) so distinct keys
    that share a spelling — ``{1: x}`` vs ``{"1": x}``, ``{True: x}`` vs
    ``{1: x}`` — canonicalise differently instead of silently merging
    into one cache key.  Plain string keys pass through untouched unless
    they match the tag shape themselves, in which case they get an
    explicit ``str:`` tag.
    """
    if isinstance(key, str):
        return f"str:{key}" if _TAGGED_KEY.match(key) else key
    if isinstance(key, np.generic):
        # numpy scalar reprs differ across numpy versions; the unwrapped
        # Python value is the stable spelling.
        return f"{type(key).__name__}:{key.item()!r}"
    return f"{type(key).__name__}:{key!r}"


def jsonify(obj: Any) -> Any:
    """Recursively convert *obj* into JSON-serialisable plain data.

    Handles numpy scalars/arrays, tuples, sets, enums, dataclasses, and
    dicts with non-string keys (type-tagged, see :func:`_jsonify_key`) —
    everything that appears in experiment rows, extras, and configuration
    fingerprints.
    """
    if isinstance(obj, (str, int, float, bool)) or obj is None:
        return obj
    if isinstance(obj, Enum):
        return obj.value
    if isinstance(obj, np.generic):
        return obj.item()
    if isinstance(obj, np.ndarray):
        return obj.tolist()
    if is_dataclass(obj) and not isinstance(obj, type):
        return jsonify(asdict(obj))
    if isinstance(obj, dict):
        return {_jsonify_key(k): jsonify(v) for k, v in obj.items()}
    if isinstance(obj, (list, tuple)):
        return [jsonify(v) for v in obj]
    if isinstance(obj, (set, frozenset)):
        return sorted(repr(v) for v in obj)
    return repr(obj)


def stable_hash(fingerprint: Dict[str, Any]) -> str:
    """The cache key of a fingerprint dict: sha256 of its canonical JSON."""
    canonical = json.dumps(
        jsonify(fingerprint), sort_keys=True, separators=(",", ":")
    )
    return hashlib.sha256(canonical.encode("utf-8")).hexdigest()


# ----------------------------------------------------------------------
# fingerprint ingredients
# ----------------------------------------------------------------------
@lru_cache(maxsize=1)
def code_fingerprint() -> str:
    """Digest of every ``repro`` source file plus the package version.

    Any code change invalidates cached results — simulation outputs
    depend on the whole simulator stack, not just the harness.
    """
    digest = hashlib.sha256()
    digest.update(__version__.encode())
    root = Path(__file__).resolve().parent.parent
    for path in sorted(root.rglob("*.py")):
        digest.update(str(path.relative_to(root)).encode())
        digest.update(path.read_bytes())
    return digest.hexdigest()


def circuit_fingerprint(circuit) -> str:
    """Digest of a circuit's full netlist (dimensions, wires, pin coords)."""
    digest = hashlib.sha256()
    digest.update(
        f"{circuit.name}|{circuit.n_channels}|{circuit.n_grids}|"
        f"{circuit.n_wires}".encode()
    )
    for wire in circuit.wires:
        digest.update(wire.name.encode())
        for pin in wire.pins:
            digest.update(f"{pin.x},{pin.channel};".encode())
    return digest.hexdigest()


def cost_model_fingerprint(cost_model: CostModel = DEFAULT_COST_MODEL) -> Dict[str, float]:
    """The cost-model fields that shape every simulated time."""
    return asdict(cost_model)


# ----------------------------------------------------------------------
# atomic writes (shared with runner.save_result)
# ----------------------------------------------------------------------
def _fsync_enabled() -> bool:
    """Durable by default; :data:`NO_FSYNC_ENV` opts out (tests)."""
    return os.environ.get(NO_FSYNC_ENV, "").strip().lower() not in (
        "1", "true", "yes",
    )


def _fsync_dir(directory: Path) -> None:
    """fsync a directory so a just-renamed entry survives power loss.

    Best-effort: platforms/filesystems that cannot open or fsync a
    directory (e.g. Windows) keep the rename's atomicity and lose only
    the durability guarantee, exactly like the pre-fsync behaviour.
    """
    try:
        fd = os.open(directory, os.O_RDONLY)
    except OSError:
        return
    try:
        os.fsync(fd)
    except OSError:
        pass
    finally:
        os.close(fd)


def atomic_write_bytes(path: PathLike, data: bytes) -> Path:
    """Write *data* to *path* atomically and durably.

    tmp file + fsync + rename + directory fsync: the rename makes the
    write atomic for concurrent readers, the file fsync makes the *data*
    durable before the name points at it, and the directory fsync makes
    the *name* durable — without it the commit-log entries and cache
    files "written atomically" could still vanish wholesale on power
    loss.  :data:`NO_FSYNC_ENV` skips both fsyncs.
    """
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    durable = _fsync_enabled()
    fd, tmp = tempfile.mkstemp(
        dir=str(path.parent), prefix=f".{path.name}.", suffix=".tmp"
    )
    try:
        with os.fdopen(fd, "wb") as handle:
            handle.write(data)
            if durable:
                handle.flush()
                os.fsync(handle.fileno())
        os.replace(tmp, path)
        if durable:
            _fsync_dir(path.parent)
    except BaseException:
        try:
            os.unlink(tmp)
        except OSError:
            pass
        raise
    return path


def atomic_write_text(path: PathLike, text: str) -> Path:
    """Write *text* (UTF-8) to *path* atomically."""
    return atomic_write_bytes(path, text.encode("utf-8"))


# ----------------------------------------------------------------------
# the cache proper
# ----------------------------------------------------------------------
class ResultCache:
    """Content-addressed cache over one directory (see module docstring).

    Parameters
    ----------
    directory:
        Cache root; created lazily on the first write.
    """

    def __init__(self, directory: PathLike) -> None:
        self.directory = Path(directory)

    # -- paths ---------------------------------------------------------
    def experiment_path(self, key: str) -> Path:
        """Cache file for an experiment-level JSON payload."""
        return self.directory / "experiments" / f"{key}.json"

    def sim_path(self, key: str) -> Path:
        """Cache file for a pickled simulation result."""
        return self.directory / "sims" / f"{key}.pkl"

    # -- experiment-level (JSON) ---------------------------------------
    def get_experiment(self, key: str) -> Optional[dict]:
        """Cached experiment payload, or ``None`` on miss/corruption."""
        path = self.experiment_path(key)
        try:
            payload = json.loads(path.read_text())
        except (OSError, ValueError):
            obs.incr("cache.experiment.misses")
            return None
        if not isinstance(payload, dict) or payload.get("schema") != CACHE_SCHEMA:
            obs.incr("cache.experiment.misses")
            return None
        obs.incr("cache.experiment.hits")
        return payload

    def put_experiment(self, key: str, payload: dict) -> Path:
        """Store an experiment payload (adds the schema tag).

        ``"schema"`` is reserved for the cache's own format tag: a caller
        payload carrying it would silently override the tag (its entry
        could then never be invalidated by a schema bump, or would poison
        every read), so it is rejected loudly instead.
        """
        if "schema" in payload:
            raise ExperimentError(
                "experiment payloads may not carry the reserved 'schema' "
                "key (it is the cache's format tag)"
            )
        payload = {"schema": CACHE_SCHEMA, **payload}
        return atomic_write_text(
            self.experiment_path(key), json.dumps(payload, indent=1)
        )

    # -- simulation-level (pickle) -------------------------------------
    def get_sim(self, key: str) -> Optional[object]:
        """Cached simulation result, or ``None`` on miss/corruption."""
        path = self.sim_path(key)
        try:
            with path.open("rb") as handle:
                schema, obj = pickle.load(handle)
        except (OSError, ValueError, EOFError, pickle.UnpicklingError,
                AttributeError, ImportError, IndexError, TypeError):
            obs.incr("cache.sim.misses")
            return None
        if schema != CACHE_SCHEMA:
            obs.incr("cache.sim.misses")
            return None
        obs.incr("cache.sim.hits")
        return obj

    def put_sim(self, key: str, obj: object) -> Path:
        """Store a simulation result."""
        data = pickle.dumps((CACHE_SCHEMA, obj), protocol=pickle.HIGHEST_PROTOCOL)
        return atomic_write_bytes(self.sim_path(key), data)
