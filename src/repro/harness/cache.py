"""Content-addressed result cache for the experiment harness.

Every cacheable unit of work — a whole experiment, or one simulation row
inside a sweep — is identified by a *fingerprint*: a plain dict of every
input that determines its output (experiment id, circuit parameters,
schedule fields, processor count, iteration count, cost-model fields,
and a digest of the package source).  :func:`stable_hash` canonicalises
the fingerprint to JSON and hashes it, so the same configuration always
maps to the same cache file and *any* single field change maps to a
different one.

Two storage namespaces share one directory:

- ``experiments/<key>.json`` — rendered :class:`ExperimentResult`
  payloads (rows, checks, notes), human-inspectable JSON;
- ``sims/<key>.pkl`` — pickled
  :class:`~repro.parallel.results.ParallelRunResult` objects for the
  per-row simulation cache (they carry numpy arrays and routed paths,
  which JSON cannot round-trip).

All writes are atomic (tmp file + ``os.replace`` in the same directory),
so a reader can never observe a half-written entry; a corrupted or
truncated entry is treated as a miss and overwritten on the next run.
Hits and misses are counted in the global telemetry
(``cache.experiment.hits`` etc.) so ``BENCH_harness.json`` can report
them.
"""

from __future__ import annotations

import hashlib
import json
import os
import pickle
import tempfile
from dataclasses import asdict, is_dataclass
from enum import Enum
from functools import lru_cache
from pathlib import Path
from typing import Any, Dict, Optional, Union

import numpy as np

from .. import __version__
from ..obs import telemetry as obs
from ..parallel.timing import DEFAULT_COST_MODEL, CostModel

__all__ = [
    "ResultCache",
    "stable_hash",
    "jsonify",
    "atomic_write_text",
    "atomic_write_bytes",
    "code_fingerprint",
    "circuit_fingerprint",
    "cost_model_fingerprint",
]

PathLike = Union[str, Path]

#: Bump to invalidate every existing cache entry on a format change.
CACHE_SCHEMA = 1


# ----------------------------------------------------------------------
# canonicalisation and hashing
# ----------------------------------------------------------------------
def jsonify(obj: Any) -> Any:
    """Recursively convert *obj* into JSON-serialisable plain data.

    Handles numpy scalars/arrays, tuples, sets, enums, dataclasses, and
    dicts with non-string keys (keyed by ``repr``) — everything that
    appears in experiment rows, extras, and configuration fingerprints.
    """
    if isinstance(obj, (str, int, float, bool)) or obj is None:
        return obj
    if isinstance(obj, Enum):
        return obj.value
    if isinstance(obj, np.generic):
        return obj.item()
    if isinstance(obj, np.ndarray):
        return obj.tolist()
    if is_dataclass(obj) and not isinstance(obj, type):
        return jsonify(asdict(obj))
    if isinstance(obj, dict):
        return {
            (k if isinstance(k, str) else repr(k)): jsonify(v)
            for k, v in obj.items()
        }
    if isinstance(obj, (list, tuple)):
        return [jsonify(v) for v in obj]
    if isinstance(obj, (set, frozenset)):
        return sorted(repr(v) for v in obj)
    return repr(obj)


def stable_hash(fingerprint: Dict[str, Any]) -> str:
    """The cache key of a fingerprint dict: sha256 of its canonical JSON."""
    canonical = json.dumps(
        jsonify(fingerprint), sort_keys=True, separators=(",", ":")
    )
    return hashlib.sha256(canonical.encode("utf-8")).hexdigest()


# ----------------------------------------------------------------------
# fingerprint ingredients
# ----------------------------------------------------------------------
@lru_cache(maxsize=1)
def code_fingerprint() -> str:
    """Digest of every ``repro`` source file plus the package version.

    Any code change invalidates cached results — simulation outputs
    depend on the whole simulator stack, not just the harness.
    """
    digest = hashlib.sha256()
    digest.update(__version__.encode())
    root = Path(__file__).resolve().parent.parent
    for path in sorted(root.rglob("*.py")):
        digest.update(str(path.relative_to(root)).encode())
        digest.update(path.read_bytes())
    return digest.hexdigest()


def circuit_fingerprint(circuit) -> str:
    """Digest of a circuit's full netlist (dimensions, wires, pin coords)."""
    digest = hashlib.sha256()
    digest.update(
        f"{circuit.name}|{circuit.n_channels}|{circuit.n_grids}|"
        f"{circuit.n_wires}".encode()
    )
    for wire in circuit.wires:
        digest.update(wire.name.encode())
        for pin in wire.pins:
            digest.update(f"{pin.x},{pin.channel};".encode())
    return digest.hexdigest()


def cost_model_fingerprint(cost_model: CostModel = DEFAULT_COST_MODEL) -> Dict[str, float]:
    """The cost-model fields that shape every simulated time."""
    return asdict(cost_model)


# ----------------------------------------------------------------------
# atomic writes (shared with runner.save_result)
# ----------------------------------------------------------------------
def atomic_write_bytes(path: PathLike, data: bytes) -> Path:
    """Write *data* to *path* atomically (tmp file + rename)."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    fd, tmp = tempfile.mkstemp(
        dir=str(path.parent), prefix=f".{path.name}.", suffix=".tmp"
    )
    try:
        with os.fdopen(fd, "wb") as handle:
            handle.write(data)
        os.replace(tmp, path)
    except BaseException:
        try:
            os.unlink(tmp)
        except OSError:
            pass
        raise
    return path


def atomic_write_text(path: PathLike, text: str) -> Path:
    """Write *text* (UTF-8) to *path* atomically."""
    return atomic_write_bytes(path, text.encode("utf-8"))


# ----------------------------------------------------------------------
# the cache proper
# ----------------------------------------------------------------------
class ResultCache:
    """Content-addressed cache over one directory (see module docstring).

    Parameters
    ----------
    directory:
        Cache root; created lazily on the first write.
    """

    def __init__(self, directory: PathLike) -> None:
        self.directory = Path(directory)

    # -- paths ---------------------------------------------------------
    def experiment_path(self, key: str) -> Path:
        """Cache file for an experiment-level JSON payload."""
        return self.directory / "experiments" / f"{key}.json"

    def sim_path(self, key: str) -> Path:
        """Cache file for a pickled simulation result."""
        return self.directory / "sims" / f"{key}.pkl"

    # -- experiment-level (JSON) ---------------------------------------
    def get_experiment(self, key: str) -> Optional[dict]:
        """Cached experiment payload, or ``None`` on miss/corruption."""
        path = self.experiment_path(key)
        try:
            payload = json.loads(path.read_text())
        except (OSError, ValueError):
            obs.incr("cache.experiment.misses")
            return None
        if not isinstance(payload, dict) or payload.get("schema") != CACHE_SCHEMA:
            obs.incr("cache.experiment.misses")
            return None
        obs.incr("cache.experiment.hits")
        return payload

    def put_experiment(self, key: str, payload: dict) -> Path:
        """Store an experiment payload (adds the schema tag)."""
        payload = {"schema": CACHE_SCHEMA, **payload}
        return atomic_write_text(
            self.experiment_path(key), json.dumps(payload, indent=1)
        )

    # -- simulation-level (pickle) -------------------------------------
    def get_sim(self, key: str) -> Optional[object]:
        """Cached simulation result, or ``None`` on miss/corruption."""
        path = self.sim_path(key)
        try:
            with path.open("rb") as handle:
                schema, obj = pickle.load(handle)
        except (OSError, ValueError, EOFError, pickle.UnpicklingError,
                AttributeError, ImportError, IndexError, TypeError):
            obs.incr("cache.sim.misses")
            return None
        if schema != CACHE_SCHEMA:
            obs.incr("cache.sim.misses")
            return None
        obs.incr("cache.sim.hits")
        return obj

    def put_sim(self, key: str, obj: object) -> Path:
        """Store a simulation result."""
        data = pickle.dumps((CACHE_SCHEMA, obj), protocol=pickle.HIGHEST_PROTOCOL)
        return atomic_write_bytes(self.sim_path(key), data)
