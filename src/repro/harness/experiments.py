"""Experiment drivers: one function per paper table / in-text result.

Each driver runs the relevant simulator sweep, assembles rows with the
paper's published values alongside the measured ones, and evaluates a set
of *shape checks* — the qualitative claims of the paper's evaluation
section (orderings, monotone trends, ratio bands) that a faithful
reproduction must exhibit even though the absolute numbers come from
synthetic stand-in circuits.

``quick=True`` shrinks the circuits and iteration counts so the whole
suite runs in seconds (used by the test suite); benches run full size.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Tuple

from ..assign import RoundRobinAssigner, ThresholdCostAssigner
from ..circuits import Circuit, bnre_like, mdc_like
from ..faults import FaultPlan, RecoveryPolicy, random_crashes
from ..grid import RegionMap
from ..parallel import run_message_passing, run_shared_memory
from ..route import locality_measure
from ..updates import UpdateSchedule
from . import reference as ref
from .simjobs import SimConfig, run_sim_configs
from .tables import render_checks, render_table

__all__ = ["ExperimentResult", "EXPERIMENTS", "run_experiment", "quick_circuit"]


@dataclass
class ExperimentResult:
    """Outcome of one experiment driver."""

    exp_id: str
    title: str
    columns: List[str]
    rows: List[Dict[str, object]]
    checks: Dict[str, bool]
    notes: str = ""
    extras: Dict[str, object] = field(default_factory=dict)

    @property
    def passed(self) -> bool:
        """True when every shape check held."""
        return all(self.checks.values())

    def render(self) -> str:
        """Full printable report: table plus shape checks."""
        parts = [render_table(f"[{self.exp_id}] {self.title}", self.columns, self.rows)]
        if self.notes:
            parts.append(self.notes)
        parts.append(render_checks(self.checks))
        return "\n".join(parts)


# ----------------------------------------------------------------------
# circuit helpers
# ----------------------------------------------------------------------
def quick_circuit(which: str, quick: bool) -> Circuit:
    """The benchmark circuit, shrunk in quick mode for fast test runs."""
    if which == "bnrE":
        return bnre_like(n_wires=160) if quick else bnre_like()
    if which == "MDC":
        return mdc_like(n_wires=200) if quick else mdc_like()
    raise ValueError(f"unknown circuit {which!r}")


def _iters(quick: bool) -> int:
    return 2 if quick else 3


def _assigners(circuit: Circuit, regions: RegionMap):
    """The four Table 4/5 assignment policies, in paper row order."""
    return [
        ("round robin", RoundRobinAssigner(circuit, regions).assign()),
        ("TC=30", ThresholdCostAssigner(circuit, regions, 30).assign()),
        ("TC=1000", ThresholdCostAssigner(circuit, regions, 1000).assign()),
        ("TC=inf", ThresholdCostAssigner(circuit, regions, math.inf).assign()),
    ]


def _monotone_decreasing(values: List[float], tolerance: float = 0.0) -> bool:
    """True if each value is <= the previous one (within *tolerance*)."""
    return all(b <= a * (1 + tolerance) for a, b in zip(values, values[1:]))


def _monotone_increasing(values: List[float], tolerance: float = 0.0) -> bool:
    """True if each value is >= the previous one (within *tolerance*)."""
    return all(b >= a * (1 - tolerance) for a, b in zip(values, values[1:]))


# ----------------------------------------------------------------------
# Table 1 — sender initiated updates
# ----------------------------------------------------------------------
def run_table1(quick: bool = False) -> ExperimentResult:
    """Table 1: quality/traffic/time vs sender-initiated update frequency."""
    srd_values = [2, 5, 10]
    sld_values = [1, 5, 10, 20]
    rows: List[Dict[str, object]] = []
    traffic: Dict[tuple, float] = {}
    times: Dict[tuple, float] = {}
    heights: List[int] = []

    combos = [(srd, sld) for srd in srd_values for sld in sld_values]
    results = run_sim_configs(
        [
            SimConfig(
                kind="mp",
                which="bnrE",
                quick=quick,
                schedule=UpdateSchedule.sender_initiated(srd, sld),
                iterations=_iters(quick),
            )
            for srd, sld in combos
        ]
    )
    for (srd, sld), result in zip(combos, results):
        row = result.table_row()
        traffic[(srd, sld)] = row["mbytes"]
        times[(srd, sld)] = row["time_s"]
        heights.append(row["ckt_height"])
        paper = ref.paper_row(ref.TABLE1_SENDER, (srd, sld)) or {}
        rows.append(
            {
                "SendRmtData": srd,
                "SendLocData": sld,
                "ckt_height": row["ckt_height"],
                "occupancy": row["occupancy"],
                "mbytes": row["mbytes"],
                "time_s": row["time_s"],
                "paper_height": paper.get("ckt_height"),
                "paper_mbytes": paper.get("mbytes"),
                "paper_time": paper.get("time_s"),
            }
        )

    checks = {
        # §5.1.1: "The number of bytes transferred is also a clear function
        # of the update frequency" — traffic falls as SendLocData grows.
        "traffic decreases with SendLocData interval": all(
            _monotone_decreasing([traffic[(srd, sld)] for sld in sld_values], 0.05)
            for srd in srd_values
        ),
        # and the increase with frequency is sublinear (bounding boxes).
        "traffic sublinear in update frequency": all(
            traffic[(srd, 1)] < 20 * traffic[(srd, 20)] for srd in srd_values
        ),
        # §5.1.1: execution time falls as updates become less frequent.
        "time decreases with SendLocData interval": all(
            _monotone_decreasing([times[(srd, sld)] for sld in sld_values], 0.03)
            for srd in srd_values
        ),
        # §5.1.1: circuit height has little correlation with frequency.
        "height roughly flat across schedules": max(heights) <= 1.15 * min(heights),
    }
    return ExperimentResult(
        exp_id="T1",
        title="Sender initiated updates (bnrE-like, 16 processors)",
        columns=[
            "SendRmtData",
            "SendLocData",
            "ckt_height",
            "occupancy",
            "mbytes",
            "time_s",
            "paper_height",
            "paper_mbytes",
            "paper_time",
        ],
        rows=rows,
        checks=checks,
        extras={"traffic": traffic, "times": times},
    )


# ----------------------------------------------------------------------
# Table 2 — non-blocking receiver initiated updates
# ----------------------------------------------------------------------
def run_table2(quick: bool = False) -> ExperimentResult:
    """Table 2: non-blocking receiver-initiated update sweep."""
    rld_values = [1, 2, 10]
    rrd_values = [5, 10, 30]
    rows: List[Dict[str, object]] = []
    traffic: Dict[tuple, float] = {}
    times: List[float] = []

    combos = [(rld, rrd) for rld in rld_values for rrd in rrd_values]
    results = run_sim_configs(
        [
            SimConfig(
                kind="mp",
                which="bnrE",
                quick=quick,
                schedule=UpdateSchedule.receiver_initiated(rld, rrd),
                iterations=_iters(quick),
            )
            for rld, rrd in combos
        ]
    )
    for (rld, rrd), result in zip(combos, results):
        row = result.table_row()
        traffic[(rld, rrd)] = row["mbytes"]
        times.append(row["time_s"])
        paper = ref.paper_row(ref.TABLE2_RECEIVER, (rld, rrd)) or {}
        rows.append(
            {
                "ReqLocData": rld,
                "ReqRmtData": rrd,
                "ckt_height": row["ckt_height"],
                "occupancy": row["occupancy"],
                "mbytes": row["mbytes"],
                "time_s": row["time_s"],
                "paper_height": paper.get("ckt_height"),
                "paper_mbytes": paper.get("mbytes"),
                "paper_time": paper.get("time_s"),
            }
        )

    checks = {
        # Traffic falls sharply as requests become rarer.
        "traffic decreases with ReqRmtData interval": all(
            _monotone_decreasing([traffic[(rld, rrd)] for rrd in rrd_values], 0.05)
            for rld in rld_values
        ),
        # §5.1.2: execution time shows little dependence on the schedule.
        "time nearly flat across schedules": max(times) <= 1.10 * min(times),
        # Less frequent ReqLocData also means less traffic.
        "traffic decreases with ReqLocData interval": all(
            _monotone_decreasing([traffic[(rld, rrd)] for rld in rld_values], 0.10)
            for rrd in rrd_values
        ),
    }
    return ExperimentResult(
        exp_id="T2",
        title="Non-blocking receiver initiated updates (bnrE-like, 16 processors)",
        columns=[
            "ReqLocData",
            "ReqRmtData",
            "ckt_height",
            "occupancy",
            "mbytes",
            "time_s",
            "paper_height",
            "paper_mbytes",
            "paper_time",
        ],
        rows=rows,
        checks=checks,
        extras={"traffic": traffic, "times": times},
    )


# ----------------------------------------------------------------------
# Table 3 — shared memory traffic vs cache line size
# ----------------------------------------------------------------------
def run_table3(quick: bool = False) -> ExperimentResult:
    """Table 3: coherence bus traffic as a function of cache line size."""
    circuit = quick_circuit("bnrE", quick)
    line_sizes = [4, 8, 16, 32]
    result = run_shared_memory(
        circuit,
        iterations=_iters(quick),
        line_size=line_sizes[0],
        extra_line_sizes=line_sizes[1:],
    )
    by_line = result.meta["coherence_by_line_size"]
    rows = []
    for ls in line_sizes:
        stats = by_line[ls]
        paper = ref.paper_row(ref.TABLE3_LINESIZE, ls) or {}
        rows.append(
            {
                "line_size": ls,
                "mbytes": round(stats["mbytes"], 4),
                "refetch_mb": round(stats["refetch_bytes"] / 1e6, 4),
                "word_write_mb": round(stats["word_write_bytes"] / 1e6, 4),
                "write_fraction": round(stats["write_caused_fraction"], 3),
                "paper_mbytes": paper.get("mbytes"),
            }
        )
    mbytes = [by_line[ls]["mbytes"] for ls in line_sizes]
    # Small quick-mode circuits have proportionally more cold misses, which
    # dilutes the write-caused share; the paper's >80 % claim is asserted
    # at full scale only.
    write_floor = 0.60 if quick else 0.80
    checks = {
        # "traffic increases significantly as the line size increases".
        "traffic grows from 4B to 32B lines": mbytes[-1] > mbytes[0],
        "traffic non-decreasing beyond 8B": _monotone_increasing(mbytes[1:], 0.02),
        # §5.2: over 80 % of bytes are caused by writes.
        f"writes cause >{write_floor:.0%} of bytes": all(
            by_line[ls]["write_caused_fraction"] > write_floor for ls in line_sizes
        ),
    }
    return ExperimentResult(
        exp_id="T3",
        title="Shared memory traffic vs cache line size (bnrE-like, 16 processors)",
        columns=[
            "line_size",
            "mbytes",
            "refetch_mb",
            "word_write_mb",
            "write_fraction",
            "paper_mbytes",
        ],
        rows=rows,
        checks=checks,
        notes=(
            "note: growth direction matches the paper; magnitude is muted "
            "because our traces record access bursts rather than individual "
            "references (see EXPERIMENTS.md, T3)."
        ),
        extras={"mbytes": dict(zip(line_sizes, mbytes))},
    )


# ----------------------------------------------------------------------
# Table 4 — locality in the message passing approach
# ----------------------------------------------------------------------
def run_table4(quick: bool = False) -> ExperimentResult:
    """Table 4: wire-assignment locality effects, message passing."""
    rows: List[Dict[str, object]] = []
    checks: Dict[str, bool] = {}
    schedule = UpdateSchedule.sender_initiated(2, 10)

    for which in ("bnrE", "MDC"):
        circuit = quick_circuit(which, quick)
        regions = RegionMap(circuit.n_channels, circuit.n_grids, 16)
        per_method: Dict[str, Dict[str, object]] = {}
        for method, assignment in _assigners(circuit, regions):
            result = run_message_passing(
                circuit, schedule, assignment=assignment, iterations=_iters(quick)
            )
            row = result.table_row()
            per_method[method] = row
            paper = ref.paper_row(ref.TABLE4_LOCALITY_MP, (which, method)) or {}
            rows.append(
                {
                    "circuit": which,
                    "method": method,
                    "ckt_height": row["ckt_height"],
                    "occupancy": row["occupancy"],
                    "mbytes": row["mbytes"],
                    "time_s": row["time_s"],
                    "paper_height": paper.get("ckt_height"),
                    "paper_mbytes": paper.get("mbytes"),
                    "paper_time": paper.get("time_s"),
                }
            )
        local_methods = ["TC=30", "TC=1000", "TC=inf"]
        checks[f"{which}: locality improves quality over round robin"] = per_method[
            "round robin"
        ]["occupancy"] >= min(per_method[m]["occupancy"] for m in local_methods)
        checks[f"{which}: full locality minimises traffic"] = per_method["TC=inf"][
            "mbytes"
        ] == min(r["mbytes"] for r in per_method.values())
        checks[f"{which}: full locality degrades execution time"] = per_method[
            "TC=inf"
        ]["time_s"] > 1.25 * per_method["TC=30"]["time_s"]
        checks[f"{which}: moderate threshold gives best time"] = per_method["TC=30"][
            "time_s"
        ] == min(r["time_s"] for r in per_method.values())

    return ExperimentResult(
        exp_id="T4",
        title="Effect of locality, message passing (sender initiated 2/10)",
        columns=[
            "circuit",
            "method",
            "ckt_height",
            "occupancy",
            "mbytes",
            "time_s",
            "paper_height",
            "paper_mbytes",
            "paper_time",
        ],
        rows=rows,
        checks=checks,
    )


# ----------------------------------------------------------------------
# Table 5 — locality in the shared memory approach
# ----------------------------------------------------------------------
def run_table5(quick: bool = False) -> ExperimentResult:
    """Table 5: wire-assignment locality effects, shared memory (8B lines)."""
    rows: List[Dict[str, object]] = []
    checks: Dict[str, bool] = {}
    for which in ("bnrE", "MDC"):
        circuit = quick_circuit(which, quick)
        regions = RegionMap(circuit.n_channels, circuit.n_grids, 16)
        per_method: Dict[str, Dict[str, object]] = {}
        for method, assignment in _assigners(circuit, regions):
            result = run_shared_memory(
                circuit, assignment=assignment, iterations=_iters(quick)
            )
            row = result.table_row()
            per_method[method] = row
            paper = ref.paper_row(ref.TABLE5_LOCALITY_SM, (which, method)) or {}
            rows.append(
                {
                    "circuit": which,
                    "method": method,
                    "ckt_height": row["ckt_height"],
                    "occupancy": row["occupancy"],
                    "mbytes": row["mbytes"],
                    "paper_height": paper.get("ckt_height"),
                    "paper_mbytes": paper.get("mbytes"),
                }
            )
        checks[f"{which}: locality reduces bus traffic"] = (
            min(per_method[m]["mbytes"] for m in ("TC=1000", "TC=inf"))
            < per_method["round robin"]["mbytes"]
        )
        # Height is a max-based metric with a few tracks of run-to-run
        # noise; allow that margin (wider on tiny quick-mode circuits).
        slack = 1.15 if quick else 1.02
        checks[f"{which}: locality does not hurt quality"] = (
            min(per_method[m]["ckt_height"] for m in ("TC=30", "TC=1000", "TC=inf"))
            <= per_method["round robin"]["ckt_height"] * slack
        )
    return ExperimentResult(
        exp_id="T5",
        title="Effect of locality, shared memory (8-byte cache lines)",
        columns=[
            "circuit",
            "method",
            "ckt_height",
            "occupancy",
            "mbytes",
            "paper_height",
            "paper_mbytes",
        ],
        rows=rows,
        checks=checks,
    )


# ----------------------------------------------------------------------
# Table 6 — number of processors
# ----------------------------------------------------------------------
def run_table6(quick: bool = False) -> ExperimentResult:
    """Table 6: scaling the processor count (sender initiated 2/10)."""
    procs = [2, 4, 9, 16]
    rows = []
    by_p: Dict[int, Dict[str, object]] = {}
    results = run_sim_configs(
        [
            SimConfig(
                kind="mp",
                which="bnrE",
                quick=quick,
                schedule=UpdateSchedule.sender_initiated(2, 10),
                n_procs=p,
                iterations=_iters(quick),
            )
            for p in procs
        ]
    )
    for p, result in zip(procs, results):
        row = result.table_row()
        by_p[p] = row
        paper = ref.paper_row(ref.TABLE6_SCALING, p) or {}
        rows.append(
            {
                "n_procs": p,
                "ckt_height": row["ckt_height"],
                "occupancy": row["occupancy"],
                "mbytes": row["mbytes"],
                "time_s": row["time_s"],
                "paper_height": paper.get("ckt_height"),
                "paper_mbytes": paper.get("mbytes"),
                "paper_time": paper.get("time_s"),
            }
        )
    speedup = 2 * by_p[2]["time_s"] / by_p[16]["time_s"]
    checks = {
        # §5.4: quality degrades as processors are added.
        "quality degrades with more processors": by_p[16]["ckt_height"]
        > by_p[2]["ckt_height"],
        "time decreases with more processors": _monotone_decreasing(
            [by_p[p]["time_s"] for p in procs]
        ),
        # §5.4: speedup ~12 at 16 processors (2xT2/T16).
        "speedup in the paper's band (9-16)": 9.0 <= speedup <= 16.0,
        # §5.4: traffic eventually *decreases* with more processors
        # (smaller owned regions mean tighter bounding boxes).
        "traffic decreases beyond 4 processors": _monotone_decreasing(
            [by_p[p]["mbytes"] for p in (4, 9, 16)], 0.02
        ),
    }
    return ExperimentResult(
        exp_id="T6",
        title="Effect of the number of processors (bnrE-like, sender 2/10)",
        columns=[
            "n_procs",
            "ckt_height",
            "occupancy",
            "mbytes",
            "time_s",
            "paper_height",
            "paper_mbytes",
            "paper_time",
        ],
        rows=rows,
        checks=checks,
        notes=f"speedup (2 x T2 / T16) = {speedup:.1f}  (paper: 12.0)",
        extras={"speedup": speedup},
    )


# ----------------------------------------------------------------------
# X1 — blocking vs non-blocking receiver initiated (§5.1.3)
# ----------------------------------------------------------------------
def run_x1_blocking(quick: bool = False) -> ExperimentResult:
    """§5.1.3: blocking requesters idle; quality is no better for it."""
    circuit = quick_circuit("bnrE", quick)
    rows = []
    results = {}
    for blocking in (False, True):
        result = run_message_passing(
            circuit,
            UpdateSchedule.receiver_initiated(1, 5, blocking=blocking),
            iterations=_iters(quick),
        )
        results[blocking] = result
        row = result.table_row()
        rows.append(
            {
                "mode": "blocking" if blocking else "non-blocking",
                "ckt_height": row["ckt_height"],
                "occupancy": row["occupancy"],
                "mbytes": row["mbytes"],
                "time_s": row["time_s"],
                "max_blocked_s": round(
                    max(s.blocked_time_s for s in result.node_summaries), 3
                ),
            }
        )
    t_block = results[True].exec_time_s
    t_non = results[False].exec_time_s
    q_block = results[True].quality.circuit_height
    q_non = results[False].quality.circuit_height
    checks = {
        # "blocking strategies have execution times as much as 75% larger".
        "blocking is slower than non-blocking": t_block > 1.05 * t_non,
        "blocking penalty below ~2x": t_block < 2.0 * t_non,
        # "quality using the non-blocking scheme is not worse than blocking".
        "non-blocking quality is not worse": q_non <= q_block * 1.05,
    }
    return ExperimentResult(
        exp_id="X1",
        title="Blocking vs non-blocking receiver initiated (RLD=1, RRD=5)",
        columns=["mode", "ckt_height", "occupancy", "mbytes", "time_s", "max_blocked_s"],
        rows=rows,
        checks=checks,
        notes=f"blocking/non-blocking time ratio = {t_block / t_non:.2f} (paper: up to 1.75)",
    )


# ----------------------------------------------------------------------
# X2 — the mixed schedule (§5.1.3)
# ----------------------------------------------------------------------
def run_x2_mixed(quick: bool = False) -> ExperimentResult:
    """§5.1.3: a mixed sender+receiver schedule (SLD=5 SRD=2 RLD=1 RRD=5)."""
    circuit = quick_circuit("bnrE", quick)
    iters = _iters(quick)
    mixed = run_message_passing(circuit, UpdateSchedule.mixed_example(), iterations=iters)
    sender = run_message_passing(
        circuit, UpdateSchedule.sender_initiated(2, 5), iterations=iters
    )
    receiver = run_message_passing(
        circuit, UpdateSchedule.receiver_initiated(1, 5), iterations=iters
    )
    rows = []
    for label, result in (("mixed", mixed), ("sender 2/5", sender), ("receiver 1/5", receiver)):
        row = result.table_row()
        rows.append({"schedule": label, **row})
    checks = {
        # §5.1.3 compares the mixed scheme's occupancy against the pure
        # sender-initiated scheme it embeds.
        "mixed occupancy competitive with sender scheme": mixed.quality.occupancy_factor
        <= (1.10 if quick else 1.04) * sender.quality.occupancy_factor,
        # It needs less traffic than the sender-initiated scheme it contains.
        "mixed traffic below its sender component": mixed.mbytes_transferred
        < sender.mbytes_transferred * 1.6,
    }
    return ExperimentResult(
        exp_id="X2",
        title="Mixed update schedule (SLD=5 SRD=2 RLD=1 RRD=5) vs pure schemes",
        columns=["schedule", "ckt_height", "occupancy", "mbytes", "time_s"],
        rows=rows,
        checks=checks,
    )


# ----------------------------------------------------------------------
# X3 — shared memory vs message passing summary (§5.2, conclusions)
# ----------------------------------------------------------------------
def run_x3_summary(quick: bool = False) -> ExperimentResult:
    """§5.2: the headline comparison of the two paradigms."""
    circuit = quick_circuit("bnrE", quick)
    iters = _iters(quick)
    sm = run_shared_memory(circuit, line_size=4, iterations=iters)
    sender = run_message_passing(
        circuit, UpdateSchedule.sender_initiated(2, 10), iterations=iters
    )
    receiver = run_message_passing(
        circuit, UpdateSchedule.receiver_initiated(1, 30), iterations=iters
    )
    rows = []
    for label, result in (
        ("shared memory (4B lines)", sm),
        ("MP sender 2/10", sender),
        ("MP receiver 1/30", receiver),
    ):
        rows.append(
            {
                "version": label,
                "ckt_height": result.quality.circuit_height,
                "occupancy": result.quality.occupancy_factor,
                "mbytes": round(result.mbytes_transferred, 4),
                "time_s": round(result.exec_time_s, 3),
            }
        )
    checks = {
        # §5.2: the shared memory version gives the best quality.
        "shared memory quality beats message passing": sm.quality.circuit_height
        <= min(sender.quality.circuit_height, receiver.quality.circuit_height),
        # Conclusions: SM traffic >> sender initiated >> receiver initiated.
        "SM traffic well above sender initiated": sm.mbytes_transferred
        > 2.0 * sender.mbytes_transferred,
        "sender traffic well above sparse receiver": sender.mbytes_transferred
        > 5.0 * receiver.mbytes_transferred,
        # §5.2: writes cause >80 % of shared memory bytes (asserted at
        # full scale; small quick circuits have more cold-miss dilution).
        "writes dominate SM bytes": sm.coherence.write_caused_fraction
        > (0.60 if quick else 0.80),
    }
    return ExperimentResult(
        exp_id="X3",
        title="Shared memory vs message passing (bnrE-like, 16 processors)",
        columns=["version", "ckt_height", "occupancy", "mbytes", "time_s"],
        rows=rows,
        checks=checks,
        notes=(
            f"traffic ratios: SM/sender = "
            f"{sm.mbytes_transferred / sender.mbytes_transferred:.1f}x, "
            f"sender/receiver = "
            f"{sender.mbytes_transferred / max(receiver.mbytes_transferred, 1e-4):.1f}x "
            "(paper: ~10x and ~10x)"
        ),
    )


# ----------------------------------------------------------------------
# X4 — the locality measure (§5.3.3)
# ----------------------------------------------------------------------
def run_x4_locality_measure(quick: bool = False) -> ExperimentResult:
    """§5.3.3: cell-weighted hops between routing processor and cell owner."""
    rows = []
    hops: Dict[str, float] = {}
    for which, paper_value in (("bnrE", ref.TEXT_RESULTS["locality_bnre"]),
                               ("MDC", ref.TEXT_RESULTS["locality_mdc"])):
        circuit = quick_circuit(which, quick)
        regions = RegionMap(circuit.n_channels, circuit.n_grids, 16)
        assignment = ThresholdCostAssigner(circuit, regions, math.inf).assign()
        result = run_message_passing(
            circuit,
            UpdateSchedule.sender_initiated(2, 10),
            assignment=assignment,
            iterations=_iters(quick),
        )
        report = locality_measure(regions, result.paths, result.wire_router)
        hops[which] = report.mean_hops
        rows.append(
            {
                "circuit": which,
                "mean_hops": round(report.mean_hops, 3),
                "owned_fraction": round(report.owned_fraction, 3),
                "paper_hops": paper_value,
            }
        )
    checks = {
        # §5.3.3: MDC has better locality than bnrE.
        "MDC more local than bnrE": hops["MDC"] < hops["bnrE"],
        # Even fully local assignment routes >0 hops from the owner.
        "residual non-locality is unavoidable": all(h > 0.3 for h in hops.values()),
        "hops within a sane band": all(0.3 < h < 3.0 for h in hops.values()),
    }
    return ExperimentResult(
        exp_id="X4",
        title="Circuit locality measure under the most local assignment",
        columns=["circuit", "mean_hops", "owned_fraction", "paper_hops"],
        rows=rows,
        checks=checks,
    )


# ----------------------------------------------------------------------
# X5 — speedup (§5.4)
# ----------------------------------------------------------------------
def run_x5_speedup(quick: bool = False) -> ExperimentResult:
    """§5.4: speedup at 16 processors, normalised to the 2-processor run."""
    rows = []
    speedups: Dict[str, float] = {}
    for which, paper_value in (("bnrE", ref.TEXT_RESULTS["speedup_bnre"]),
                               ("MDC", ref.TEXT_RESULTS["speedup_mdc"])):
        schedule = UpdateSchedule.sender_initiated(2, 10)
        pair = run_sim_configs(
            [
                SimConfig(
                    kind="mp",
                    which=which,
                    quick=quick,
                    schedule=schedule,
                    n_procs=p,
                    iterations=_iters(quick),
                )
                for p in (2, 16)
            ]
        )
        t2, t16 = (r.exec_time_s for r in pair)
        speedup = 2 * t2 / t16
        speedups[which] = speedup
        rows.append(
            {
                "circuit": which,
                "time_2p_s": round(t2, 3),
                "time_16p_s": round(t16, 3),
                "speedup": round(speedup, 2),
                "paper_speedup": paper_value,
            }
        )
    checks = {
        "speedups in the paper's band (9-16)": all(
            9.0 <= s <= 16.0 for s in speedups.values()
        ),
    }
    return ExperimentResult(
        exp_id="X5",
        title="Speedup at 16 processors (sender initiated, 2 x T2 / T16)",
        columns=["circuit", "time_2p_s", "time_16p_s", "speedup", "paper_speedup"],
        rows=rows,
        checks=checks,
    )




# ----------------------------------------------------------------------
# X6 — rip-up and reroute convergence (§3)
# ----------------------------------------------------------------------
def run_x6_iterations(quick: bool = False) -> ExperimentResult:
    """§3: "Performing several of these iterations ... improves the final
    solution quality" — height vs iteration count, both paradigms."""
    from ..route import SequentialRouter

    circuit = quick_circuit("bnrE", quick)
    max_iters = 4 if quick else 5
    seq = SequentialRouter(circuit, iterations=max_iters).run()
    rows: List[Dict[str, object]] = []
    sm_heights: List[int] = []
    for iters in range(1, max_iters + 1):
        sm = run_shared_memory(
            circuit, n_procs=16, iterations=iters, collect_trace=False
        )
        sm_heights.append(sm.quality.circuit_height)
        rows.append(
            {
                "iterations": iters,
                "sequential_height": seq.per_iteration_height[iters - 1],
                "shared_memory_height": sm.quality.circuit_height,
            }
        )
    checks = {
        # more iterations never meaningfully hurt the sequential solution
        # (the alternating tie-break lets late iterations oscillate by a
        # track, as real rip-up heuristics do)
        "sequential height non-increasing (1-track tolerance)": all(
            b <= a + 1
            for a, b in zip(seq.per_iteration_height, seq.per_iteration_height[1:])
        ),
        # rip-up and reroute buys real improvement over the first pass
        "iterations improve over the greedy first pass": seq.per_iteration_height[-1]
        < seq.per_iteration_height[0],
        # the parallel run converges too (small tolerance for staleness noise)
        "shared memory improves with iterations": sm_heights[-1]
        <= sm_heights[0],
    }
    return ExperimentResult(
        exp_id="X6",
        title="Rip-up and reroute convergence (height vs iteration count)",
        columns=["iterations", "sequential_height", "shared_memory_height"],
        rows=rows,
        checks=checks,
    )


# ----------------------------------------------------------------------
# F1 — fault tolerance: drop rate vs routing quality
# ----------------------------------------------------------------------
def run_f1_fault_tolerance(quick: bool = False) -> ExperimentResult:
    """F1: graceful degradation of a *blocking* run under packet loss.

    The paper's loose-consistency argument (§4.1) is that LocusRoute
    tolerates stale cost data — quality degrades smoothly rather than
    correctness breaking.  Fault injection turns that claim into an
    experiment: drop an increasing fraction of update packets from a
    blocking receiver-initiated run (the schedule most exposed to loss —
    without recovery it deadlocks on the first lost response) and watch
    (a) every run still complete via the watchdog/retry/abandon path,
    (b) the recovery effort grow with the drop rate, and (c) the final
    quality stay in the same regime as the fault-free run.
    """
    drop_rates = [0.0, 0.1, 0.2, 0.4]
    schedule = UpdateSchedule.receiver_initiated(1, 5, blocking=True)
    results = run_sim_configs(
        [
            SimConfig(
                kind="mp",
                which="bnrE",
                quick=quick,
                schedule=schedule,
                iterations=_iters(quick),
                check_invariants=True,
                faults=FaultPlan(seed=7, drop_prob=rate) if rate > 0 else None,
            )
            for rate in drop_rates
        ]
    )
    rows: List[Dict[str, object]] = []
    dropped: List[int] = []
    recovery_effort: List[int] = []
    occupancy: List[int] = []
    verification_ok: List[bool] = []
    for rate, result in zip(drop_rates, results):
        row = result.table_row()
        fmeta = result.meta.get("faults", {})
        injected = fmeta.get("injected", {})
        recovery = fmeta.get("recovery", {})
        n_dropped = int(injected.get("dropped", 0))
        effort = int(recovery.get("retries_sent", 0)) + int(
            recovery.get("requests_abandoned", 0)
        )
        dropped.append(n_dropped)
        recovery_effort.append(effort)
        occupancy.append(row["occupancy"])
        verification_ok.append(bool(result.meta["verification"]["ok"]))
        rows.append(
            {
                "drop_prob": rate,
                "ckt_height": row["ckt_height"],
                "occupancy": row["occupancy"],
                "mbytes": row["mbytes"],
                "time_s": row["time_s"],
                "dropped": n_dropped,
                "retries": int(recovery.get("retries_sent", 0)),
                "abandoned": int(recovery.get("requests_abandoned", 0)),
                "verified": "ok" if verification_ok[-1] else "FAIL",
            }
        )
    checks = {
        # The headline result: no deadlock at any drop rate (the simulator
        # raises on unfinished nodes, so completing with every wire routed
        # is the strongest liveness statement available).
        "blocking runs complete at every drop rate": all(
            len(r.paths) == len(results[0].paths) for r in results
        ),
        "fault-free baseline reports zero faults": dropped[0] == 0
        and recovery_effort[0] == 0,
        # Reported loss and recovery effort must track the injected rate.
        "reported drops increase with drop rate": all(
            b > a for a, b in zip(dropped[1:], dropped[2:])
        )
        and dropped[1] > 0,
        "recovery effort grows with drop rate": recovery_effort[-1]
        >= recovery_effort[1] > 0,
        # Graceful degradation: routing against stale views costs quality
        # smoothly — the worst lossy run stays in the fault-free regime.
        "quality degrades gracefully (within 25%)": max(occupancy)
        <= 1.25 * occupancy[0],
        # The verify layer stays green under injection: conservation holds
        # on transmitted traffic and the replica check is waived visibly.
        "invariants green under injection": all(verification_ok),
    }
    return ExperimentResult(
        exp_id="F1",
        title="Fault tolerance: drop rate vs quality (blocking receiver 1/5)",
        columns=[
            "drop_prob",
            "ckt_height",
            "occupancy",
            "mbytes",
            "time_s",
            "dropped",
            "retries",
            "abandoned",
            "verified",
        ],
        rows=rows,
        checks=checks,
        notes=(
            "every packet kind is dropped with the given probability; "
            "recovery = watchdog retries with exponential backoff, then "
            "abandonment to the stale view (see docs/FAULTS.md)"
        ),
        extras={"dropped": dropped, "recovery_effort": recovery_effort},
    )


# ----------------------------------------------------------------------
# F2 — crash recovery: crash count x crash time vs completion and quality
# ----------------------------------------------------------------------
def run_f2_crash_recovery(quick: bool = False) -> ExperimentResult:
    """F2: fail-stop node crashes vs completion, recovery latency, quality.

    The robustness counterpart to F1: instead of losing packets, whole
    processors fail-stop mid-run.  Survivors must detect each death
    (watchdog suspicion -> heartbeat probe -> gossiped death notice),
    re-own the orphaned cost-array regions over the consistent-hash ring,
    adopt the dead node's unfinished wires, and still route every wire.
    The sweep crosses crash count (1, 2, 4 of 16) with crash time (early
    vs late in the baseline's execution) and checks completion, bounded
    recovery latency, graceful quality degradation, invariant health, and
    bitwise determinism of a crashed run.
    """
    from .cache import jsonify, stable_hash

    schedule = UpdateSchedule.receiver_initiated(1, 5, blocking=True)

    def config(faults: Optional[FaultPlan]) -> SimConfig:
        return SimConfig(
            kind="mp",
            which="bnrE",
            quick=quick,
            schedule=schedule,
            iterations=_iters(quick),
            check_invariants=True,
            faults=faults,
        )

    from .simjobs import run_sim_config

    baseline = run_sim_configs([config(None)])[0]
    t_total = baseline.exec_time_s

    sweep: List[Tuple[int, float]] = [
        (count, frac) for count in (1, 2, 4) for frac in (0.25, 0.6)
    ]
    configs = [
        config(
            FaultPlan(
                seed=11,
                node_crashes=random_crashes(
                    16, count, at_s=frac * t_total, seed=11
                ),
                recovery=RecoveryPolicy(),
            )
        )
        for count, frac in sweep
    ]
    results = run_sim_configs(configs)

    rows: List[Dict[str, object]] = []
    all_routed: List[bool] = []
    verification_ok: List[bool] = []
    latencies: List[float] = []
    occupancy: List[int] = []
    for (count, frac), result in zip(sweep, results):
        row = result.table_row()
        crash_meta = result.meta["faults"]["crash"]
        confirmed = len(crash_meta["confirmed"])
        lats = [lat for _dead, lat in crash_meta["recovery_latency_s"]]
        latencies.extend(lats)
        all_routed.append(len(result.paths) == len(baseline.paths))
        verification_ok.append(bool(result.meta["verification"]["ok"]))
        occupancy.append(row["occupancy"])
        rows.append(
            {
                "crashes": count,
                "crash_at_frac": frac,
                "confirmed": confirmed,
                "regions_reassigned": crash_meta["regions_reassigned"],
                "wires_adopted": crash_meta["wires_adopted"],
                "max_recovery_s": round(max(lats), 4) if lats else 0.0,
                "ckt_height": row["ckt_height"],
                "occupancy": row["occupancy"],
                "time_s": row["time_s"],
                "verified": "ok" if verification_ok[-1] else "FAIL",
            }
        )

    # Determinism spot check: the heaviest crash config, run twice from
    # scratch (bypassing the row cache), must agree bit for bit.
    heavy = configs[-1]
    fp_a = stable_hash(jsonify(run_sim_config(heavy).summary_dict()))
    fp_b = stable_hash(jsonify(run_sim_config(heavy).summary_dict()))

    checks = {
        # The headline result: up to a quarter of the machine fail-stops
        # and the router still finishes every wire.
        "every crashed run routes all wires": all(all_routed),
        # A crash landing after completion legitimately goes unconfirmed,
        # so confirmed <= planned; early crashes must all be confirmed.
        "early crashes all confirmed": all(
            r["confirmed"] == r["crashes"]
            for r in rows
            if r["crash_at_frac"] == 0.25
        ),
        # Detection plus re-ownership stays inside the probe/audit budget.
        "recovery latency bounded (< 1 s)": all(l < 1.0 for l in latencies)
        and latencies != [],
        # Graceful degradation: losing replicas costs quality smoothly.
        "quality degrades gracefully (within 50%)": max(occupancy)
        <= 1.5 * baseline.table_row()["occupancy"],
        # Ownership totality / conservation checkers stay green.
        "invariants green under crashes": all(verification_ok),
        "crashed run is deterministic": fp_a == fp_b,
    }
    return ExperimentResult(
        exp_id="F2",
        title="Crash recovery: crash count x time vs completion (blocking receiver 1/5)",
        columns=[
            "crashes",
            "crash_at_frac",
            "confirmed",
            "regions_reassigned",
            "wires_adopted",
            "max_recovery_s",
            "ckt_height",
            "occupancy",
            "time_s",
            "verified",
        ],
        rows=rows,
        checks=checks,
        notes=(
            "fail-stop crashes; detection = watchdog suspicion -> heartbeat "
            "probe -> gossiped death notice; re-ownership = consistent-hash "
            "ring over region bands (see docs/FAULTS.md)"
        ),
        extras={"baseline_time_s": t_total, "recovery_latencies_s": latencies},
    )


# ----------------------------------------------------------------------
# X7 — live execution vs the event-driven simulators
# ----------------------------------------------------------------------
def run_x7_live_vs_sim(quick: bool = False) -> ExperimentResult:
    """Real cores vs simulated processors, side by side (docs/PARALLEL.md).

    Runs both live routers next to their simulators on the same circuit
    and tabulates quality, time (wall clock for live rows, virtual time
    for simulated rows — the ``clock`` column says which), and message
    traffic.  The checks assert what holds on *any* host: completion,
    bit-exact commit-log replay, and quality agreement within the
    documented tolerance.  The >1.5x live speedup check only arms on
    hosts with at least 4 cores (single-core CI containers cannot
    demonstrate parallelism); the measured ratio is always reported in
    ``extras`` either way.
    """
    import os

    from ..parallel.live import run_live_message_passing, run_live_shared_memory
    from ..route import SequentialRouter
    from ..verify.live import LIVE_QUALITY_TOLERANCE

    circuit = quick_circuit("bnrE", quick)
    iters = _iters(quick)
    cores = os.cpu_count() or 1
    n_live = max(2, min(4, cores))

    seq = SequentialRouter(circuit, iterations=iters).run()
    sm_sim = run_shared_memory(
        circuit, n_procs=n_live, iterations=iters, collect_trace=False
    )
    mp_schedule = UpdateSchedule.sender_initiated(1, 1)
    mp_sim = run_message_passing(
        circuit, mp_schedule, n_procs=n_live, iterations=iters
    )
    live_solo = run_live_shared_memory(circuit, n_procs=1, iterations=iters)
    live_sm = run_live_shared_memory(circuit, n_procs=n_live, iterations=iters)
    live_mp = run_live_message_passing(
        circuit, mp_schedule, n_procs=n_live, iterations=iters
    )

    def row(impl, procs, quality, time_s, clock, messages="-", replay="-"):
        return {
            "implementation": impl,
            "procs": procs,
            "ckt_height": quality.circuit_height,
            "occupancy": quality.occupancy_factor,
            "time_s": round(time_s, 4),
            "clock": clock,
            "messages": messages,
            "replay_ok": replay,
        }

    rows = [
        row("sequential", 1, seq.quality, 0.0, "-"),
        row("sm simulated", n_live, sm_sim.quality, sm_sim.exec_time_s, "virtual"),
        row(
            "sm live",
            n_live,
            live_sm.quality,
            live_sm.routing_wall_s,
            "wall",
            replay=live_sm.replay_ok,
        ),
        row("sm live", 1, live_solo.quality, live_solo.routing_wall_s, "wall",
            replay=live_solo.replay_ok),
        row(
            "mp simulated",
            n_live,
            mp_sim.quality,
            mp_sim.exec_time_s,
            "virtual",
            messages=mp_sim.network.n_messages,
        ),
        row(
            "mp live",
            n_live,
            live_mp.quality,
            live_mp.routing_wall_s,
            "wall",
            messages=live_mp.meta["traffic"]["messages_sent"],
            replay=live_mp.replay_ok,
        ),
    ]

    def within(live_q, sim_q) -> bool:
        for attr in ("circuit_height", "occupancy_factor"):
            sim_v = getattr(sim_q, attr)
            if sim_v and abs(getattr(live_q, attr) - sim_v) / sim_v > (
                LIVE_QUALITY_TOLERANCE
            ):
                return False
        return True

    speedup = (
        live_solo.routing_wall_s / live_sm.routing_wall_s
        if live_sm.routing_wall_s > 0
        else 0.0
    )
    checks = {
        "live SM commit-log replay bit-exact": live_sm.replay_ok
        and live_solo.replay_ok,
        "live MP log replay is the committed-path union": live_mp.replay_ok,
        "live SM quality within tolerance of the SM simulator": within(
            live_sm.quality, sm_sim.quality
        ),
        "live MP quality within tolerance of the MP simulator": within(
            live_mp.quality, mp_sim.quality
        ),
        "live quality within tolerance of sequential": within(
            live_sm.quality, seq.quality
        )
        and within(live_mp.quality, seq.quality),
    }
    if cores >= 4:
        checks[f"live SM speedup > 1.5x on {cores} cores"] = speedup > 1.5
    return ExperimentResult(
        exp_id="X7",
        title="Live execution vs event-driven simulation (real cores)",
        columns=[
            "implementation",
            "procs",
            "ckt_height",
            "occupancy",
            "time_s",
            "clock",
            "messages",
            "replay_ok",
        ],
        rows=rows,
        checks=checks,
        notes=(
            "simulated rows report virtual time from the event kernels; live "
            "rows report wall clock of the routing phase on real worker "
            f"processes (host has {cores} cores; the speedup check arms at 4+)"
        ),
        extras={
            "cores": cores,
            "live_sm_speedup": round(speedup, 3),
            "live_solo_wall_s": live_solo.routing_wall_s,
            "live_sm_wall_s": live_sm.routing_wall_s,
            "live_mp_wall_s": live_mp.routing_wall_s,
            "live_mp_traffic": live_mp.meta["traffic"],
            "sim_mp_messages": mp_sim.network.n_messages,
        },
    )


#: Registry of every experiment driver, keyed by experiment id.  The
#: A-series ablations register themselves on import (see
#: :mod:`repro.harness.ablations`) to avoid a circular import.
EXPERIMENTS: Dict[str, Callable[[bool], ExperimentResult]] = {
    "T1": run_table1,
    "T2": run_table2,
    "T3": run_table3,
    "T4": run_table4,
    "T5": run_table5,
    "T6": run_table6,
    "X1": run_x1_blocking,
    "X2": run_x2_mixed,
    "X3": run_x3_summary,
    "X4": run_x4_locality_measure,
    "X5": run_x5_speedup,
    "X6": run_x6_iterations,
    "X7": run_x7_live_vs_sim,
    "F1": run_f1_fault_tolerance,
    "F2": run_f2_crash_recovery,
}


def _register_ablations() -> None:
    """Populate the A/R-series entries (deferred import breaks the cycle)."""
    from . import ablations, robustness

    EXPERIMENTS.update({"R1": robustness.run_r1_robustness})
    EXPERIMENTS.update(
        {
            "A1": ablations.run_a1_packet_structures,
            "A2": ablations.run_a2_interrupts,
            "A3": ablations.run_a3_dynamic_assignment,
            "A4": ablations.run_a4_numa_locality,
            "A5": ablations.run_a5_write_update,
            "A6": ablations.run_a6_cache_size,
            "A7": ablations.run_a7_staleness,
            "A8": ablations.run_a8_centroid,
            "A9": ablations.run_a9_trace_granularity,
        }
    )


_register_ablations()


def run_experiment(exp_id: str, quick: bool = False) -> ExperimentResult:
    """Run one experiment by id (raises for unknown ids)."""
    from ..errors import ExperimentError

    try:
        driver = EXPERIMENTS[exp_id.upper()]
    except KeyError:
        raise ExperimentError(
            f"unknown experiment {exp_id!r}; known: {sorted(EXPERIMENTS)}"
        ) from None
    return driver(quick)
