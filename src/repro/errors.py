"""Exception hierarchy for the :mod:`repro` package.

All library-raised exceptions derive from :class:`ReproError` so callers can
catch everything coming out of the simulator stack with a single handler
while still being able to discriminate on the concrete subclass.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for every exception raised by this package."""


class CircuitError(ReproError):
    """Raised for malformed circuits: pins off-grid, empty wires, etc."""


class GridError(ReproError):
    """Raised for cost-array misuse: bad shapes, out-of-range cells."""


class RoutingError(ReproError):
    """Raised when the router cannot produce a legal path for a wire."""


class AssignmentError(ReproError):
    """Raised for invalid wire-to-processor assignments."""


class NetworkError(ReproError):
    """Raised by the CBS-style network simulator (bad topology, routing)."""


class ProtocolError(ReproError):
    """Raised by the update-protocol machinery (malformed packets, bad
    schedule parameters)."""


class CoherenceError(ReproError):
    """Raised by the cache-coherence simulator (bad line size, trace)."""


class SimulationError(ReproError):
    """Raised by the discrete-event kernel (time going backwards, etc.)."""


class ExperimentError(ReproError):
    """Raised by the experiment harness (unknown experiment id, etc.)."""


class ServiceError(ReproError):
    """Raised by the routing service daemon and its client (bad job
    specifications, unreachable or failing service endpoints)."""


class FaultPlanError(ReproError):
    """Raised for invalid fault-injection plans (bad probabilities,
    malformed outage/stall windows, bad recovery parameters)."""
