"""Per-processor state machine of the message passing LocusRoute.

Each :class:`MPNode` owns one region of the cost array but keeps "a view of
the whole cost array" (§4.1) plus a delta array recording its changes.  A
node's life is a loop over its statically assigned wires (repeated for
every routing iteration):

1. **Drain** the inbox — messages are only examined *between* wires
   ("processors only check for newly received messages between routing
   wires", §4.2); each packet costs disassembly time.
2. **Look ahead** — under receiver-initiated schedules, issue ReqRmtData
   requests for wires ``lookahead_wires`` ahead of the current one
   ("requesting updates in advance helps ensure that the update will
   arrive before routing for that wire actually begins", §4.3.3).
3. **Block** — in blocking mode, idle until every outstanding ReqRmtData
   response has arrived.
4. **Route** — rip up the wire's previous path (later iterations),
   evaluate the two-bend candidates against the local view, commit.
5. **Push updates** — per the sender-initiated schedule, scan the delta
   array and emit SendLocData (own region, absolute, to N/S/E/W
   neighbours) and SendRmtData (remote regions, deltas, to their owners).

Nodes remain responsive after finishing their own wires: an owner must
keep answering ReqRmtData/ReqLocData for peers that are still routing.

Timing: the node carries its own local clock, advanced by the
:class:`~repro.parallel.timing.CostModel` for every operation; the event
kernel fires the node's activations at those local times, so virtual time
and the network's contention model stay consistent.
"""

from __future__ import annotations

import heapq
import itertools
import math
from typing import Callable, Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..circuits.model import Circuit
from ..errors import ProtocolError
from ..faults.plan import RecoveryPolicy
from ..grid.bbox import BBox
from ..grid.cost_array import CostArray
from ..grid.delta import DeltaArray
from ..grid.ownership import OwnershipMap
from ..grid.regions import RegionMap
from ..kernels import active_kernels
from ..route.path import RoutePath
from ..route.twobend import route_wire
from ..route.workmodel import (
    COMMIT_CELL_UNITS,
    INCORPORATE_CELL_UNITS,
    SCAN_CELL_UNITS,
    WorkCounter,
)
from ..updates.packets import (
    HEADER_BYTES,
    UpdatePacket,
    build_control,
    build_loc_data,
    build_request,
    build_response,
    build_rmt_data,
)
from ..updates.schedule import UpdateSchedule
from ..updates.structures import PacketStructure, wire_based_bytes
from ..updates.types import UpdateKind, is_request
from .timing import CostModel

__all__ = ["MPNode", "NodeServices", "NodePhase"]


class NodePhase:
    """Node lifecycle states."""

    READY = "ready"  #: activation scheduled or running
    BUSY = "busy"  #: routing a wire; commit event pending
    WAITING = "waiting"  #: blocked on outstanding responses
    DONE = "done"  #: all assigned wires routed (still answers requests)


class NodeServices:
    """The simulator-side callbacks a node needs.

    Parameters
    ----------
    send_packet:
        ``send_packet(packet, inject_time)`` — hand a packet to the
        network at the given virtual time.
    schedule:
        ``schedule(time, action)`` — schedule an event on the kernel and
        return a cancellable handle.
    cancel:
        ``cancel(handle)`` — cancel a previously scheduled event (used by
        interrupt-driven reception to push a wire's completion back).
    on_ripup:
        ``on_ripup(proc, wire_idx, path, time)`` — ground-truth rip-up.
    on_commit:
        ``on_commit(proc, wire_idx, path, time)`` — ground-truth commit
        (the simulator prices the path for the occupancy factor here).
    on_finished:
        ``on_finished(proc, time)`` — the node routed its last wire.
    on_node_dead:
        ``on_node_dead(reporter, dead, time)`` — *reporter* confirmed
        *dead* as crashed (probe retries exhausted).  The simulator uses
        this to re-assign the dead node's orphaned wires; defaults to a
        no-op so crash-unaware runs need no wiring.
    """

    def __init__(
        self,
        send_packet: Callable[[UpdatePacket, float], None],
        schedule: Callable[[float, Callable[[], None]], object],
        on_ripup: Callable[[int, int, RoutePath, float], None],
        on_commit: Callable[[int, int, RoutePath, float], None],
        on_finished: Callable[[int, float], None],
        cancel: Callable[[object], None] = lambda handle: None,
        on_node_dead: Callable[[int, int, float], None] = lambda reporter, dead, time: None,
    ) -> None:
        self.send_packet = send_packet
        self.schedule = schedule
        self.on_ripup = on_ripup
        self.on_commit = on_commit
        self.on_finished = on_finished
        self.cancel = cancel
        self.on_node_dead = on_node_dead


class MPNode:
    """One processor of the message passing implementation."""

    def __init__(
        self,
        proc: int,
        circuit: Circuit,
        regions: RegionMap,
        schedule: UpdateSchedule,
        wires: Sequence[int],
        iterations: int,
        cost_model: CostModel,
        services: NodeServices,
        recovery: Optional[RecoveryPolicy] = None,
        ownership: Optional[OwnershipMap] = None,
        fault_seed: int = 0,
    ) -> None:
        self.proc = proc
        self.circuit = circuit
        self.regions = regions
        self.schedule = schedule
        self.cost_model = cost_model
        self.services = services

        self.view = CostArray(circuit.n_channels, circuit.n_grids)
        self.delta = DeltaArray(circuit.n_channels, circuit.n_grids)
        self.own_region: BBox = regions.region(proc)
        self.neighbors: List[int] = regions.neighbors(proc)

        #: assigned wires, repeated once per iteration in the same order
        self.queue: List[int] = [w for _ in range(iterations) for w in wires]
        self._wires_per_iteration = max(1, len(wires))
        self.qi = 0
        self._lookahead_pos = 0

        self.clock = 0.0
        self.phase = NodePhase.READY
        self.work = WorkCounter()
        self.paths: Dict[int, RoutePath] = {}
        self.wire_prices: Dict[int, int] = {}

        self._inbox: List[Tuple[float, int, UpdatePacket]] = []
        self._inbox_seq = itertools.count()
        self._activation_pending = False
        self._pending_wire: Optional[Tuple[int, object]] = None
        self._commit_event: Optional[object] = None
        self._interrupt_busy_until = 0.0
        self.interrupts_serviced = 0

        # receiver-initiated bookkeeping
        self._region_touch_count: Dict[int, int] = {}
        self._region_req_bbox: Dict[int, BBox] = {}
        self.outstanding_responses = 0
        self._reqs_received_from: Dict[int, int] = {}

        # recovery bookkeeping: every ReqRmtData carries a fresh req_id
        # and is tracked until its response arrives, making receipt
        # idempotent (a duplicated or post-abandonment response matches
        # no pending entry and is ignored instead of corrupting the
        # outstanding-response count).  The staleness watchdog — re-issue
        # with exponential backoff, then abandon — is armed only when a
        # ``recovery`` policy is supplied, so fault-free runs schedule no
        # extra events and stay bit-identical to the pre-fault kernel.
        self.recovery = recovery
        self._req_seq = itertools.count()
        #: req_id -> [owner, bbox, retries_so_far, current_timeout_s]
        self._pending_requests: Dict[int, List[object]] = {}
        self._rsp_loc_seen: set = set()
        self.watchdog_fires = 0
        self.retries_sent = 0
        self.requests_abandoned = 0
        self.duplicate_responses_ignored = 0

        # crash-fault bookkeeping: ``ownership`` is this node's private
        # replica of the live region -> owner map (see grid/ownership.py);
        # it is only supplied when the fault plan contains node crashes,
        # so crash-free runs take the legacy code paths bit-for-bit.  The
        # seeded per-node RNG supplies backoff jitter from the fault-plan
        # seed stream, keeping lossy runs reproducible across --jobs.
        self.ownership = ownership
        self.crashed = False
        self.crash_time_s = math.nan
        self._abandons_by_peer: Dict[int, int] = {}
        #: probe req_id -> [peer, retries_so_far, current_timeout_s]
        self._pending_probes: Dict[int, List[object]] = {}
        self.probes_sent = 0
        self.deaths_confirmed = 0
        self.death_notices_received = 0
        self.regions_adopted = 0
        self.wires_adopted = 0
        self.misdirected_requests = 0
        self._rng = (
            np.random.default_rng((fault_seed, proc))
            if recovery is not None and recovery.jitter > 0.0
            else None
        )

        # sender-initiated counters
        self._since_send_loc = 0
        self._since_send_rmt = 0

        # change-count bookkeeping for the wire-based packet encoding
        # (§4.3.1): (changed wires, changed segments) since the last send,
        # tracked separately for the own region (SendLocData) and for each
        # remote region (SendRmtData).
        self._chg_loc = [0, 0]
        self._chg_rmt: Dict[int, List[int]] = {}

        # accounting
        self.messages_sent = 0
        self.messages_received = 0
        self.blocked_time_s = 0.0
        self.finish_time_s = math.nan
        self._total_area = circuit.n_channels * circuit.n_grids

    # ------------------------------------------------------------------
    # simulator interface
    # ------------------------------------------------------------------
    def start(self) -> None:
        """Schedule the node's first activation at time 0."""
        self._schedule_activation(0.0)

    def deliver(self, packet: UpdatePacket, arrive_time: float) -> None:
        """Network delivery callback: enqueue and wake the node if idle.

        Under interrupt-driven reception (§4.2), request packets arriving
        while a wire is being routed are serviced immediately instead of
        waiting for the next between-wires poll; the interrupted wire's
        completion is pushed back by the service time.
        """
        if self.crashed:
            return
        self.messages_received += 1
        if (
            self.schedule.interrupt_reception
            and is_request(packet.kind)
            and self.phase == NodePhase.BUSY
            and self._pending_wire is not None
        ):
            self._service_interrupt(packet, arrive_time)
            return
        heapq.heappush(self._inbox, (arrive_time, next(self._inbox_seq), packet))
        if self.phase in (NodePhase.WAITING, NodePhase.DONE) and not self._activation_pending:
            self._schedule_activation(max(self.clock, arrive_time))

    def _service_interrupt(self, packet: UpdatePacket, arrive_time: float) -> None:
        """Handle a request at arrival time, delaying the current wire."""
        self.interrupts_serviced += 1
        start = max(arrive_time, self._interrupt_busy_until)
        wire_finish = self.clock
        # Run the handler in an "interrupt context" clock so the response
        # is injected near the arrival time, not at the end of the wire.
        self.clock = start + self.cost_model.interrupt_overhead_s
        self._process_packet(packet)
        service_end = self.clock
        self._interrupt_busy_until = service_end
        # The interrupted computation resumes where it left off, finishing
        # later by the time the interrupt handler consumed.
        self.clock = wire_finish + (service_end - start)
        if self._commit_event is not None:
            self.services.cancel(self._commit_event)
            self._commit_event = self.services.schedule(self.clock, self._finish_wire)

    @property
    def is_done(self) -> bool:
        """True once every assigned wire (every iteration) is routed."""
        return self.qi >= len(self.queue)

    def crash(self, t: float) -> None:
        """Fail-stop at time *t*: no more routing, sends, or replies.

        The node's committed paths stay in the ground truth (a crashed
        processor's completed work survives); everything in flight —
        the wire being routed, queued inbox packets, pending requests
        and probes — is discarded.  Survivors detect the death via the
        probe protocol and adopt the orphaned regions and wires.
        """
        if self.crashed:
            return
        self.crashed = True
        self.crash_time_s = t
        if self._commit_event is not None:
            self.services.cancel(self._commit_event)
            self._commit_event = None
        self._pending_wire = None
        self._inbox.clear()
        self._pending_requests.clear()
        self._pending_probes.clear()

    # ------------------------------------------------------------------
    # live ownership indirection (identity when crash-unaware)
    # ------------------------------------------------------------------
    def _live_owner(self, region_idx: int) -> int:
        if self.ownership is None:
            return region_idx
        return self.ownership.live_owner(region_idx)

    def _owns_region(self, region_idx: int) -> bool:
        return self._live_owner(region_idx) == self.proc

    def _owned_region_indices(self) -> List[int]:
        if self.ownership is None:
            return [self.proc]
        return self.ownership.regions_owned_by(self.proc)

    # ------------------------------------------------------------------
    # activation: drain, look ahead, maybe block, start routing a wire
    # ------------------------------------------------------------------
    def _schedule_activation(self, time: float) -> None:
        self._activation_pending = True
        self.services.schedule(time, lambda t=time: self._activate(t))

    def _activate(self, event_time: float) -> None:
        self._activation_pending = False
        if self.crashed:
            return
        # An activation scheduled by a delivery may be later than the local
        # clock; the gap is idle time the node simply waits through.
        self.clock = max(self.clock, event_time)
        was_waiting = self.phase == NodePhase.WAITING
        self.phase = NodePhase.READY
        self._drain_inbox()

        if self.is_done:
            self.phase = NodePhase.DONE
            return

        self._issue_lookahead_requests()

        if self.schedule.blocking and self.outstanding_responses > 0:
            # Idle until responses arrive; deliveries re-activate us.  Any
            # time spent here counts as blocked time once we resume.
            self.phase = NodePhase.WAITING
            if not was_waiting:
                self._block_start = self.clock
            return
        if was_waiting and hasattr(self, "_block_start"):
            self.blocked_time_s += max(0.0, self.clock - self._block_start)
            del self._block_start

        self._start_wire()

    def _drain_inbox(self) -> None:
        """Process every packet that has arrived by the local clock.

        Disassembly advances the clock, which may make further queued
        packets eligible; the loop runs until the head of the inbox is in
        the local future.
        """
        while self._inbox and self._inbox[0][0] <= self.clock:
            _, _, packet = heapq.heappop(self._inbox)
            self._process_packet(packet)

    def _start_wire(self) -> None:
        wire_idx = self.queue[self.qi]
        wire = self.circuit.wire(wire_idx)

        # Rip up the previous iteration's path before rerouting (§3).
        old = self.paths.get(wire_idx)
        if old is not None:
            # The local view may disagree with reality after absolute
            # overwrites (SendLocData replaces the receiver's view, §4.3.2),
            # so rip-ups on the view are non-strict; the ground truth rip-up
            # in the simulator stays strict.
            self.view.remove_path(old.flat_cells, strict=False)
            self.delta.record_path(old.flat_cells, -1)
            self._record_change_counts(old, wire.n_pins - 1)
            self.work.add_commit(old.n_cells)
            self.clock += self.cost_model.work_time(COMMIT_CELL_UNITS * old.n_cells)
            self.services.on_ripup(self.proc, wire_idx, old, self.clock)

        iteration = self.qi // self._wires_per_iteration
        result = route_wire(self.view, wire, tie_break=iteration % 2)
        self.work.add_route(result.work_cells)
        commit_units = COMMIT_CELL_UNITS * result.path.n_cells
        self.work.add_commit(result.path.n_cells)
        self.clock += self.cost_model.work_time(result.work_cells + commit_units)

        self.phase = NodePhase.BUSY
        self._pending_wire = (wire_idx, result)
        self._commit_event = self.services.schedule(self.clock, self._finish_wire)

    def _record_change_counts(self, path: RoutePath, n_segments: int) -> None:
        """Track per-region change counts for the wire-based encoding."""
        box = path.bbox()
        for owner in self.regions.regions_touched(box):
            if owner == self.proc:
                self._chg_loc[0] += 1
                self._chg_loc[1] += n_segments
            else:
                entry = self._chg_rmt.setdefault(owner, [0, 0])
                entry[0] += 1
                entry[1] += n_segments

    def _finish_wire(self) -> None:
        if self.crashed:
            return
        assert self._pending_wire is not None
        wire_idx, result = self._pending_wire
        self._pending_wire = None
        self._commit_event = None

        self.view.apply_path(result.path.flat_cells)
        self.delta.record_path(result.path.flat_cells, +1)
        self._record_change_counts(result.path, len(result.segments))
        self.paths[wire_idx] = result.path
        self.services.on_commit(self.proc, wire_idx, result.path, self.clock)

        self.qi += 1
        self._since_send_loc += 1
        self._since_send_rmt += 1
        self._push_scheduled_updates()

        if self.is_done:
            self.finish_time_s = self.clock
            self.phase = NodePhase.DONE
            self.services.on_finished(self.proc, self.clock)
            # One final drain keeps the inbox from sitting on requests that
            # arrived while we routed our last wire.
            self._drain_inbox()
            return
        self._schedule_activation(self.clock)

    # ------------------------------------------------------------------
    # receiver-initiated machinery
    # ------------------------------------------------------------------
    def _issue_lookahead_requests(self) -> None:
        if self.schedule.req_rmt_every is None:
            return
        horizon = min(len(self.queue), self.qi + 1 + self.schedule.lookahead_wires)
        while self._lookahead_pos < horizon:
            wire = self.circuit.wire(self.queue[self._lookahead_pos])
            c_lo, x_lo, c_hi, x_hi = wire.bounding_box
            wire_box = BBox(c_lo, x_lo, c_hi, x_hi)
            for owner in self.regions.regions_touched(wire_box):
                if self._owns_region(owner):
                    continue
                clipped = wire_box.intersect(self.regions.region(owner))
                if clipped is None:
                    continue
                self._region_touch_count[owner] = (
                    self._region_touch_count.get(owner, 0) + 1
                )
                # The request covers the footprint of the wire that tripped
                # the counter — the area the processor is about to route in.
                # (Accumulating a union over all counted wires inflates
                # responses toward whole-region copies and erases the
                # receiver-initiated traffic advantage the paper measures.)
                self._region_req_bbox[owner] = clipped
                if self._region_touch_count[owner] >= self.schedule.req_rmt_every:
                    self._send_req_rmt(owner)
            self._lookahead_pos += 1

    def _send_req_rmt(self, owner: int) -> None:
        """Request absolute data for region *owner* from its live owner.

        ``owner`` is a *region index* (the region's original processor);
        the packet's destination is resolved through the ownership map so
        requests for an adopted region reach the adopter.  The pending
        entry stores the region index, and every watchdog retry
        re-resolves the destination — a request in flight across a death
        is retried against the region's new owner.
        """
        bbox = self._region_req_bbox.pop(owner)
        self._region_touch_count[owner] = 0
        rid = next(self._req_seq)
        packet = build_request(
            UpdateKind.REQ_RMT_DATA, self.proc, self._live_owner(owner), bbox,
            region_owner=owner, req_id=rid,
        )
        self.outstanding_responses += 1
        self._emit(packet, payload_cells=0)
        if self.recovery is not None:
            timeout = self.recovery.watchdog_timeout_s
            self._pending_requests[rid] = [owner, bbox, 0, timeout]
            deadline = self.clock + timeout
            self.services.schedule(
                deadline, lambda r=rid, t=deadline: self._watchdog_fire(r, t)
            )
        else:
            self._pending_requests[rid] = [owner, bbox, 0, 0.0]

    def _watchdog_fire(self, rid: int, fire_time: float) -> None:
        """Staleness watchdog: retry an overdue ReqRmtData, or abandon it.

        Retransmission is a network-interface action: it re-injects the
        tracked request at the watchdog's fire time without advancing the
        node's local clock (the node may be mid-wire; the retry must not
        cost routing time).  After ``max_retries`` re-sends the request
        is abandoned — the node accepts its stale view of that region and
        releases the outstanding-response slot, which is what un-wedges
        blocking-mode nodes on a lossy network.
        """
        if self.crashed:
            return
        entry = self._pending_requests.get(rid)
        if entry is None:
            return  # response arrived (or request already abandoned)
        assert self.recovery is not None
        self.watchdog_fires += 1
        region_idx, bbox, retries, timeout = entry
        dst = self._live_owner(region_idx)
        if dst == self.proc:
            # We adopted the region while the request was pending; our
            # own view is now authoritative, so the slot is satisfied.
            del self._pending_requests[rid]
            self.outstanding_responses -= 1
            if (
                self.phase == NodePhase.WAITING
                and self.outstanding_responses <= 0
                and not self._activation_pending
            ):
                self._schedule_activation(max(self.clock, fire_time))
            return
        if retries < self.recovery.max_retries:
            entry[2] = retries + 1
            new_timeout = self._next_timeout(timeout)
            entry[3] = new_timeout
            packet = build_request(
                UpdateKind.REQ_RMT_DATA, self.proc, dst, bbox,
                region_owner=region_idx, req_id=rid,
            )
            self.retries_sent += 1
            self.messages_sent += 1
            self.services.send_packet(packet, fire_time)
            deadline = fire_time + new_timeout
            self.services.schedule(
                deadline, lambda r=rid, t=deadline: self._watchdog_fire(r, t)
            )
            return
        # Out of retries: degrade gracefully to the stale view.
        del self._pending_requests[rid]
        self.requests_abandoned += 1
        self.outstanding_responses -= 1
        self._note_abandonment(dst, fire_time)
        if (
            self.phase == NodePhase.WAITING
            and self.outstanding_responses <= 0
            and not self._activation_pending
        ):
            self._schedule_activation(max(self.clock, fire_time))

    def _next_timeout(self, timeout: float) -> float:
        """Exponential backoff with seeded jitter.

        The jitter draw comes from the node's fault-seed RNG stream, not
        the global RNG, so lossy runs stay bit-reproducible regardless of
        worker-pool parallelism.
        """
        grown = timeout * self.recovery.backoff_factor
        if self._rng is not None:
            grown *= 1.0 + self.recovery.jitter * float(self._rng.random())
        return grown

    # ------------------------------------------------------------------
    # failure detection: suspicion -> probe -> death declaration
    # ------------------------------------------------------------------
    def _note_abandonment(self, peer: int, t: float) -> None:
        """Escalate repeated abandonments against *peer* to suspicion."""
        if self.ownership is None or self.recovery is None:
            return
        if peer == self.proc or not self.ownership.is_live(peer):
            return
        count = self._abandons_by_peer.get(peer, 0) + 1
        self._abandons_by_peer[peer] = count
        if count >= self.recovery.suspect_after:
            self._send_probe(peer, t)

    def probe_peer(self, peer: int, t: float) -> None:
        """Externally triggered liveness probe (simulator audit sweep)."""
        self._send_probe(peer, t)

    def _send_probe(self, peer: int, t: float) -> None:
        """Send a HEARTBEAT to a suspected peer and arm its timeout.

        Probing is a network-interface action: it advances no local
        clock (the node may be mid-wire).  The probe budget is longer
        than the data watchdog (``probe_timeout_factor x``) so a busy —
        not dead — peer has time to reach its next between-wires poll
        and answer before being declared dead.
        """
        if self.crashed or self.recovery is None or peer == self.proc:
            return
        if self.ownership is not None and not self.ownership.is_live(peer):
            return
        if any(entry[0] == peer for entry in self._pending_probes.values()):
            return  # probe already in flight
        rid = next(self._req_seq)
        timeout = self.recovery.watchdog_timeout_s * self.recovery.probe_timeout_factor
        self._pending_probes[rid] = [peer, 0, timeout]
        packet = build_control(UpdateKind.HEARTBEAT, self.proc, peer, self.proc, req_id=rid)
        self.probes_sent += 1
        self.messages_sent += 1
        self.services.send_packet(packet, t)
        deadline = t + timeout
        self.services.schedule(
            deadline, lambda r=rid, ft=deadline: self._probe_fire(r, ft)
        )

    def _probe_fire(self, rid: int, fire_time: float) -> None:
        """Probe timeout: retry the HEARTBEAT, or declare the peer dead."""
        if self.crashed:
            return
        entry = self._pending_probes.get(rid)
        if entry is None:
            return  # ack arrived
        peer, retries, timeout = entry
        if self.ownership is not None and not self.ownership.is_live(peer):
            del self._pending_probes[rid]
            return  # someone else's death notice beat us to it
        if retries < self.recovery.max_retries:
            entry[1] = retries + 1
            new_timeout = self._next_timeout(timeout)
            entry[2] = new_timeout
            packet = build_control(
                UpdateKind.HEARTBEAT, self.proc, peer, self.proc, req_id=rid
            )
            self.probes_sent += 1
            self.messages_sent += 1
            self.services.send_packet(packet, fire_time)
            deadline = fire_time + new_timeout
            self.services.schedule(
                deadline, lambda r=rid, ft=deadline: self._probe_fire(r, ft)
            )
            return
        del self._pending_probes[rid]
        self._declare_dead(peer, fire_time)

    def _declare_dead(self, peer: int, t: float) -> None:
        """Probe retries exhausted: gossip the death and process it locally.

        The notice also goes to *peer* itself: if the declaration is a
        false positive (a live peer swamped past every probe retry), the
        victim learns it has been voted out, stops claiming its regions,
        and keeps routing — every node still converges on the same
        ownership map.
        """
        if self.ownership is None or not self.ownership.is_live(peer):
            return
        self.deaths_confirmed += 1
        for member in self.ownership.live_members():
            if member == self.proc:
                continue
            notice = build_control(UpdateKind.DEATH_NOTICE, self.proc, member, peer)
            self.messages_sent += 1
            self.services.send_packet(notice, t)
        self._handle_death(peer, t)
        self.services.on_node_dead(self.proc, peer, t)

    def _handle_death(self, dead: int, t: float) -> None:
        """Apply a confirmed death to the local ownership replica.

        Idempotent (notices may arrive from several declarers).  Regions
        the hash ring re-assigns to *this* node are adopted immediately.
        """
        if self.ownership is None or not self.ownership.is_live(dead):
            return
        reassigned = self.ownership.mark_dead(dead)
        for rid in [r for r, e in self._pending_probes.items() if e[0] == dead]:
            del self._pending_probes[rid]
        self._abandons_by_peer.pop(dead, None)
        for region_idx in sorted(reassigned):
            if reassigned[region_idx] == self.proc:
                self._adopt_region(region_idx, t)

    def _adopt_region(self, region_idx: int, t: float) -> None:
        """Become the owner of an orphaned region.

        The adopter's view already tracks the region (every node holds a
        whole-array replica, §4.1); what it may lack is *other* nodes'
        unsent deltas there.  The re-announce round pulls them: one
        ReqLocData per survivor covering the adopted region, each with a
        fresh req_id so the responses are individually deduplicated.
        """
        self.regions_adopted += 1
        region = self.regions.region(region_idx)
        for member in self.ownership.live_members():
            if member == self.proc:
                continue
            req = build_request(
                UpdateKind.REQ_LOC_DATA,
                self.proc,
                member,
                region,
                region_owner=self.proc,
                req_id=next(self._req_seq),
            )
            self.messages_sent += 1
            self.services.send_packet(req, t)

    def adopt_wires(self, wires: Sequence[int], t: float) -> None:
        """Append a dead peer's orphaned wires to this node's queue."""
        if self.crashed or not wires:
            return
        was_done = self.is_done
        self.queue.extend(int(w) for w in wires)
        self.wires_adopted += len(wires)
        if was_done:
            self.finish_time_s = math.nan
            if not self._activation_pending:
                self._schedule_activation(max(self.clock, t))

    # ------------------------------------------------------------------
    # sender-initiated machinery
    # ------------------------------------------------------------------
    def _push_scheduled_updates(self) -> None:
        k1 = self.schedule.send_loc_every
        if k1 is not None and self._since_send_loc >= k1:
            self._since_send_loc = 0
            self._send_loc_data()
        k2 = self.schedule.send_rmt_every
        if k2 is not None and self._since_send_rmt >= k2:
            self._since_send_rmt = 0
            self._send_rmt_data()

    def _encoding_override(self, kind: UpdateKind, region_owner: int) -> Optional[int]:
        """Wire-byte override for the non-default §4.3.1 encodings.

        Returns ``None`` for the bounding-box structure (sizes follow the
        bbox), the wire-based byte count for :attr:`PacketStructure.WIRE_BASED`,
        and ``None`` for FULL_REGION (the caller widens the bbox instead).
        """
        structure = self.schedule.packet_structure
        if structure is not PacketStructure.WIRE_BASED:
            return None
        counts = (
            self._chg_loc
            if region_owner == self.proc and kind is UpdateKind.SEND_LOC_DATA
            else self._chg_rmt.get(region_owner, [0, 0])
        )
        return HEADER_BYTES + wire_based_bytes(counts[0], counts[1])

    def _send_loc_data(self) -> None:
        """Push every owned region (absolute) to its mesh neighbours.

        Crash-unaware nodes own exactly their Figure-2 region and this
        reduces to the original single-region push.  A crash-aware node
        pushes each region it currently owns (original plus adopted); the
        N/S/E/W neighbour set is the *region's* mesh neighbourhood, with
        each neighbour region resolved to its live owner.
        """
        for region_idx in self._owned_region_indices():
            region = self.regions.region(region_idx)
            self.work.add_scan(region.area)
            self.clock += self.cost_model.work_time(SCAN_CELL_UNITS * region.area)
            template = build_loc_data(
                self.proc, self.proc, self.view, self.delta, region
            )
            if template is None:
                continue
            bbox, values = template.bbox, template.values
            if self.schedule.packet_structure is PacketStructure.FULL_REGION:
                bbox = region
                values = self.view.extract(region)
            override = (
                self._encoding_override(UpdateKind.SEND_LOC_DATA, self.proc)
                if region_idx == self.proc
                else None
            )
            sent_to = set()
            for neighbor in self.regions.neighbors(region_idx):
                dst = self._live_owner(neighbor)
                if dst == self.proc or dst in sent_to:
                    continue
                sent_to.add(dst)
                packet = UpdatePacket(
                    kind=template.kind,
                    src=self.proc,
                    dst=dst,
                    bbox=bbox,
                    values=values,
                    region_owner=region_idx,
                    wire_bytes=override,
                )
                self._emit(packet, payload_cells=packet.payload_cells)
            self.delta.clear_region(region)
            if region_idx == self.proc:
                self._chg_loc = [0, 0]

    def _send_rmt_data(self) -> None:
        """Push accumulated deltas of every remote region to its owner.

        Under the vectorised kernels the per-region delta scans collapse
        into one :meth:`DeltaArray.dirty_bboxes_by_owner` pass; packets,
        ordering, and accounted scan work are identical either way (the
        simulated scan cost models the original program's full sweep).
        """
        owned = set(self._owned_region_indices())
        scan_area = self._total_area - sum(
            self.regions.region(r).area for r in owned
        )
        self.work.add_scan(scan_area)
        self.clock += self.cost_model.work_time(SCAN_CELL_UNITS * scan_area)
        if active_kernels() == "vectorized":
            dirty_by_owner = self.delta.dirty_bboxes_by_owner(self.regions)
        else:
            dirty_by_owner = None
        for owner in range(self.regions.n_procs):
            if owner in owned:
                continue
            dst = self._live_owner(owner)
            if dst == self.proc:  # pragma: no cover - owned covers this
                continue
            region = self.regions.region(owner)
            if dirty_by_owner is None:
                packet = build_rmt_data(self.proc, owner, self.delta, region)
            else:
                dirty = dirty_by_owner.get(owner)
                packet = None
                if dirty is not None:
                    packet = UpdatePacket(
                        kind=UpdateKind.SEND_RMT_DATA,
                        src=self.proc,
                        dst=owner,
                        bbox=dirty,
                        values=self.delta.extract(dirty),
                        region_owner=owner,
                    )
            if packet is None:
                continue
            if dst != owner:
                # The region's original owner is dead: redirect the delta
                # push to the adopter (the region identity stays in
                # ``region_owner`` so the adopter can attribute it).
                packet = UpdatePacket(
                    kind=packet.kind,
                    src=packet.src,
                    dst=dst,
                    bbox=packet.bbox,
                    values=packet.values,
                    region_owner=owner,
                )
            if self.schedule.packet_structure is PacketStructure.FULL_REGION:
                packet = UpdatePacket(
                    kind=packet.kind,
                    src=packet.src,
                    dst=packet.dst,
                    bbox=region,
                    values=self.delta.extract(region),
                    region_owner=owner,
                )
            else:
                override = self._encoding_override(UpdateKind.SEND_RMT_DATA, owner)
                if override is not None:
                    packet = UpdatePacket(
                        kind=packet.kind,
                        src=packet.src,
                        dst=packet.dst,
                        bbox=packet.bbox,
                        values=packet.values,
                        region_owner=owner,
                        wire_bytes=override,
                    )
            self._emit(packet, payload_cells=packet.payload_cells)
            self.delta.clear_region(region)
            self._chg_rmt[owner] = [0, 0]

    # ------------------------------------------------------------------
    # packet processing
    # ------------------------------------------------------------------
    def _process_packet(self, packet: UpdatePacket) -> None:
        cells = packet.payload_cells
        self.work.add_incorporate(cells)
        self.clock += (
            self.cost_model.packet_fixed_s
            + self.cost_model.work_time(INCORPORATE_CELL_UNITS * cells)
        )
        kind = packet.kind
        if kind is UpdateKind.SEND_LOC_DATA:
            self._apply_absolute(packet)
        elif kind is UpdateKind.SEND_RMT_DATA:
            # A remote's deltas inside our own region: fold them into the
            # view *and* into our delta array, so the next SendLocData push
            # propagates the remote's contribution to our neighbours.
            self.view.accumulate(packet.bbox, packet.values)
            self.delta.accumulate(packet.bbox, packet.values)
            # For the wire-based encoding, an incorporated remote update
            # counts as roughly one changed wire (two segments) that the
            # next SendLocData must describe.
            self._chg_loc[0] += 1
            self._chg_loc[1] += 2
        elif kind is UpdateKind.REQ_RMT_DATA:
            self._answer_req_rmt(packet)
        elif kind is UpdateKind.REQ_LOC_DATA:
            self._answer_req_loc(packet)
        elif kind is UpdateKind.RSP_RMT_DATA:
            rid = packet.req_id
            if rid is not None and rid not in self._pending_requests:
                # Duplicated (or post-abandonment) response: the matching
                # request was already satisfied or given up on.  Receipt
                # is idempotent — pay the disassembly cost, apply nothing.
                self.duplicate_responses_ignored += 1
                return
            if rid is not None:
                del self._pending_requests[rid]
            self._apply_absolute(packet)
            self.outstanding_responses -= 1
            if self.outstanding_responses < 0:
                raise ProtocolError("response arrived without a matching request")
        elif kind is UpdateKind.RSP_LOC_DATA:
            rid = packet.req_id
            if rid is not None:
                if rid in self._rsp_loc_seen:
                    # Duplicated delta response: accumulating it twice
                    # would double-count the sender's changes.
                    self.duplicate_responses_ignored += 1
                    return
                self._rsp_loc_seen.add(rid)
            self.view.accumulate(packet.bbox, packet.values)
            self.delta.accumulate(packet.bbox, packet.values)
        elif kind is UpdateKind.HEARTBEAT:
            ack = build_control(
                UpdateKind.HEARTBEAT_ACK, self.proc, packet.src, self.proc,
                req_id=packet.req_id,
            )
            self._emit(ack, payload_cells=0)
        elif kind is UpdateKind.HEARTBEAT_ACK:
            rid = packet.req_id
            if rid is not None and rid in self._pending_probes:
                peer = self._pending_probes.pop(rid)[0]
                self._abandons_by_peer[peer] = 0
            else:
                self.duplicate_responses_ignored += 1
        elif kind is UpdateKind.DEATH_NOTICE:
            self.death_notices_received += 1
            self._handle_death(packet.region_owner, self.clock)
        else:  # pragma: no cover - exhaustive over UpdateKind
            raise ProtocolError(f"node cannot process packet kind {kind}")

    def _apply_absolute(self, packet: UpdatePacket) -> None:
        """Fold absolute region data (SendLocData / RspRmtData) into the view.

        The receiver replaces its view of the updated area (§4.3.2) and
        then re-applies its *own unsent deltas* there: the sender's
        absolute data cannot include changes the receiver has not shipped
        yet, and a plain replace would erase the receiver's knowledge of
        its own in-flight wires — staleness that grows *with* update
        frequency.  Once those deltas are shipped (and cleared), the
        owner's subsequent absolutes carry them, so nothing double-counts.
        """
        self.view.replace(packet.bbox, packet.values)
        pending = self.delta.extract(packet.bbox)
        if pending.any():
            self.view.accumulate(packet.bbox, pending)

    def _answer_req_rmt(self, request: UpdatePacket) -> None:
        """Serve absolute data from a region we authoritatively own.

        Crash-aware runs resolve the served region through the ownership
        map: a request that raced a death (sent to a node that no longer
        — or never — owned the region in our view) is counted as
        misdirected and dropped; the requester's watchdog re-resolves the
        owner and retries.
        """
        if self.ownership is not None:
            region_idx = request.region_owner
            if not self._owns_region(region_idx):
                self.misdirected_requests += 1
                return
            serving = self.regions.region(region_idx)
        else:
            region_idx = self.proc
            serving = self.own_region
        clipped = request.bbox.intersect(serving)
        if clipped is None:
            if self.ownership is not None:
                self.misdirected_requests += 1
                return
            raise ProtocolError(
                f"proc {self.proc} received ReqRmtData for a region it does not own"
            )
        response = build_response(
            build_request(
                UpdateKind.REQ_RMT_DATA, request.src, self.proc, clipped, region_idx,
                req_id=request.req_id,
            ),
            self.view.extract(clipped),
        )
        self._emit(response, payload_cells=response.payload_cells)

        # ReqLocData trigger: a remote that keeps asking about our region
        # has been routing in it — pull its deltas (§4.3.3).
        if self.schedule.req_loc_every is not None:
            count = self._reqs_received_from.get(request.src, 0) + 1
            if count >= self.schedule.req_loc_every:
                self._reqs_received_from[request.src] = 0
                req = build_request(
                    UpdateKind.REQ_LOC_DATA,
                    self.proc,
                    request.src,
                    self.own_region,
                    region_owner=self.proc,
                    req_id=next(self._req_seq),
                )
                self._emit(req, payload_cells=0)
            else:
                self._reqs_received_from[request.src] = count

    def _answer_req_loc(self, request: UpdatePacket) -> None:
        """Serve our pending deltas inside the requesting owner's region."""
        dirty = self.delta.region_dirty_bbox(request.bbox)
        if dirty is None:
            return  # nothing to report; owners do not block on ReqLocData
        response = build_response(
            build_request(
                UpdateKind.REQ_LOC_DATA, request.src, self.proc, dirty, request.src,
                req_id=request.req_id,
            ),
            self.delta.extract(dirty),
        )
        self.delta.clear_region(dirty)
        self._emit(response, payload_cells=response.payload_cells)

    # ------------------------------------------------------------------
    def _emit(self, packet: UpdatePacket, payload_cells: int) -> None:
        """Pay assembly costs and hand the packet to the network."""
        self.work.add_marshal(payload_cells)
        self.clock += (
            self.cost_model.packet_fixed_s
            + self.cost_model.work_time(INCORPORATE_CELL_UNITS * payload_cells)
        )
        self.messages_sent += 1
        self.services.send_packet(packet, self.clock)
