"""The paper's contribution: parallel LocusRoute in both paradigms.

:func:`run_message_passing` — the CBS-style message passing simulation
(per-processor views, delta arrays, explicit update strategies, wormhole
network).  :func:`run_shared_memory` — the Tango-style shared memory
simulation (one global cost array, virtual-time multiplexing, reference
traces, cache coherence traffic).
"""

from .dynamic import run_dynamic_assignment
from .live import (
    KillPlanEntry,
    LiveRunResult,
    run_live_message_passing,
    run_live_shared_memory,
)
from .mp_sim import default_assignment, run_message_passing
from .node import MPNode, NodePhase, NodeServices
from .results import NodeSummary, ParallelRunResult
from .sm_sim import DEFAULT_LINE_SIZE, run_shared_memory
from .timing import DEFAULT_COST_MODEL, CostModel

__all__ = [
    "run_message_passing",
    "run_shared_memory",
    "run_dynamic_assignment",
    "default_assignment",
    "ParallelRunResult",
    "NodeSummary",
    "CostModel",
    "DEFAULT_COST_MODEL",
    "DEFAULT_LINE_SIZE",
    "MPNode",
    "NodeServices",
    "NodePhase",
    "run_live_shared_memory",
    "run_live_message_passing",
    "LiveRunResult",
    "KillPlanEntry",
]
