"""The complete message passing LocusRoute simulation (CBS methodology).

:func:`run_message_passing` wires together every substrate: the static
wire assignment, one :class:`~repro.parallel.node.MPNode` per processor,
the contention-aware wormhole network, and a ground-truth cost array the
simulator maintains from commit/rip-up events.

Ground truth vs local views
---------------------------
Each node routes against its *local view*, which drifts between updates —
that drift is the entire quality story of the paper.  The simulator
separately maintains the true global cost array (the exact union of all
committed paths, updated in event order).  Quality metrics come from the
truth array: the final circuit height, and the occupancy factor as the sum
over wires of the true path cost at each wire's *final* commit.

Execution time is the makespan: the latest time any node finished its last
assigned wire (including the update sends that wire triggered).
"""

from __future__ import annotations

import math
import time
from typing import Dict, List, Optional

import numpy as np

from ..assign.base import Assignment
from ..assign.threshold import ThresholdCostAssigner
from ..circuits.model import Circuit
from ..errors import SimulationError
from ..events.sim import Simulator
from ..faults.injector import FaultInjector
from ..faults.plan import FaultPlan
from ..grid.cost_array import CostArray
from ..grid.regions import RegionMap, proc_grid_shape
from ..netsim.message import Delivery, Message
from ..netsim.topology import MeshTopology
from ..obs import telemetry as obs
from ..netsim.wormhole import WormholeNetwork
from ..route.path import RoutePath
from ..route.quality import QualityReport, circuit_height
from ..updates.packets import UpdatePacket
from ..updates.schedule import UpdateSchedule
from .node import MPNode, NodeServices
from .results import NodeSummary, ParallelRunResult
from .timing import DEFAULT_COST_MODEL, CostModel

__all__ = ["run_message_passing", "default_assignment"]

#: The static assignment the update-strategy tables use (Table 1/2 runs
#: share "the same static wire assignment"; ThresholdCost=1000 matches the
#: Table 4 row whose traffic and time coincide with Table 1's (2, 10) row).
DEFAULT_THRESHOLD_COST = 1000.0


def default_assignment(circuit: Circuit, regions: RegionMap) -> Assignment:
    """The ThresholdCost=1000 locality assignment used by default."""
    return ThresholdCostAssigner(circuit, regions, DEFAULT_THRESHOLD_COST).assign()


def run_message_passing(
    circuit: Circuit,
    schedule: UpdateSchedule,
    n_procs: int = 16,
    iterations: int = 3,
    assignment: Optional[Assignment] = None,
    cost_model: CostModel = DEFAULT_COST_MODEL,
    track_divergence: bool = False,
    check_invariants: bool = False,
    faults: Optional[FaultPlan] = None,
) -> ParallelRunResult:
    """Simulate the message passing LocusRoute on *circuit*.

    Parameters
    ----------
    circuit:
        The circuit to route.
    schedule:
        The update strategy (see :class:`~repro.updates.UpdateSchedule`).
    n_procs:
        Processor count; the mesh/region shape follows
        :func:`~repro.grid.regions.proc_grid_shape`.
    iterations:
        Rip-up-and-reroute iterations.
    assignment:
        Static wire assignment; defaults to ThresholdCost=1000 locality.
    cost_model:
        Simulated per-operation times.
    track_divergence:
        Measure *staleness* directly: at every commit, record the L1
        distance between the committing node's local view and the true
        global cost array.  Results land in ``meta["divergence"]`` (mean /
        max per-cell-sum distance and a per-node breakdown).  This is the
        mechanism behind every quality result in the paper — nodes route
        against views that have drifted from reality.
    check_invariants:
        Run the :mod:`repro.verify` checkers alongside the simulation:
        cost-array conservation at every commit and end of run, wormhole
        flit conservation / in-flight accounting (probed every
        ``PROBE_INTERVAL`` kernel events and closed out at drain), and
        end-of-run delta-replica convergence against the ground truth.
        The report lands in ``meta["verification"]``; its counters are
        flushed into telemetry.
    faults:
        Optional :class:`~repro.faults.FaultPlan`.  A
        :class:`~repro.faults.FaultInjector` is installed in the network
        and the plan's :class:`~repro.faults.RecoveryPolicy` arms each
        node's staleness watchdog.  Fault and recovery counters land in
        ``meta["faults"]``.  When the injected faults are *lossy*
        (dropped or duplicated packets), the delta-replica convergence
        check is waived — explicitly, as a ``replica-convergence-waived``
        counter in the verification report — because lost/doubled deltas
        make exact reconstruction impossible by construction; all other
        invariants (cost conservation, flit conservation on transmitted
        traffic) still hold and are still enforced.
    """
    wall0, cpu0 = time.perf_counter(), time.process_time()
    shape = proc_grid_shape(n_procs)
    regions = RegionMap(circuit.n_channels, circuit.n_grids, n_procs, shape)
    if assignment is None:
        assignment = default_assignment(circuit, regions)
    if assignment.n_procs != n_procs or assignment.n_wires != circuit.n_wires:
        raise SimulationError("assignment does not match circuit / processor count")

    sim = Simulator()
    nodes: List[MPNode] = []

    monitor = None
    net_monitor = None
    report = None
    if check_invariants:
        # Imported lazily: repro.verify's oracle imports this module.
        from ..verify.invariants import (
            PROBE_INTERVAL,
            CostConservationMonitor,
            NetworkInvariantMonitor,
        )
        from ..verify.violations import VerificationReport

        report = VerificationReport()

    def on_deliver(delivery: Delivery) -> None:
        if net_monitor is not None:
            net_monitor.on_delivery(delivery)
        packet: UpdatePacket = delivery.message.payload
        nodes[delivery.message.dst].deliver(packet, delivery.arrive_time)

    injector = FaultInjector(faults) if faults is not None else None
    topology = MeshTopology(n_procs, shape)
    network = WormholeNetwork(
        sim,
        topology,
        on_deliver,
        hop_time_s=cost_model.hop_time_s,
        process_time_s=cost_model.process_time_s,
        faults=injector,
    )

    # Ground truth state, maintained in event order.
    truth = CostArray(circuit.n_channels, circuit.n_grids)
    final_paths: Dict[int, RoutePath] = {}
    wire_prices: Dict[int, int] = {}

    if report is not None:
        monitor = CostConservationMonitor(report, truth, engine="message_passing")
        net_monitor = NetworkInvariantMonitor(report, network)
        sim.add_probe(net_monitor.probe, PROBE_INTERVAL)

    def send_packet(packet: UpdatePacket, inject_time: float) -> None:
        message = Message(
            src=packet.src,
            dst=packet.dst,
            length_bytes=packet.length_bytes,
            payload=packet,
        )
        sim.at(inject_time, lambda m=message, t=inject_time: network.send(m, t))

    def on_ripup(proc: int, wire_idx: int, path: RoutePath, time: float) -> None:
        truth.remove_path(path.flat_cells, strict=True)
        if monitor is not None:
            monitor.on_ripup(wire_idx, path, time)

    divergence_sum = np.zeros(n_procs, dtype=np.float64)
    divergence_max = np.zeros(n_procs, dtype=np.float64)
    divergence_n = np.zeros(n_procs, dtype=np.int64)

    def on_commit(proc: int, wire_idx: int, path: RoutePath, time: float) -> None:
        # Price the path against reality *before* adding the wire itself:
        # "the cost of the wire's path at the time it was chosen" (§3).
        wire_prices[wire_idx] = truth.path_cost(path.flat_cells)
        truth.apply_path(path.flat_cells)
        final_paths[wire_idx] = path
        if monitor is not None:
            monitor.on_commit(wire_idx, path, time)
        if track_divergence:
            # Decision-relevant staleness: the error of the node's view
            # over the cells of the route it just chose (both view and
            # truth already include this wire, so the difference is purely
            # un-propagated remote activity where it actually mattered).
            # A whole-array distance would instead be dominated by distant
            # regions the node never routes in — which the neighbour-only
            # SendLocData optimisation deliberately leaves stale.
            flat = path.flat_cells
            d = float(
                np.abs(
                    nodes[proc].view.data.reshape(-1)[flat]
                    - truth.data.reshape(-1)[flat]
                ).sum()
            )
            divergence_sum[proc] += d
            divergence_max[proc] = max(divergence_max[proc], d)
            divergence_n[proc] += 1

    def on_finished(proc: int, time: float) -> None:
        pass  # finish times are read off the nodes afterwards

    services = NodeServices(
        send_packet=send_packet,
        schedule=lambda t, action: sim.at(t, action),
        on_ripup=on_ripup,
        on_commit=on_commit,
        on_finished=on_finished,
        cancel=sim.cancel,
    )

    per_proc = assignment.per_proc_lists()
    for proc in range(n_procs):
        node = MPNode(
            proc=proc,
            circuit=circuit,
            regions=regions,
            schedule=schedule,
            wires=per_proc[proc],
            iterations=iterations,
            cost_model=cost_model,
            services=services,
            recovery=faults.recovery if faults is not None else None,
        )
        nodes.append(node)
    for node in nodes:
        node.start()

    sim.run()

    unfinished = [n.proc for n in nodes if not n.is_done]
    if unfinished:
        raise SimulationError(
            f"simulation drained with unfinished nodes {unfinished} "
            "(protocol deadlock — outstanding responses never arrived)"
        )
    if len(final_paths) != circuit.n_wires:
        raise SimulationError("not every wire was routed")

    exec_time = max(
        (n.finish_time_s for n in nodes if not math.isnan(n.finish_time_s)),
        default=0.0,
    )
    if report is not None:
        from ..verify.invariants import check_replica_convergence

        monitor.at_end(final_paths, exec_time)
        net_monitor.at_end(sim.now)
        if injector is not None and injector.stats.lossy:
            # Dropped / duplicated packets lose or double-count deltas, so
            # exact replica reconstruction is impossible by construction.
            # Waive the check *visibly* — the report records the waiver —
            # rather than letting it fail or silently skipping it.
            report.count("replica-convergence-waived", len(nodes))
        else:
            check_replica_convergence(report, nodes, truth, sim.now)
    quality = QualityReport(
        circuit_height=circuit_height(truth),
        occupancy_factor=int(sum(wire_prices.values())),
        total_wire_cells=truth.total_occupancy(),
    )
    summaries = [
        NodeSummary(
            proc=n.proc,
            wires_routed=n.qi,
            finish_time_s=n.finish_time_s,
            route_units=n.work.route_units,
            commit_units=n.work.commit_units,
            assemble_units=n.work.assemble_units,
            incorporate_units=n.work.incorporate_units,
            messages_sent=n.messages_sent,
            messages_received=n.messages_received,
            blocked_time_s=n.blocked_time_s,
        )
        for n in nodes
    ]
    meta = {
        "schedule": schedule.describe(),
        "assignment": assignment.method,
        "n_procs": n_procs,
        "iterations": iterations,
        "circuit": circuit.name,
    }
    if track_divergence and divergence_n.sum() > 0:
        per_proc = np.divide(
            divergence_sum,
            divergence_n,
            out=np.zeros_like(divergence_sum),
            where=divergence_n > 0,
        )
        meta["divergence"] = {
            "mean_l1": float(divergence_sum.sum() / divergence_n.sum()),
            "max_l1": float(divergence_max.max()),
            "per_proc_mean_l1": per_proc.tolist(),
        }
    if injector is not None:
        recovery_counters = {
            "watchdog_fires": sum(n.watchdog_fires for n in nodes),
            "retries_sent": sum(n.retries_sent for n in nodes),
            "requests_abandoned": sum(n.requests_abandoned for n in nodes),
            "duplicate_responses_ignored": sum(
                n.duplicate_responses_ignored for n in nodes
            ),
        }
        meta["faults"] = {
            "plan": faults.describe(),
            "seed": faults.seed,
            "injected": injector.stats.as_dict(),
            "recovery": recovery_counters,
        }
    if report is not None:
        from ..verify.violations import RunVerification

        meta["verification"] = report.as_dict()
        meta["verification_report"] = RunVerification(report, monitor.commit_times)
        report.flush_telemetry()
    obs.record_span(
        "sim.mp", time.perf_counter() - wall0, time.process_time() - cpu0
    )
    obs.incr("sim.mp.runs")
    obs.incr("sim.mp.messages_sent", network.stats.n_messages)
    obs.incr("sim.mp.bytes_sent", network.stats.total_bytes)
    if injector is not None:
        obs.incr("sim.mp.faults.send_attempts", injector.stats.send_attempts)
        obs.incr("sim.mp.faults.dropped", injector.stats.dropped)
        obs.incr("sim.mp.faults.duplicated", injector.stats.duplicated)
        obs.incr("sim.mp.faults.retries_sent", meta["faults"]["recovery"]["retries_sent"])
        obs.incr(
            "sim.mp.faults.requests_abandoned",
            meta["faults"]["recovery"]["requests_abandoned"],
        )
    return ParallelRunResult(
        paradigm="message_passing",
        quality=quality,
        exec_time_s=exec_time,
        paths=final_paths,
        wire_router=np.array(assignment.owner, copy=True),
        node_summaries=summaries,
        truth=truth,
        network=network.stats,
        meta=meta,
    )
