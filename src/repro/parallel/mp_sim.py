"""The complete message passing LocusRoute simulation (CBS methodology).

:func:`run_message_passing` wires together every substrate: the static
wire assignment, one :class:`~repro.parallel.node.MPNode` per processor,
the contention-aware wormhole network, and a ground-truth cost array the
simulator maintains from commit/rip-up events.

Ground truth vs local views
---------------------------
Each node routes against its *local view*, which drifts between updates —
that drift is the entire quality story of the paper.  The simulator
separately maintains the true global cost array (the exact union of all
committed paths, updated in event order).  Quality metrics come from the
truth array: the final circuit height, and the occupancy factor as the sum
over wires of the true path cost at each wire's *final* commit.

Execution time is the makespan: the latest time any node finished its last
assigned wire (including the update sends that wire triggered).
"""

from __future__ import annotations

import math
import time
from typing import Dict, List, Optional

import numpy as np

from ..assign.base import Assignment
from ..assign.threshold import ThresholdCostAssigner
from ..circuits.model import Circuit
from ..errors import SimulationError
from ..events.sim import Simulator
from ..faults.injector import FaultInjector
from ..faults.plan import FaultPlan
from ..grid.cost_array import CostArray
from ..grid.ownership import OwnershipMap
from ..grid.regions import RegionMap, proc_grid_shape
from ..netsim.message import Delivery, Message
from ..netsim.topology import MeshTopology
from ..obs import telemetry as obs
from ..netsim.wormhole import WormholeNetwork
from ..route.path import RoutePath
from ..route.quality import QualityReport, circuit_height
from ..updates.packets import UpdatePacket
from ..updates.schedule import UpdateSchedule
from .node import MPNode, NodeServices
from .results import NodeSummary, ParallelRunResult
from .timing import DEFAULT_COST_MODEL, CostModel

__all__ = ["run_message_passing", "default_assignment"]

#: The static assignment the update-strategy tables use (Table 1/2 runs
#: share "the same static wire assignment"; ThresholdCost=1000 matches the
#: Table 4 row whose traffic and time coincide with Table 1's (2, 10) row).
DEFAULT_THRESHOLD_COST = 1000.0


def default_assignment(circuit: Circuit, regions: RegionMap) -> Assignment:
    """The ThresholdCost=1000 locality assignment used by default."""
    return ThresholdCostAssigner(circuit, regions, DEFAULT_THRESHOLD_COST).assign()


def run_message_passing(
    circuit: Circuit,
    schedule: UpdateSchedule,
    n_procs: int = 16,
    iterations: int = 3,
    assignment: Optional[Assignment] = None,
    cost_model: CostModel = DEFAULT_COST_MODEL,
    track_divergence: bool = False,
    check_invariants: bool = False,
    faults: Optional[FaultPlan] = None,
) -> ParallelRunResult:
    """Simulate the message passing LocusRoute on *circuit*.

    Parameters
    ----------
    circuit:
        The circuit to route.
    schedule:
        The update strategy (see :class:`~repro.updates.UpdateSchedule`).
    n_procs:
        Processor count; the mesh/region shape follows
        :func:`~repro.grid.regions.proc_grid_shape`.
    iterations:
        Rip-up-and-reroute iterations.
    assignment:
        Static wire assignment; defaults to ThresholdCost=1000 locality.
    cost_model:
        Simulated per-operation times.
    track_divergence:
        Measure *staleness* directly: at every commit, record the L1
        distance between the committing node's local view and the true
        global cost array.  Results land in ``meta["divergence"]`` (mean /
        max per-cell-sum distance and a per-node breakdown).  This is the
        mechanism behind every quality result in the paper — nodes route
        against views that have drifted from reality.
    check_invariants:
        Run the :mod:`repro.verify` checkers alongside the simulation:
        cost-array conservation at every commit and end of run, wormhole
        flit conservation / in-flight accounting (probed every
        ``PROBE_INTERVAL`` kernel events and closed out at drain), and
        end-of-run delta-replica convergence against the ground truth.
        The report lands in ``meta["verification"]``; its counters are
        flushed into telemetry.
    faults:
        Optional :class:`~repro.faults.FaultPlan`.  A
        :class:`~repro.faults.FaultInjector` is installed in the network
        and the plan's :class:`~repro.faults.RecoveryPolicy` arms each
        node's staleness watchdog.  Fault and recovery counters land in
        ``meta["faults"]``.  When the injected faults are *lossy*
        (dropped or duplicated packets), the delta-replica convergence
        check is waived — explicitly, as a ``replica-convergence-waived``
        counter in the verification report — because lost/doubled deltas
        make exact reconstruction impossible by construction; all other
        invariants (cost conservation, flit conservation on transmitted
        traffic) still hold and are still enforced.

        A plan with ``node_crashes`` fail-stops whole processors mid-run
        (requires a ``recovery`` policy): survivors detect each death via
        watchdog suspicion, heartbeat probes, and gossiped death notices,
        re-own the orphaned regions over a consistent-hash ring
        (:class:`~repro.grid.OwnershipMap`), adopt the dead nodes'
        unfinished wires, and the run completes with every wire routed.
        Crash details land in ``meta["faults"]["crash"]`` and, under
        ``check_invariants``, the post-recovery ownership maps are
        verified for totality and agreement.
    """
    wall0, cpu0 = time.perf_counter(), time.process_time()
    shape = proc_grid_shape(n_procs)
    regions = RegionMap(circuit.n_channels, circuit.n_grids, n_procs, shape)
    if assignment is None:
        assignment = default_assignment(circuit, regions)
    if assignment.n_procs != n_procs or assignment.n_wires != circuit.n_wires:
        raise SimulationError("assignment does not match circuit / processor count")

    crash_plan = tuple(faults.node_crashes) if faults is not None else ()
    if crash_plan:
        if faults.recovery is None:
            raise SimulationError(
                "node crashes need a RecoveryPolicy (failure detection rides "
                "on the staleness watchdog)"
            )
        bad = [c.proc for c in crash_plan if not (0 <= c.proc < n_procs)]
        if bad:
            raise SimulationError(f"crash plan names unknown processors {bad}")
        if len(crash_plan) >= n_procs:
            raise SimulationError("at least one processor must survive the crash plan")

    sim = Simulator()
    nodes: List[MPNode] = []

    monitor = None
    net_monitor = None
    report = None
    if check_invariants:
        # Imported lazily: repro.verify's oracle imports this module.
        from ..verify.invariants import (
            PROBE_INTERVAL,
            CostConservationMonitor,
            NetworkInvariantMonitor,
        )
        from ..verify.violations import VerificationReport

        report = VerificationReport()

    def on_deliver(delivery: Delivery) -> None:
        if net_monitor is not None:
            net_monitor.on_delivery(delivery)
        if injector is not None and injector.is_crashed(
            delivery.message.dst, delivery.arrive_time
        ):
            # Fail-stop: messages in flight to a dead node are discarded
            # (counted separately from lossy-fault drops so the injected
            # == attempts - dropped + duplicated reconciliation holds).
            injector.count_crash_delivery_drop()
            return
        packet: UpdatePacket = delivery.message.payload
        nodes[delivery.message.dst].deliver(packet, delivery.arrive_time)

    injector = FaultInjector(faults) if faults is not None else None
    topology = MeshTopology(n_procs, shape)
    network = WormholeNetwork(
        sim,
        topology,
        on_deliver,
        hop_time_s=cost_model.hop_time_s,
        process_time_s=cost_model.process_time_s,
        faults=injector,
    )

    # Ground truth state, maintained in event order.
    truth = CostArray(circuit.n_channels, circuit.n_grids)
    final_paths: Dict[int, RoutePath] = {}
    wire_prices: Dict[int, int] = {}

    if report is not None:
        monitor = CostConservationMonitor(report, truth, engine="message_passing")
        net_monitor = NetworkInvariantMonitor(report, network)
        sim.add_probe(net_monitor.probe, PROBE_INTERVAL)

    def send_packet(packet: UpdatePacket, inject_time: float) -> None:
        if injector is not None and injector.is_crashed(packet.src, inject_time):
            # The node's virtual clock can run ahead of simulated time, so
            # a wire's update pushes may carry inject times past the crash
            # instant: fail-stop means those sends never happen.
            injector.count_crash_send_drop()
            return
        message = Message(
            src=packet.src,
            dst=packet.dst,
            length_bytes=packet.length_bytes,
            payload=packet,
        )
        sim.at(inject_time, lambda m=message, t=inject_time: network.send(m, t))

    #: wires ripped up but not yet recommitted — mid-flight at a crash,
    #: these must be adopted even though final_paths still lists them.
    ripped_pending: set = set()

    def on_ripup(proc: int, wire_idx: int, path: RoutePath, time: float) -> None:
        truth.remove_path(path.flat_cells, strict=True)
        ripped_pending.add(wire_idx)
        if monitor is not None:
            monitor.on_ripup(wire_idx, path, time)

    divergence_sum = np.zeros(n_procs, dtype=np.float64)
    divergence_max = np.zeros(n_procs, dtype=np.float64)
    divergence_n = np.zeros(n_procs, dtype=np.int64)

    def on_commit(proc: int, wire_idx: int, path: RoutePath, time: float) -> None:
        # Price the path against reality *before* adding the wire itself:
        # "the cost of the wire's path at the time it was chosen" (§3).
        wire_prices[wire_idx] = truth.path_cost(path.flat_cells)
        truth.apply_path(path.flat_cells)
        final_paths[wire_idx] = path
        ripped_pending.discard(wire_idx)
        if monitor is not None:
            monitor.on_commit(wire_idx, path, time)
        if track_divergence:
            # Decision-relevant staleness: the error of the node's view
            # over the cells of the route it just chose (both view and
            # truth already include this wire, so the difference is purely
            # un-propagated remote activity where it actually mattered).
            # A whole-array distance would instead be dominated by distant
            # regions the node never routes in — which the neighbour-only
            # SendLocData optimisation deliberately leaves stale.
            flat = path.flat_cells
            d = float(
                np.abs(
                    nodes[proc].view.data.reshape(-1)[flat]
                    - truth.data.reshape(-1)[flat]
                ).sum()
            )
            divergence_sum[proc] += d
            divergence_max[proc] = max(divergence_max[proc], d)
            divergence_n[proc] += 1

    def on_finished(proc: int, time: float) -> None:
        pass  # finish times are read off the nodes afterwards

    # ------------------------------------------------------------------
    # crash recovery: membership, orphaned-wire adoption, audit sweep
    # ------------------------------------------------------------------
    #: the simulator's own view of confirmed deaths (== any declarer's)
    membership = OwnershipMap(regions, seed=faults.seed) if crash_plan else None
    confirmed_dead: set = set()
    recovery_latency: List[List[float]] = []
    #: wire -> node currently responsible for (re)routing it
    responsible = list(assignment.owner) if crash_plan else None

    def on_node_dead(reporter: int, dead: int, t: float) -> None:
        """A declarer confirmed *dead*; re-assign its orphaned wires.

        Idempotent across multiple declarers.  Orphans are the wires the
        dead node was responsible for that are not durably routed: never
        committed, or ripped up mid-flight (``ripped_pending``).  Each is
        deterministically assigned via the hash ring; a chosen adopter
        that is itself crashed-but-unconfirmed simply keeps the wires on
        its ledger until its own death re-orphans them.
        """
        if dead in confirmed_dead:
            return
        confirmed_dead.add(dead)
        membership.mark_dead(dead)
        crash_at = injector.crash_time(dead)
        if crash_at is not None:
            recovery_latency.append([dead, t - crash_at])
        orphans = [
            w
            for w in range(circuit.n_wires)
            if responsible[w] == dead
            and (w not in final_paths or w in ripped_pending)
        ]
        by_adopter: Dict[int, List[int]] = {}
        for w in orphans:
            adopter = membership.wire_owner(w)
            responsible[w] = adopter
            by_adopter.setdefault(adopter, []).append(w)
        for adopter in sorted(by_adopter):
            nodes[adopter].adopt_wires(by_adopter[adopter], t)

    # Audit sweep: the harness's stand-in for an external failure
    # detector.  Suspicion normally arises from abandoned requests, but a
    # node that crashes while every survivor is idle (or that nobody was
    # talking to) would otherwise go undetected and its orphans would
    # never be adopted.  Started at the first crash, the sweep has the
    # lowest live processor probe every unconfirmed planned crash, and
    # reschedules only while crashes remain unconfirmed and wires remain
    # unrouted — so the event queue always drains.
    audit_active = [False]
    audit_interval = (
        faults.recovery.watchdog_timeout_s * 4.0 if crash_plan else 0.0
    )

    def audit(t: float) -> None:
        unconfirmed = [
            c.proc
            for c in crash_plan
            if c.proc not in confirmed_dead and c.at_s <= t
        ]
        # Durably routed means committed *and* not ripped up mid-flight:
        # a crashed node may have removed a wire from the truth array
        # right before dying, leaving a stale final_paths entry that only
        # adoption can repair — keep auditing until it has been.
        complete = len(final_paths) >= circuit.n_wires and not ripped_pending
        if not unconfirmed or complete:
            audit_active[0] = False
            return
        live = [
            n.proc for n in nodes if not n.crashed and membership.is_live(n.proc)
        ]
        if live:
            reporter = min(live)
            for dead in unconfirmed:
                nodes[reporter].probe_peer(dead, t)
        nxt = t + audit_interval
        sim.at(nxt, lambda tt=nxt: audit(tt))

    def do_crash(c) -> None:
        nodes[c.proc].crash(c.at_s)
        if not audit_active[0]:
            audit_active[0] = True
            nxt = c.at_s + audit_interval
            sim.at(nxt, lambda tt=nxt: audit(tt))

    for c in crash_plan:
        sim.at(c.at_s, lambda cc=c: do_crash(cc))

    services = NodeServices(
        send_packet=send_packet,
        schedule=lambda t, action: sim.at(t, action),
        on_ripup=on_ripup,
        on_commit=on_commit,
        on_finished=on_finished,
        cancel=sim.cancel,
        on_node_dead=on_node_dead if crash_plan else (lambda r, d, t: None),
    )

    per_proc = assignment.per_proc_lists()
    for proc in range(n_procs):
        node = MPNode(
            proc=proc,
            circuit=circuit,
            regions=regions,
            schedule=schedule,
            wires=per_proc[proc],
            iterations=iterations,
            cost_model=cost_model,
            services=services,
            recovery=faults.recovery if faults is not None else None,
            ownership=OwnershipMap(regions, seed=faults.seed) if crash_plan else None,
            fault_seed=faults.seed if faults is not None else 0,
        )
        nodes.append(node)
    for node in nodes:
        node.start()

    sim.run()

    unfinished = [n.proc for n in nodes if not n.is_done and not n.crashed]
    if unfinished:
        raise SimulationError(
            f"simulation drained with unfinished nodes {unfinished} "
            "(protocol deadlock — outstanding responses never arrived)"
        )
    if len(final_paths) != circuit.n_wires:
        raise SimulationError("not every wire was routed")
    if ripped_pending:
        raise SimulationError(
            f"wires {sorted(ripped_pending)} were ripped up but never "
            "rerouted (their rip-up survived a crash; adoption failed)"
        )

    exec_time = max(
        (n.finish_time_s for n in nodes if not math.isnan(n.finish_time_s)),
        default=0.0,
    )
    if report is not None:
        from ..verify.invariants import check_replica_convergence

        monitor.at_end(final_paths, exec_time)
        net_monitor.at_end(sim.now)
        if injector is not None and (injector.stats.lossy or crash_plan):
            # Dropped / duplicated packets lose or double-count deltas —
            # and a crashed node takes its unsent deltas down with it —
            # so exact replica reconstruction is impossible by
            # construction.  Waive the check *visibly* — the report
            # records the waiver — rather than letting it fail or
            # silently skipping it.
            report.count("replica-convergence-waived", len(nodes))
        else:
            check_replica_convergence(report, nodes, truth, sim.now)
        if crash_plan:
            from ..verify.invariants import check_ownership_totality

            check_ownership_totality(
                report, nodes, regions, confirmed_dead, sim.now
            )
    quality = QualityReport(
        circuit_height=circuit_height(truth),
        occupancy_factor=int(sum(wire_prices.values())),
        total_wire_cells=truth.total_occupancy(),
    )
    summaries = [
        NodeSummary(
            proc=n.proc,
            wires_routed=n.qi,
            finish_time_s=n.finish_time_s,
            route_units=n.work.route_units,
            commit_units=n.work.commit_units,
            assemble_units=n.work.assemble_units,
            incorporate_units=n.work.incorporate_units,
            messages_sent=n.messages_sent,
            messages_received=n.messages_received,
            blocked_time_s=n.blocked_time_s,
        )
        for n in nodes
    ]
    meta = {
        "schedule": schedule.describe(),
        "assignment": assignment.method,
        "n_procs": n_procs,
        "iterations": iterations,
        "circuit": circuit.name,
    }
    if track_divergence and divergence_n.sum() > 0:
        per_proc = np.divide(
            divergence_sum,
            divergence_n,
            out=np.zeros_like(divergence_sum),
            where=divergence_n > 0,
        )
        meta["divergence"] = {
            "mean_l1": float(divergence_sum.sum() / divergence_n.sum()),
            "max_l1": float(divergence_max.max()),
            "per_proc_mean_l1": per_proc.tolist(),
        }
    if injector is not None:
        recovery_counters = {
            "watchdog_fires": sum(n.watchdog_fires for n in nodes),
            "retries_sent": sum(n.retries_sent for n in nodes),
            "requests_abandoned": sum(n.requests_abandoned for n in nodes),
            "duplicate_responses_ignored": sum(
                n.duplicate_responses_ignored for n in nodes
            ),
            "probes_sent": sum(n.probes_sent for n in nodes),
            "deaths_confirmed": sum(n.deaths_confirmed for n in nodes),
            "death_notices_received": sum(
                n.death_notices_received for n in nodes
            ),
            "misdirected_requests": sum(n.misdirected_requests for n in nodes),
        }
        meta["faults"] = {
            "plan": faults.describe(),
            "seed": faults.seed,
            "injected": injector.stats.as_dict(),
            "recovery": recovery_counters,
        }
        if crash_plan:
            meta["faults"]["crash"] = {
                "planned": [[int(c.proc), float(c.at_s)] for c in crash_plan],
                "confirmed": sorted(int(p) for p in confirmed_dead),
                "recovery_latency_s": [
                    [int(d), float(lat)] for d, lat in recovery_latency
                ],
                "regions_reassigned": sum(n.regions_adopted for n in nodes),
                "wires_adopted": sum(n.wires_adopted for n in nodes),
            }
    if report is not None:
        from ..verify.violations import RunVerification

        meta["verification"] = report.as_dict()
        meta["verification_report"] = RunVerification(report, monitor.commit_times)
        report.flush_telemetry()
    obs.record_span(
        "sim.mp", time.perf_counter() - wall0, time.process_time() - cpu0
    )
    obs.incr("sim.mp.runs")
    obs.incr("sim.mp.messages_sent", network.stats.n_messages)
    obs.incr("sim.mp.bytes_sent", network.stats.total_bytes)
    if injector is not None:
        obs.incr("sim.mp.faults.send_attempts", injector.stats.send_attempts)
        obs.incr("sim.mp.faults.dropped", injector.stats.dropped)
        obs.incr("sim.mp.faults.duplicated", injector.stats.duplicated)
        obs.incr("sim.mp.faults.retries_sent", meta["faults"]["recovery"]["retries_sent"])
        obs.incr(
            "sim.mp.faults.requests_abandoned",
            meta["faults"]["recovery"]["requests_abandoned"],
        )
    return ParallelRunResult(
        paradigm="message_passing",
        quality=quality,
        exec_time_s=exec_time,
        paths=final_paths,
        wire_router=np.array(assignment.owner, copy=True),
        node_summaries=summaries,
        truth=truth,
        network=network.stats,
        meta=meta,
    )
