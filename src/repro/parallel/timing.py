"""Execution-time cost model for the simulated machines.

CBS simulated Ametek Series 2010 nodes (MC68020 class); the Tango runs
executed on an Encore Multimax whose NS32032 processors are "about five
times less powerful" (paper §2.1 footnote).  This module converts the
machine-independent work units counted by
:class:`~repro.route.workmodel.WorkCounter` into simulated seconds, plus
the fixed per-packet software overheads.

Calibration
-----------
The single free constant is :attr:`CostModel.time_per_unit_s` — seconds
per candidate-cell inspection on an Ametek-class node.  At 8 µs/unit
(≈ 25 MC68020 instructions at ~3 MIPS for the loop control, indexing,
bounds checks and accumulation of the original cell-by-cell scan), the
sequential bnrE-like routing run costs ≈ 17 simulated seconds, which puts 16-processor message
passing runs in the paper's 1.1-1.9 s band and the 2-processor run near
the paper's 8.4 s.  All *relative* effects (update-frequency dependence,
blocking penalty, load-imbalance penalty, speedup shape) are independent
of this constant.

Network constants default to the paper's CBS settings and live in
:mod:`repro.netsim.wormhole`.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..netsim.wormhole import HOP_TIME_S, PROCESS_TIME_S
from ..route.workmodel import WorkCounter

__all__ = ["CostModel", "DEFAULT_COST_MODEL"]


@dataclass(frozen=True)
class CostModel:
    """Per-operation simulated times.

    Attributes
    ----------
    time_per_unit_s:
        Seconds per work unit (candidate-cell inspection equivalent).
    packet_fixed_s:
        Fixed software overhead per packet assembled or disassembled
        (buffer management, dispatch) — paid in addition to the per-cell
        marshal/incorporate work and the network's ProcessTime.
    hop_time_s, process_time_s:
        The CBS network constants (exposed here for convenience).
    sm_slowdown:
        Multimax-vs-Ametek processor speed ratio.  "To simulate the
        Ametek's MC68020 processing nodes, all times from the Encore
        Multimax clock were divided by five" — equivalently, shared memory
        execution times are ``sm_slowdown`` times the same work on an
        Ametek node.
    """

    time_per_unit_s: float = 8.0e-6
    packet_fixed_s: float = 20.0e-6
    hop_time_s: float = HOP_TIME_S
    process_time_s: float = PROCESS_TIME_S
    sm_slowdown: float = 5.0
    #: Context-switch cost when a message interrupts wire routing (the
    #: §4.2 interrupt-driven reception model; only used when the schedule
    #: enables ``interrupt_reception``).
    interrupt_overhead_s: float = 15.0e-6
    #: Hierarchical/NUMA shared memory model (§5.3.2): a reference to a
    #: cost-array cell outside the processor's own region costs this
    #: multiple of a local reference.  1.0 (default) is the paper's flat
    #: bus-based Multimax; the paper observes that "in hierarchical shared
    #: memory architectures ... a local reference can be more than an
    #: order of magnitude faster", so ~10 models that future machine.
    numa_remote_factor: float = 1.0

    def work_time(self, units: float) -> float:
        """Simulated seconds for *units* of routing/commit/packet work."""
        return units * self.time_per_unit_s

    def counter_time(self, counter: WorkCounter) -> float:
        """Total simulated compute seconds of a node's work counter."""
        return self.work_time(counter.total_units)


#: The calibrated model used by every experiment unless overridden.
DEFAULT_COST_MODEL = CostModel()
