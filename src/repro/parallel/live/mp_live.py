"""The live message-passing LocusRoute: one real process per node.

This is the real-core twin of
:func:`repro.parallel.mp_sim.run_message_passing` (which models the
design through the CBS methodology and a wormhole network simulator).
Here the paper's §4 architecture actually executes:

- one OS process per node, each holding a **private view** of the whole
  cost array plus the §4.1 delta array of its unsent changes; there is
  no shared memory between nodes;
- wires are statically assigned (the ThresholdCost=1000 locality policy,
  like the simulator's default);
- real :class:`~repro.updates.packets.UpdatePacket` objects travel over
  ``multiprocessing.Pipe`` connections — a full point-to-point mesh —
  on the same :class:`~repro.updates.schedule.UpdateSchedule` cadence
  the simulator uses: SendRmtData pushes deltas to region owners,
  SendLocData pushes the owner's absolute region to its mesh
  neighbours, and ReqRmtData requests remote regions with optional
  blocking;
- blocking requests run under a real-time watchdog reusing the PR 3/6
  :class:`~repro.faults.plan.RecoveryPolicy` shape: wait with a timeout,
  retry with exponential backoff, and finally *abandon* the request and
  route with stale data rather than hang behind a straggler.

Ground truth and quality: node views legitimately diverge (that is the
design's quality-degradation mechanism), so every node also writes rip-up
and commit records into a durable commit log, stamped with
``time.monotonic_ns()`` (system-wide monotonic on Linux).  Replaying all
logs in timestamp order rebuilds the canonical final array — the
equivalent of the simulator's event-ordered truth array — from which
circuit height and occupancy are computed, and which must equal the union
of the final committed paths exactly.
"""

from __future__ import annotations

import os
import tempfile
import time
from dataclasses import dataclass
from multiprocessing.connection import wait as conn_wait
from typing import Dict, List, Optional, Tuple

import numpy as np

from ...assign.base import Assignment
from ...circuits.model import Circuit
from ...errors import SimulationError
from ...faults.plan import RecoveryPolicy
from ...grid.bbox import BBox
from ...grid.cost_array import CostArray
from ...grid.delta import DeltaArray
from ...grid.regions import RegionMap
from ...kernels import active_kernels, set_kernels
from ...obs import telemetry as obs
from ...route.path import RoutePath
from ...route.quality import QualityReport, circuit_height
from ...route.twobend import route_wire
from ...updates.packets import build_loc_data, build_request, build_response, build_rmt_data
from ...updates.schedule import UpdateSchedule
from ...updates.types import UpdateKind
from .commitlog import COMMIT, RIPUP, CommitLogWriter, read_logs, replay_records
from .results import LiveRunResult, LiveWorkerStats

__all__ = ["run_live_message_passing", "DEFAULT_LIVE_POLICY"]

#: Watchdog for blocking requests over real pipes: the simulator's 10 ms
#: virtual-time timeout is far too twitchy for a loaded host, so the live
#: router waits 250 ms, retries twice with 2x backoff, then abandons.
DEFAULT_LIVE_POLICY = RecoveryPolicy(
    watchdog_timeout_s=0.25, backoff_factor=2.0, max_retries=2
)


@dataclass(frozen=True)
class _NodeConfig:
    """Everything one node needs, picklable for the spawn start method."""

    circuit: Circuit
    node: int
    n_procs: int
    wires: Tuple[int, ...]
    schedule: UpdateSchedule
    policy: RecoveryPolicy
    kernel_mode: str
    log_path: str


def _mp_node(cfg: _NodeConfig, control, peer_conns: Dict[int, object]) -> None:
    """Node process body (module-level: picklable under spawn)."""
    set_kernels(cfg.kernel_mode)
    circuit = cfg.circuit
    me = cfg.node
    regions = RegionMap(circuit.n_channels, circuit.n_grids, cfg.n_procs)
    my_region = regions.region(me)
    neighbors = regions.neighbors(me)
    view = CostArray(circuit.n_channels, circuit.n_grids)
    delta = DeltaArray(circuit.n_channels, circuit.n_grids)
    log = CommitLogWriter(cfg.log_path, me)
    sched = cfg.schedule
    policy = cfg.policy
    my_paths: Dict[int, RoutePath] = {}
    stats = {
        "grabs": 0,
        "commits": 0,
        "ripups": 0,
        "cells_written": 0,
        "messages_sent": 0,
        "messages_received": 0,
        "bytes_sent": 0,
        "bytes_received": 0,
        "requests_sent": 0,
        "requests_serviced": 0,
        "retries_sent": 0,
        "requests_abandoned": 0,
        "late_responses": 0,
        "blocked_time_s": 0.0,
    }
    #: outstanding blocking req_id -> owner processor
    pending: Dict[int, int] = {}
    next_req_id = 0

    def send(dst: int, pkt) -> None:
        peer_conns[dst].send(pkt)
        stats["messages_sent"] += 1
        stats["bytes_sent"] += pkt.length_bytes

    def reapply_pending(bbox) -> None:
        """Re-add our unsent deltas after an absolute overwrite.

        A SendLocData / RspRmtData block reflects the owner's knowledge,
        which cannot include changes we have not pushed yet; without the
        re-add our own recent commits would vanish from our view.
        """
        ours = delta.extract(bbox)
        if ours.any():
            view.accumulate(bbox, ours)

    def handle_packet(pkt) -> None:
        stats["messages_received"] += 1
        stats["bytes_received"] += pkt.length_bytes
        if pkt.kind is UpdateKind.SEND_RMT_DATA:
            # A remote's deltas inside our owned region: fold into both
            # the view and our delta array, so the next SendLocData push
            # propagates them (paper §4.3.2).
            view.accumulate(pkt.bbox, pkt.values)
            delta.accumulate(pkt.bbox, pkt.values)
        elif pkt.kind is UpdateKind.SEND_LOC_DATA:
            view.replace(pkt.bbox, pkt.values)
            reapply_pending(pkt.bbox)
        elif pkt.kind is UpdateKind.REQ_RMT_DATA:
            stats["requests_serviced"] += 1
            send(pkt.src, build_response(pkt, view.extract(pkt.bbox)))
        elif pkt.kind is UpdateKind.RSP_RMT_DATA:
            if sched.blocking and pkt.req_id is not None and pkt.req_id not in pending:
                # Abandoned-then-answered: apply anyway (idempotent
                # absolute overwrite), count it.  Non-blocking requests
                # never wait, so their responses are on time by design.
                stats["late_responses"] += 1
            pending.pop(pkt.req_id, None)
            view.replace(pkt.bbox, pkt.values)
            reapply_pending(pkt.bbox)
        # Other kinds (ReqLocData and control traffic) are not scheduled
        # by the live router; silently ignoring them keeps the node
        # robust to protocol evolution.

    def drain(timeout_s: float = 0.0) -> None:
        """Service every deliverable peer packet (bounded wait)."""
        conns = list(peer_conns.values())
        ready = conn_wait(conns, timeout=timeout_s) if conns else []
        for conn in ready:
            while conn.poll():
                handle_packet(conn.recv())

    def request_regions(wire_bbox) -> None:
        """Fire ReqRmtData at every foreign owner the wire touches."""
        nonlocal next_req_id
        owners = [p for p in regions.regions_touched(wire_bbox) if p != me]
        if not owners:
            return
        sent: Dict[int, Tuple[int, object]] = {}
        for owner in owners:
            box = wire_bbox.intersect(regions.region(owner))
            if box is None:
                continue
            req_id = next_req_id = next_req_id + 1
            pkt = build_request(
                UpdateKind.REQ_RMT_DATA, me, owner, box, owner, req_id
            )
            send(owner, pkt)
            stats["requests_sent"] += 1
            if sched.blocking:
                pending[req_id] = owner
                sent[req_id] = (owner, box)
        if not sched.blocking or not pending:
            return
        # Real-time watchdog (PR 3/6 policy shape): wait, retry with
        # backoff, abandon.  Abandoning routes with stale data instead of
        # hanging the node behind a straggler.
        t0 = time.perf_counter()
        budget = policy.watchdog_timeout_s
        retries = 0
        my_ids = set(sent)
        while my_ids & set(pending):
            deadline = time.monotonic() + budget
            while (my_ids & set(pending)) and time.monotonic() < deadline:
                drain(timeout_s=0.005)
            still = my_ids & set(pending)
            if not still:
                break
            if retries >= policy.max_retries:
                for req_id in still:
                    pending.pop(req_id, None)
                stats["requests_abandoned"] += len(still)
                break
            retries += 1
            stats["retries_sent"] += len(still)
            for req_id in list(still):
                owner, box = sent[req_id]
                new_id = next_req_id = next_req_id + 1
                pending.pop(req_id, None)
                pending[new_id] = owner
                sent[new_id] = (owner, box)
                my_ids.discard(req_id)
                my_ids.add(new_id)
                send(
                    owner,
                    build_request(
                        UpdateKind.REQ_RMT_DATA, me, owner, box, owner, new_id
                    ),
                )
            budget *= policy.backoff_factor
        stats["blocked_time_s"] += time.perf_counter() - t0

    def push_rmt() -> None:
        """SendRmtData: push pending deltas to each foreign region owner."""
        for p in range(cfg.n_procs):
            if p == me:
                continue
            pkt = build_rmt_data(me, p, delta, regions.region(p))
            if pkt is not None:
                send(p, pkt)
                delta.clear_region(regions.region(p))

    def push_loc() -> None:
        """SendLocData: push our absolute region to the mesh neighbours."""
        pkt = None
        for nbr in neighbors:
            pkt = build_loc_data(me, nbr, view, delta, my_region)
            if pkt is None:
                return
            send(nbr, pkt)
        if pkt is not None:
            delta.clear_region(my_region)

    def route_iteration(iteration: int) -> None:
        wires_done = 0
        for wire_idx in cfg.wires:
            drain(0.0)
            stats["grabs"] += 1
            wire = circuit.wire(wire_idx)
            old = my_paths.get(wire_idx)
            if old is not None:
                # strict=False: the local view is only advisory — an
                # absolute overwrite may have clipped our own path's
                # counts, which is exactly the divergence the paper
                # tolerates.  The durable log keeps exact truth.
                view.remove_path(old.flat_cells, strict=False)
                delta.record_path(old.flat_cells, -1)
                log.append(
                    RIPUP, iteration, wire_idx, time.monotonic_ns(), old.flat_cells
                )
                stats["ripups"] += 1
                stats["cells_written"] += old.n_cells
            if (
                sched.req_rmt_every is not None
                and wires_done % sched.req_rmt_every == 0
            ):
                c_lo, x_lo, c_hi, x_hi = wire.bounding_box
                request_regions(BBox(c_lo, x_lo, c_hi, x_hi))
            result = route_wire(view, wire, tie_break=iteration % 2)
            cells = result.path.flat_cells
            view.apply_path(cells)
            delta.record_path(cells, 1)
            log.append(COMMIT, iteration, wire_idx, time.monotonic_ns(), cells)
            my_paths[wire_idx] = result.path
            stats["commits"] += 1
            stats["cells_written"] += int(cells.size)
            wires_done += 1
            if (
                sched.send_rmt_every is not None
                and wires_done % sched.send_rmt_every == 0
            ):
                push_rmt()
            if (
                sched.send_loc_every is not None
                and wires_done % sched.send_loc_every == 0
            ):
                push_loc()
        # End-of-iteration flush so the barrier starts the next iteration
        # from reasonably converged views.
        if sched.send_rmt_every is not None:
            push_rmt()
        if sched.send_loc_every is not None:
            push_loc()
        drain(0.0)

    try:
        control.send(("ready", me, 0))
        while True:
            # Park at the barrier, but keep answering peer requests —
            # a blocking requester must never deadlock on a parked node.
            waitables = [control] + list(peer_conns.values())
            msg = None
            while msg is None:
                for obj in conn_wait(waitables, timeout=0.25):
                    if obj is control:
                        msg = control.recv()
                        break
                    while obj.poll():
                        handle_packet(obj.recv())
            if msg[0] == "stop":
                control.send(("bye", dict(stats), view.data))
                break
            route_iteration(msg[1])
            control.send(("idle", msg[1], dict(stats)))
    finally:
        log.close()


def run_live_message_passing(
    circuit: Circuit,
    schedule: Optional[UpdateSchedule] = None,
    n_procs: int = 2,
    iterations: int = 3,
    assignment: Optional[Assignment] = None,
    policy: RecoveryPolicy = DEFAULT_LIVE_POLICY,
    kernel_mode: Optional[str] = None,
    start_method: Optional[str] = None,
    timeout_s: float = 120.0,
    keep_logs_dir: Optional[str] = None,
) -> LiveRunResult:
    """Route *circuit* with one real process per message-passing node.

    Parameters mirror the simulator where they overlap; ``schedule``
    defaults to the sender-initiated ``SRD=1 SLD=1`` push schedule, and
    ``assignment`` to the ThresholdCost=1000 locality policy.
    ``req_loc_every`` schedules are not supported live.  ``timeout_s``
    bounds the whole run; a node process dying (they are never killed on
    purpose — crash stress lives in the shared-memory twin) aborts the
    run with :class:`~repro.errors.SimulationError`.
    """
    wall0, cpu0 = time.perf_counter(), time.process_time()
    if n_procs < 1:
        raise SimulationError("need at least one node process")
    if iterations < 1:
        raise SimulationError("need at least one iteration")
    if schedule is None:
        schedule = UpdateSchedule.sender_initiated(1, 1)
    if schedule.req_loc_every is not None:
        raise SimulationError("ReqLocData schedules are not supported live")
    kernel_mode = kernel_mode or active_kernels()

    from ...harness.pool import mp_context
    from ..mp_sim import default_assignment

    ctx = mp_context(start_method)
    regions = RegionMap(circuit.n_channels, circuit.n_grids, n_procs)
    if assignment is None:
        assignment = default_assignment(circuit, regions)
    if assignment.n_procs != n_procs or assignment.n_wires != circuit.n_wires:
        raise SimulationError("assignment does not match circuit / processor count")
    per_node = assignment.per_proc_lists()

    tmpdir: Optional[tempfile.TemporaryDirectory] = None
    if keep_logs_dir is None:
        tmpdir = tempfile.TemporaryDirectory(prefix="locusroute-live-mp-")
        log_dir = tmpdir.name
    else:
        os.makedirs(keep_logs_dir, exist_ok=True)
        log_dir = keep_logs_dir

    # Full point-to-point mesh of pipes plus one control pipe per node.
    node_peer_ends: List[Dict[int, object]] = [dict() for _ in range(n_procs)]
    for i in range(n_procs):
        for j in range(i + 1, n_procs):
            end_i, end_j = ctx.Pipe(duplex=True)
            node_peer_ends[i][j] = end_i
            node_peer_ends[j][i] = end_j

    log_paths = [os.path.join(log_dir, f"node{p}.log") for p in range(n_procs)]
    procs = []
    controls = []
    final_views: List[Optional[np.ndarray]] = [None] * n_procs
    final_stats: List[Dict[str, object]] = [dict() for _ in range(n_procs)]
    routing_wall = 0.0
    try:
        for p in range(n_procs):
            cfg = _NodeConfig(
                circuit=circuit,
                node=p,
                n_procs=n_procs,
                wires=tuple(int(w) for w in per_node[p]),
                schedule=schedule,
                policy=policy,
                kernel_mode=kernel_mode,
                log_path=log_paths[p],
            )
            parent_end, child_end = ctx.Pipe(duplex=True)
            proc = ctx.Process(
                target=_mp_node,
                args=(cfg, child_end, node_peer_ends[p]),
                daemon=True,
            )
            proc.start()
            child_end.close()
            for conn in node_peer_ends[p].values():
                conn.close()
            procs.append(proc)
            controls.append(parent_end)

        deadline = time.monotonic() + timeout_s

        def gather(expect: str) -> List[Tuple]:
            """Collect one *expect* message from every node."""
            got: List[Optional[Tuple]] = [None] * n_procs
            while any(m is None for m in got):
                if time.monotonic() > deadline:
                    raise SimulationError(
                        f"live message-passing run exceeded {timeout_s}s"
                    )
                waitables = {
                    controls[p]: p for p in range(n_procs) if got[p] is None
                }
                for p in range(n_procs):
                    # A dead node with an empty control pipe can never
                    # deliver; a dead node with buffered output (it
                    # flushed "bye" and exited) is still collectable.
                    if (
                        got[p] is None
                        and not procs[p].is_alive()
                        and not controls[p].poll()
                    ):
                        raise SimulationError(
                            f"node {p} died unexpectedly (exit "
                            f"{procs[p].exitcode})"
                        )
                for obj in conn_wait(list(waitables), timeout=0.25):
                    p = waitables[obj]
                    try:
                        msg = obj.recv()
                    except (EOFError, OSError) as exc:
                        raise SimulationError(f"node {p} died: {exc!r}")
                    if msg[0] != expect:  # pragma: no cover - defensive
                        raise SimulationError(
                            f"node {p} sent {msg[0]!r}, expected {expect!r}"
                        )
                    got[p] = msg
            return got  # type: ignore[return-value]

        gather("ready")
        routing_t0 = time.perf_counter()
        for iteration in range(iterations):
            for conn in controls:
                conn.send(("iter", iteration))
            for p, msg in enumerate(gather("idle")):
                final_stats[p] = msg[2]
        routing_wall = time.perf_counter() - routing_t0
        for conn in controls:
            conn.send(("stop",))
        for p, msg in enumerate(gather("bye")):
            final_stats[p] = msg[1]
            final_views[p] = np.array(msg[2], dtype=np.int32, copy=True)
        for proc in procs:
            proc.join(timeout=10.0)
    finally:
        for proc in procs:
            if proc.is_alive():
                proc.kill()
                proc.join(timeout=5.0)
        for conn in controls:
            try:
                conn.close()
            except OSError:
                pass

    # ------------------------------------------------------------------
    # replay: canonical truth from the durable logs
    # ------------------------------------------------------------------
    n_wires = circuit.n_wires
    records = read_logs(log_paths)
    replay = replay_records(records, circuit.n_channels, circuit.n_grids)
    union = CostArray(circuit.n_channels, circuit.n_grids)
    for cells in replay.paths.values():
        union.apply_path(cells)
    replay_ok = (
        replay.ok
        and replay.commits == n_wires * iterations
        and len(replay.paths) == n_wires
        and union == replay.truth
    )
    quality = QualityReport(
        circuit_height=circuit_height(replay.truth),
        occupancy_factor=replay.occupancy_factor,
        total_wire_cells=replay.truth.total_occupancy(),
    )
    paths = {
        w: RoutePath.from_cells(c, circuit.n_grids) for w, c in replay.paths.items()
    }

    divergence = []
    for p in range(n_procs):
        if final_views[p] is not None:
            divergence.append(
                int(np.abs(final_views[p] - replay.truth.data).max())
            )
    worker_stats = [
        LiveWorkerStats(
            slot=p,
            incarnations=1,
            wires_committed=int(final_stats[p].get("commits", 0)),
            grabs=int(final_stats[p].get("grabs", 0)),
            ripups=int(final_stats[p].get("ripups", 0)),
            cells_written=int(final_stats[p].get("cells_written", 0)),
            messages_sent=int(final_stats[p].get("messages_sent", 0)),
            messages_received=int(final_stats[p].get("messages_received", 0)),
            bytes_sent=int(final_stats[p].get("bytes_sent", 0)),
            blocked_time_s=float(final_stats[p].get("blocked_time_s", 0.0)),
        )
        for p in range(n_procs)
    ]
    traffic = {
        key: int(sum(int(final_stats[p].get(key, 0)) for p in range(n_procs)))
        for key in (
            "messages_sent",
            "bytes_sent",
            "requests_sent",
            "requests_serviced",
            "retries_sent",
            "requests_abandoned",
            "late_responses",
        )
    }
    if tmpdir is not None:
        tmpdir.cleanup()

    meta: Dict[str, object] = {
        "circuit": circuit.name,
        "n_procs": n_procs,
        "iterations": iterations,
        "schedule": schedule.describe(),
        "assignment": assignment.method,
        "start_method": ctx.get_start_method(),
        "kernel_mode": kernel_mode,
        "traffic": traffic,
        "view_divergence_max": max(divergence) if divergence else 0,
        "replay": {
            "commits": replay.commits,
            "ripups": replay.ripups,
            "records": len(records),
        },
    }

    wall = time.perf_counter() - wall0
    obs.record_span("live.mp", wall, time.process_time() - cpu0)
    obs.incr("live.mp.runs")
    obs.incr("live.mp.messages", traffic["messages_sent"])
    obs.incr("live.mp.bytes", traffic["bytes_sent"])
    if not replay_ok:
        obs.incr("live.mp.replay_failures")

    return LiveRunResult(
        paradigm="message_passing_live",
        quality=quality,
        n_procs=n_procs,
        iterations=iterations,
        wall_s=wall,
        routing_wall_s=routing_wall,
        replay_ok=replay_ok,
        paths=paths,
        truth=replay.truth,
        wire_router=np.asarray(assignment.owner, dtype=np.int64).copy(),
        worker_stats=worker_stats,
        meta=meta,
    )
