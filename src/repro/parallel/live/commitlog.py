"""Durable per-worker commit logs and their replay verifier.

The live shared-memory router (:mod:`repro.parallel.live.sm_live`) reads
the cost array without locks — stale reads are the paper's §3 semantics —
but every *write* (rip-up or commit) happens inside a short critical
section that also draws a ticket from a global sequence counter and
appends one record to the worker's private log file.  That gives the two
properties everything downstream depends on:

- **bit-exact replayability**: replaying all records in sequence order
  performs the same scatter-adds in the same order as the live run, so
  the replayed array must equal the final shared array exactly;
- **crash durability**: log files are opened unbuffered and each record
  is a single ``write(2)``, so a SIGKILLed worker's completed commits
  survive it (at worst the trailing record is truncated, which the
  reader tolerates and drops).

The live message-passing router reuses the same format with
``time.monotonic_ns()`` tickets (CLOCK_MONOTONIC is system-wide on
Linux), where the replayed array is the run's canonical ground truth
rather than a mirror of one shared buffer.

Record wire format (little-endian, after an 8-byte file magic)::

    kind:u8  worker:i32  iteration:i32  wire:i32  seq:i64  price:i64
    n_cells:u32  cells:n_cells*i64

``price`` is the path cost the worker measured against the live array at
commit time (``-1`` when not measured); replay recomputes it and any
mismatch is a verification failure — a cheap end-to-end probe that the
critical sections really did serialise the writes.
"""

from __future__ import annotations

import os
import struct
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Sequence, Tuple

import numpy as np

from ...errors import SimulationError
from ...grid.cost_array import CostArray

__all__ = [
    "RIPUP",
    "COMMIT",
    "LOG_MAGIC",
    "CommitRecord",
    "CommitLogWriter",
    "read_log",
    "read_logs",
    "replay_records",
    "ReplayResult",
]

#: Record kinds.
RIPUP = 2
COMMIT = 1

#: File magic: identifies a live commit log (version 1).
LOG_MAGIC = b"LRCLOG1\n"

_REC = struct.Struct("<BiiiqqI")


@dataclass(frozen=True)
class CommitRecord:
    """One logged cost-array mutation."""

    kind: int  #: :data:`COMMIT` or :data:`RIPUP`
    worker: int  #: worker slot that performed the write
    iteration: int  #: routing iteration the write belongs to
    wire: int  #: wire index
    seq: int  #: global order ticket (shared counter / monotonic clock)
    price: int  #: path cost measured at commit time (-1 = not measured)
    cells: np.ndarray  #: sorted unique flat cell indices (int64)


class CommitLogWriter:
    """Append-only unbuffered record writer for one worker process."""

    def __init__(self, path: str, worker: int) -> None:
        self._worker = worker
        # buffering=0: each append is one write(2) straight to the page
        # cache, so records written before a SIGKILL are never lost in a
        # userspace buffer.
        self._f = open(path, "ab", buffering=0)
        if self._f.tell() == 0:
            self._f.write(LOG_MAGIC)

    def append(
        self,
        kind: int,
        iteration: int,
        wire: int,
        seq: int,
        cells: np.ndarray,
        price: int = -1,
    ) -> None:
        """Durably append one record (single ``write`` call)."""
        cells64 = np.ascontiguousarray(cells, dtype=np.int64)
        header = _REC.pack(
            kind, self._worker, iteration, wire, seq, price, cells64.size
        )
        self._f.write(header + cells64.tobytes())

    def close(self) -> None:
        self._f.close()


def read_log(path: str) -> List[CommitRecord]:
    """Parse one log file, tolerating a truncated trailing record.

    A worker killed mid-``write`` can leave a partial record at the tail;
    everything before it is intact (records are appended sequentially),
    so parsing simply stops at the first short read.
    """
    with open(path, "rb") as f:
        blob = f.read()
    if not blob.startswith(LOG_MAGIC):
        raise SimulationError(f"{path} is not a live commit log")
    records: List[CommitRecord] = []
    off = len(LOG_MAGIC)
    end = len(blob)
    while off + _REC.size <= end:
        kind, worker, iteration, wire, seq, price, n_cells = _REC.unpack_from(
            blob, off
        )
        cell_end = off + _REC.size + 8 * n_cells
        if kind not in (COMMIT, RIPUP):
            raise SimulationError(f"{path}: corrupt record kind {kind}")
        if cell_end > end:
            break  # truncated tail: the worker died mid-append
        cells = np.frombuffer(
            blob, dtype="<i8", count=n_cells, offset=off + _REC.size
        ).astype(np.int64, copy=True)
        records.append(
            CommitRecord(
                kind=kind,
                worker=worker,
                iteration=iteration,
                wire=wire,
                seq=seq,
                price=price,
                cells=cells,
            )
        )
        off = cell_end
    return records


def read_logs(paths: Iterable[str]) -> List[CommitRecord]:
    """Concatenate the records of several log files (missing files skipped).

    A worker killed before its first append leaves either no file or a
    bare-magic file; both count as an empty log.
    """
    records: List[CommitRecord] = []
    for path in paths:
        if not os.path.exists(path):
            continue
        records.extend(read_log(path))
    return records


@dataclass
class ReplayResult:
    """Outcome of :func:`replay_records`."""

    truth: CostArray  #: array rebuilt by replaying every record in order
    paths: Dict[int, np.ndarray]  #: wire -> final committed cells
    prices: Dict[int, int]  #: wire -> replay-computed cost of the final commit
    commits: int = 0  #: commit records replayed
    ripups: int = 0  #: rip-up records replayed
    price_mismatches: List[Tuple[int, int]] = field(default_factory=list)
    #: (wire, seq) of commits whose logged price != replay price

    @property
    def occupancy_factor(self) -> int:
        """Sum of final-commit prices — the occupancy quality metric."""
        return int(sum(self.prices[w] for w in self.paths))

    @property
    def ok(self) -> bool:
        """True when every measured price was reproduced by the replay."""
        return not self.price_mismatches


def replay_records(
    records: Sequence[CommitRecord], n_channels: int, n_grids: int
) -> ReplayResult:
    """Replay *records* in global sequence order through a fresh array.

    Semantics (the lock-free invariant the property test pins down):

    - a :data:`RIPUP` removes the recorded cells and clears the wire's
      live path;
    - a :data:`COMMIT` first removes the wire's previously committed path
      if it is still live (covers logs without explicit rip-up records,
      e.g. arbitrary interleavings generated by the hypothesis strategy),
      prices the new cells against the current array, then applies them.

    The final array therefore equals the union (sum of indicators) of the
    still-live committed paths; ``remove_path(strict=True)`` makes any
    bookkeeping violation (double rip-up, rip-up of an uncommitted path)
    raise instead of silently corrupting the replay.
    """
    ordered = sorted(records, key=lambda r: (r.seq, r.worker, r.kind))
    truth = CostArray(n_channels, n_grids)
    live: Dict[int, np.ndarray] = {}
    prices: Dict[int, int] = {}
    result = ReplayResult(truth=truth, paths=live, prices=prices)
    for rec in ordered:
        if rec.kind == RIPUP:
            truth.remove_path(rec.cells, strict=True)
            live.pop(rec.wire, None)
            result.ripups += 1
        else:
            prev = live.get(rec.wire)
            if prev is not None:
                truth.remove_path(prev, strict=True)
            price = truth.path_cost(rec.cells)
            if rec.price >= 0 and rec.price != price:
                result.price_mismatches.append((rec.wire, rec.seq))
            truth.apply_path(rec.cells)
            live[rec.wire] = rec.cells
            prices[rec.wire] = price
            result.commits += 1
    return result
