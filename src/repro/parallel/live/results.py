"""Result records for live (real-core) parallel routing runs.

A :class:`LiveRunResult` is the real-execution analogue of
:class:`repro.parallel.results.ParallelRunResult`: wall-clock times
replace simulated virtual time, real message/byte counts replace modelled
traffic, and a replay-verification verdict records whether the durable
commit logs reproduced the final array bit-exactly.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List

import numpy as np

from ...grid.cost_array import CostArray
from ...route.path import RoutePath
from ...route.quality import QualityReport

__all__ = ["LiveRunResult", "LiveWorkerStats"]


@dataclass(frozen=True)
class LiveWorkerStats:
    """Per-worker accounting reported over the control pipe."""

    slot: int  #: worker slot (stable across respawns)
    incarnations: int  #: processes that occupied the slot (1 = no respawn)
    wires_committed: int  #: commits this slot's processes performed
    grabs: int  #: distributed-loop grabs (SM) / wires started (MP)
    ripups: int  #: rip-up writes performed
    cells_written: int  #: total cells scattered into the shared/local array
    messages_sent: int = 0  #: packets sent over pipes (MP only)
    messages_received: int = 0  #: packets received (MP only)
    bytes_sent: int = 0  #: accounted wire bytes sent (MP only)
    blocked_time_s: float = 0.0  #: time spent waiting on responses (MP only)


@dataclass(frozen=True)
class LiveRunResult:
    """Outcome of one live parallel routing run (either paradigm)."""

    paradigm: str  #: ``"shared_memory_live"`` or ``"message_passing_live"``
    quality: QualityReport  #: final-solution quality metrics
    n_procs: int  #: worker processes requested
    iterations: int  #: routing iterations performed
    wall_s: float  #: total wall time including process setup/teardown
    routing_wall_s: float  #: wall time of the routing phase only
    replay_ok: bool  #: commit-log replay reproduced the final array bit-exactly
    paths: Dict[int, RoutePath]  #: final routed path per wire
    truth: CostArray  #: the final ground-truth cost array
    wire_router: np.ndarray  #: final-iteration router of each wire
    worker_stats: List[LiveWorkerStats]
    meta: Dict[str, object] = field(default_factory=dict)

    def table_row(self) -> Dict[str, object]:
        """The standard (height, occupancy, time) results row."""
        return {
            "ckt_height": self.quality.circuit_height,
            "occupancy": self.quality.occupancy_factor,
            "wall_s": round(self.routing_wall_s, 4),
            "replay_ok": self.replay_ok,
        }

    def summary_dict(self) -> Dict[str, object]:
        """A JSON-serialisable summary (no bulky arrays)."""
        return {
            "paradigm": self.paradigm,
            "quality": self.quality.as_dict(),
            "n_procs": self.n_procs,
            "iterations": self.iterations,
            "wall_s": self.wall_s,
            "routing_wall_s": self.routing_wall_s,
            "replay_ok": self.replay_ok,
            "n_wires": len(self.paths),
            "workers": [
                {
                    "slot": w.slot,
                    "incarnations": w.incarnations,
                    "wires_committed": w.wires_committed,
                    "grabs": w.grabs,
                    "ripups": w.ripups,
                    "cells_written": w.cells_written,
                    "messages_sent": w.messages_sent,
                    "messages_received": w.messages_received,
                    "bytes_sent": w.bytes_sent,
                    "blocked_time_s": w.blocked_time_s,
                }
                for w in self.worker_stats
            ],
            "meta": {
                k: v
                for k, v in self.meta.items()
                if isinstance(v, (str, int, float, bool, dict, list))
            },
        }

