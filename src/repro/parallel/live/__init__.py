"""Live (real-core) execution of both parallel LocusRoute paradigms.

Where :mod:`repro.parallel.sm_sim` and :mod:`repro.parallel.mp_sim`
*model* the paper's two implementations under simulated time, this
package actually runs them: real worker processes on real cores, a real
``multiprocessing.shared_memory`` cost array for the shared-memory
router, and real pickled update packets over pipes for the
message-passing router.  Durable per-worker commit logs make every run
replay-verifiable (:mod:`repro.parallel.live.commitlog`).
"""

from .commitlog import (
    COMMIT,
    RIPUP,
    CommitLogWriter,
    CommitRecord,
    ReplayResult,
    read_log,
    read_logs,
    replay_records,
)
from .mp_live import DEFAULT_LIVE_POLICY, run_live_message_passing
from .results import LiveRunResult, LiveWorkerStats
from .sm_live import KILL_POINTS, KillPlanEntry, run_live_shared_memory

__all__ = [
    "run_live_shared_memory",
    "run_live_message_passing",
    "DEFAULT_LIVE_POLICY",
    "KillPlanEntry",
    "KILL_POINTS",
    "LiveRunResult",
    "LiveWorkerStats",
    "CommitRecord",
    "CommitLogWriter",
    "ReplayResult",
    "read_log",
    "read_logs",
    "replay_records",
    "COMMIT",
    "RIPUP",
]
