"""The live shared-memory LocusRoute: real worker processes, one real grid.

This is the real-core twin of :func:`repro.parallel.sm_sim.run_shared_memory`
(which replays the design in virtual time through a Tango-style trace).
Here the paper's §3 architecture actually executes:

- the cost array lives in one ``multiprocessing.shared_memory`` segment;
  every worker process wraps the same buffer with
  :meth:`CostArray.wrap <repro.grid.cost_array.CostArray.wrap>`;
- wires are self-scheduled from a **distributed loop** — a shared counter
  advanced under a short grab lock, mirroring the
  :class:`~repro.assign.distributed_loop.DistributedLoop` API (grab /
  push-back / reset) across process boundaries;
- candidate evaluation reads the shared array **without any lock**: a
  worker sees whatever mix of committed and in-flight wires happens to be
  in memory, exactly the stale-read tolerance the paper relies on ("the
  processors do not know about the work other processors are doing
  simultaneously", §1);
- the two *writes* per wire (rip-up, commit) each happen inside a short
  commit-lock critical section that also takes a global sequence ticket
  and appends a durable record to the worker's commit log.  Serialised
  writes cost a little concurrency but buy the property the verifier
  needs: replaying the logs in ticket order reproduces the final shared
  array **bit-exactly** (racing unlocked ``+=`` scatter-adds would lose
  updates and break both replay and the non-negativity canary).

Crash tolerance (the PR 6 fail-stop model, now with real SIGKILLs): the
parent watches every worker's process sentinel.  When a worker dies, its
in-flight wire — published in a shared ``inflight`` slot at grab time,
with an "old path already ripped" flag maintained under the commit lock —
is pushed back into the loop's requeue for the next idle survivor, and
the slot can be respawned with a fresh log incarnation.  Because log
appends are unbuffered single writes performed inside the commit
critical section, a SIGKILLed worker's completed commits are never lost
and never half-applied (kills happen at safe points between critical
sections; a worker dying *inside* a lock would hang the run, which the
parent converts into an error via ``timeout_s``).
"""

from __future__ import annotations

import os
import signal
import tempfile
import time
from dataclasses import dataclass
from multiprocessing import shared_memory, sharedctypes
from multiprocessing.connection import wait as conn_wait
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ...circuits.model import Circuit
from ...errors import SimulationError
from ...grid.cost_array import CostArray
from ...kernels import active_kernels, set_kernels
from ...obs import telemetry as obs
from ...route.path import RoutePath
from ...route.quality import QualityReport, circuit_height
from ...route.twobend import route_wire
from .commitlog import (
    COMMIT,
    RIPUP,
    CommitLogWriter,
    read_logs,
    replay_records,
)
from .results import LiveRunResult, LiveWorkerStats

__all__ = ["run_live_shared_memory", "KillPlanEntry", "KILL_POINTS"]

#: Shared control-word indices (int64 RawArray).
_NEXT = 0  #: distributed-loop position in the wire order
_REQ_N = 1  #: number of entries in the requeue stack
_SEQ = 2  #: next global write-sequence ticket
_CTRL_WORDS = 3

#: Safe self-kill points for the crash stress plan (never inside a lock).
KILL_POINTS = ("after_grab", "after_ripup", "after_commit")


@dataclass(frozen=True)
class KillPlanEntry:
    """Self-SIGKILL instruction for one worker slot (stress testing).

    The worker kills itself (``SIGKILL``, no cleanup) once it has
    committed ``after_commits`` wires and reaches ``point`` — one of
    :data:`KILL_POINTS`, all outside the critical sections so the locks
    are never orphaned (the fail-stop-at-safe-points model).

    Firing is deterministic even on one core: the distributed loop
    reserves the tail of each iteration's wire order for workers with an
    unfired kill, so an armed worker that the OS scheduler starves still
    gets the grabs it needs to reach its threshold (otherwise a fast
    sibling could drain the loop every iteration and the plan would
    silently never fire).
    """

    slot: int
    after_commits: int
    point: str = "after_ripup"

    def __post_init__(self) -> None:
        if self.point not in KILL_POINTS:
            raise SimulationError(
                f"kill point {self.point!r} not in {KILL_POINTS}"
            )
        if self.after_commits < 0:
            raise SimulationError("after_commits must be >= 0")


@dataclass(frozen=True)
class _WorkerConfig:
    """Everything a worker needs, picklable for the spawn start method."""

    circuit: Circuit
    slot: int
    incarnation: int
    n_workers: int
    shm_name: str
    log_path: str
    kernel_mode: str
    kill: Optional[Tuple[int, str]]  #: (after_commits, point) or None


def _attach_shared_array(name: str, shape: Tuple[int, int]):
    """Attach the parent's segment as an int32 grid view.

    On Python < 3.13 attaching re-registers the segment with the
    resource tracker, but multiprocessing children share the parent's
    tracker (the fd travels in the spawn preparation data), whose
    registry is a set — the re-registration is idempotent and the
    parent's ``unlink`` balances it.  Children must *not* unregister:
    that would delete the parent's claim and make the final unlink
    double-unregister.
    """
    shm = shared_memory.SharedMemory(name=name)
    data = np.ndarray(shape, dtype=np.int32, buffer=shm.buf)
    return shm, data


def _sm_worker(
    cfg: _WorkerConfig,
    conn,
    order,
    ctrl,
    requeue,
    inflight,
    armed,
    grab_lock,
    commit_lock,
) -> None:
    """Worker process body (module-level: picklable under spawn)."""
    set_kernels(cfg.kernel_mode)
    shm, data = _attach_shared_array(
        cfg.shm_name, (cfg.circuit.n_channels, cfg.circuit.n_grids)
    )
    view = CostArray.wrap(data)
    log = CommitLogWriter(cfg.log_path, cfg.slot)
    circuit = cfg.circuit
    n_wires = circuit.n_wires
    slot2 = 2 * cfg.slot
    stats = {"grabs": 0, "commits": 0, "ripups": 0, "cells_written": 0}
    commits_done = 0

    kill_after, kill_point = cfg.kill if cfg.kill is not None else (-1, "")

    def maybe_kill(point: str) -> None:
        if kill_after >= 0 and point == kill_point and commits_done >= kill_after:
            os.kill(os.getpid(), signal.SIGKILL)

    def grab() -> Optional[Tuple[int, bool]]:
        """Take the next wire from the shared distributed loop.

        Requeued wires (a dead worker's in-flight work) go first, like
        ``DistributedLoop.next_wire``.  The grab also publishes the wire
        in this worker's inflight slot so the parent can recover it if
        *this* worker dies before committing.

        The last ``sum(armed)`` undistributed wires are reserved for
        workers whose kill plan has not fired yet: a worker with no
        remaining armed budget leaves them and goes idle, so an armed
        worker reaches its kill threshold no matter how the OS schedules
        the processes (the parent will not end the iteration while wires
        are uncommitted).
        """
        with grab_lock:
            req_n = ctrl[_REQ_N]
            if req_n > 0:
                ctrl[_REQ_N] = req_n - 1
                wire = int(requeue[2 * (req_n - 1)])
                skip_ripup = bool(requeue[2 * (req_n - 1) + 1])
                if armed[cfg.slot] > 0:
                    armed[cfg.slot] -= 1
                inflight[slot2] = wire
                inflight[slot2 + 1] = 1 if skip_ripup else 0
                return wire, skip_ripup
            pos = ctrl[_NEXT]
            if pos >= n_wires:
                return None
            if armed[cfg.slot] > 0:
                armed[cfg.slot] -= 1
            elif n_wires - pos <= sum(armed):
                return None
            ctrl[_NEXT] = pos + 1
            wire = int(order[pos])
            inflight[slot2] = wire
            inflight[slot2 + 1] = 0
            return wire, False

    def route_one(iteration: int, prev_cells: Dict[int, np.ndarray]) -> bool:
        nonlocal commits_done
        got = grab()
        if got is None:
            return False
        wire_idx, skip_ripup = got
        stats["grabs"] += 1
        maybe_kill("after_grab")

        old = None if skip_ripup else prev_cells.get(wire_idx)
        if old is not None:
            # Rip-up is visible to everyone immediately (paper §3): the
            # wire's old path leaves the shared array before re-routing.
            with commit_lock:
                seq = ctrl[_SEQ]
                ctrl[_SEQ] = seq + 1
                view.remove_path(old, strict=True)
                log.append(RIPUP, iteration, wire_idx, seq, old)
                inflight[slot2 + 1] = 1
            stats["ripups"] += 1
            stats["cells_written"] += int(old.size)
        else:
            # Nothing to rip (first iteration, or a previous owner of
            # this requeued wire already did it): an adopter after a
            # crash here must not rip either.
            inflight[slot2 + 1] = 1
        maybe_kill("after_ripup")

        # Lock-free evaluation against whatever the shared array holds
        # right now — concurrent in-flight wires are simply not seen.
        result = route_wire(view, circuit.wire(wire_idx), tie_break=iteration % 2)
        cells = result.path.flat_cells

        with commit_lock:
            seq = ctrl[_SEQ]
            ctrl[_SEQ] = seq + 1
            price = view.path_cost(cells)
            view.apply_path(cells)
            log.append(COMMIT, iteration, wire_idx, seq, cells, price)
            inflight[slot2] = -1
            inflight[slot2 + 1] = 0
        stats["commits"] += 1
        stats["cells_written"] += int(cells.size)
        commits_done += 1
        maybe_kill("after_commit")
        return True

    try:
        conn.send(("ready", cfg.slot, cfg.incarnation))
        iteration = 0
        prev_cells: Dict[int, np.ndarray] = {}
        while True:
            msg = conn.recv()
            if msg[0] == "stop":
                break
            if msg[0] == "iter":
                iteration = msg[1]
                prev_cells = dict(msg[2])
            # "resume" keeps the current iteration: the parent requeued a
            # dead worker's wire after this worker went idle.
            while route_one(iteration, prev_cells):
                pass
            conn.send(("idle", iteration, dict(stats)))
    finally:
        log.close()
        shm.close()


class _Handle:
    """Parent-side bookkeeping for one worker process."""

    def __init__(self, slot, incarnation, proc, conn, log_path):
        self.slot = slot
        self.incarnation = incarnation
        self.proc = proc
        self.conn = conn
        self.log_path = log_path
        self.ready = False
        self.idle = False
        self.dead = False
        self.last_stats: Dict[str, int] = {}


def run_live_shared_memory(
    circuit: Circuit,
    n_procs: int = 2,
    iterations: int = 3,
    seed: Optional[int] = None,
    kernel_mode: Optional[str] = None,
    start_method: Optional[str] = None,
    kill_plan: Sequence[KillPlanEntry] = (),
    respawn: bool = True,
    timeout_s: float = 120.0,
    keep_logs_dir: Optional[str] = None,
) -> LiveRunResult:
    """Route *circuit* on real cores with the shared-memory design.

    Parameters
    ----------
    circuit, n_procs, iterations:
        As for the simulator; ``n_procs`` here is real worker processes.
    seed:
        ``None`` keeps the natural wire order (matching the simulator's
        distributed loop); an int shuffles it deterministically.
    kernel_mode:
        Routing kernels for the workers (defaults to the caller's
        :func:`~repro.kernels.active_kernels` — explicitly forwarded
        because spawn-started children do not inherit the global).
    start_method:
        ``fork`` / ``spawn`` / ``forkserver``; defaults to the
        :data:`repro.harness.pool.START_METHOD_ENV` environment override
        or the platform default.
    kill_plan:
        :class:`KillPlanEntry` crash instructions for the stress tests.
    respawn:
        Replace dead workers (new process, same slot, fresh log
        incarnation).  With ``respawn=False`` the survivors absorb the
        requeued work; at least one worker must survive.
    timeout_s:
        Hard wall-clock bound on the whole run; on expiry the children
        are killed and :class:`~repro.errors.SimulationError` is raised
        (the escape hatch for a worker dying inside a critical section,
        which the fail-stop-at-safe-points model does not cover).
    keep_logs_dir:
        Write commit logs into this directory (kept) instead of a
        temporary one (deleted after replay).
    """
    wall0, cpu0 = time.perf_counter(), time.process_time()
    if n_procs < 1:
        raise SimulationError("need at least one worker process")
    if iterations < 1:
        raise SimulationError("need at least one iteration")
    kill_plan = tuple(kill_plan)
    bad = [k.slot for k in kill_plan if not (0 <= k.slot < n_procs)]
    if bad:
        raise SimulationError(f"kill plan names unknown worker slots {bad}")
    if len({k.slot for k in kill_plan}) != len(kill_plan):
        raise SimulationError("kill plan names a worker slot twice")
    if len(kill_plan) >= n_procs and not respawn:
        raise SimulationError("at least one worker must survive the kill plan")
    kernel_mode = kernel_mode or active_kernels()

    from ...harness.pool import mp_context

    ctx = mp_context(start_method)
    n_wires = circuit.n_wires
    order_list = list(range(n_wires))
    if seed is not None:
        order_list = [int(w) for w in np.random.default_rng(seed).permutation(n_wires)]

    shm = shared_memory.SharedMemory(
        create=True, size=circuit.n_channels * circuit.n_grids * 4
    )
    final_data: Optional[np.ndarray] = None
    tmpdir: Optional[tempfile.TemporaryDirectory] = None
    if keep_logs_dir is None:
        tmpdir = tempfile.TemporaryDirectory(prefix="locusroute-live-")
        log_dir = tmpdir.name
    else:
        os.makedirs(keep_logs_dir, exist_ok=True)
        log_dir = keep_logs_dir

    # Shared state: wire order, control words, requeue stack and per-slot
    # inflight pairs.  RawArrays ride to spawn children via fd-backed
    # arenas; the locks must come from the chosen context.
    order = sharedctypes.RawArray("q", order_list)
    ctrl = sharedctypes.RawArray("q", _CTRL_WORDS)
    requeue = sharedctypes.RawArray("q", max(2, 2 * n_wires))
    inflight = sharedctypes.RawArray("q", [-1, 0] * n_procs)
    grab_lock = ctx.Lock()
    commit_lock = ctx.Lock()

    kill_by_slot = {k.slot: (k.after_commits, k.point) for k in kill_plan}
    # Per-slot grab budget reserved for unfired kill plans: enough grabs
    # to reach the threshold at any kill point (after_commits commits
    # plus the one further grab the after_grab/after_ripup points need).
    # Zeroed by on_death once the plan fires.
    armed = sharedctypes.RawArray(
        "q",
        [
            kill_by_slot[s][0] + 1 if s in kill_by_slot else 0
            for s in range(n_procs)
        ],
    )
    handles: List[_Handle] = []
    all_log_paths: List[str] = []
    crash_meta = {
        "planned": len(kill_plan),
        "confirmed": [],
        "requeued_wires": 0,
        "respawned": 0,
    }

    def spawn_worker(slot: int, incarnation: int) -> _Handle:
        log_path = os.path.join(log_dir, f"worker{slot}_{incarnation}.log")
        all_log_paths.append(log_path)
        cfg = _WorkerConfig(
            circuit=circuit,
            slot=slot,
            incarnation=incarnation,
            n_workers=n_procs,
            shm_name=shm.name,
            log_path=log_path,
            kernel_mode=kernel_mode,
            # A respawned worker never re-arms the kill switch, so the
            # stress plan terminates.
            kill=kill_by_slot.get(slot) if incarnation == 0 else None,
        )
        parent_conn, child_conn = ctx.Pipe(duplex=True)
        proc = ctx.Process(
            target=_sm_worker,
            args=(
                cfg,
                child_conn,
                order,
                ctrl,
                requeue,
                inflight,
                armed,
                grab_lock,
                commit_lock,
            ),
            daemon=True,
        )
        proc.start()
        child_conn.close()
        handle = _Handle(slot, incarnation, proc, parent_conn, log_path)
        handles.append(handle)
        return handle

    def live_handles() -> List[_Handle]:
        return [h for h in handles if not h.dead]

    deadline = time.monotonic() + timeout_s

    def check_deadline() -> None:
        if time.monotonic() > deadline:
            raise SimulationError(
                f"live shared-memory run exceeded {timeout_s}s — a worker "
                "likely died inside a critical section or deadlocked"
            )

    def on_death(handle: _Handle) -> None:
        """Recover a dead worker: requeue its in-flight wire, respawn."""
        if handle.dead:
            return
        handle.dead = True
        handle.conn.close()
        crash_meta["confirmed"].append([handle.slot, handle.incarnation])
        armed[handle.slot] = 0  # the plan fired (or died with it): unreserve
        slot2 = 2 * handle.slot
        wire = int(inflight[slot2])
        flag = int(inflight[slot2 + 1])
        if wire >= 0:
            # Push the orphaned wire back into the distributed loop; the
            # flag says whether its old path already left the array.
            with grab_lock:
                pos = int(ctrl[_REQ_N])
                requeue[2 * pos] = wire
                requeue[2 * pos + 1] = flag
                ctrl[_REQ_N] = pos + 1
            inflight[slot2] = -1
            inflight[slot2 + 1] = 0
            crash_meta["requeued_wires"] += 1
        if respawn:
            crash_meta["respawned"] += 1
            spawn_worker(handle.slot, handle.incarnation + 1)
        # Idle survivors must wake up to absorb the requeued work.
        for other in live_handles():
            if other.ready and other.idle:
                other.conn.send(("resume",))
                other.idle = False

    def pump_events(current_prev, poll_s: float = 0.05) -> None:
        """Service one round of worker messages and death notices.

        ``current_prev`` is the in-progress iteration's ``(iteration,
        prev_paths)`` payload, handed to workers that become ready
        mid-iteration (respawns); ``None`` during the startup handshake,
        when the main loop will send the first ``iter`` itself.
        """
        check_deadline()
        live = live_handles()
        waitables: Dict[object, Tuple[str, _Handle]] = {}
        for h in live:
            waitables[h.conn] = ("conn", h)
            waitables[h.proc.sentinel] = ("sentinel", h)
        if not waitables:
            raise SimulationError("all live workers died and respawn is off")
        for obj in conn_wait(list(waitables), timeout=poll_s):
            kind, h = waitables[obj]
            if h.dead:
                continue
            if kind == "sentinel":
                on_death(h)
                continue
            try:
                msg = h.conn.recv()
            except (EOFError, OSError):
                on_death(h)
                continue
            if msg[0] == "ready":
                h.ready = True
                if current_prev is not None:
                    h.conn.send(("iter",) + current_prev)
            elif msg[0] == "idle":
                h.idle = True
                h.last_stats = msg[2]
            elif msg[0] == "fatal":  # pragma: no cover - defensive
                raise SimulationError(f"worker {h.slot} failed: {msg[1]}")

    def committed_this_iteration(iteration: int) -> Dict[int, np.ndarray]:
        """Wire -> cells committed in *iteration*, from the durable logs.

        Only called when no worker is mid-write (all live workers idle,
        dead ones dead), so the logs are quiescent.
        """
        cells: Dict[int, np.ndarray] = {}
        count = 0
        for rec in read_logs(all_log_paths):
            if rec.kind == COMMIT and rec.iteration == iteration:
                if rec.wire in cells:
                    raise SimulationError(
                        f"wire {rec.wire} committed twice in iteration "
                        f"{iteration} — requeue accounting bug"
                    )
                cells[rec.wire] = rec.cells
                count += 1
        assert count == len(cells)
        return cells

    committed: Dict[int, np.ndarray] = {}
    routing_wall = 0.0
    try:
        for slot in range(n_procs):
            spawn_worker(slot, 0)

        # Handshake before the clock starts: process startup (fork vs
        # spawn, interpreter boot) is setup cost, not routing time.
        while not live_handles() or not all(h.ready for h in live_handles()):
            pump_events(None)

        routing_t0 = time.perf_counter()
        for iteration in range(iterations):
            ctrl[_NEXT] = 0
            ctrl[_REQ_N] = 0
            prev_payload = (
                iteration,
                [(w, c) for w, c in sorted(committed.items())],
            )
            for h in live_handles():
                if h.ready:
                    h.conn.send(("iter",) + prev_payload)
                    h.idle = False
            while True:
                live = live_handles()
                if live and all(h.idle for h in live if h.ready) and all(
                    h.ready for h in live
                ):
                    iter_commits = committed_this_iteration(iteration)
                    if len(iter_commits) == n_wires:
                        committed = iter_commits
                        break
                    if int(ctrl[_REQ_N]) > 0 or int(ctrl[_NEXT]) < n_wires:
                        for h in live:
                            if h.idle:
                                h.conn.send(("resume",))
                                h.idle = False
                        continue
                    raise SimulationError(
                        f"iteration {iteration} stalled with "
                        f"{n_wires - len(iter_commits)} wires uncommitted "
                        "and an empty loop — in-flight recovery failed"
                    )
                pump_events(prev_payload)
        routing_wall = time.perf_counter() - routing_t0

        for h in live_handles():
            h.conn.send(("stop",))
        for h in live_handles():
            h.proc.join(timeout=10.0)
            if h.proc.is_alive():  # pragma: no cover - defensive
                h.proc.kill()
        final_data = np.ndarray(
            (circuit.n_channels, circuit.n_grids), dtype=np.int32, buffer=shm.buf
        ).copy()
    finally:
        for h in handles:
            if h.proc.is_alive():
                h.proc.kill()
                h.proc.join(timeout=5.0)
            try:
                h.conn.close()
            except OSError:
                pass
        shm.close()
        shm.unlink()

    # ------------------------------------------------------------------
    # replay verification + result assembly
    # ------------------------------------------------------------------
    records = read_logs(all_log_paths)
    replay = replay_records(records, circuit.n_channels, circuit.n_grids)
    replay_ok = (
        bool(np.array_equal(replay.truth.data, final_data))
        and replay.ok
        and replay.commits == n_wires * iterations
        and len(replay.paths) == n_wires
    )

    final = CostArray(circuit.n_channels, circuit.n_grids, final_data)
    quality = QualityReport(
        circuit_height=circuit_height(final),
        occupancy_factor=replay.occupancy_factor,
        total_wire_cells=final.total_occupancy(),
    )
    paths = {
        w: RoutePath.from_cells(c, circuit.n_grids) for w, c in replay.paths.items()
    }
    wire_router = np.zeros(n_wires, dtype=np.int64)
    for rec in records:
        if rec.kind == COMMIT and rec.iteration == iterations - 1:
            wire_router[rec.wire] = rec.worker

    per_slot: Dict[int, Dict[str, int]] = {
        s: {"commits": 0, "ripups": 0, "cells": 0, "incarnations": 0, "grabs": 0}
        for s in range(n_procs)
    }
    for rec in records:
        agg = per_slot[rec.worker]
        if rec.kind == COMMIT:
            agg["commits"] += 1
        else:
            agg["ripups"] += 1
        agg["cells"] += int(rec.cells.size)
    seen_incarnations: Dict[int, set] = {s: set() for s in range(n_procs)}
    for h in handles:
        seen_incarnations[h.slot].add(h.incarnation)
        per_slot[h.slot]["grabs"] += int(h.last_stats.get("grabs", 0))
    worker_stats = [
        LiveWorkerStats(
            slot=s,
            incarnations=len(seen_incarnations[s]),
            wires_committed=per_slot[s]["commits"],
            grabs=per_slot[s]["grabs"],
            ripups=per_slot[s]["ripups"],
            cells_written=per_slot[s]["cells"],
        )
        for s in range(n_procs)
    ]

    if tmpdir is not None:
        tmpdir.cleanup()

    meta: Dict[str, object] = {
        "circuit": circuit.name,
        "n_procs": n_procs,
        "iterations": iterations,
        "start_method": ctx.get_start_method(),
        "kernel_mode": kernel_mode,
        "order_seed": seed,
        "replay": {
            "commits": replay.commits,
            "ripups": replay.ripups,
            "price_mismatches": len(replay.price_mismatches),
            "records": len(records),
        },
        # Nothing a dead worker committed is ever dropped (durable logs),
        # so the only crash casualties are in-flight routes, which are
        # re-run via the requeue.  Asserted by the stress tests.
        "crash": dict(
            crash_meta,
            crash_dropped_commits=n_wires * iterations - replay.commits,
            crash_dropped_inflight=crash_meta["requeued_wires"],
        ),
    }

    wall = time.perf_counter() - wall0
    obs.record_span("live.sm", wall, time.process_time() - cpu0)
    obs.incr("live.sm.runs")
    obs.incr("live.sm.commits", replay.commits)
    obs.incr("live.sm.requeued_wires", crash_meta["requeued_wires"])
    if not replay_ok:
        obs.incr("live.sm.replay_failures")

    return LiveRunResult(
        paradigm="shared_memory_live",
        quality=quality,
        n_procs=n_procs,
        iterations=iterations,
        wall_s=wall,
        routing_wall_s=routing_wall,
        replay_ok=replay_ok,
        paths=paths,
        truth=final,
        wire_router=wire_router,
        worker_stats=worker_stats,
        meta=meta,
    )

