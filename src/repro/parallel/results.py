"""Result records for parallel routing runs.

Both simulators produce a :class:`ParallelRunResult`: the final solution
(quality metrics plus the ground-truth cost array), the simulated
execution time, the communication traffic (network bytes for message
passing, coherence bus bytes for shared memory), and enough detail for
the locality and load-balance analyses.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

import numpy as np

from ..grid.cost_array import CostArray
from ..memsim.stats import CoherenceStats
from ..netsim.stats import NetworkStats
from ..route.path import RoutePath
from ..route.quality import QualityReport

__all__ = ["ParallelRunResult", "NodeSummary"]


@dataclass(frozen=True)
class NodeSummary:
    """Per-processor accounting from one run."""

    proc: int
    wires_routed: int
    finish_time_s: float
    route_units: float
    commit_units: float
    assemble_units: float
    incorporate_units: float
    messages_sent: int
    messages_received: int
    blocked_time_s: float

    @property
    def total_units(self) -> float:
        """All work units this node performed."""
        return (
            self.route_units
            + self.commit_units
            + self.assemble_units
            + self.incorporate_units
        )

    @property
    def message_overhead_fraction(self) -> float:
        """Fraction of work spent assembling/disassembling packets."""
        total = self.total_units
        if total == 0:
            return 0.0
        return (self.assemble_units + self.incorporate_units) / total


@dataclass(frozen=True)
class ParallelRunResult:
    """Outcome of a parallel LocusRoute run (either paradigm).

    Attributes
    ----------
    paradigm:
        ``"message_passing"`` or ``"shared_memory"``.
    quality:
        Final-solution quality (circuit height, occupancy factor).
    exec_time_s:
        Simulated makespan: when the last processor finished its last
        wire (including its update sends).
    network:
        Network traffic stats (message passing runs; ``None`` otherwise).
    coherence:
        Bus traffic stats (shared memory runs; ``None`` otherwise).
    paths:
        Final routed path per wire index.
    wire_router:
        Which processor routed each wire in the *final* iteration.
    node_summaries:
        Per-processor accounting.
    truth:
        The ground-truth final cost array.
    meta:
        Run configuration echoes (schedule, assignment method, ...).
    """

    paradigm: str
    quality: QualityReport
    exec_time_s: float
    paths: Dict[int, RoutePath]
    wire_router: np.ndarray
    node_summaries: List[NodeSummary]
    truth: CostArray
    network: Optional[NetworkStats] = None
    coherence: Optional[CoherenceStats] = None
    meta: Dict[str, object] = field(default_factory=dict)

    @property
    def mbytes_transferred(self) -> float:
        """The paper's "MBytes Xfrd." column for this run."""
        if self.network is not None:
            return self.network.mbytes
        if self.coherence is not None:
            return self.coherence.mbytes
        return 0.0

    def table_row(self) -> Dict[str, object]:
        """The standard (height, occupancy, MBytes, time) results row."""
        return {
            "ckt_height": self.quality.circuit_height,
            "occupancy": self.quality.occupancy_factor,
            "mbytes": round(self.mbytes_transferred, 4),
            "time_s": round(self.exec_time_s, 4),
        }

    def summary_dict(self) -> Dict[str, object]:
        """A JSON-serialisable summary of the run (no bulky arrays).

        Used by the CLI's ``--json`` output and suitable for scripting
        over many runs; the full paths/truth arrays stay in memory only.
        """
        summary: Dict[str, object] = {
            "paradigm": self.paradigm,
            "quality": self.quality.as_dict(),
            "exec_time_s": self.exec_time_s,
            "mbytes_transferred": self.mbytes_transferred,
            "n_wires": len(self.paths),
            "nodes": [
                {
                    "proc": s.proc,
                    "wires_routed": s.wires_routed,
                    "finish_time_s": s.finish_time_s,
                    "total_units": s.total_units,
                    "messages_sent": s.messages_sent,
                    "messages_received": s.messages_received,
                    "blocked_time_s": s.blocked_time_s,
                }
                for s in self.node_summaries
            ],
            "meta": {
                k: v
                for k, v in self.meta.items()
                if isinstance(v, (str, int, float, bool, dict, list))
            },
        }
        if self.network is not None:
            summary["network"] = self.network.as_dict()
        if self.coherence is not None:
            summary["coherence"] = self.coherence.as_dict()
        return summary
