"""The shared memory LocusRoute simulation (Tango methodology).

Paper §3: one cost array in shared memory, accessed without locks;
processors take wires from a distributed loop (or, for the locality study
of Table 5, from a static assignment) and hit a barrier at the end of each
iteration.  §2.2: the traces behind the traffic numbers come from
fine-grained multiplexed execution on one machine — exactly what this
module does in virtual time:

- a processor *starts* a wire at its current virtual time: it rips up the
  old path (writes, visible immediately), then evaluates the two-bend
  candidates against the **current committed global array**;
- the chosen path *commits* at start + work time.  Wires in flight on
  other processors during that window are invisible to the evaluation —
  "the processors do not know about the work other processors are doing
  simultaneously" (§1), which is the entire parallel quality-degradation
  mechanism;
- every read rectangle and write burst is recorded in a Tango-style
  reference trace, which is then replayed through the
  Write-Back-with-Invalidate coherence simulator for each requested cache
  line size.

Execution times are reported in Encore-Multimax seconds: the same work
units as the message passing runs, scaled by the paper's 5x NS32032
slowdown (compare with message passing times multiplied by five, §5.1.1).
"""

from __future__ import annotations

import time
from typing import Dict, Optional, Sequence

import numpy as np

from ..assign.base import Assignment
from ..assign.distributed_loop import DistributedLoop
from ..circuits.model import Circuit
from ..errors import SimulationError
from ..events.sim import Simulator
from ..grid.cost_array import CostArray
from ..grid.regions import RegionMap
from ..memsim.addressing import AddressMap
from ..kernels import active_kernels
from ..memsim.coherence import simulate_trace
from ..memsim.columnar import ColumnarTrace
from ..memsim.update_protocol import simulate_trace_write_update
from ..memsim.stats import CoherenceStats
from ..memsim.tango import SharedLayout, TangoCollector
from ..obs import telemetry as obs
from ..route.path import RoutePath
from ..route.quality import QualityReport, circuit_height
from ..route.twobend import route_wire
from ..route.workmodel import COMMIT_CELL_UNITS, WorkCounter
from .results import NodeSummary, ParallelRunResult
from .timing import DEFAULT_COST_MODEL, CostModel

__all__ = ["run_shared_memory", "DEFAULT_LINE_SIZE", "LOOP_GRAB_UNITS"]

#: Cache line size used when none is specified (Table 5 uses 8-byte lines).
DEFAULT_LINE_SIZE = 8
#: Work units to grab a wire subscript from the distributed loop (the
#: shared counter fetch-and-add plus loop bookkeeping).
LOOP_GRAB_UNITS = 4.0


def run_shared_memory(
    circuit: Circuit,
    n_procs: int = 16,
    iterations: int = 3,
    assignment: Optional[Assignment] = None,
    line_size: int = DEFAULT_LINE_SIZE,
    extra_line_sizes: Sequence[int] = (),
    cost_model: CostModel = DEFAULT_COST_MODEL,
    collect_trace: bool = True,
    trace_chunks: int = 4,
    protocol: str = "invalidate",
    keep_trace: bool = False,
    check_invariants: bool = False,
    crashes: Sequence = (),
) -> ParallelRunResult:
    """Simulate the shared memory LocusRoute on *circuit*.

    Parameters
    ----------
    circuit, n_procs, iterations, cost_model:
        As for :func:`~repro.parallel.mp_sim.run_message_passing`.
    assignment:
        ``None`` selects the paper's dynamic distributed loop; a static
        :class:`~repro.assign.base.Assignment` reproduces the Table 5
        locality rows.
    line_size:
        Cache line size (bytes) for the primary coherence result.
    extra_line_sizes:
        Additional line sizes to replay the same trace through (Table 3);
        results land in ``meta["coherence_by_line_size"]``.
    collect_trace:
        Disable to skip tracing/coherence entirely (quality-only runs).
    trace_chunks:
        Sweeps per evaluation rectangle in the trace (see
        :class:`~repro.memsim.tango.TangoCollector`).
    protocol:
        Coherence protocol for the traffic replay: ``"invalidate"`` (the
        paper's Write-Back-with-Invalidate) or ``"update"`` (the
        Archibald & Baer write-update alternative; see
        :mod:`repro.memsim.update_protocol`).
    keep_trace:
        Stash the raw :class:`~repro.memsim.trace.ReferenceTrace` in
        ``meta["trace"]`` (and the :class:`~repro.memsim.tango.
        SharedLayout` in ``meta["layout"]``) so callers can replay it
        through other protocols or cache configurations.
    check_invariants:
        Run the :mod:`repro.verify` checkers alongside the simulation
        (cost-array conservation at every commit, barrier and end of
        run; MSI transition legality during the ``"invalidate"`` trace
        replays).  The report lands in ``meta["verification"]``; its
        counters are flushed into telemetry.
    crashes:
        Optional sequence of :class:`~repro.faults.NodeCrash` events
        mirroring the message passing fail-stop model: at its crash time
        a processor stops dead — its in-flight wire is returned to the
        distributed loop's self-scheduling queue (the next idle survivor
        picks it up) and the iteration barrier waits only on survivors.
        Requires the dynamic distributed loop (a static assignment has
        no mechanism for survivors to absorb a dead processor's list).
    """
    wall0, cpu0 = time.perf_counter(), time.process_time()
    if protocol not in ("invalidate", "update"):
        raise SimulationError(f"unknown coherence protocol {protocol!r}")
    if n_procs < 1:
        raise SimulationError("need at least one processor")
    if assignment is not None and (
        assignment.n_procs != n_procs or assignment.n_wires != circuit.n_wires
    ):
        raise SimulationError("assignment does not match circuit / processor count")
    crashes = tuple(crashes)
    if crashes:
        if assignment is not None:
            raise SimulationError(
                "crash recovery needs the dynamic distributed loop; a static "
                "assignment cannot re-schedule a dead processor's wires"
            )
        bad = [c.proc for c in crashes if not (0 <= c.proc < n_procs)]
        if bad:
            raise SimulationError(f"crash plan names unknown processors {bad}")
        if len({c.proc for c in crashes}) != len(crashes):
            raise SimulationError("crash plan names a processor twice")
        if len(crashes) >= n_procs:
            raise SimulationError("at least one processor must survive the crash plan")

    sim = Simulator()
    # Hierarchical (NUMA) timing: references outside a processor's own
    # region cost ``numa_remote_factor`` times a local one (§5.3.2).  The
    # region geometry matches the message passing mapping's Figure-2 grid.
    numa = cost_model.numa_remote_factor
    numa_regions = (
        RegionMap(circuit.n_channels, circuit.n_grids, n_procs)
        if numa != 1.0 and n_procs > 1
        else None
    )
    layout = SharedLayout(circuit.n_channels, circuit.n_grids, circuit.n_wires)
    tango = TangoCollector(layout, enabled=collect_trace, chunks=trace_chunks)
    truth = CostArray(circuit.n_channels, circuit.n_grids)
    paths: Dict[int, RoutePath] = {}
    wire_prices: Dict[int, int] = {}
    wire_router = np.zeros(circuit.n_wires, dtype=np.int64)

    monitor = None
    report = None
    if check_invariants:
        # Imported lazily: repro.verify's oracle imports this module.
        from ..verify.invariants import CostConservationMonitor
        from ..verify.violations import VerificationReport

        report = VerificationReport()
        monitor = CostConservationMonitor(report, truth, engine="shared_memory")

    clocks = [0.0] * n_procs
    counters = [WorkCounter() for _ in range(n_procs)]
    wires_routed = [0] * n_procs
    slow = cost_model.sm_slowdown

    # Wire sourcing: dynamic loop or per-processor static pointers.
    loop = DistributedLoop(range(circuit.n_wires)) if assignment is None else None
    static_lists = assignment.per_proc_lists() if assignment is not None else None
    static_pos = [0] * n_procs

    state = {"iteration": 0, "finish_time": 0.0}
    at_barrier: set = set()
    crashed = [False] * n_procs
    #: proc -> (wire_idx, cancellable commit handle) while a wire is in
    #: flight; a crash between start and commit cancels the commit and
    #: pushes the wire back into the loop.
    inflight: Dict[int, tuple] = {}
    #: wires ripped out of the truth array whose re-route died with its
    #: processor — the adopting survivor must skip the (already done)
    #: rip-up or it would remove the path twice.
    ripped_pending: set = set()

    def live_procs() -> list:
        return [p for p in range(n_procs) if not crashed[p]]

    def work_time(units: float) -> float:
        return cost_model.work_time(units) * slow

    def next_wire(proc: int) -> Optional[int]:
        if loop is not None:
            counters[proc].route_units += LOOP_GRAB_UNITS
            tango.record_loop_grab(clocks[proc], proc)
            clocks[proc] += work_time(LOOP_GRAB_UNITS)
            return loop.next_wire()
        lst = static_lists[proc]
        if static_pos[proc] >= len(lst):
            return None
        wire = lst[static_pos[proc]]
        static_pos[proc] += 1
        return wire

    def proc_step(proc: int, event_time: float) -> None:
        if crashed[proc]:
            return
        clocks[proc] = max(clocks[proc], event_time)
        wire_idx = next_wire(proc)
        if wire_idx is None:
            arrive_barrier(proc)
            return
        t0 = clocks[proc]
        wire = circuit.wire(wire_idx)

        old = paths.get(wire_idx)
        ripup_units = 0.0
        if old is not None and wire_idx in ripped_pending:
            # The wire's previous owner already ripped this path out of
            # the shared array before dying; only the re-route remains.
            old = None
        if old is not None:
            truth.remove_path(old.flat_cells, strict=True)
            ripped_pending.add(wire_idx)
            tango.record_ripup(t0, proc, wire_idx, old)
            if monitor is not None:
                monitor.on_ripup(wire_idx, old, t0)
            ripup_units = COMMIT_CELL_UNITS * old.n_cells
            counters[proc].add_commit(old.n_cells)

        result = route_wire(truth, wire, tie_break=state["iteration"] % 2)
        counters[proc].add_route(result.work_cells)
        commit_units = COMMIT_CELL_UNITS * result.path.n_cells
        counters[proc].add_commit(result.path.n_cells)
        total_units = ripup_units + result.work_cells + commit_units
        if numa_regions is not None:
            # Scale this wire's time by the remote fraction of its
            # evaluation footprint under the hierarchical memory model.
            channels, xs = result.path.coords()
            owners = numa_regions.owners_of_cells(channels, xs)
            remote_frac = float((owners != proc).mean())
            total_units *= (1.0 - remote_frac) + remote_frac * numa
        clocks[proc] = t0 + work_time(total_units)

        t_commit = clocks[proc]
        tango.record_evaluation(t0, t_commit, proc, result.segments)
        handle = sim.at(
            t_commit, lambda: commit(proc, wire_idx, result.path, t_commit)
        )
        inflight[proc] = (wire_idx, handle)

    def commit(proc: int, wire_idx: int, path: RoutePath, time: float) -> None:
        inflight.pop(proc, None)
        wire_prices[wire_idx] = truth.path_cost(path.flat_cells)
        truth.apply_path(path.flat_cells)
        ripped_pending.discard(wire_idx)
        tango.record_commit(time, proc, wire_idx, path)
        if monitor is not None:
            monitor.on_commit(wire_idx, path, time)
        paths[wire_idx] = path
        wire_router[wire_idx] = proc
        wires_routed[proc] += 1
        sim.at(time, lambda: proc_step(proc, time))

    def arrive_barrier(proc: int) -> None:
        at_barrier.add(proc)
        maybe_release_barrier()

    def maybe_release_barrier() -> None:
        live = live_procs()
        if not live or not at_barrier.issuperset(live):
            return
        # Every survivor arrived: the barrier releases at the latest
        # live clock (a dead processor's frozen clock never gates it).
        release = max(clocks[p] for p in live)
        at_barrier.clear()
        state["iteration"] += 1
        state["finish_time"] = release
        if monitor is not None:
            monitor.at_quiescence(release, f"barrier {state['iteration']}")
        if state["iteration"] >= iterations:
            return
        if loop is not None:
            loop.reset()
        else:
            for p in range(n_procs):
                static_pos[p] = 0
        for p in live:
            clocks[p] = release
        for p in live:
            sim.at(release, lambda p=p: proc_step(p, release))

    def do_crash(c) -> None:
        """Fail-stop a shared memory processor at its planned time."""
        proc = c.proc
        if crashed[proc]:
            return
        crashed[proc] = True
        entry = inflight.pop(proc, None)
        if entry is not None:
            wire_idx, handle = entry
            sim.cancel(handle)
            # The dead processor's half-routed wire re-enters the
            # distributed loop: self-scheduling is the recovery story on
            # the shared memory side.
            loop.push_back(wire_idx)
            # A survivor parked at the barrier must wake up to take it.
            parked = sorted(p for p in at_barrier if not crashed[p])
            if parked:
                waker = parked[0]
                at_barrier.discard(waker)
                sim.at(c.at_s, lambda p=waker, t=c.at_s: proc_step(p, t))
        at_barrier.discard(proc)
        maybe_release_barrier()

    for c in crashes:
        sim.at(c.at_s, lambda cc=c: do_crash(cc))

    for p in range(n_procs):
        sim.at(0.0, lambda p=p: proc_step(p, 0.0))
    sim.run()

    if state["iteration"] != iterations:
        raise SimulationError("shared memory run ended before all iterations completed")
    if len(paths) != circuit.n_wires:
        raise SimulationError("not every wire was routed")
    if ripped_pending:
        raise SimulationError(
            f"wires {sorted(ripped_pending)} were ripped up but never "
            "rerouted after a crash"
        )
    if sum(wires_routed) != circuit.n_wires * iterations:
        raise SimulationError(
            f"routed {sum(wires_routed)} wire instances, expected "
            f"{circuit.n_wires * iterations}"
        )

    if monitor is not None:
        monitor.at_end(paths, state["finish_time"])

    quality = QualityReport(
        circuit_height=circuit_height(truth),
        occupancy_factor=int(sum(wire_prices.values())),
        total_wire_cells=truth.total_occupancy(),
    )

    coherence: Optional[CoherenceStats] = None
    by_line: Dict[int, CoherenceStats] = {}
    if collect_trace:
        # The per-access invariant checker needs the scalar state machine;
        # without it, the invalidate sweep runs on the columnar engine,
        # flattening the trace once and replaying it per line size.
        columnar = None
        if (
            protocol == "invalidate"
            and report is None
            and active_kernels() == "vectorized"
        ):
            columnar = ColumnarTrace.from_trace(tango.trace)
        for ls in [line_size, *extra_line_sizes]:
            if ls in by_line:
                continue
            amap = AddressMap(
                circuit.n_channels,
                circuit.n_grids,
                ls,
                extra_words=layout.total_words - layout.array_words,
            )
            if protocol == "invalidate":
                if columnar is not None:
                    by_line[ls] = columnar.replay(n_procs, amap)
                    continue
                checker = None
                if report is not None:
                    from ..verify.invariants import CoherenceInvariantChecker

                    checker = CoherenceInvariantChecker(report)
                by_line[ls] = simulate_trace(tango.trace, n_procs, amap, checker=checker)
            else:
                by_line[ls] = simulate_trace_write_update(tango.trace, n_procs, amap)
        coherence = by_line[line_size]

    summaries = [
        NodeSummary(
            proc=p,
            wires_routed=wires_routed[p],
            finish_time_s=clocks[p],
            route_units=counters[p].route_units,
            commit_units=counters[p].commit_units,
            assemble_units=0.0,
            incorporate_units=0.0,
            messages_sent=0,
            messages_received=0,
            blocked_time_s=0.0,
        )
        for p in range(n_procs)
    ]
    meta: Dict[str, object] = {
        "assignment": assignment.method if assignment is not None else "distributed loop",
        "n_procs": n_procs,
        "iterations": iterations,
        "circuit": circuit.name,
        "line_size": line_size,
        "protocol": protocol,
        "trace_records": tango.trace.n_records,
        "trace_references": tango.trace.n_references,
    }
    if crashes:
        meta["crash"] = {
            "planned": [[int(c.proc), float(c.at_s)] for c in crashes],
            "survivors": live_procs(),
            "requeued_wires": int(loop.requeues),
        }
    if by_line:
        meta["coherence_by_line_size"] = {ls: s.as_dict() for ls, s in by_line.items()}
    if keep_trace and collect_trace:
        meta["trace"] = tango.trace
        meta["layout"] = layout
    if report is not None:
        from ..verify.violations import RunVerification

        meta["verification"] = report.as_dict()
        meta["verification_report"] = RunVerification(report, monitor.commit_times)
        report.flush_telemetry()
    obs.record_span(
        "sim.sm", time.perf_counter() - wall0, time.process_time() - cpu0
    )
    obs.incr("sim.sm.runs")
    obs.incr("sim.sm.trace_references", tango.trace.n_references)
    return ParallelRunResult(
        paradigm="shared_memory",
        quality=quality,
        exec_time_s=state["finish_time"],
        paths=paths,
        wire_router=wire_router,
        node_summaries=summaries,
        truth=truth,
        coherence=coherence,
        meta=meta,
    )
