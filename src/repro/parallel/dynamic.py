"""Dynamic wire assignment over message passing (paper §4.2).

The paper discusses — and rejects, because CBS could not simulate message
interrupts — two *dynamic* wire distribution schemes for the message
passing mapping before settling on static assignment:

1. a **wire assignment processor** that also routes wires and answers
   task-request messages only between wires, so "a processor may have to
   wait for an entire wire to be routed before the wire assignment
   processor even retrieves the task request message from its queue";
2. the same, but with **interrupt-driven** request servicing, which
   "can offer wire distribution with lower latency".

This module implements both (our event kernel *can* model interrupts) so
the latency claim is measurable: :func:`run_dynamic_assignment` returns
the usual run result plus per-node task-wait statistics, and
``benchmarks/bench_a3_dynamic_assignment.py`` compares polled servicing,
interrupt servicing, and the paper's static assignment.

Scope: dynamic distribution is simulated for a single routing iteration —
under dynamic assignment a wire may migrate between processors across
iterations, and its old path (needed for rip-up) lives only on the node
that routed it, which is exactly the kind of complication that pushed the
paper to static assignment.  Sender-initiated update schedules are
supported; receiver-initiated lookahead is not (a node cannot look ahead
through wires it has not been granted yet).
"""

from __future__ import annotations

import heapq
import itertools
import math
from dataclasses import dataclass
from typing import Dict, List, Optional

import numpy as np

from ..circuits.model import Circuit
from ..errors import ProtocolError, SimulationError
from ..events.sim import Simulator
from ..grid.cost_array import CostArray
from ..grid.delta import DeltaArray
from ..grid.regions import RegionMap, proc_grid_shape
from ..netsim.message import Delivery, Message
from ..netsim.topology import MeshTopology
from ..netsim.wormhole import WormholeNetwork
from ..route.path import RoutePath
from ..route.quality import QualityReport, circuit_height
from ..route.twobend import route_wire
from ..route.workmodel import COMMIT_CELL_UNITS, SCAN_CELL_UNITS, WorkCounter
from ..updates.packets import build_loc_data, build_rmt_data
from ..updates.schedule import UpdateSchedule
from .results import NodeSummary, ParallelRunResult
from .timing import DEFAULT_COST_MODEL, CostModel

__all__ = ["run_dynamic_assignment", "TaskMessage", "TASK_MESSAGE_BYTES"]

#: Task request/grant packets: header-sized control messages.
TASK_MESSAGE_BYTES = 12
#: The wire assignment processor (also routes wires, as in the paper).
MASTER = 0


@dataclass(frozen=True)
class TaskMessage:
    """A wire-request or wire-grant control message.

    ``wire_idx`` is ``None`` for requests; grants carry the assigned wire
    index or ``-1`` for "no wires left".
    """

    kind: str  # "req" or "grant"
    src: int
    dst: int
    wire_idx: Optional[int] = None


class _DynamicNode:
    """A processor under dynamic wire distribution."""

    def __init__(self, proc, circuit, regions, schedule, cost_model, ctx):
        self.proc = proc
        self.circuit = circuit
        self.regions = regions
        self.schedule = schedule
        self.cost_model = cost_model
        self.ctx = ctx
        self.view = CostArray(circuit.n_channels, circuit.n_grids)
        self.delta = DeltaArray(circuit.n_channels, circuit.n_grids)
        self.own_region = regions.region(proc)
        self.neighbors = regions.neighbors(proc)
        self.clock = 0.0
        self.work = WorkCounter()
        self.wires_routed = 0
        self.finish_time = math.nan
        self.total_wait_s = 0.0
        self.n_waits = 0
        self.messages_sent = 0
        self.messages_received = 0
        self._since_loc = 0
        self._since_rmt = 0
        self._inbox: List = []
        self._seq = itertools.count()
        self._busy = False  # routing a wire (master defers polled requests)
        self._waiting_grant = False
        self._wait_started = 0.0
        self._done = False
        self._total_area = circuit.n_channels * circuit.n_grids

    # -- control-message plumbing --------------------------------------
    def deliver(self, payload, arrive_time: float) -> None:
        self.messages_received += 1
        if (
            isinstance(payload, TaskMessage)
            and payload.kind == "req"
            and self.schedule.interrupt_reception
        ):
            # Interrupt-driven servicing: grant immediately at arrival.
            service = arrive_time + self.cost_model.interrupt_overhead_s
            if self._busy:
                self.clock += self.cost_model.interrupt_overhead_s
            self.ctx.grant_wire(self, payload.src, at=service)
            return
        heapq.heappush(self._inbox, (arrive_time, next(self._seq), payload))
        if not self._busy:
            self.ctx.sim.at(max(self.clock, arrive_time), self.step)

    def _drain(self) -> None:
        while self._inbox and self._inbox[0][0] <= self.clock:
            _, _, payload = heapq.heappop(self._inbox)
            if isinstance(payload, TaskMessage):
                if payload.kind == "req":
                    self.clock += self.cost_model.packet_fixed_s
                    self.ctx.grant_wire(self, payload.src, at=self.clock)
                elif payload.kind == "grant":
                    self._waiting_grant = False
                    self.total_wait_s += max(0.0, self.clock - self._wait_started)
                    self.n_waits += 1
                    if payload.wire_idx is None or payload.wire_idx < 0:
                        self._done = True
                        self.finish_time = self.clock
                        self.ctx.node_done(self)
                    else:
                        self._route(payload.wire_idx)
            else:  # an update packet: fold absolute data / deltas in
                self.clock += self.cost_model.packet_fixed_s
                if payload.kind.name == "SEND_LOC_DATA":
                    self.view.replace(payload.bbox, payload.values)
                elif payload.kind.name == "SEND_RMT_DATA":
                    self.view.accumulate(payload.bbox, payload.values)
                    self.delta.accumulate(payload.bbox, payload.values)
                self.work.add_incorporate(payload.payload_cells)
                self.clock += self.cost_model.work_time(payload.payload_cells)

    def step(self) -> None:
        """Between-wires point: drain messages, then ask for work."""
        if self._busy or self._done:
            return
        self.clock = max(self.clock, self.ctx.sim.now)
        self._drain()
        if self._done or self._waiting_grant:
            return
        # Ask for the next wire (the master asks itself, instantly).
        self._waiting_grant = True
        self._wait_started = self.clock
        if self.proc == MASTER:
            self.ctx.grant_wire(self, MASTER, at=self.clock)
        else:
            self.ctx.send_task(self, TaskMessage("req", self.proc, MASTER), self.clock)

    def receive_grant_locally(self, wire_idx: int) -> None:
        """The master hands itself a wire without network traffic."""
        self._waiting_grant = False
        self.n_waits += 1
        if wire_idx < 0:
            self._done = True
            self.finish_time = self.clock
            self.ctx.node_done(self)
            return
        self._route(wire_idx)

    # -- routing --------------------------------------------------------
    def _route(self, wire_idx: int) -> None:
        self._busy = True
        wire = self.circuit.wire(wire_idx)
        result = route_wire(self.view, wire)
        self.work.add_route(result.work_cells)
        commit_units = COMMIT_CELL_UNITS * result.path.n_cells
        self.work.add_commit(result.path.n_cells)
        self.clock += self.cost_model.work_time(result.work_cells + commit_units)
        self.ctx.sim.at(self.clock, lambda: self._commit(wire_idx, result))

    def _commit(self, wire_idx: int, result) -> None:
        self.view.apply_path(result.path.flat_cells)
        self.delta.record_path(result.path.flat_cells, +1)
        self.ctx.on_commit(self.proc, wire_idx, result.path, self.clock)
        self.wires_routed += 1
        self._since_loc += 1
        self._since_rmt += 1
        self._push_updates()
        self._busy = False
        self.ctx.sim.at(self.clock, self.step)

    def _push_updates(self) -> None:
        k1 = self.schedule.send_loc_every
        if k1 is not None and self._since_loc >= k1:
            self._since_loc = 0
            self.work.add_scan(self.own_region.area)
            self.clock += self.cost_model.work_time(SCAN_CELL_UNITS * self.own_region.area)
            packet = build_loc_data(self.proc, self.proc, self.view, self.delta, self.own_region)
            if packet is not None:
                for neighbor in self.neighbors:
                    clone = type(packet)(
                        kind=packet.kind, src=self.proc, dst=neighbor,
                        bbox=packet.bbox, values=packet.values, region_owner=self.proc,
                    )
                    self._emit_update(clone)
                self.delta.clear_region(self.own_region)
        k2 = self.schedule.send_rmt_every
        if k2 is not None and self._since_rmt >= k2:
            self._since_rmt = 0
            scan = self._total_area - self.own_region.area
            self.work.add_scan(scan)
            self.clock += self.cost_model.work_time(SCAN_CELL_UNITS * scan)
            for owner in range(self.regions.n_procs):
                if owner == self.proc:
                    continue
                region = self.regions.region(owner)
                packet = build_rmt_data(self.proc, owner, self.delta, region)
                if packet is not None:
                    self._emit_update(packet)
                    self.delta.clear_region(region)

    def _emit_update(self, packet) -> None:
        self.work.add_marshal(packet.payload_cells)
        self.clock += (
            self.cost_model.packet_fixed_s
            + self.cost_model.work_time(packet.payload_cells)
        )
        self.messages_sent += 1
        self.ctx.send_packet(packet, self.clock)


class _DynamicContext:
    """Shared run state: the loop counter, network, and ground truth."""

    def __init__(self, sim, network, circuit, nodes_ref):
        self.sim = sim
        self.network = network
        self.circuit = circuit
        self.nodes = nodes_ref
        self.next_wire = 0
        self.truth = CostArray(circuit.n_channels, circuit.n_grids)
        self.paths: Dict[int, RoutePath] = {}
        self.prices: Dict[int, int] = {}
        self.wire_router = np.zeros(circuit.n_wires, dtype=np.int64)
        self.done_count = 0

    def grant_wire(self, master_node, requester: int, at: float) -> None:
        wire_idx = self.next_wire if self.next_wire < self.circuit.n_wires else -1
        if wire_idx >= 0:
            self.next_wire += 1
        if requester == MASTER:
            master_node.receive_grant_locally(wire_idx)
        else:
            self.send_task(
                master_node, TaskMessage("grant", MASTER, requester, wire_idx), at
            )

    def send_task(self, node, message: TaskMessage, at: float) -> None:
        node.messages_sent += 1
        msg = Message(message.src, message.dst, TASK_MESSAGE_BYTES, message)
        self.sim.at(at, lambda: self.network.send(msg, max(at, self.sim.now)))

    def send_packet(self, packet, at: float) -> None:
        msg = Message(packet.src, packet.dst, packet.length_bytes, packet)
        self.sim.at(at, lambda: self.network.send(msg, max(at, self.sim.now)))

    def on_commit(self, proc, wire_idx, path, time) -> None:
        self.prices[wire_idx] = self.truth.path_cost(path.flat_cells)
        self.truth.apply_path(path.flat_cells)
        self.paths[wire_idx] = path
        self.wire_router[wire_idx] = proc

    def node_done(self, node) -> None:
        self.done_count += 1


def run_dynamic_assignment(
    circuit: Circuit,
    schedule: Optional[UpdateSchedule] = None,
    n_procs: int = 16,
    cost_model: CostModel = DEFAULT_COST_MODEL,
) -> ParallelRunResult:
    """Simulate one routing iteration under dynamic wire distribution.

    ``schedule.interrupt_reception`` selects the §4.2 interrupt-driven
    variant; sender-initiated update parameters are honoured;
    receiver-initiated parameters are rejected (no lookahead is possible).
    """
    schedule = schedule or UpdateSchedule()
    if schedule.has_receiver_initiated:
        raise ProtocolError(
            "dynamic assignment cannot look ahead: receiver-initiated "
            "schedules are not supported (see module docstring)"
        )
    shape = proc_grid_shape(n_procs)
    regions = RegionMap(circuit.n_channels, circuit.n_grids, n_procs, shape)
    sim = Simulator()
    nodes: List[_DynamicNode] = []

    def on_deliver(delivery: Delivery) -> None:
        nodes[delivery.message.dst].deliver(delivery.message.payload, delivery.arrive_time)

    network = WormholeNetwork(
        sim,
        MeshTopology(n_procs, shape),
        on_deliver,
        hop_time_s=cost_model.hop_time_s,
        process_time_s=cost_model.process_time_s,
    )
    ctx = _DynamicContext(sim, network, circuit, nodes)
    for proc in range(n_procs):
        nodes.append(_DynamicNode(proc, circuit, regions, schedule, cost_model, ctx))
    for node in nodes:
        sim.at(0.0, node.step)
    sim.run()

    if len(ctx.paths) != circuit.n_wires:
        raise SimulationError("dynamic run did not route every wire")
    exec_time = max(n.finish_time for n in nodes)
    quality = QualityReport(
        circuit_height=circuit_height(ctx.truth),
        occupancy_factor=int(sum(ctx.prices.values())),
        total_wire_cells=ctx.truth.total_occupancy(),
    )
    summaries = [
        NodeSummary(
            proc=n.proc,
            wires_routed=n.wires_routed,
            finish_time_s=n.finish_time,
            route_units=n.work.route_units,
            commit_units=n.work.commit_units,
            assemble_units=n.work.assemble_units,
            incorporate_units=n.work.incorporate_units,
            messages_sent=n.messages_sent,
            messages_received=n.messages_received,
            blocked_time_s=n.total_wait_s,
        )
        for n in nodes
    ]
    mean_wait = float(
        np.mean([n.total_wait_s / max(n.n_waits, 1) for n in nodes if n.proc != MASTER])
    )
    return ParallelRunResult(
        paradigm="message_passing",
        quality=quality,
        exec_time_s=exec_time,
        paths=ctx.paths,
        wire_router=ctx.wire_router,
        node_summaries=summaries,
        truth=ctx.truth,
        network=network.stats,
        meta={
            "schedule": schedule.describe(),
            "assignment": "dynamic"
            + (" (interrupt)" if schedule.interrupt_reception else " (polled)"),
            "n_procs": n_procs,
            "iterations": 1,
            "circuit": circuit.name,
            "mean_task_wait_s": mean_wait,
        },
    )
