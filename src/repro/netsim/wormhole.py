"""Wormhole-routed network with link contention (the CBS network model).

Latency model (paper §2.1), for a packet of ``L`` bytes travelling ``D``
hops on one-byte-wide channels with no contention::

    2 * ProcessTime + HopTime * (D + L)

ProcessTime (2000 ns) is the node/network copy cost paid at each end;
HopTime (100 ns) is one byte across one link.  These default constants
"roughly model the performance of the Ametek Series 2010".

Contention model
----------------
CBS models network contention; we reproduce it at the link-reservation
level rather than per-flit.  In wormhole routing the packet's flits form a
train: the header reaches link *i* of its route ``i * HopTime`` after the
train starts moving, and the tail clears that link ``L`` byte-times later.
A packet therefore holds link *i* during::

    [t_start + i * HopTime,  t_start + (i + 1 + L) * HopTime)

A new packet must wait until every link of its route is free before its
train starts (head-of-line blocking collapses onto the whole-route
reservation, a standard wormhole approximation); ``t_start`` is the
earliest time all links are simultaneously available after injection.
This reproduces the qualitative CBS behaviours that matter for the paper:
bursts of sender-initiated updates queue behind each other, and traffic
hot spots delay delivery, while keeping the simulation O(D) per message.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Callable, Dict, List, Optional, Tuple

import numpy as np

from ..errors import NetworkError
from ..events.sim import Simulator
from ..kernels import active_kernels
from .message import Delivery, Message
from .stats import NetworkStats
from .topology import MeshTopology

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (faults -> netsim)
    from ..faults.injector import FaultDecision, FaultInjector

__all__ = ["WormholeNetwork", "HOP_TIME_S", "PROCESS_TIME_S"]

#: One byte across one link: 100 ns (paper §2.1).
HOP_TIME_S = 100e-9
#: Node <-> network copy cost per end: 2000 ns (paper §2.1).
PROCESS_TIME_S = 2000e-9


class WormholeNetwork:
    """Contention-aware wormhole network bound to a :class:`Simulator`.

    Parameters
    ----------
    sim:
        The discrete-event kernel carrying virtual time.
    topology:
        Link structure and deterministic routes.
    hop_time_s, process_time_s:
        Timing constants (defaults are the paper's).  ``hop_time_s`` must
        be strictly positive; ``process_time_s`` may be 0 — a legitimate
        ideal-network ablation with free node/network copies.
    on_deliver:
        Callback invoked as ``on_deliver(delivery)`` when a message
        arrives at its destination.
    faults:
        Optional :class:`~repro.faults.FaultInjector`; when present,
        every send attempt is submitted to it and the decided faults
        (drop / duplicate / delay / reorder, plus link outage and node
        stall windows) are applied.  Dropped packets never enter the
        network: they reserve no links and appear in no conservation
        counter except the injector's own :class:`FaultStats`.
    """

    def __init__(
        self,
        sim: Simulator,
        topology: MeshTopology,
        on_deliver: Callable[[Delivery], None],
        hop_time_s: float = HOP_TIME_S,
        process_time_s: float = PROCESS_TIME_S,
        faults: Optional["FaultInjector"] = None,
    ) -> None:
        if hop_time_s <= 0:
            raise NetworkError(f"hop_time_s must be positive, got {hop_time_s}")
        if process_time_s < 0:
            raise NetworkError(
                f"process_time_s must be non-negative, got {process_time_s}"
            )
        self.sim = sim
        self.topology = topology
        self.on_deliver = on_deliver
        self.hop_time_s = hop_time_s
        self.process_time_s = process_time_s
        self.faults = faults
        self._link_free_at = np.zeros(topology.n_links, dtype=np.float64)
        self._link_busy_s = np.zeros(topology.n_links, dtype=np.float64)
        # Routes are deterministic per (src, dst); the vectorised kernel
        # caches them as (tuple, int64 array) pairs so the Python route
        # walk is paid once per pair, and keeps a lazily grown [1, 2, ...]
        # hop-index ladder for the batched reservation update.  The tuple
        # feeds the scalar update used below BATCH_MIN_HOPS, the array
        # feeds the fancy-indexed batch update above it.
        self._route_cache: Dict[Tuple[int, int], Tuple[Tuple[int, ...], np.ndarray]] = {}
        self._hop_steps = np.arange(1, 9, dtype=np.float64)
        self.stats = NetworkStats()
        # Conservation counters (independent of ``stats`` so the
        # verification layer can cross-check the two accounts).
        self.messages_injected = 0
        self.messages_delivered = 0
        self.bytes_injected = 0
        self.bytes_delivered = 0
        self.in_flight = 0

    def link_utilization(self, elapsed_s: float) -> np.ndarray:
        """Per-link busy fraction over *elapsed_s* seconds of virtual time.

        A hot-spot diagnostic: the fraction of time each unidirectional
        channel carried flits.  Pass the run's makespan (or ``sim.now``).
        """
        if elapsed_s <= 0:
            raise NetworkError("elapsed time must be positive")
        return self._link_busy_s / elapsed_s

    def uncontended_latency(self, src: int, dst: int, length_bytes: int) -> float:
        """The paper's closed-form latency: 2*ProcessTime + HopTime*(D+L).

        Self-addressed packets never enter the network: the only cost is
        the two node/network copies, so the floor is ``2 * ProcessTime``.
        """
        if src == dst:
            return 2 * self.process_time_s
        hops = self.topology.hop_distance(src, dst)
        return 2 * self.process_time_s + self.hop_time_s * (hops + length_bytes)

    def send(
        self, message: Message, inject_time: Optional[float] = None
    ) -> Optional[Delivery]:
        """Inject *message* and schedule its delivery; returns the record.

        ``inject_time`` defaults to the simulator's current time; it may be
        in the future (a node handing over a packet at the end of its
        current computation), never in the past.

        Self-addressed messages (``src == dst`` — retry/re-request paths
        produce them) loop back locally after ``2 * process_time_s`` with
        no link occupancy.

        With a fault injector installed the packet may be dropped
        (returns ``None``), duplicated (two trains, two deliveries; the
        last delivery record is returned), delayed, or deferred by link
        outage / node stall windows.
        """
        now = self.sim.now
        t_inject = now if inject_time is None else inject_time
        if t_inject < now:
            raise NetworkError(f"inject time {t_inject} is in the past (now={now})")

        copies = 1
        extra_delay_s = 0.0
        if self.faults is not None:
            decision = self.faults.on_send(message)
            if decision.drop:
                return None
            copies = decision.copies
            extra_delay_s = decision.extra_delay_s

        delivery: Optional[Delivery] = None
        for _ in range(copies):
            delivery = self._transmit(message, t_inject, extra_delay_s)
        return delivery

    #: Routes shorter than this use the scalar reservation update even in
    #: vectorised mode: fancy indexing costs ~1.5 us of fixed overhead,
    #: which only amortises past ~8 links (measured crossover).  Mesh
    #: diameters at MAX_PROCS stay near this boundary, so both branches
    #: are exercised by realistic topologies.
    BATCH_MIN_HOPS = 8

    def _cached_route(self, src: int, dst: int) -> Tuple[Tuple[int, ...], np.ndarray]:
        """The deterministic route, cached as a (tuple, int64 array) pair."""
        key = (src, dst)
        cached = self._route_cache.get(key)
        if cached is None:
            route = self.topology.route(src, dst)
            cached = (tuple(route), np.asarray(route, dtype=np.int64))
            self._route_cache[key] = cached
        return cached

    def _transmit(
        self, message: Message, t_inject: float, extra_delay_s: float
    ) -> Delivery:
        """Reserve links and schedule one delivery of *message*."""
        length = message.length_bytes
        if message.src == message.dst:
            # Local loop-back: the packet is copied out of and back into
            # the same node, crossing no links.
            hops = 0
            arrive = t_inject + 2 * self.process_time_s + extra_delay_s
        else:
            vectorized = active_kernels() == "vectorized"
            if vectorized:
                links_seq, links = self._cached_route(message.src, message.dst)
                hops = len(links_seq)
            else:
                links = self.topology.route(message.src, message.dst)
                links_seq = links
                hops = len(links)
            batch = vectorized and hops >= self.BATCH_MIN_HOPS
            # The train may start once the source has copied the packet
            # out and every link on the route is free.
            earliest = t_inject + self.process_time_s
            if batch or not vectorized:
                earliest = max(earliest, float(self._link_free_at[links].max()))
            else:
                free = self._link_free_at
                for link in links_seq:
                    t = free[link]
                    if t > earliest:
                        earliest = t
                earliest = float(earliest)
            if self.faults is not None:
                earliest = self.faults.outage_release(links, earliest)
            t_start = earliest
            # Link i is held until the tail byte has crossed it; the flit
            # train itself occupies each link for (L + 1) byte-times.
            # Dimension-order routes never revisit a link, so the fancy
            # indexed batch assignment touches each entry exactly once.
            if batch:
                while self._hop_steps.size < hops:
                    self._hop_steps = np.arange(
                        1, 2 * self._hop_steps.size + 1, dtype=np.float64
                    )
                steps = self._hop_steps[:hops]
                self._link_free_at[links] = t_start + self.hop_time_s * (
                    steps + length
                )
                self._link_busy_s[links] += self.hop_time_s * (length + 1)
            else:
                for i, link in enumerate(links_seq):
                    self._link_free_at[link] = t_start + self.hop_time_s * (
                        i + 1 + length
                    )
                    self._link_busy_s[link] += self.hop_time_s * (length + 1)
            transfer_s = self.hop_time_s * (hops + length)
            arrive = t_start + transfer_s + self.process_time_s + extra_delay_s
            if self.faults is not None:
                arrive += self.faults.slowdown_delay(links, t_start, transfer_s)
        if self.faults is not None:
            arrive = self.faults.stall_release(message.dst, arrive)

        delivery = Delivery(
            message=message, inject_time=t_inject, arrive_time=arrive, hops=hops
        )
        self.stats.record(delivery)
        self.messages_injected += 1
        self.bytes_injected += length
        self.in_flight += 1
        self.sim.at(arrive, lambda d=delivery: self._deliver(d))
        return delivery

    def _deliver(self, delivery: Delivery) -> None:
        self.messages_delivered += 1
        self.bytes_delivered += delivery.message.length_bytes
        self.in_flight -= 1
        self.on_deliver(delivery)
