"""CBS-style message passing architecture simulator.

A k-ary 2-cube (unidirectional torus) with deterministic dimension-order
wormhole routing, link contention, and the paper's timing constants
(HopTime = 100 ns, ProcessTime = 2000 ns; packet latency
``2*ProcessTime + HopTime*(D+L)``).  See DESIGN.md §2 for the mapping to
the original CBS simulator.
"""

from .kary_ncube import KaryNCubeTopology
from .message import Delivery, Message
from .stats import NetworkStats
from .topology import MeshTopology
from .wormhole import HOP_TIME_S, PROCESS_TIME_S, WormholeNetwork

__all__ = [
    "Message",
    "Delivery",
    "NetworkStats",
    "MeshTopology",
    "KaryNCubeTopology",
    "WormholeNetwork",
    "HOP_TIME_S",
    "PROCESS_TIME_S",
]
