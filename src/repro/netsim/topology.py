"""CBS machine topology: a k-ary 2-cube with unidirectional channels.

Paper §2.1: "CBS simulates a k-ary n-dimensional hypercube machine (with a
total of k^n processors) ... with a two-dimensional mesh interconnection
... There are unidirectional channels connecting each processor to two of
its four neighbors."

That description is Dally's unidirectional k-ary n-cube (torus): every
node owns exactly one outgoing channel per dimension, pointing in the
positive direction and wrapping at the edge.  Hop distance in a dimension
is therefore ``(dst - src) mod k``.  Non-square processor counts (the
paper's 2-processor baseline) use a ``rows x cols`` radix per dimension,
the natural generalisation.

:class:`MeshTopology` owns the link table: link ids are dense integers so
the wormhole simulator can keep per-link state in flat arrays.
"""

from __future__ import annotations

from typing import List, Tuple

from ..errors import NetworkError
from ..grid.regions import proc_grid_shape

__all__ = ["MeshTopology"]


class MeshTopology:
    """Unidirectional 2-D torus over ``rows x cols`` nodes.

    Each node has two outgoing links: ``+col`` (east, wrapping) and
    ``+row`` (south, wrapping).  Links are identified as
    ``node * 2 + dim`` with ``dim`` 0 for the column (x) dimension and 1
    for the row (y) dimension.  Degenerate dimensions (a single row or
    column) have no links in that dimension.
    """

    X_DIM = 0
    Y_DIM = 1

    def __init__(self, n_procs: int, shape: Tuple[int, int] = None) -> None:
        if shape is None:
            shape = proc_grid_shape(n_procs)
        rows, cols = shape
        if rows * cols != n_procs:
            raise NetworkError(f"shape {shape} does not hold {n_procs} nodes")
        self.n_procs = n_procs
        self.rows = rows
        self.cols = cols
        self.n_links = 2 * n_procs

    def coords(self, node: int) -> Tuple[int, int]:
        """Mesh coordinates ``(row, col)`` of *node*."""
        self._check(node)
        return divmod(node, self.cols)

    def node_at(self, row: int, col: int) -> int:
        """Node id at ``(row, col)`` (coordinates taken modulo the radix)."""
        return (row % self.rows) * self.cols + (col % self.cols)

    def link_id(self, node: int, dim: int) -> int:
        """Dense id of *node*'s outgoing link in dimension *dim*."""
        self._check(node)
        if dim not in (self.X_DIM, self.Y_DIM):
            raise NetworkError(f"bad dimension {dim}")
        return node * 2 + dim

    def hop_distance(self, src: int, dst: int) -> int:
        """Total hops of the dimension-order route from *src* to *dst*."""
        (r1, c1), (r2, c2) = self.coords(src), self.coords(dst)
        dx = (c2 - c1) % self.cols if self.cols > 1 else 0
        dy = (r2 - r1) % self.rows if self.rows > 1 else 0
        return dx + dy

    def route(self, src: int, dst: int) -> List[int]:
        """Link ids of the deterministic dimension-order (x then y) route.

        Wormhole routing is deterministic in CBS; x travels first, then y,
        always in the positive (wrapping) direction.  An empty list means
        ``src == dst`` (local delivery, no network traversal).
        """
        self._check(src)
        self._check(dst)
        links: List[int] = []
        row, col = self.coords(src)
        dst_row, dst_col = self.coords(dst)
        while col != dst_col:
            links.append(self.link_id(self.node_at(row, col), self.X_DIM))
            col = (col + 1) % self.cols
        while row != dst_row:
            links.append(self.link_id(self.node_at(row, col), self.Y_DIM))
            row = (row + 1) % self.rows
        return links

    def _check(self, node: int) -> None:
        if not (0 <= node < self.n_procs):
            raise NetworkError(f"node {node} out of range [0, {self.n_procs})")

    def __repr__(self) -> str:
        return f"MeshTopology({self.rows}x{self.cols})"
