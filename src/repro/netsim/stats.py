"""Network traffic accounting.

The paper's headline message passing metric is "MBytes Xfrd." — total bytes
injected into the network.  :class:`NetworkStats` accumulates that plus the
per-kind breakdowns and latency aggregates used in EXPERIMENTS.md.
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass, field
from typing import Any, Dict

from .message import Delivery

__all__ = ["NetworkStats"]


@dataclass
class NetworkStats:
    """Running totals over every delivered message."""

    n_messages: int = 0
    total_bytes: int = 0
    total_hop_bytes: int = 0  #: bytes x hops (link-level load)
    total_hops: int = 0  #: summed route lengths (header-flit link crossings)
    total_latency_s: float = 0.0
    max_latency_s: float = 0.0
    bytes_by_kind: Dict[str, int] = field(default_factory=lambda: defaultdict(int))
    messages_by_kind: Dict[str, int] = field(default_factory=lambda: defaultdict(int))

    def record(self, delivery: Delivery) -> None:
        """Fold one delivery into the totals.

        If the payload exposes a ``kind`` attribute (update packets do),
        per-kind breakdowns are kept as well.
        """
        msg = delivery.message
        self.n_messages += 1
        self.total_bytes += msg.length_bytes
        self.total_hop_bytes += msg.length_bytes * delivery.hops
        self.total_hops += delivery.hops
        self.total_latency_s += delivery.latency
        self.max_latency_s = max(self.max_latency_s, delivery.latency)
        kind = getattr(msg.payload, "kind", None)
        if kind is not None:
            key = getattr(kind, "name", str(kind))
            self.bytes_by_kind[key] += msg.length_bytes
            self.messages_by_kind[key] += 1

    @property
    def mbytes(self) -> float:
        """Total traffic in megabytes (the paper's unit, 10^6 bytes)."""
        return self.total_bytes / 1e6

    @property
    def mean_latency_s(self) -> float:
        """Mean end-to-end message latency."""
        return self.total_latency_s / self.n_messages if self.n_messages else 0.0

    def rates(self, elapsed_s: float) -> Dict[str, float]:
        """Messages/bytes per second over *elapsed_s* seconds.

        *elapsed_s* is whatever clock the caller cares about — the run's
        simulated makespan for offered-load figures, or harness wall time
        for simulator-throughput telemetry.  Must be positive.
        """
        if elapsed_s <= 0:
            raise ValueError(f"elapsed time must be positive, got {elapsed_s}")
        return {
            "messages_per_s": self.n_messages / elapsed_s,
            "bytes_per_s": self.total_bytes / elapsed_s,
        }

    def as_dict(self) -> Dict[str, Any]:
        """Plain-dict summary for JSON dumps."""
        return {
            "n_messages": self.n_messages,
            "total_bytes": self.total_bytes,
            "mbytes": self.mbytes,
            "total_hop_bytes": self.total_hop_bytes,
            "total_hops": self.total_hops,
            "mean_latency_s": self.mean_latency_s,
            "max_latency_s": self.max_latency_s,
            "bytes_by_kind": dict(self.bytes_by_kind),
            "messages_by_kind": dict(self.messages_by_kind),
        }
