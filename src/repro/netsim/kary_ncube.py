"""General k-ary n-cube topologies (the full CBS machine model).

Paper §2.1: "CBS simulates a k-ary n-dimensional hypercube machine (with a
total of k^n processors)".  The experiments only use the two-dimensional
mesh configuration (:class:`~repro.netsim.topology.MeshTopology`), but the
substrate supports the general machine: :class:`KaryNCubeTopology` builds
any mixed-radix unidirectional torus — a binary hypercube is ``dims=(2,) *
n``, a 4x4 mesh is ``dims=(4, 4)``, a 3-D torus is ``dims=(4, 4, 4)`` —
with deterministic dimension-order routing, ready to drop into
:class:`~repro.netsim.wormhole.WormholeNetwork`.

Each node owns one outgoing link per non-degenerate dimension, pointing in
the positive (wrapping) direction; hop distance in dimension *i* is
``(dst_i - src_i) mod k_i``.
"""

from __future__ import annotations

from typing import List, Sequence, Tuple

from ..errors import NetworkError

__all__ = ["KaryNCubeTopology"]


class KaryNCubeTopology:
    """A unidirectional mixed-radix k-ary n-cube.

    Parameters
    ----------
    dims:
        Radix per dimension, most-significant first; the node id of
        coordinates ``(c_0, .., c_{n-1})`` is the mixed-radix number with
        ``c_{n-1}`` least significant.
    """

    def __init__(self, dims: Sequence[int]) -> None:
        dims = tuple(int(k) for k in dims)
        if not dims or any(k < 1 for k in dims):
            raise NetworkError(f"bad cube dimensions {dims}")
        self.dims = dims
        self.n_dims = len(dims)
        self.n_procs = 1
        for k in dims:
            self.n_procs *= k
        self.n_links = self.n_procs * self.n_dims

    # ------------------------------------------------------------------
    def coords(self, node: int) -> Tuple[int, ...]:
        """Mixed-radix coordinates of *node* (most significant first)."""
        self._check(node)
        out = []
        rest = node
        for k in reversed(self.dims):
            out.append(rest % k)
            rest //= k
        return tuple(reversed(out))

    def node_at(self, coords: Sequence[int]) -> int:
        """Node id at *coords* (each taken modulo its radix)."""
        if len(coords) != self.n_dims:
            raise NetworkError(
                f"need {self.n_dims} coordinates, got {len(coords)}"
            )
        node = 0
        for c, k in zip(coords, self.dims):
            node = node * k + (c % k)
        return node

    def link_id(self, node: int, dim: int) -> int:
        """Dense id of *node*'s outgoing link in dimension *dim*."""
        self._check(node)
        if not (0 <= dim < self.n_dims):
            raise NetworkError(f"bad dimension {dim}")
        return node * self.n_dims + dim

    # ------------------------------------------------------------------
    def hop_distance(self, src: int, dst: int) -> int:
        """Dimension-order route length from *src* to *dst*."""
        a, b = self.coords(src), self.coords(dst)
        return sum(
            (bi - ai) % k if k > 1 else 0 for ai, bi, k in zip(a, b, self.dims)
        )

    def route(self, src: int, dst: int) -> List[int]:
        """Link ids of the dimension-order route (dimension 0 first)."""
        self._check(src)
        self._check(dst)
        links: List[int] = []
        cur = list(self.coords(src))
        target = self.coords(dst)
        for dim, k in enumerate(self.dims):
            if k <= 1:
                continue
            while cur[dim] != target[dim]:
                links.append(self.link_id(self.node_at(cur), dim))
                cur[dim] = (cur[dim] + 1) % k
        return links

    def _check(self, node: int) -> None:
        if not (0 <= node < self.n_procs):
            raise NetworkError(f"node {node} out of range [0, {self.n_procs})")

    def __repr__(self) -> str:
        return f"KaryNCubeTopology(dims={self.dims})"
