"""Network message envelope and delivery records.

The network simulator is payload-agnostic: it moves :class:`Message`
envelopes (source, destination, length in bytes, opaque payload) and
reports :class:`Delivery` records with the arrival time.  Update-protocol
semantics live entirely in :mod:`repro.updates` / :mod:`repro.parallel`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any

from ..errors import NetworkError

__all__ = ["Message", "Delivery"]


@dataclass(frozen=True)
class Message:
    """A packet to be carried by the network.

    ``length_bytes`` is the wire size used both for latency (the ``L`` in
    the CBS formula) and traffic accounting.  ``payload`` is never
    inspected by the network layer.

    Self-addressed messages (``src == dst``) are legal: retry and
    re-request paths can legitimately produce them, and the network
    loops them back locally (two ProcessTime copies, no link occupancy).
    """

    src: int
    dst: int
    length_bytes: int
    payload: Any

    def __post_init__(self) -> None:
        if self.length_bytes <= 0:
            raise NetworkError(f"message length must be positive, got {self.length_bytes}")


@dataclass(frozen=True)
class Delivery:
    """A completed transfer: the message plus its timing.

    ``inject_time`` is when the sender handed the packet to the network;
    ``arrive_time`` is when the destination node can first see it;
    ``hops`` is the dimension-order route length.
    """

    message: Message
    inject_time: float
    arrive_time: float
    hops: int

    @property
    def latency(self) -> float:
        """End-to-end network latency in seconds."""
        return self.arrive_time - self.inject_time
