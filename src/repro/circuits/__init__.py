"""Standard cell circuit substrate: model, synthetic benchmarks, I/O, stats.

The paper's two benchmark circuits (bnrE and MDC) were proprietary; this
package supplies the data model plus seeded statistical stand-ins
(:func:`bnre_like`, :func:`mdc_like`) with the published dimensions and
wire counts.  See DESIGN.md §2 for the substitution rationale.
"""

from .generate import (
    BNRE_SEED,
    MDC_SEED,
    SCALED_SEED,
    ScaledCircuitConfig,
    SyntheticCircuitConfig,
    bnre_like,
    generate,
    generate_scaled,
    mdc_like,
    tiny_test_circuit,
)
from .io import (
    circuit_from_dict,
    circuit_to_dict,
    load_json,
    load_text,
    save_json,
    save_text,
)
from .model import Circuit, Pin, Wire
from .stats import CircuitStats, compute_stats, span_histogram

__all__ = [
    "Pin",
    "Wire",
    "Circuit",
    "SyntheticCircuitConfig",
    "ScaledCircuitConfig",
    "generate",
    "generate_scaled",
    "bnre_like",
    "mdc_like",
    "tiny_test_circuit",
    "BNRE_SEED",
    "MDC_SEED",
    "SCALED_SEED",
    "circuit_to_dict",
    "circuit_from_dict",
    "save_json",
    "load_json",
    "save_text",
    "load_text",
    "CircuitStats",
    "compute_stats",
    "span_histogram",
]
