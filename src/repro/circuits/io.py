"""Circuit serialisation: JSON and a simple line-oriented text format.

Two formats are supported:

- **JSON** (:func:`save_json` / :func:`load_json`): a direct dump of the
  circuit structure, stable across versions, used by the harness result
  cache and by users who want to persist generated benchmarks.
- **Text** (:func:`save_text` / :func:`load_text`): a human-editable format
  in the spirit of the era's netlist files::

      CIRCUIT bnrE-like 10 341
      WIRE w0001 3
      PIN 12 0
      PIN 19 1
      PIN 44 0
      WIRE w0002 2
      ...

  ``CIRCUIT name n_channels n_grids`` heads the file; each ``WIRE name
  n_pins`` is followed by exactly ``n_pins`` ``PIN x channel`` lines.
  Blank lines and ``#`` comments are ignored.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import List, Union

from ..errors import CircuitError
from .model import Circuit, Pin, Wire

__all__ = [
    "circuit_to_dict",
    "circuit_from_dict",
    "save_json",
    "load_json",
    "save_text",
    "load_text",
]

PathLike = Union[str, Path]


def circuit_to_dict(circuit: Circuit) -> dict:
    """Convert a circuit to a JSON-serialisable dict."""
    return {
        "name": circuit.name,
        "n_channels": circuit.n_channels,
        "n_grids": circuit.n_grids,
        "wires": [
            {"name": w.name, "pins": [[p.x, p.channel] for p in w.pins]}
            for w in circuit.wires
        ],
    }


def circuit_from_dict(data: dict) -> Circuit:
    """Inverse of :func:`circuit_to_dict`; validates via the model types."""
    try:
        wires = [
            Wire(w["name"], [Pin(int(x), int(c)) for x, c in w["pins"]])
            for w in data["wires"]
        ]
        return Circuit(
            data["name"], int(data["n_channels"]), int(data["n_grids"]), wires
        )
    except (KeyError, TypeError, ValueError) as exc:
        raise CircuitError(f"malformed circuit dict: {exc}") from exc


def save_json(circuit: Circuit, path: PathLike) -> None:
    """Write *circuit* to *path* as JSON."""
    Path(path).write_text(json.dumps(circuit_to_dict(circuit), indent=1))


def load_json(path: PathLike) -> Circuit:
    """Read a circuit previously written by :func:`save_json`."""
    try:
        data = json.loads(Path(path).read_text())
    except OSError as exc:
        raise CircuitError(f"cannot read {path}: {exc.strerror or exc}") from exc
    except json.JSONDecodeError as exc:
        raise CircuitError(f"{path} is not valid JSON: {exc}") from exc
    return circuit_from_dict(data)


def save_text(circuit: Circuit, path: PathLike) -> None:
    """Write *circuit* to *path* in the line-oriented text format."""
    lines: List[str] = [
        f"# {circuit.describe()}",
        f"CIRCUIT {circuit.name} {circuit.n_channels} {circuit.n_grids}",
    ]
    for wire in circuit.wires:
        lines.append(f"WIRE {wire.name} {wire.n_pins}")
        for pin in wire.pins:
            lines.append(f"PIN {pin.x} {pin.channel}")
    Path(path).write_text("\n".join(lines) + "\n")


def load_text(path: PathLike) -> Circuit:
    """Parse the line-oriented text format back into a :class:`Circuit`."""
    name = ""
    n_channels = n_grids = -1
    wires: List[Wire] = []
    current_name = None
    pending_pins: List[Pin] = []
    expected_pins = 0

    def _flush() -> None:
        nonlocal current_name, pending_pins, expected_pins
        if current_name is not None:
            if len(pending_pins) != expected_pins:
                raise CircuitError(
                    f"wire {current_name!r}: expected {expected_pins} pins, "
                    f"got {len(pending_pins)}"
                )
            wires.append(Wire(current_name, pending_pins))
        current_name, pending_pins, expected_pins = None, [], 0

    for lineno, raw in enumerate(Path(path).read_text().splitlines(), start=1):
        line = raw.split("#", 1)[0].strip()
        if not line:
            continue
        fields = line.split()
        keyword = fields[0].upper()
        try:
            if keyword == "CIRCUIT":
                name = fields[1]
                n_channels, n_grids = int(fields[2]), int(fields[3])
            elif keyword == "WIRE":
                _flush()
                current_name = fields[1]
                expected_pins = int(fields[2])
            elif keyword == "PIN":
                pending_pins.append(Pin(int(fields[1]), int(fields[2])))
            else:
                raise CircuitError(f"line {lineno}: unknown keyword {keyword!r}")
        except (IndexError, ValueError) as exc:
            raise CircuitError(f"line {lineno}: malformed line {raw!r}") from exc
    _flush()
    if n_channels < 0:
        raise CircuitError("missing CIRCUIT header line")
    return Circuit(name, n_channels, n_grids, wires)
