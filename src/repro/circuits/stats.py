"""Descriptive statistics over circuits.

The generators in :mod:`repro.circuits.generate` are calibrated against the
qualitative properties the paper relies on (short-net dominance, a long-net
tail, small pin counts).  This module computes those properties so tests can
assert them and so users can sanity-check their own circuits before
routing.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Tuple

import numpy as np

from .model import Circuit

__all__ = ["CircuitStats", "compute_stats", "span_histogram"]


@dataclass(frozen=True)
class CircuitStats:
    """Summary statistics of a circuit's netlist.

    All lengths are in routing-grid units.
    """

    n_wires: int
    n_pins: int
    mean_pins_per_wire: float
    two_pin_fraction: float
    mean_x_span: float
    median_x_span: float
    p90_x_span: float
    max_x_span: int
    mean_length_cost: float
    max_length_cost: int
    long_wire_fraction: float  #: fraction of wires spanning > 25 % of chip width

    def as_dict(self) -> Dict[str, float]:
        """Return the statistics as a plain dict (for JSON dumps)."""
        return {
            "n_wires": self.n_wires,
            "n_pins": self.n_pins,
            "mean_pins_per_wire": self.mean_pins_per_wire,
            "two_pin_fraction": self.two_pin_fraction,
            "mean_x_span": self.mean_x_span,
            "median_x_span": self.median_x_span,
            "p90_x_span": self.p90_x_span,
            "max_x_span": self.max_x_span,
            "mean_length_cost": self.mean_length_cost,
            "max_length_cost": self.max_length_cost,
            "long_wire_fraction": self.long_wire_fraction,
        }


def compute_stats(circuit: Circuit) -> CircuitStats:
    """Compute :class:`CircuitStats` for *circuit*."""
    spans = np.array([w.x_span for w in circuit.wires], dtype=np.int64)
    pins = np.array([w.n_pins for w in circuit.wires], dtype=np.int64)
    costs = np.array([w.length_cost() for w in circuit.wires], dtype=np.int64)
    long_cut = 0.25 * circuit.n_grids
    return CircuitStats(
        n_wires=circuit.n_wires,
        n_pins=int(pins.sum()),
        mean_pins_per_wire=float(pins.mean()),
        two_pin_fraction=float((pins == 2).mean()),
        mean_x_span=float(spans.mean()),
        median_x_span=float(np.median(spans)),
        p90_x_span=float(np.percentile(spans, 90)),
        max_x_span=int(spans.max()),
        mean_length_cost=float(costs.mean()),
        max_length_cost=int(costs.max()),
        long_wire_fraction=float((spans > long_cut).mean()),
    )


def span_histogram(circuit: Circuit, n_bins: int = 10) -> Tuple[np.ndarray, np.ndarray]:
    """Histogram of horizontal wire spans, ``(counts, bin_edges)``."""
    spans = np.array([w.x_span for w in circuit.wires], dtype=np.int64)
    return np.histogram(spans, bins=n_bins, range=(0, circuit.n_grids))
