"""Seeded synthetic benchmark circuit generators.

The paper evaluates on two proprietary circuits:

- **bnrE** — 420 wires, 10 channels x 341 routing grids (Bell-Northern
  Research).
- **MDC** — 573 wires, 12 channels x 386 routing grids (University of
  Toronto Microelectronic Development Centre).

Neither netlist was ever published, so this module builds statistical
stand-ins (see DESIGN.md §2).  What matters for reproducing the paper's
*shapes* is the wirelength distribution of a placed standard cell design:

- most nets are short and local (a cell talks to near neighbours), which is
  what gives locality-based wire assignment its advantage;
- a minority of nets span a large fraction of the chip (clock, control,
  busses), which is what limits exploitable locality (§5.3.3) and what the
  ThresholdCost load-balancing step exists for;
- pin counts are small and geometrically distributed (2-pin nets dominate).

:func:`generate` samples exactly that mixture from a seeded
:class:`numpy.random.Generator`, so every call with the same config is
bit-for-bit reproducible.  :func:`bnre_like` and :func:`mdc_like` pin the
dimensions and wire counts to the paper's circuits with fixed seeds.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import List, Optional

import numpy as np

from ..errors import CircuitError
from .model import Circuit, Pin, Wire

__all__ = [
    "SyntheticCircuitConfig",
    "ScaledCircuitConfig",
    "generate",
    "generate_scaled",
    "bnre_like",
    "mdc_like",
    "tiny_test_circuit",
    "BNRE_SEED",
    "MDC_SEED",
    "SCALED_SEED",
]

#: Fixed seeds so "bnrE-like" / "MDC-like" mean the same circuit everywhere.
BNRE_SEED = 19890808
MDC_SEED = 19890812

#: Default seed of the S-series scale generator (:func:`generate_scaled`).
SCALED_SEED = 19890816


@dataclass(frozen=True)
class SyntheticCircuitConfig:
    """Parameters of the synthetic standard cell netlist sampler.

    Attributes
    ----------
    name:
        Circuit name.
    n_wires, n_channels, n_grids:
        Size of the circuit (matches :class:`~repro.circuits.model.Circuit`).
    seed:
        RNG seed; same seed, same circuit.
    local_fraction:
        Fraction of nets drawn from the short/local population.
    local_mean_span:
        Mean horizontal span (grid columns) of local nets; spans are
        geometric, so short nets dominate heavily.
    global_min_span_frac, global_max_span_frac:
        Long nets draw their span from this fraction of chip width.
    global_span_beta:
        Shape of the long-net span distribution: spans are
        ``lo + (hi - lo) * Beta(1, global_span_beta)``, so values above 1
        skew the tail toward its short end — real standard cell designs
        have very few true chip-crossers, and a fatter tail makes the
        per-wire work distribution impossible to load-balance at any
        ThresholdCost, which the paper's Table 4/5 timings rule out.
    pin_geometric_p:
        Extra pins beyond the first two follow Geometric(p); p close to 1
        means almost all nets are 2-pin.
    max_pins:
        Hard cap on pins per wire.
    channel_spread:
        Maximum channel distance of a local net's extra pins from its seed
        channel (local nets hug one or two channels).
    """

    name: str
    n_wires: int
    n_channels: int
    n_grids: int
    seed: int
    local_fraction: float = 0.8
    local_mean_span: float = 18.0
    global_min_span_frac: float = 0.2
    global_max_span_frac: float = 0.8
    global_span_beta: float = 1.8
    pin_geometric_p: float = 0.55
    max_pins: int = 12
    channel_spread: int = 2

    def validate(self) -> None:
        """Raise :class:`CircuitError` on nonsensical parameters."""
        if self.n_wires < 1:
            raise CircuitError("n_wires must be >= 1")
        if self.n_channels < 2 or self.n_grids < 4:
            raise CircuitError("circuit too small to route in")
        if not (0.0 <= self.local_fraction <= 1.0):
            raise CircuitError("local_fraction must be in [0, 1]")
        if not (0.0 < self.pin_geometric_p <= 1.0):
            raise CircuitError("pin_geometric_p must be in (0, 1]")
        if self.max_pins < 2:
            raise CircuitError("max_pins must be >= 2")
        if not (
            0.0 < self.global_min_span_frac <= self.global_max_span_frac <= 1.0
        ):
            raise CircuitError("global span fractions must satisfy 0 < lo <= hi <= 1")


def _sample_wire(
    rng: np.random.Generator, cfg: SyntheticCircuitConfig, index: int
) -> Wire:
    """Sample one wire according to the local/global mixture."""
    is_local = rng.random() < cfg.local_fraction
    if is_local:
        span = int(min(cfg.n_grids - 1, rng.geometric(1.0 / cfg.local_mean_span)))
    else:
        lo = max(2, int(cfg.global_min_span_frac * (cfg.n_grids - 1)))
        hi = max(lo + 1, int(cfg.global_max_span_frac * (cfg.n_grids - 1)))
        span = lo + int(round((hi - lo) * rng.beta(1.0, cfg.global_span_beta)))
    span = max(1, span)
    x0 = int(rng.integers(0, cfg.n_grids - span))
    x1 = x0 + span

    n_extra = int(min(cfg.max_pins - 2, rng.geometric(cfg.pin_geometric_p) - 1))
    seed_channel = int(rng.integers(0, cfg.n_channels))

    def _channel_near(base: int) -> int:
        jitter = int(rng.integers(-cfg.channel_spread, cfg.channel_spread + 1))
        return int(np.clip(base + jitter, 0, cfg.n_channels - 1))

    if is_local:
        c0, c1 = _channel_near(seed_channel), _channel_near(seed_channel)
    else:
        c0 = int(rng.integers(0, cfg.n_channels))
        c1 = int(rng.integers(0, cfg.n_channels))

    pins = {Pin(x0, c0), Pin(x1, c1)}
    attempts = 0
    while len(pins) < 2 + n_extra and attempts < 16 * (n_extra + 1):
        attempts += 1
        px = int(rng.integers(x0, x1 + 1))
        pc = _channel_near(seed_channel) if is_local else int(
            rng.integers(0, cfg.n_channels)
        )
        pins.add(Pin(px, pc))
    return Wire(f"w{index:04d}", pins)


def generate(cfg: SyntheticCircuitConfig) -> Circuit:
    """Generate a synthetic circuit from *cfg* (deterministic in the seed).

    Wires are emitted in descending length order — the classic netlist
    convention (and router heuristic) of placing big nets first.  Routing
    order follows wire order, and round robin assignment deals wires
    cyclically, so this ordering is what makes plain round robin dealing
    reasonably load-balanced (as the paper's round robin timings show it
    was) despite the heavy-tailed per-wire routing effort.
    """
    cfg.validate()
    rng = np.random.default_rng(cfg.seed)
    wires: List[Wire] = [_sample_wire(rng, cfg, i) for i in range(cfg.n_wires)]
    wires.sort(key=lambda w: (-w.length_cost(), w.name))
    wires = [Wire(f"w{i:04d}", w.pins) for i, w in enumerate(wires)]
    return Circuit(cfg.name, cfg.n_channels, cfg.n_grids, wires)


@dataclass(frozen=True)
class ScaledCircuitConfig:
    """Parameters of the Rent-exponent-controlled scale generator.

    Unlike :class:`SyntheticCircuitConfig`'s hand-tuned local/global
    mixture, the S-series sampler draws horizontal spans from the
    Donath wirelength distribution implied by Rent's rule,
    ``P(l) ~ l**-(3 - 2p)`` with ``p`` the Rent exponent — one knob
    that smoothly trades locality for chip-crossing traffic.  Typical
    placed designs measure ``p`` between ~0.45 (very local) and ~0.75
    (interconnect-rich); the default 0.6 sits in the middle.

    Attributes
    ----------
    name, n_wires, seed:
        As in :class:`SyntheticCircuitConfig`.
    rent_exponent:
        Donath tail exponent knob ``p`` in ``(0, 1)``.
    n_channels, n_grids:
        Explicit dimensions; when ``None`` they scale as
        ``0.49*sqrt(n_wires)`` x ``16.6*sqrt(n_wires)`` — calibrated so
        420 wires reproduces bnrE's 10 x 341 footprint and cell density
        stays constant as the circuit grows.
    pin_geometric_p, max_pins:
        Extra pins beyond the first two follow ``Geometric(p) - 1``,
        capped at ``max_pins`` (same convention as the seed sampler).
    channel_geometric_p:
        Vertical extents add ``Geometric(p) - 1`` channels on top of a
        span-proportional component, so short nets hug one channel and
        chip-crossers are proportionally taller.
    """

    name: str
    n_wires: int
    seed: int = SCALED_SEED
    rent_exponent: float = 0.6
    n_channels: Optional[int] = None
    n_grids: Optional[int] = None
    pin_geometric_p: float = 0.55
    max_pins: int = 12
    channel_geometric_p: float = 0.65

    def validate(self) -> None:
        """Raise :class:`CircuitError` on nonsensical parameters."""
        if self.n_wires < 1:
            raise CircuitError("n_wires must be >= 1")
        if not (0.0 < self.rent_exponent < 1.0):
            raise CircuitError("rent_exponent must be in (0, 1)")
        if not (0.0 < self.pin_geometric_p <= 1.0):
            raise CircuitError("pin_geometric_p must be in (0, 1]")
        if not (0.0 < self.channel_geometric_p <= 1.0):
            raise CircuitError("channel_geometric_p must be in (0, 1]")
        if self.max_pins < 2:
            raise CircuitError("max_pins must be >= 2")
        if self.n_channels is not None and self.n_channels < 2:
            raise CircuitError("circuit too small to route in")
        if self.n_grids is not None and self.n_grids < 4:
            raise CircuitError("circuit too small to route in")

    def dims(self) -> "tuple[int, int]":
        """Resolved ``(n_channels, n_grids)`` after sqrt scaling."""
        root = float(np.sqrt(self.n_wires))
        n_channels = self.n_channels
        if n_channels is None:
            n_channels = max(4, int(round(0.49 * root)))
        n_grids = self.n_grids
        if n_grids is None:
            n_grids = max(16, int(round(16.6 * root)))
        return n_channels, n_grids


def generate_scaled(
    n_wires: int,
    *,
    rent_exponent: float = 0.6,
    seed: int = SCALED_SEED,
    name: Optional[str] = None,
    config: Optional[ScaledCircuitConfig] = None,
) -> Circuit:
    """Generate an S-series circuit (deterministic in the seed).

    Sampling is fully vectorised — one :class:`numpy.random.Generator`
    stream, no per-wire draws — so million-wire circuits build in
    seconds and the result is bit-for-bit reproducible for a given
    ``(n_wires, rent_exponent, seed, dims)``.  Wires are emitted in
    descending length order and renamed positionally, the same netlist
    convention as :func:`generate`.

    Pass ``config`` to control every knob; the keyword arguments cover
    the common cases and must then be left at their defaults.
    """
    if config is None:
        config = ScaledCircuitConfig(
            name=name or f"scaled-{n_wires}w-p{rent_exponent:g}",
            n_wires=n_wires,
            seed=seed,
            rent_exponent=rent_exponent,
        )
    elif (
        name is not None
        or rent_exponent != 0.6
        or seed != SCALED_SEED
        or n_wires != config.n_wires
    ):
        raise CircuitError(
            "pass either a full ScaledCircuitConfig or keyword overrides, "
            "not both"
        )
    config.validate()
    n = config.n_wires
    n_channels, n_grids = config.dims()
    rng = np.random.default_rng(config.seed)

    # Horizontal spans: inverse-CDF sampling of the truncated Donath
    # power law P(l) ~ l**-(3 - 2p) on [1, n_grids - 1].
    lengths = np.arange(1, n_grids, dtype=np.float64)
    pdf = lengths ** -(3.0 - 2.0 * config.rent_exponent)
    cdf = np.cumsum(pdf)
    cdf /= cdf[-1]
    spans = 1 + np.searchsorted(cdf, rng.random(n)).astype(np.int64)
    spans = np.minimum(spans, n_grids - 1)

    # Vertical extents: span-proportional (chip aspect ratio) plus a
    # geometric tail so even unit-span nets occasionally hop channels.
    extents = (spans * n_channels) // n_grids + (
        rng.geometric(config.channel_geometric_p, n) - 1
    )
    extents = np.minimum(extents, n_channels - 1)

    x0 = rng.integers(0, n_grids - spans)
    x1 = x0 + spans
    c0 = rng.integers(0, n_channels - extents)
    c1 = c0 + extents
    flip = rng.random(n) < 0.5  # which end pin sits on which channel

    # Extra pins (vectorised): geometric counts, then one flat draw of
    # every extra pin's coordinates inside its wire's bounding box.
    n_extra = np.minimum(
        rng.geometric(config.pin_geometric_p, n) - 1, config.max_pins - 2
    )
    total = int(n_extra.sum())
    owner = np.repeat(np.arange(n), n_extra)
    ex_frac = rng.random(total)
    ec_frac = rng.random(total)
    ex = x0[owner] + (ex_frac * (spans[owner] + 1)).astype(np.int64)
    ec = c0[owner] + (ec_frac * (extents[owner] + 1)).astype(np.int64)

    x0l = x0.tolist()
    x1l = x1.tolist()
    c0l = c0.tolist()
    c1l = c1.tolist()
    flipl = flip.tolist()
    exl = ex.tolist()
    ecl = ec.tolist()
    bounds = np.concatenate(([0], np.cumsum(n_extra))).tolist()

    wires: List[Wire] = []
    for i in range(n):
        if flipl[i]:
            pins = {Pin(x0l[i], c1l[i]), Pin(x1l[i], c0l[i])}
        else:
            pins = {Pin(x0l[i], c0l[i]), Pin(x1l[i], c1l[i])}
        for j in range(bounds[i], bounds[i + 1]):
            pins.add(Pin(exl[j], ecl[j]))
        wires.append(Wire(f"w{i:06d}", pins))
    wires.sort(key=lambda w: (-w.length_cost(), w.name))
    wires = [Wire(f"w{i:06d}", w.pins) for i, w in enumerate(wires)]
    return Circuit(config.name, n_channels, n_grids, wires)


def bnre_like(seed: Optional[int] = None, n_wires: Optional[int] = None) -> Circuit:
    """The bnrE stand-in: 420 wires, 10 channels x 341 grids.

    ``seed``/``n_wires`` overrides exist for tests that want smaller or
    perturbed instances; defaults reproduce the canonical benchmark.
    """
    cfg = SyntheticCircuitConfig(
        name="bnrE-like",
        n_wires=420,
        n_channels=10,
        n_grids=341,
        seed=BNRE_SEED,
    )
    if seed is not None:
        cfg = replace(cfg, seed=seed)
    if n_wires is not None:
        cfg = replace(cfg, n_wires=n_wires)
    return generate(cfg)


def mdc_like(seed: Optional[int] = None, n_wires: Optional[int] = None) -> Circuit:
    """The MDC stand-in: 573 wires, 12 channels x 386 grids.

    MDC is generated slightly *more* local than bnrE (smaller mean span),
    reflecting the paper's locality measurements (§5.3.3: MDC wires route
    an average 0.91 hops from their owner vs 1.21 for bnrE).
    """
    cfg = SyntheticCircuitConfig(
        name="MDC-like",
        n_wires=573,
        n_channels=12,
        n_grids=386,
        seed=MDC_SEED,
        local_fraction=0.88,
        local_mean_span=14.0,
        global_max_span_frac=0.65,
        global_span_beta=2.2,
    )
    if seed is not None:
        cfg = replace(cfg, seed=seed)
    if n_wires is not None:
        cfg = replace(cfg, n_wires=n_wires)
    return generate(cfg)


def tiny_test_circuit(seed: int = 7, n_wires: int = 24) -> Circuit:
    """A small circuit (4 channels x 40 grids) for fast unit tests."""
    cfg = SyntheticCircuitConfig(
        name="tiny",
        n_wires=n_wires,
        n_channels=4,
        n_grids=40,
        seed=seed,
        local_mean_span=6.0,
    )
    return generate(cfg)
