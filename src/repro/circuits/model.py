"""Standard cell circuit model.

LocusRoute (Rose, DAC '88) operates on a *standard cell* circuit abstraction:
rows of cells separated by horizontal *routing channels*, with the horizontal
extent of the chip divided into *routing grids* (columns).  A net ("wire")
is a set of pins, each pin sitting at a (grid column, channel) coordinate.
The router's job is to connect every wire's pins through the channel grid
while minimising congestion, which is proportional to final circuit area.

This module defines the immutable data model used by everything else:

- :class:`Pin` — a single terminal at ``(x, channel)``.
- :class:`Wire` — a named net with two or more pins.
- :class:`Circuit` — a named collection of wires plus grid dimensions.

Coordinates
-----------
``x`` is the horizontal routing-grid index, ``0 <= x < n_grids``.
``channel`` is the horizontal routing-channel index, ``0 <= channel <
n_channels``.  The cost array built over a circuit has shape
``(n_channels, n_grids)``.

Instances validate eagerly: a :class:`Circuit` can never hold an off-grid
pin or a wire with fewer than two pins, which lets every downstream
component assume well-formed input.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Iterator, List, Sequence, Tuple

from ..errors import CircuitError

__all__ = ["Pin", "Wire", "Circuit"]


@dataclass(frozen=True, order=True)
class Pin:
    """A wire terminal at horizontal grid ``x`` on routing ``channel``.

    Pins order lexicographically by ``(x, channel)``; the router relies on
    this when chaining multi-pin wires left to right.
    """

    x: int
    channel: int

    def __post_init__(self) -> None:
        if self.x < 0 or self.channel < 0:
            raise CircuitError(
                f"pin coordinates must be non-negative, got ({self.x}, {self.channel})"
            )

    def as_tuple(self) -> Tuple[int, int]:
        """Return ``(x, channel)`` as a plain tuple."""
        return (self.x, self.channel)


@dataclass(frozen=True)
class Wire:
    """A net: an identifier plus two or more :class:`Pin` terminals.

    The pin tuple is stored sorted by ``(x, channel)`` so that the two-bend
    router can walk pins left to right without re-sorting, and so that two
    wires with the same pin set always compare equal.
    """

    name: str
    pins: Tuple[Pin, ...]

    def __init__(self, name: str, pins: Iterable[Pin]) -> None:
        pin_tuple = tuple(sorted(pins))
        if len(pin_tuple) < 2:
            raise CircuitError(f"wire {name!r} needs >= 2 pins, got {len(pin_tuple)}")
        if len(set(pin_tuple)) != len(pin_tuple):
            raise CircuitError(f"wire {name!r} has duplicate pins")
        object.__setattr__(self, "name", name)
        object.__setattr__(self, "pins", pin_tuple)

    @property
    def n_pins(self) -> int:
        """Number of terminals on this wire."""
        return len(self.pins)

    @property
    def leftmost_pin(self) -> Pin:
        """The pin with the smallest ``x`` (ties broken by channel).

        The ThresholdCost wire-assignment heuristic (paper §4.2) assigns a
        wire to the processor owning the region of its leftmost pin.
        """
        return self.pins[0]

    @property
    def x_span(self) -> int:
        """Horizontal extent in grid columns (max x − min x)."""
        return self.pins[-1].x - self.pins[0].x

    @property
    def channel_span(self) -> int:
        """Vertical extent in channels (max channel − min channel)."""
        channels = [p.channel for p in self.pins]
        return max(channels) - min(channels)

    @property
    def bounding_box(self) -> Tuple[int, int, int, int]:
        """``(channel_lo, x_lo, channel_hi, x_hi)`` inclusive bounds."""
        channels = [p.channel for p in self.pins]
        return (min(channels), self.pins[0].x, max(channels), self.pins[-1].x)

    def length_cost(self) -> int:
        """The wire's *cost measure* used by ThresholdCost assignment.

        Paper §4.2: "A cost measure is computed for each wire, based on its
        length."  We use the total Manhattan length of the left-to-right
        pin chain — the same chain the router actually routes — so the
        measure grows with both span and pin count, and multi-pin nets can
        exceed the chip width (making finite large thresholds such as 1000
        meaningfully different from infinity).
        """
        total = 0
        for a, b in zip(self.pins, self.pins[1:]):
            total += abs(b.x - a.x) + abs(b.channel - a.channel)
        return total

    def segments(self) -> Iterator[Tuple[Pin, Pin]]:
        """Yield consecutive pin pairs of the left-to-right chain."""
        return zip(self.pins, self.pins[1:])


@dataclass(frozen=True)
class Circuit:
    """A standard cell circuit: grid dimensions plus a wire list.

    Attributes
    ----------
    name:
        Human-readable identifier (e.g. ``"bnrE-like"``).
    n_channels:
        Number of horizontal routing channels (vertical cost-array size).
    n_grids:
        Number of routing grid columns (horizontal cost-array size).
    wires:
        Tuple of :class:`Wire`; order defines wire indices everywhere.
    """

    name: str
    n_channels: int
    n_grids: int
    wires: Tuple[Wire, ...] = field(default_factory=tuple)

    def __init__(
        self, name: str, n_channels: int, n_grids: int, wires: Sequence[Wire] = ()
    ) -> None:
        if n_channels < 1 or n_grids < 1:
            raise CircuitError(
                f"circuit {name!r}: dimensions must be positive, got "
                f"{n_channels} channels x {n_grids} grids"
            )
        wire_tuple = tuple(wires)
        names = [w.name for w in wire_tuple]
        if len(set(names)) != len(names):
            raise CircuitError(f"circuit {name!r} has duplicate wire names")
        for wire in wire_tuple:
            for pin in wire.pins:
                if pin.x >= n_grids or pin.channel >= n_channels:
                    raise CircuitError(
                        f"circuit {name!r}: pin {pin.as_tuple()} of wire "
                        f"{wire.name!r} lies outside the "
                        f"{n_channels}x{n_grids} grid"
                    )
        object.__setattr__(self, "name", name)
        object.__setattr__(self, "n_channels", n_channels)
        object.__setattr__(self, "n_grids", n_grids)
        object.__setattr__(self, "wires", wire_tuple)

    @property
    def n_wires(self) -> int:
        """Number of wires in the circuit."""
        return len(self.wires)

    @property
    def shape(self) -> Tuple[int, int]:
        """Cost-array shape ``(n_channels, n_grids)``."""
        return (self.n_channels, self.n_grids)

    def wire(self, index: int) -> Wire:
        """Return the wire with the given index."""
        return self.wires[index]

    def with_wires(self, wires: Sequence[Wire]) -> "Circuit":
        """Return a copy of this circuit with a different wire list."""
        return Circuit(self.name, self.n_channels, self.n_grids, wires)

    def __iter__(self) -> Iterator[Wire]:
        return iter(self.wires)

    def __len__(self) -> int:
        return len(self.wires)

    def describe(self) -> str:
        """One-line summary used by the CLI and examples."""
        pins = sum(w.n_pins for w in self.wires)
        return (
            f"{self.name}: {self.n_wires} wires, {pins} pins, "
            f"{self.n_channels} channels x {self.n_grids} routing grids"
        )
