"""Wave-front batched routing: fused evaluation of independent wires.

The sequential rip-up-and-reroute loop routes one wire at a time: rip up,
price every candidate two-bend route, commit, move on.  Each step is a
handful of small NumPy calls, so the Python dispatch overhead around the
arithmetic dominates on real circuits.

This module batches that loop without changing a single routed cell.  The
observation: a wire's evaluation reads only its segments' bounding boxes,
and both its old and its new path lie inside those same boxes (paths are
built from the same pins, so every path cell is inside some segment box).
Two wires whose box unions are disjoint therefore *commute* — routing one
first cannot change what the other reads, rips up, or prices.  Each
iteration greedily partitions the pending wires, in visit order, into
**waves** of pairwise-disjoint footprints, then routes a whole wave as one
fused step:

1. rip up every wave member's old path in one grouped ``remove_path``;
2. build one pair of block prefix tables over the wave's row band and
   price *every candidate of every segment of every wire* in stacked
   array arithmetic (:func:`_evaluate`);
3. reconstruct each wire's path, price it, and commit the whole wave in
   one grouped ``apply_path``.

Order preservation: the greedy partition defers a wire whose footprint
overlaps *any* earlier pending wire (whether that wire joined the wave or
was itself deferred), so no wire is ever routed before an earlier wire it
could interact with.  Within a wave, disjointness makes the batched
rip-up / evaluate / price / commit schedule produce exactly the
sequential result — :func:`repro.route.twobend.route_wire_reference`
stays the differential oracle and ``locusroute verify`` replays both.

Everything is integer arithmetic over the same ``int64`` sums in the same
per-element association order as the reference evaluator, so the chosen
columns, path cells, costs, and work accounting are bit-identical, not
merely equivalent.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Dict, List, Sequence, Tuple

import numpy as np

from ..circuits.model import Circuit, Wire
from ..errors import RoutingError
from ..grid.bbox import BBox
from ..grid.cost_array import CostArray
from .path import RoutePath
from .twobend import SegmentRoute, WireRoute, _candidate_columns

__all__ = [
    "WireGeometry",
    "wire_geometry",
    "route_wire_fused",
    "plan_wave",
    "plan_waves",
    "plan_waves_reference",
    "route_iteration_wavefront",
]

#: Sentinel total for padded candidate slots — never selected by argmin
#: because every real candidate's cost is a small sum of occupancies.
_INF = np.iinfo(np.int64).max

_EMPTY = np.empty(0, dtype=np.int64)


class WireGeometry:
    """Routing-invariant geometry of one wire, precomputed once.

    Everything here depends only on the wire's pins and the grid width —
    candidate columns, read boxes, work accounting — so it is computed
    once per ``(wire, n_grids)`` and cached on the wire object.  The cost
    array never enters; evaluation against a concrete array is
    :func:`_evaluate`.
    """

    __slots__ = (
        "seg_is_bend",
        "segs",
        "seg_work",
        "read_boxes",
        "n_bend",
        "b_c1",
        "b_x1",
        "b_c2",
        "b_x2",
        "b_clo",
        "b_chi",
        "b_cand",
        "b_valid",
        "b_candidates",
        "s_c",
        "s_x1",
        "s_x2",
        "work_cells",
        "bbox",
        "needs_col",
        "has_pad",
        "e_invalid",
        "e_rows",
        "tbl_rows",
        "tbl_width",
        "rowp_size",
        "buf_size",
        "f_all",
        "const_off",
        "s_off",
        "seg_tmpl",
        "seg_proto",
        "bbox_obj",
    )

    def __init__(self, wire: Wire, n_grids: int) -> None:
        seg_is_bend: List[bool] = []
        segs: List[Tuple[int, int, int, int]] = []
        seg_work: List[int] = []
        read_boxes: List[BBox] = []
        bend_rows: List[Tuple[int, int, int, int, int, int]] = []
        b_candidates: List[np.ndarray] = []
        s_c: List[int] = []
        s_x1: List[int] = []
        s_x2: List[int] = []
        work = 0

        seg_tmpl: List[Tuple] = []
        for a, b in wire.segments():
            x1, c1 = a.x, a.channel
            x2, c2 = b.x, b.channel
            span = x2 - x1
            xs = np.arange(x1, x2 + 1, dtype=np.int64)
            if c1 == c2:
                seg_is_bend.append(False)
                s_c.append(c1)
                s_x1.append(x1)
                s_x2.append(x2)
                w = span + 1
                box = BBox(c1, x1, c1, x2)
                # A straight run's cells never depend on the cost array.
                seg_tmpl.append((c1 * n_grids + xs,))
            else:
                c_lo, c_hi = (c1, c2) if c1 <= c2 else (c2, c1)
                cand = _candidate_columns(x1, x2)
                n_interior = max(0, c_hi - c_lo - 1)
                seg_is_bend.append(True)
                bend_rows.append((c1, x1, c2, x2, c_lo, c_hi))
                b_candidates.append(cand)
                w = int(cand.size) * (span + 2 + n_interior)
                box = BBox(c_lo, x1, c_hi, x2)
                # Path builder slices these at the chosen bend column:
                # low-channel run, interior column cells, high-channel run.
                seg_tmpl.append(
                    (
                        c_lo * n_grids + xs,
                        c_hi * n_grids + xs,
                        np.arange(c_lo + 1, c_hi, dtype=np.int64) * n_grids,
                        x1,
                        c1 <= c2,
                    )
                )
            segs.append((c1, x1, c2, x2))
            seg_work.append(w)
            read_boxes.append(box)
            work += w
        self.seg_tmpl = seg_tmpl
        # SegmentRoute prototypes: everything but xv/cost is static, so
        # route_wire_fused fills instances from these dicts instead of
        # paying the dataclass constructor per segment per reroute.
        self.seg_proto = [
            {
                "xv": 0,
                "cost": 0,
                "work_cells": seg_work[k],
                "read_box": read_boxes[k],
                "c1": segs[k][0],
                "x1": segs[k][1],
                "c2": segs[k][2],
                "x2": segs[k][3],
                "candidates": b_candidates[sum(seg_is_bend[:k])]
                if seg_is_bend[k]
                else _EMPTY,
            }
            for k in range(len(segs))
        ]

        self.seg_is_bend = seg_is_bend
        self.segs = segs
        self.seg_work = seg_work
        self.read_boxes = read_boxes
        self.b_candidates = b_candidates
        self.work_cells = work

        n_bend = len(bend_rows)
        self.n_bend = n_bend
        if n_bend:
            arr = np.array(bend_rows, dtype=np.int64)
            self.b_c1 = arr[:, 0]
            self.b_x1 = arr[:, 1]
            self.b_c2 = arr[:, 2]
            self.b_x2 = arr[:, 3]
            self.b_clo = arr[:, 4]
            self.b_chi = arr[:, 5]
            # Pad only to this wire's widest candidate row, not the global
            # MAX_CANDIDATES — short segments price narrow rows.
            width = max(cand.size for cand in b_candidates)
            cand_tab = np.empty((n_bend, width), dtype=np.int64)
            valid = np.zeros((n_bend, width), dtype=bool)
            for i, cand in enumerate(b_candidates):
                k = cand.size
                cand_tab[i, :k] = cand
                cand_tab[i, k:] = cand[0]  # padding never wins (cost forced to _INF)
                valid[i, :k] = True
            self.b_cand = cand_tab
            self.b_valid = valid
        else:
            self.b_c1 = self.b_x1 = self.b_c2 = self.b_x2 = _EMPTY
            self.b_clo = self.b_chi = _EMPTY
            self.b_cand = np.empty((0, 1), dtype=np.int64)
            self.b_valid = np.zeros((0, 1), dtype=bool)

        if s_c:
            self.s_c = np.array(s_c, dtype=np.int64)
            self.s_x1 = np.array(s_x1, dtype=np.int64)
            self.s_x2 = np.array(s_x2, dtype=np.int64)
        else:
            self.s_c = self.s_x1 = self.s_x2 = _EMPTY

        box = read_boxes[0]
        for other in read_boxes[1:]:
            box = box.union(other)
        self.bbox = box.as_tuple()
        # Every segment's path spans its full x-range whatever bend column
        # wins, so any realized path's bbox IS the geometry bbox; the path
        # builder stamps this on trusted paths to skip the lazy recompute.
        self.bbox_obj = box

        # One-wire fast-path layout: the evaluator builds both prefix
        # tables in a single flat buffer over exactly this wire's bbox,
        # then prices everything with ONE precomputed (2, K) flat gather
        # — row 0 holds every "+" prefix term, row 1 every "-" term, so
        # ``diff = gather[0] - gather[1]`` yields, in order, the H1-H2
        # candidate matrix, the interior (V) matrix, the per-bend
        # constant (H2 left end minus H1 left end), and the straight-run
        # costs.  Exact integer sums: regrouping the reference's
        # (H1 + H2 + V) into (matrix + const) is bit-identical.
        band_lo, x_lo = self.bbox[0], self.bbox[1]
        self.needs_col = bool(n_bend) and bool(np.any(self.b_chi - self.b_clo > 1))
        self.has_pad = bool(n_bend and not valid.all())
        self.e_invalid = ~self.b_valid if self.has_pad else None
        self.e_rows = np.arange(n_bend)
        rows = self.bbox[2] - band_lo + 1
        width = self.bbox[3] - x_lo + 1
        stride = width + 1
        self.tbl_rows = rows
        self.tbl_width = width
        self.rowp_size = rows * stride
        self.buf_size = self.rowp_size + ((rows + 1) * width if self.needs_col else 0)

        plus_parts: List[np.ndarray] = []
        minus_parts: List[np.ndarray] = []
        if n_bend:
            r1 = self.b_c1 - band_lo
            r2 = self.b_c2 - band_lo
            cand_rel = self.b_cand - x_lo
            plus_parts.append((r1[:, None] * stride + cand_rel + 1).ravel())
            minus_parts.append((r2[:, None] * stride + cand_rel).ravel())
            if self.needs_col:
                chi = (self.b_chi - band_lo)[:, None]
                clo = (self.b_clo + 1 - band_lo)[:, None]
                plus_parts.append((self.rowp_size + chi * width + cand_rel).ravel())
                minus_parts.append((self.rowp_size + clo * width + cand_rel).ravel())
            plus_parts.append(r2 * stride + self.b_x2 + 1 - x_lo)
            minus_parts.append(r1 * stride + self.b_x1 - x_lo)
        if s_c:
            sr = self.s_c - band_lo
            plus_parts.append(sr * stride + self.s_x2 + 1 - x_lo)
            minus_parts.append(sr * stride + self.s_x1 - x_lo)
        nbW = n_bend * self.b_cand.shape[1] if n_bend else 0
        self.const_off = (2 * nbW if self.needs_col else nbW)
        self.s_off = self.const_off + n_bend
        if plus_parts:
            self.f_all = np.stack(
                (np.concatenate(plus_parts), np.concatenate(minus_parts))
            )
        else:
            self.f_all = np.empty((2, 0), dtype=np.int64)


def wire_geometry(wire: Wire, n_grids: int) -> WireGeometry:
    """The wire's :class:`WireGeometry`, cached on the wire object.

    ``Wire`` is frozen but carries a ``__dict__``; the cache is attached
    through ``object.__setattr__`` and keyed by grid width, so a wire
    shared across engines with different grids stays correct.
    """
    cache = getattr(wire, "_wf_geom", None)
    if cache is None:
        cache = {}
        object.__setattr__(wire, "_wf_geom", cache)
    geom = cache.get(n_grids)
    if geom is None:
        geom = WireGeometry(wire, n_grids)
        cache[n_grids] = geom
    return geom


def _evaluate_single(
    cost: CostArray, g: WireGeometry, tie_break: int
) -> List[Tuple[int, int]]:
    """Price one wire's segments against *cost* with a single fused step.

    Both prefix tables are built in one flat buffer over exactly the
    wire's bounding box, and every prefix-sum term of every segment is
    fetched by the geometry's single precomputed ``(2, K)`` flat gather;
    ``diff = gathered[0] - gathered[1]`` then holds the H1-H2 candidate
    matrix, the interior (V) matrix, the per-bend constants, and the
    straight-run costs back to back.  Bit-identical to per-segment
    :func:`repro.route.twobend.route_segment` — exact integer sums are
    association-free, and ties are broken on identical totals.
    """
    c_lo, x_lo, c_hi, x_hi = g.bbox
    block = cost.data[c_lo : c_hi + 1, x_lo : x_hi + 1]
    buf = np.zeros(g.buf_size, dtype=np.int64)
    rowp = buf[: g.rowp_size].reshape(g.tbl_rows, g.tbl_width + 1)
    np.cumsum(block, axis=1, dtype=np.int64, out=rowp[:, 1:])
    if g.needs_col:
        colp = buf[g.rowp_size :].reshape(g.tbl_rows + 1, g.tbl_width)
        np.cumsum(block, axis=0, dtype=np.int64, out=colp[1:, :])

    gathered = buf[g.f_all]
    diff = gathered[0] - gathered[1]

    nb = g.n_bend
    if nb:
        W = g.b_cand.shape[1]
        nbW = nb * W
        totals = diff[:nbW].reshape(nb, W)
        if g.needs_col:
            # V: strictly interior channels c_lo+1..c_hi-1 at column xv
            # (zero for adjacent-channel bends, same as the reference).
            totals += diff[nbW : 2 * nbW].reshape(nb, W)
        totals += diff[g.const_off : g.const_off + nb][:, None]
        if g.has_pad:
            totals[g.e_invalid] = _INF
        if tie_break == 0:
            best = np.argmin(totals, axis=1)  # first minimum: smallest xv
        else:
            # Last minimum: padded slots sit at _INF, so the reversed
            # argmin lands on the last *real* minimum, exactly the
            # reference's totals[::-1] scan.
            best = W - 1 - np.argmin(totals[:, ::-1], axis=1)
        b_xv = g.b_cand[g.e_rows, best]
        b_cost = totals[g.e_rows, best]

    s_cost = diff[g.s_off :]

    out: List[Tuple[int, int]] = []
    b_off = 0
    s_off = 0
    for is_bend in g.seg_is_bend:
        if is_bend:
            out.append((int(b_xv[b_off]), int(b_cost[b_off])))
            b_off += 1
        else:
            out.append((int(g.s_x1[s_off]), int(s_cost[s_off])))
            s_off += 1
    return out


def _evaluate(
    cost: CostArray, geoms: Sequence[WireGeometry], tie_break: int
) -> List[List[Tuple[int, int]]]:
    """Price every segment of every geometry against *cost*, fused.

    One :meth:`CostArray.block_prefix_tables` call over the union bbox
    of all geometries serves every prefix difference; every bend
    segment's full candidate row evaluates in one stacked expression.
    Returns, per geometry, the chain-ordered list of ``(xv, cost)`` —
    bit-identical to per-segment :func:`repro.route.twobend.route_segment`.
    """
    if len(geoms) == 1:
        return [_evaluate_single(cost, geoms[0], tie_break)]

    band_lo = min(g.bbox[0] for g in geoms)
    band_hi = max(g.bbox[2] for g in geoms)
    x_lo = min(g.bbox[1] for g in geoms)
    x_hi = max(g.bbox[3] for g in geoms)
    need_col = any(g.needs_col for g in geoms)
    # Density dispatch.  Wave members are pairwise disjoint, so whenever
    # the wave is spread out its union bbox is mostly gap — and the
    # shared tables below pay a cumsum over every gap cell.  The shared
    # sweep only beats per-wire evaluation when the wires tile most of
    # the band; below that density, price each wire against its own
    # bbox tables (still one fused gather per wire, and exactly the
    # same arithmetic, so the choice never changes a routed cell).
    union_cells = (2 if need_col else 1) * (band_hi - band_lo + 1) * (
        x_hi - x_lo + 1
    )
    if union_cells > 2 * sum(g.buf_size for g in geoms):
        return [_evaluate_single(cost, g, tie_break) for g in geoms]
    rowp, colp = cost.block_prefix_tables(
        band_lo, band_hi, x_lo, x_hi, need_col
    )

    n_bend = sum(g.n_bend for g in geoms)
    if n_bend:
        b_c1 = np.concatenate([g.b_c1 for g in geoms])
        b_x1 = np.concatenate([g.b_x1 for g in geoms])
        b_c2 = np.concatenate([g.b_c2 for g in geoms])
        b_x2 = np.concatenate([g.b_x2 for g in geoms])
        b_clo = np.concatenate([g.b_clo for g in geoms])
        b_chi = np.concatenate([g.b_chi for g in geoms])
        # Candidate rows are padded per wire to that wire's widest
        # segment; re-pad to the wave's widest row (padding repeats the
        # row's first candidate and is masked to _INF below).
        width = max(g.b_cand.shape[1] for g in geoms if g.n_bend)
        b_cand = np.empty((n_bend, width), dtype=np.int64)
        b_valid = np.zeros((n_bend, width), dtype=bool)
        row = 0
        for g in geoms:
            nb = g.n_bend
            if not nb:
                continue
            w = g.b_cand.shape[1]
            b_cand[row : row + nb, :w] = g.b_cand
            if w < width:
                b_cand[row : row + nb, w:] = g.b_cand[:, :1]
            b_valid[row : row + nb, :w] = g.b_valid
            row += nb

        r1 = b_c1 - band_lo
        r2 = b_c2 - band_lo
        cand = b_cand - x_lo
        # H1: channel c1, columns x1..xv inclusive, for every candidate xv.
        h1 = rowp[r1[:, None], cand + 1] - rowp[r1, b_x1 - x_lo][:, None]
        # H2: channel c2, columns xv..x2 inclusive.
        h2 = rowp[r2, b_x2 + 1 - x_lo][:, None] - rowp[r2[:, None], cand]
        totals = h1 + h2
        if need_col:
            # V: strictly interior channels c_lo+1..c_hi-1 at column xv.
            # Skipped when every bend spans adjacent channels (the
            # reference adds an exact zero there, so the sum is
            # bit-identical either way).
            totals += (
                colp[(b_chi - band_lo)[:, None], cand]
                - colp[(b_clo + 1 - band_lo)[:, None], cand]
            )
        totals[~b_valid] = _INF
        if tie_break == 0:
            best = np.argmin(totals, axis=1)  # first minimum: smallest xv
        else:
            # Last minimum: padded slots sit at _INF, so the reversed
            # argmin lands on the last *real* minimum, exactly the
            # reference's totals[::-1] scan.
            best = totals.shape[1] - 1 - np.argmin(totals[:, ::-1], axis=1)
        rows = np.arange(best.size)
        b_xv = b_cand[rows, best]
        b_cost = totals[rows, best]
    else:
        b_xv = b_cost = _EMPTY

    s_c = np.concatenate([g.s_c for g in geoms])
    s_x1 = np.concatenate([g.s_x1 for g in geoms])
    s_x2 = np.concatenate([g.s_x2 for g in geoms])
    if s_c.size:
        sr = s_c - band_lo
        s_cost = rowp[sr, s_x2 + 1 - x_lo] - rowp[sr, s_x1 - x_lo]
    else:
        s_cost = _EMPTY

    results: List[List[Tuple[int, int]]] = []
    b_off = 0
    s_off = 0
    for g in geoms:
        out: List[Tuple[int, int]] = []
        for is_bend in g.seg_is_bend:
            if is_bend:
                out.append((int(b_xv[b_off]), int(b_cost[b_off])))
                b_off += 1
            else:
                out.append((int(s_x1[s_off]), int(s_cost[s_off])))
                s_off += 1
        results.append(out)
    return results


def _build_path(geom: WireGeometry, xvs: Sequence[int], n_grids: int) -> RoutePath:
    """Assemble the wire's :class:`RoutePath` from chosen bend columns.

    Segment cells come from slices of the geometry's precomputed run
    templates, emitted in ascending flat order (low channel run, interior
    column, high channel run), so the one-segment common case skips the
    ``np.unique`` sort entirely and constructs the path without
    re-validation; multi-segment wires union through ``np.unique``
    exactly like the reference.
    """
    tmpl = geom.seg_tmpl
    if len(tmpl) == 1:
        t = tmpl[0]
        if len(t) == 1:  # single straight run: the template is the path
            path = RoutePath._trusted(t[0], n_grids)
        else:
            lo_full, hi_full, int_rows, x1, c1_low = t
            xv = xvs[0]
            j = xv - x1
            if c1_low:
                cells = np.concatenate(
                    (lo_full[: j + 1], int_rows + xv, hi_full[j:])
                )
            else:
                cells = np.concatenate(
                    (lo_full[j:], int_rows + xv, hi_full[: j + 1])
                )
            path = RoutePath._trusted(cells, n_grids)
        object.__setattr__(path, "_bbox", geom.bbox_obj)
        return path

    parts: List[np.ndarray] = []
    for t, xv in zip(tmpl, xvs):
        if len(t) == 1:
            parts.append(t[0])
            continue
        lo_full, hi_full, int_rows, x1, c1_low = t
        j = xv - x1
        if c1_low:
            parts.extend((lo_full[: j + 1], int_rows + xv, hi_full[j:]))
        else:
            parts.extend((lo_full[j:], int_rows + xv, hi_full[: j + 1]))
    cells = np.sort(np.concatenate(parts))
    # Sort + consecutive-duplicate mask == np.unique, minus its overhead.
    keep = np.empty(cells.size, dtype=bool)
    keep[0] = True
    np.not_equal(cells[1:], cells[:-1], out=keep[1:])
    path = RoutePath._trusted(cells[keep], n_grids)
    object.__setattr__(path, "_bbox", geom.bbox_obj)
    return path


def route_wire_fused(cost: CostArray, wire: Wire, tie_break: int = 0) -> WireRoute:
    """Fused single-wire evaluation — a one-wire wave.

    Bit-identical to :func:`repro.route.twobend.route_wire_reference`,
    including the per-segment :class:`SegmentRoute` detail records.
    """
    if tie_break not in (0, 1):
        raise RoutingError(f"tie_break must be 0 or 1, got {tie_break}")
    geom = wire_geometry(wire, cost.n_grids)
    res = _evaluate_single(cost, geom, tie_break)
    path = _build_path(geom, [xv for xv, _ in res], cost.n_grids)
    segments: List[SegmentRoute] = []
    for proto, (xv, seg_cost) in zip(geom.seg_proto, res):
        seg = object.__new__(SegmentRoute)
        sd = seg.__dict__
        sd.update(proto)
        sd["xv"] = xv
        sd["cost"] = seg_cost
        segments.append(seg)
    return WireRoute(
        path=path,
        cost=cost.path_cost(path.flat_cells),
        work_cells=geom.work_cells,
        segments=tuple(segments),
    )


def plan_wave(
    pending: Sequence[int],
    footprints: Dict[int, Tuple[int, int, int, int]],
) -> Tuple[List[int], List[int]]:
    """Greedy in-order split of *pending* into ``(wave, deferred)``.

    A wire joins the wave only if its footprint is disjoint from *every*
    earlier pending wire's footprint — wave members **and** deferred ones.
    Blocking on deferred wires too is what preserves routing order: if a
    deferred wire's later routing could interact with a subsequent wire,
    that subsequent wire must wait for a later wave.
    """
    n = len(pending)
    clo = np.empty(n, dtype=np.int64)
    xlo = np.empty(n, dtype=np.int64)
    chi = np.empty(n, dtype=np.int64)
    xhi = np.empty(n, dtype=np.int64)
    wave: List[int] = []
    deferred: List[int] = []
    k = 0
    for idx in pending:
        c_lo, x_lo, c_hi, x_hi = footprints[idx]
        if k and bool(
            np.any(
                (clo[:k] <= c_hi)
                & (chi[:k] >= c_lo)
                & (xlo[:k] <= x_hi)
                & (xhi[:k] >= x_lo)
            )
        ):
            deferred.append(idx)
        else:
            wave.append(idx)
        clo[k] = c_lo
        xlo[k] = x_lo
        chi[k] = c_hi
        xhi[k] = x_hi
        k += 1
    return wave, deferred


def plan_waves_reference(
    order: Sequence[int],
    footprints: Dict[int, Tuple[int, int, int, int]],
) -> List[List[int]]:
    """The full wave decomposition of *order*, by the O(n^2) recurrence.

    Equivalent to iterating :func:`plan_wave` to exhaustion (wave ``w``
    is the ``w``-th round's wave, members in visit order), via the
    layering recurrence: a wire with no earlier overlapping wire joins
    wave 0, otherwise wave ``1 + max(wave of earlier overlapping
    wires)`` — an earlier overlapping wire in wave ``w`` is still
    pending in every round ``<= w``, blocking this wire exactly until
    round ``w + 1``.  One vectorised overlap test per wire replaces the
    per-round rescan of every deferred wire, and the result depends
    only on (*order*, *footprints*), so callers can cache it across
    iterations.

    This is the differential oracle for :func:`plan_waves` — it tests
    every wire against *all* earlier wires, so it stays trivially
    correct but quadratic.  The spatial-index planner must match it
    bit-for-bit on any input.
    """
    n = len(order)
    if not n:
        return []
    clo = np.empty(n, dtype=np.int64)
    xlo = np.empty(n, dtype=np.int64)
    chi = np.empty(n, dtype=np.int64)
    xhi = np.empty(n, dtype=np.int64)
    for k, idx in enumerate(order):
        clo[k], xlo[k], chi[k], xhi[k] = footprints[idx]
    wave_no = np.zeros(n, dtype=np.int64)
    for k in range(1, n):
        overlap = (
            (clo[:k] <= chi[k])
            & (chi[:k] >= clo[k])
            & (xlo[:k] <= xhi[k])
            & (xhi[:k] >= xlo[k])
        )
        if overlap.any():
            wave_no[k] = wave_no[:k][overlap].max() + 1
    waves: List[List[int]] = [[] for _ in range(int(wave_no.max()) + 1)]
    for idx, w in zip(order, wave_no):
        waves[w].append(idx)
    return waves


#: Most distinct wire orders whose wave decompositions are retained per
#: circuit (least recently used evicted first).  Steady-state routing
#: reuses one order across iterations, so a handful of slots keeps the
#: hit rate while bounding memory on runs that keep permuting the order.
WAVE_CACHE_MAX_ORDERS = 8

#: Below this many wires the quadratic recurrence's tight numpy loop
#: beats the grid index's setup cost; the dispatch is safe because
#: both planners are bit-identical.
_INDEX_MIN_WIRES = 96

#: Coarse-layer bucket width (power of two for shift indexing): each
#: coarse slot holds the max over 64 fine cells, so wide footprints
#: query/update O(span/64) coarse slots plus two boundary fine slices.
_COARSE_SHIFT = 6
_COARSE = 1 << _COARSE_SHIFT

#: Footprints narrower than this skip the coarse-layer query; a single
#: C-level slice max over the fine row is cheaper than bucket splits.
_NARROW = 3 * _COARSE

#: Memory guard: most fine-grid cells the index may allocate
#: (n_rows * span).  sqrt-scaled circuit dimensions keep multi-million
#: wire circuits far below this; adversarial coordinates (huge sparse
#: spans) fall back to the exact quadratic oracle instead.
_MAX_GRID_CELLS = 1 << 25


def plan_waves(
    order: Sequence[int],
    footprints: Dict[int, Tuple[int, int, int, int]],
) -> List[List[int]]:
    """The full wave decomposition of *order*, via a grid-paint index.

    Same contract and bit-identical output as
    :func:`plan_waves_reference`, but sub-quadratic in practice: one
    skyline row per channel holds, for every grid cell, the maximum
    wave among processed wires covering that cell.  Footprints are
    axis-aligned rectangles on the grid, so two wires overlap iff
    their rectangles share a cell — the recurrence maximum for wire
    ``k`` is exactly the maximum of the skyline over ``k``'s own
    rectangle, read with C-level ``max()`` over list slices.

    The update exploits the recurrence itself: ``w = best + 1``
    strictly exceeds every skyline value under the new rectangle
    (``best`` is their maximum), so committing the wire is a C-level
    slice *overwrite* — no elementwise maximum anywhere.  A coarse
    64:1 max layer serves wide footprints (interior read from the
    coarse row, only the two boundary fragments from the fine row),
    and two exact prunes cut reads further: a per-row running maximum
    skips rows that cannot improve ``best``, and the query stops once
    ``best`` reaches the global maximum wave.  Both leave ``best`` >=
    every cell under the rectangle, which is all overwrite needs.
    """
    n = len(order)
    if n < _INDEX_MIN_WIRES:
        return plan_waves_reference(order, footprints)

    boxes = [footprints[idx] for idx in order]
    clos, xlos, chis, xhis = zip(*boxes)
    cmin = min(clos)
    n_rows = max(chis) - cmin + 1
    xmin = min(xlos)
    span = max(xhis) - xmin + 1
    if (
        n_rows * span > _MAX_GRID_CELLS
        # Inverted boxes have no grid-cell representation but still
        # overlap things under the recurrence's interval tests; keep
        # bit-identity by handing them to the oracle.  Likewise
        # pathological coordinates (memory guard above).
        or any(a > b for a, b in zip(clos, chis))
        or any(a > b for a, b in zip(xlos, xhis))
    ):
        return plan_waves_reference(order, footprints)

    # Three layers per channel row, all plain lists so slice reads and
    # writes run at C speed:
    #   fine[c][x]   cell skyline, possibly stale under a lazy slot
    #   lazy[c][B]   pending full-slot overwrite (cell truth is
    #                max(fine[c][x], lazy[c][x >> 6]))
    #   coarse[c][B] true per-slot maximum (always >= fine and lazy)
    n_coarse = ((span - 1) >> _COARSE_SHIFT) + 1
    fine = [[-1] * span for _ in range(n_rows)]
    lazy = [[-1] * n_coarse for _ in range(n_rows)]
    coarse = [[-1] * n_coarse for _ in range(n_rows)]
    # Waves are built in place: ``w = best + 1`` can exceed the
    # current maximum by at most one, so a new wave is always a plain
    # append.  This replaces a second grouping pass over all wires.
    waves: List[List[int]] = []
    max_wave = -1  # always len(waves) - 1
    shift = _COARSE_SHIFT

    for idx, (c0, l, c1, h) in zip(order, boxes):
        cl = c0 - cmin
        xl = l - xmin
        ch0 = c1 - cmin
        xh2 = h - xmin + 1  # exclusive
        b0 = xl >> shift
        b1 = (xh2 - 1) >> shift  # last touched slot
        if b1 == b0:
            # Fast path: the whole footprint lies in one coarse slot
            # (the overwhelmingly common case for local wires).
            if ch0 == cl:
                # ... and in one channel row: no loops at all.
                crow = coarse[cl]
                row = fine[cl]
                cb = crow[b0]
                if xl + 2 == xh2:
                    # Unit-span wires (two cells) are the single most
                    # common footprint; direct indexing skips the slice
                    # allocations of both the query and the commit.
                    xr = xl + 1
                    if cb == -1:
                        w = 0
                    else:
                        m = row[xl]
                        m2 = row[xr]
                        if m2 > m:
                            m = m2
                        m2 = lazy[cl][b0]
                        if m2 > m:
                            m = m2
                        w = m + 1
                    if w > max_wave:
                        max_wave = w
                        waves.append([idx])
                    else:
                        waves[w].append(idx)
                    row[xl] = w
                    row[xr] = w
                    if w > cb:
                        crow[b0] = w
                    continue
                if cb == -1:
                    w = 0  # empty slot: nothing can overlap
                else:
                    m = max(row[xl:xh2])
                    m2 = lazy[cl][b0]
                    w = (m2 if m2 > m else m) + 1
                if w > max_wave:
                    max_wave = w
                    waves.append([idx])
                else:
                    waves[w].append(idx)
                row[xl:xh2] = [w] * (xh2 - xl)
                if w > cb:
                    crow[b0] = w
                continue
            if ch0 == cl + 1:
                # Two channel rows (extent-1 wires are the next most
                # common): inline both, still loop-free.
                ch2 = cl + 1
                crow = coarse[cl]
                crow2 = coarse[ch2]
                if xl + 2 == xh2:
                    # Unit-span again: direct indexing, no slices.
                    xr = xl + 1
                    row = fine[cl]
                    best = -1
                    if crow[b0] > -1:
                        best = row[xl]
                        m2 = row[xr]
                        if m2 > best:
                            best = m2
                        m2 = lazy[cl][b0]
                        if m2 > best:
                            best = m2
                    if crow2[b0] > best:
                        row2 = fine[ch2]
                        m = row2[xl]
                        if m > best:
                            best = m
                        m = row2[xr]
                        if m > best:
                            best = m
                        m2 = lazy[ch2][b0]
                        if m2 > best:
                            best = m2
                    w = best + 1
                    if w > max_wave:
                        max_wave = w
                        waves.append([idx])
                    else:
                        waves[w].append(idx)
                    row[xl] = w
                    row[xr] = w
                    row2 = fine[ch2]
                    row2[xl] = w
                    row2[xr] = w
                    if w > crow[b0]:
                        crow[b0] = w
                    if w > crow2[b0]:
                        crow2[b0] = w
                    continue
                best = -1
                if crow[b0] > -1:
                    best = max(fine[cl][xl:xh2])
                    m2 = lazy[cl][b0]
                    if m2 > best:
                        best = m2
                if crow2[b0] > best:
                    m = max(fine[ch2][xl:xh2])
                    if m > best:
                        best = m
                    m2 = lazy[ch2][b0]
                    if m2 > best:
                        best = m2
                w = best + 1
                if w > max_wave:
                    max_wave = w
                    waves.append([idx])
                else:
                    waves[w].append(idx)
                seg = [w] * (xh2 - xl)
                fine[cl][xl:xh2] = seg
                fine[ch2][xl:xh2] = seg
                if w > crow[b0]:
                    crow[b0] = w
                if w > crow2[b0]:
                    crow2[b0] = w
                continue
            ch = ch0 + 1
            best = -1
            if xl + 2 == xh2:
                # Unit-span, many rows: direct indexing per row.
                xr = xl + 1
                for c in range(cl, ch):
                    if coarse[c][b0] <= best:
                        continue
                    row = fine[c]
                    m = row[xl]
                    m2 = row[xr]
                    if m2 > m:
                        m = m2
                    m2 = lazy[c][b0]
                    if m2 > m:
                        m = m2
                    if m > best:
                        best = m
                        if best >= max_wave:
                            break
                w = best + 1
                if w > max_wave:
                    max_wave = w
                    waves.append([idx])
                else:
                    waves[w].append(idx)
                for c in range(cl, ch):
                    row = fine[c]
                    row[xl] = w
                    row[xr] = w
                    crow = coarse[c]
                    if w > crow[b0]:
                        crow[b0] = w
                continue
            for c in range(cl, ch):
                # The slot maximum bounds everything under the
                # rectangle: a row that cannot beat the current best
                # is skipped unread.
                if coarse[c][b0] <= best:
                    continue
                m = max(fine[c][xl:xh2])
                m2 = lazy[c][b0]
                if m2 > m:
                    m = m2
                if m > best:
                    best = m
                    if best >= max_wave:
                        break
            w = best + 1
            if w > max_wave:
                max_wave = w
                waves.append([idx])
            else:
                waves[w].append(idx)
            seg = [w] * (xh2 - xl)
            for c in range(cl, ch):
                fine[c][xl:xh2] = seg
                crow = coarse[c]
                if w > crow[b0]:
                    crow[b0] = w
            continue
        ch = ch0 + 1
        best = -1
        b1p = b1 + 1
        wide = xh2 - xl >= _NARROW
        for c in range(cl, ch):
            crow = coarse[c]
            # Slot maxima bound everything under the rectangle: a row
            # that cannot beat the current best is skipped unread.
            ub = max(crow[b0:b1p])
            if ub <= best:
                continue
            row = fine[c]
            lrow = lazy[c]
            if wide:
                # Interior slots lie fully under the rectangle, so
                # their coarse maxima are exact; only the two boundary
                # fragments read fine cells (plus their lazy slots).
                m = max(crow[b0 + 1 : b1])
                m2 = max(row[xl : (b0 + 1) << shift])
                if m2 > m:
                    m = m2
                m2 = max(row[b1 << shift : xh2])
                if m2 > m:
                    m = m2
                m2 = lrow[b0]
                if m2 > m:
                    m = m2
                m2 = lrow[b1]
                if m2 > m:
                    m = m2
            else:
                m = max(row[xl:xh2])
                m2 = max(lrow[b0:b1p])
                if m2 > m:
                    m = m2
            if m > best:
                best = m
                if best >= max_wave:
                    break
        w = best + 1
        if w > max_wave:
            max_wave = w
            waves.append([idx])
        else:
            waves[w].append(idx)
        # Commit: w exceeds every cell under the rectangle, so all
        # writes are plain overwrites (see docstring).
        if wide:
            mid0 = (b0 + 1) << shift
            mid1 = b1 << shift
            seg0 = [w] * (mid0 - xl)
            seg1 = [w] * (xh2 - mid1)
            nseg = [w] * (b1 - b0 - 1)
            for c in range(cl, ch):
                row = fine[c]
                row[xl:mid0] = seg0
                row[mid1:xh2] = seg1
                lazy[c][b0 + 1 : b1] = nseg
                crow = coarse[c]
                crow[b0 + 1 : b1] = nseg
                if w > crow[b0]:
                    crow[b0] = w
                if w > crow[b1]:
                    crow[b1] = w
        else:
            seg = [w] * (xh2 - xl)
            for c in range(cl, ch):
                fine[c][xl:xh2] = seg
                crow = coarse[c]
                for b in range(b0, b1p):
                    if w > crow[b]:
                        crow[b] = w

    return waves


def route_iteration_wavefront(
    cost: CostArray,
    circuit: Circuit,
    order: Sequence[int],
    paths: Dict[int, RoutePath],
    tie_break: int,
) -> Tuple[int, int]:
    """One full rip-up-and-reroute iteration, routed in waves.

    Mutates *cost* and *paths* exactly as the sequential per-wire loop
    would and returns ``(occupancy, work_cells)`` for the iteration.
    Footprints are the wires' static geometry boxes — both the old and
    the new path of a wire always lie inside its own geometry box, so
    the partition never needs to look at current paths.
    """
    n_grids = cost.n_grids
    geoms: Dict[int, WireGeometry] = {}
    footprints: Dict[int, Tuple[int, int, int, int]] = {}
    for idx in order:
        g = wire_geometry(circuit.wire(idx), n_grids)
        geoms[idx] = g
        footprints[idx] = g.bbox

    # The decomposition depends only on the visit order and the static
    # geometry boxes, so it is identical in every iteration — cache it
    # on the circuit, keyed by the order.  The cache is LRU-bounded:
    # long rip-up/reroute runs that permute the order (annealed
    # schedules, per-iteration reorderings) would otherwise retain one
    # O(n) decomposition per distinct order for the circuit's lifetime.
    cache: "OrderedDict[Tuple[int, ...], List[List[int]]]" = getattr(
        circuit, "_wf_waves", None
    )
    if cache is None:
        cache = OrderedDict()
        object.__setattr__(circuit, "_wf_waves", cache)
    key = tuple(order)
    waves = cache.get(key)
    if waves is None:
        waves = plan_waves(order, footprints)
        cache[key] = waves
        while len(cache) > WAVE_CACHE_MAX_ORDERS:
            cache.popitem(last=False)
    else:
        cache.move_to_end(key)

    occupancy = 0
    work = 0
    for wave in waves:
        wave_geoms = [geoms[i] for i in wave]

        old_parts = [paths[i].flat_cells for i in wave if i in paths]
        if old_parts:
            # Disjoint footprints: one grouped rip-up == per-wire rip-ups.
            cost.remove_path(np.concatenate(old_parts))

        per_wire = _evaluate(cost, wave_geoms, tie_break)

        new_cells: List[np.ndarray] = []
        for idx, geom, res in zip(wave, wave_geoms, per_wire):
            path = _build_path(geom, [xv for xv, _ in res], n_grids)
            # Price before the grouped commit: no other wave member's
            # cells intersect this path, so this equals the sequential
            # price taken right after this wire's own rip-up.
            occupancy += cost.path_cost(path.flat_cells)
            work += geom.work_cells
            paths[idx] = path
            new_cells.append(path.flat_cells)
        cost.apply_path(np.concatenate(new_cells))
    return occupancy, work
