"""Work accounting: how much simulated computation each operation costs.

Both simulators need a machine-independent measure of "how much computing
did this processor just do".  The unit is one *candidate-cell inspection*
of the original cell-by-cell LocusRoute evaluation loop; every other
operation is expressed as a multiple of it.  Conversion to simulated
seconds (for the Ametek-2010-class nodes CBS modelled) happens in
:class:`repro.parallel.timing.CostModel` — this module is only about
counting.
"""

from __future__ import annotations

from dataclasses import dataclass, field

__all__ = ["WorkCounter", "COMMIT_CELL_UNITS", "SCAN_CELL_UNITS", "INCORPORATE_CELL_UNITS"]

#: Work units to increment/decrement one path cell at commit / rip-up time.
COMMIT_CELL_UNITS = 2.0
#: Work units to scan one delta-array cell for changes when assembling an
#: update packet ("the sender has to scan the array for changes", §4.3.1).
SCAN_CELL_UNITS = 0.2
#: Work units to fold one received update cell into the local cost array.
INCORPORATE_CELL_UNITS = 1.0


@dataclass
class WorkCounter:
    """Accumulates per-category work units for one processor.

    Categories mirror the paper's discussion of where message passing time
    goes: routing proper, path commits, packet assembly (delta scans and
    payload marshalling) and packet disassembly (folding updates in).
    """

    route_units: float = 0.0
    commit_units: float = 0.0
    assemble_units: float = 0.0
    incorporate_units: float = 0.0

    def add_route(self, work_cells: int) -> None:
        """Record a wire evaluation of *work_cells* candidate inspections."""
        self.route_units += float(work_cells)

    def add_commit(self, n_cells: int) -> None:
        """Record committing (or ripping up) *n_cells* path cells."""
        self.commit_units += COMMIT_CELL_UNITS * n_cells

    def add_scan(self, n_cells: int) -> None:
        """Record scanning *n_cells* delta cells while building a packet."""
        self.assemble_units += SCAN_CELL_UNITS * n_cells

    def add_marshal(self, n_cells: int) -> None:
        """Record marshalling *n_cells* payload cells into a packet."""
        self.assemble_units += INCORPORATE_CELL_UNITS * n_cells

    def add_incorporate(self, n_cells: int) -> None:
        """Record folding *n_cells* of received payload into the local view."""
        self.incorporate_units += INCORPORATE_CELL_UNITS * n_cells

    @property
    def total_units(self) -> float:
        """All work units accumulated so far."""
        return (
            self.route_units
            + self.commit_units
            + self.assemble_units
            + self.incorporate_units
        )

    @property
    def message_overhead_fraction(self) -> float:
        """Fraction of work spent on packet assembly/disassembly.

        The paper measured "up to one fourth of the processing time" going
        to packet handling under frequent update schedules (§5.1.1).
        """
        total = self.total_units
        if total == 0:
            return 0.0
        return (self.assemble_units + self.incorporate_units) / total
