"""The circuit locality measure (paper §5.3.3).

"The locality measure is a weighted average indicating the average distance
(in horizontal or vertical hops) between the processor actually routing a
wire segment, and the processor that owns the region that segment lies in.
Thus, a locality measure of 0 indicates that all segments were routed by
the region owner, giving perfect locality."

We weight by routed cells: every cell of every routed path contributes the
Manhattan mesh distance between the processor that routed the wire and the
owner of that cell's region.  The paper reports 1.21 hops for bnrE and
0.91 for MDC under the most local assignment at 16 processors.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Mapping, Sequence

import numpy as np

from ..errors import AssignmentError
from ..grid.regions import RegionMap
from .path import RoutePath

__all__ = ["LocalityReport", "locality_measure"]


@dataclass(frozen=True)
class LocalityReport:
    """Result of a locality computation.

    Attributes
    ----------
    mean_hops:
        Cell-weighted mean mesh distance routing-processor -> cell owner.
    owned_fraction:
        Fraction of routed cells that lie in the routing processor's own
        region (distance zero).
    total_cells:
        Number of (cell, wire) contributions measured.
    per_proc_hops:
        Mean hops per routing processor (exposes spatial imbalance).
    """

    mean_hops: float
    owned_fraction: float
    total_cells: int
    per_proc_hops: Dict[int, float]


def locality_measure(
    regions: RegionMap,
    paths: Mapping[int, RoutePath],
    wire_owner: Sequence[int],
) -> LocalityReport:
    """Compute the locality measure over routed *paths*.

    Parameters
    ----------
    regions:
        The owned-region map (also defines mesh geometry).
    paths:
        Final routed path per wire index.
    wire_owner:
        Processor that routed each wire (indexed by wire index).
    """
    if not paths:
        raise AssignmentError("no routed paths to measure locality over")

    total = 0
    weighted = 0.0
    owned = 0
    per_proc_sum: Dict[int, float] = {}
    per_proc_n: Dict[int, int] = {}

    # Precompute mesh coordinates of every processor once.
    proc_rows = np.empty(regions.n_procs, dtype=np.int64)
    proc_cols = np.empty(regions.n_procs, dtype=np.int64)
    for p in range(regions.n_procs):
        proc_rows[p], proc_cols[p] = regions.proc_coords(p)

    for wire_idx, path in paths.items():
        router_proc = wire_owner[wire_idx]
        channels, xs = path.coords()
        owners = regions.owners_of_cells(channels, xs)
        dists = np.abs(proc_rows[owners] - proc_rows[router_proc]) + np.abs(
            proc_cols[owners] - proc_cols[router_proc]
        )
        n = int(dists.size)
        s = float(dists.sum())
        total += n
        weighted += s
        owned += int((dists == 0).sum())
        per_proc_sum[router_proc] = per_proc_sum.get(router_proc, 0.0) + s
        per_proc_n[router_proc] = per_proc_n.get(router_proc, 0) + n

    per_proc = {
        p: per_proc_sum[p] / per_proc_n[p] for p in per_proc_sum if per_proc_n[p] > 0
    }
    return LocalityReport(
        mean_hops=weighted / total,
        owned_fraction=owned / total,
        total_cells=total,
        per_proc_hops=per_proc,
    )
