"""Routed path representation.

A routed wire occupies a *set* of cost-array cells: the union of the cells
of its two-bend segments.  Representing the path as a sorted, de-duplicated
vector of flat cell indices gives three things cheaply:

- applying / ripping up the path is a single vectorised scatter-add
  (:meth:`~repro.grid.cost_array.CostArray.apply_path`), and the increment/
  decrement symmetry needed by rip-up-and-reroute is exact by construction;
- pricing a path is a single gather-sum;
- set operations (overlap between old and new routes — the delta-array
  cancellation effect of §5.2) are sorted-array intersections.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

import numpy as np

from ..errors import RoutingError
from ..grid.bbox import BBox

__all__ = ["RoutePath"]


@dataclass(frozen=True)
class RoutePath:
    """An immutable routed path over an ``n_channels x n_grids`` grid.

    Attributes
    ----------
    flat_cells:
        Sorted unique flat cell indices (``channel * n_grids + x``).
    n_grids:
        Grid width used for the flat encoding (needed to decode).
    """

    flat_cells: np.ndarray
    n_grids: int

    def __post_init__(self) -> None:
        cells = self.flat_cells
        if cells.ndim != 1:
            raise RoutingError("flat_cells must be one-dimensional")
        if cells.size == 0:
            raise RoutingError("a routed path cannot be empty")
        if cells.size > 1 and np.any(np.diff(cells) <= 0):
            raise RoutingError("flat_cells must be sorted and unique")

    @staticmethod
    def from_cells(flat_cells: np.ndarray, n_grids: int) -> "RoutePath":
        """Build a path from possibly unsorted / duplicated cell indices."""
        return RoutePath(np.unique(np.asarray(flat_cells, dtype=np.int64)), n_grids)

    @staticmethod
    def _trusted(flat_cells: np.ndarray, n_grids: int) -> "RoutePath":
        """Construct without validation.

        For callers that produce sorted unique int64 cells by construction
        (the wave-front path builder assembles segment runs in ascending
        flat order); skips the ``__post_init__`` scan on the per-wire
        hot path.
        """
        path = object.__new__(RoutePath)
        object.__setattr__(path, "flat_cells", flat_cells)
        object.__setattr__(path, "n_grids", n_grids)
        return path

    @property
    def n_cells(self) -> int:
        """Number of distinct cells the path occupies."""
        return int(self.flat_cells.size)

    def coords(self) -> Tuple[np.ndarray, np.ndarray]:
        """Decode to ``(channels, xs)`` coordinate vectors."""
        channels, xs = np.divmod(self.flat_cells, self.n_grids)
        return channels, xs

    def bbox(self) -> BBox:
        """Bounding box of the path's cells (computed once; paths are
        immutable and the MP nodes ask per commit)."""
        cached = getattr(self, "_bbox", None)
        if cached is None:
            channels, xs = self.coords()
            cached = BBox(
                int(channels[0]), int(xs.min()), int(channels[-1]), int(xs.max())
            )
            object.__setattr__(self, "_bbox", cached)
        return cached

    def overlap_cells(self, other: "RoutePath") -> int:
        """Number of cells shared with *other* (sorted intersection)."""
        return int(
            np.intersect1d(self.flat_cells, other.flat_cells, assume_unique=True).size
        )

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, RoutePath):
            return NotImplemented
        return self.n_grids == other.n_grids and bool(
            np.array_equal(self.flat_cells, other.flat_cells)
        )

    def __hash__(self) -> int:
        return hash((self.n_grids, self.flat_cells.tobytes()))

    def __repr__(self) -> str:
        return f"RoutePath({self.n_cells} cells, bbox={self.bbox().as_tuple()})"
