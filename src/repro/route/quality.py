"""Solution quality metrics (paper §3).

Two measures, lower is better for both:

- **Circuit height**: per channel, the routing tracks required are the
  maximum number of wires crossing the channel at any grid column; the
  circuit height is the sum over channels.  It is proportional to circuit
  area.
- **Occupancy factor**: the sum, over all wires, of the wire's path cost
  (sum of cost-array entries along the path) *at the time the wire was
  routed*.  In the parallel implementations we price each wire against the
  committed global state at its commit instant, so stale routing decisions
  show up as overlap cost exactly as in the paper.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

import numpy as np

from ..grid.cost_array import CostArray

__all__ = ["QualityReport", "circuit_height", "track_profile"]


def circuit_height(cost: CostArray) -> int:
    """Total routing tracks: sum over channels of max cell occupancy."""
    return int(cost.channel_maxima().sum())


def track_profile(cost: CostArray) -> np.ndarray:
    """Per-channel routing-track requirement (the channel maxima)."""
    return cost.channel_maxima()


@dataclass(frozen=True)
class QualityReport:
    """Quality outcome of a routing run.

    Attributes
    ----------
    circuit_height:
        Sum of per-channel track requirements (area proxy).
    occupancy_factor:
        Sum of path costs at routing time (staleness-sensitive).
    total_wire_cells:
        Total cells occupied by all wires (wirelength proxy).
    """

    circuit_height: int
    occupancy_factor: int
    total_wire_cells: int

    def as_dict(self) -> Dict[str, int]:
        """Plain-dict view for JSON dumps and table rows."""
        return {
            "circuit_height": self.circuit_height,
            "occupancy_factor": self.occupancy_factor,
            "total_wire_cells": self.total_wire_cells,
        }

    def __str__(self) -> str:
        return (
            f"height={self.circuit_height} occupancy={self.occupancy_factor} "
            f"cells={self.total_wire_cells}"
        )
