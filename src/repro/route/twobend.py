"""The LocusRoute two-bend route evaluator.

LocusRoute (Rose, DAC '88) routes each two-pin connection along one of its
*two-bend* routes: travel horizontally in the source pin's channel to some
column ``xv``, vertically across the intervening cell rows at ``xv``, then
horizontally in the destination pin's channel.  "Each wire is routed along
the path with the minimal sum of the cost array entries" (paper §3) —
LocusRoute evaluates every candidate ``xv`` between the pins and picks the
cheapest.

Multi-pin wires are chained: pins are sorted by ``x`` and consecutive pairs
are routed as independent segments (the classic LocusRoute decomposition);
the wire's footprint is the set union of its segments' cells.

Vectorisation
-------------
Evaluating all ``span + 1`` candidates naively costs O(span²) cell reads.
With pins pre-sorted so ``x1 <= x2``:

- ``H1(xv)`` (cost of the run in channel ``c1`` from ``x1`` to ``xv``) is a
  prefix-sum difference, computed for every ``xv`` at once;
- ``H2(xv)`` likewise in channel ``c2``;
- ``V(xv)`` (cost of the vertical run across the *strictly interior*
  channels) is one ``sum(axis=0)`` over the interior block.

Corner cells belong to the horizontal runs, so ``H1 + V + H2`` prices each
candidate path with no double counting, in O(span + interior area) total.

Work accounting
---------------
The original program evaluated candidates cell by cell; the *simulated*
compute cost of a segment evaluation is therefore the naive count,
``(span+1) * (span+2+interior)`` candidate-cell inspections (see
:mod:`repro.route.workmodel`), even though this implementation computes the
same result faster.  The shared-memory reference *trace* similarly records
the naive footprint: every cell of the segment's bounding rectangle is read.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, List, Tuple

import numpy as np

from ..circuits.model import Pin, Wire
from ..errors import RoutingError
from ..grid.bbox import BBox
from ..grid.cost_array import CostArray
from ..kernels import active_kernels
from .path import RoutePath

__all__ = [
    "SegmentRoute",
    "WireRoute",
    "route_segment",
    "segment_cells",
    "route_wire",
    "route_wire_reference",
    "route_wire_vectorized",
    "MAX_CANDIDATES",
]

#: Candidate-column cap per segment.  LocusRoute does not evaluate every
#: two-bend route of a chip-crossing wire: long segments sample their
#: candidate columns (Rose, DAC '88) so evaluation cost stays roughly
#: linear in span.  Segments with more than this many columns evaluate a
#: strided sample (endpoints always included), which also keeps the
#: work distribution's tail short enough to load-balance — with full
#: enumeration a single chip-crossing wire costs O(span^2) and no static
#: assignment can balance it.
MAX_CANDIDATES = 64


@dataclass(frozen=True)
class SegmentRoute:
    """Outcome of routing one two-pin segment.

    Attributes
    ----------
    xv:
        The chosen vertical column.
    cost:
        Sum of cost-array entries along the chosen path (pre-increment).
    work_cells:
        Simulated candidate-cell inspections performed by the evaluation.
    read_box:
        The bounding rectangle of everything the evaluation inspected.
    c1, x1, c2, x2:
        The segment's pin coordinates (``x1 <= x2``).
    candidates:
        The candidate columns evaluated (empty for same-channel segments).
    """

    xv: int
    cost: int
    work_cells: int
    read_box: BBox
    c1: int
    x1: int
    c2: int
    x2: int
    candidates: np.ndarray

    def read_cells(self, n_grids: int) -> np.ndarray:
        """Flat indices of every cell the evaluation inspected.

        The candidate loop reads the two pin-channel rows *contiguously*
        over the segment's column range, but the interior channels only at
        the sampled candidate columns — a *strided* access pattern.  The
        distinction matters for the shared memory traffic study (Table 3):
        strided references use one word per fetched cache line, so their
        bus cost grows with the line size, while the contiguous row runs
        coalesce.
        """
        parts = [
            self.c1 * n_grids + np.arange(self.x1, self.x2 + 1, dtype=np.int64)
        ]
        if self.c2 != self.c1:
            parts.append(
                self.c2 * n_grids + np.arange(self.x1, self.x2 + 1, dtype=np.int64)
            )
            c_lo, c_hi = sorted((self.c1, self.c2))
            if c_hi - c_lo > 1 and self.candidates.size:
                interior = np.arange(c_lo + 1, c_hi, dtype=np.int64)
                parts.append(
                    (interior[:, None] * n_grids + self.candidates[None, :]).reshape(-1)
                )
        return np.concatenate(parts)


@dataclass(frozen=True)
class WireRoute:
    """Outcome of routing a whole wire.

    ``cost`` is the sum of the wire's cells' occupancies at evaluation time
    (the wire's contribution to the occupancy factor when measured on the
    routing view); ``segments`` keeps per-segment detail for tracing and
    the locality measure.
    """

    path: RoutePath
    cost: int
    work_cells: int
    segments: Tuple[SegmentRoute, ...]

    @property
    def read_boxes(self) -> List[BBox]:
        """Rectangles read during evaluation, one per segment."""
        return [s.read_box for s in self.segments]


def _evaluate_segment(
    cost: CostArray,
    a: Pin,
    b: Pin,
    tie_break: int,
    row_prefix: Callable[[int], np.ndarray],
) -> SegmentRoute:
    """Shared two-bend evaluation body, parameterized by the prefix provider.

    ``row_prefix`` supplies the exclusive prefix-sum row for a channel —
    :meth:`CostArray.row_prefix` recomputes or serves its cache depending
    on the array's cache state, and alternative providers (a snapshot, a
    shared table) slot in without duplicating the tie-break argmin or the
    work accounting.  Every caller therefore picks the same column, cost,
    and work for the same array contents.
    """
    x1, c1 = a.x, a.channel
    x2, c2 = b.x, b.channel
    c_lo, c_hi = (c1, c2) if c1 <= c2 else (c2, c1)
    span = x2 - x1

    if c1 == c2:
        # Straight run inside one channel: no bend choice to make.
        p = row_prefix(c1)
        run_cost = int(p[x2 + 1] - p[x1])
        return SegmentRoute(
            xv=x1,
            cost=run_cost,
            work_cells=span + 1,
            read_box=BBox(c1, x1, c1, x2),
            c1=c1,
            x1=x1,
            c2=c2,
            x2=x2,
            candidates=np.empty(0, dtype=np.int64),
        )

    p1 = row_prefix(c1)
    p2 = row_prefix(c2)
    xv_all = _candidate_columns(x1, x2)
    h1 = p1[xv_all + 1] - p1[x1]  # channel c1: x1 .. xv inclusive
    h2 = p2[x2 + 1] - p2[xv_all]  # channel c2: xv .. x2 inclusive
    interior = cost.column_range_sums(c_lo + 1, c_hi - 1, x1, x2)[xv_all - x1]
    totals = h1 + h2 + interior
    if tie_break == 0:
        best = int(np.argmin(totals))  # first minimum: smallest xv
    else:
        best = int(totals.size - 1 - np.argmin(totals[::-1]))  # last minimum
    n_interior = max(0, c_hi - c_lo - 1)
    # Every candidate's path has span + 2 + n_interior cells, so evaluation
    # inspects exactly candidates x that many cells.
    return SegmentRoute(
        xv=int(xv_all[best]),
        cost=int(totals[best]),
        work_cells=int(xv_all.size) * (span + 2 + n_interior),
        read_box=BBox(c_lo, x1, c_hi, x2),
        c1=c1,
        x1=x1,
        c2=c2,
        x2=x2,
        candidates=xv_all,
    )


def route_segment(
    cost: CostArray, a: Pin, b: Pin, tie_break: int = 0
) -> SegmentRoute:
    """Choose the cheapest two-bend route between pins *a* and *b*.

    Requires ``a.x <= b.x`` (wires store pins sorted).

    ``tie_break`` selects which of several equal-cost candidate columns
    wins: 0 takes the smallest ``xv``, 1 the largest.  The rip-up/reroute
    engines alternate this per iteration, modelling the route churn of the
    original program (whose candidate scan order made equal-cost choices
    unstable between iterations); a fixed deterministic winner would let
    consecutive iterations re-pick identical paths, and the delta-array
    cancellation (§5.2) would then erase nearly all update traffic.
    """
    if a.x > b.x:
        raise RoutingError(f"segment pins out of order: {a} after {b}")
    if tie_break not in (0, 1):
        raise RoutingError(f"tie_break must be 0 or 1, got {tie_break}")
    return _evaluate_segment(cost, a, b, tie_break, cost.row_prefix)


def segment_cells(a: Pin, b: Pin, xv: int, n_grids: int) -> np.ndarray:
    """Flat cell indices of the two-bend path through column *xv*.

    The path is: channel ``a.channel`` from ``a.x`` to ``xv``, the interior
    channels at ``xv``, channel ``b.channel`` from ``xv`` to ``b.x``.
    Duplicates cannot occur within one segment by construction.
    """
    if not (min(a.x, b.x) <= xv <= max(a.x, b.x)):
        raise RoutingError(f"xv={xv} outside segment columns [{a.x}, {b.x}]")
    x1, c1 = a.x, a.channel
    x2, c2 = b.x, b.channel
    if c1 == c2:
        # Straight run: the whole column range in the shared channel.
        run = np.arange(min(x1, x2), max(x1, x2) + 1, dtype=np.int64)
        return c1 * n_grids + run
    c_lo, c_hi = (c1, c2) if c1 <= c2 else (c2, c1)
    parts: List[np.ndarray] = [
        c1 * n_grids + np.arange(min(x1, xv), max(x1, xv) + 1, dtype=np.int64)
    ]
    if c_hi - c_lo > 1:
        interior = np.arange(c_lo + 1, c_hi, dtype=np.int64)
        parts.append(interior * n_grids + xv)
    parts.append(
        c2 * n_grids + np.arange(min(xv, x2), max(xv, x2) + 1, dtype=np.int64)
    )
    return np.concatenate(parts)


def _candidate_columns(x1: int, x2: int) -> np.ndarray:
    """Candidate vertical columns for a segment spanning ``[x1, x2]``."""
    if x2 - x1 + 1 <= MAX_CANDIDATES:
        return np.arange(x1, x2 + 1, dtype=np.int64)
    # Strided candidate sampling for long segments; both endpoints are
    # always candidates so degenerate detours are never forced.  The
    # rounded linspace is already non-decreasing, so deduplication is a
    # neighbour comparison rather than a full np.unique sort.
    cols = np.linspace(x1, x2, MAX_CANDIDATES).round().astype(np.int64)
    keep = np.empty(cols.size, dtype=bool)
    keep[0] = True
    np.not_equal(cols[1:], cols[:-1], out=keep[1:])
    return cols[keep]


def route_wire_reference(
    cost: CostArray, wire: Wire, tie_break: int = 0
) -> WireRoute:
    """Per-segment reference evaluation (the differential oracle)."""
    seg_routes: List[SegmentRoute] = []
    cell_parts: List[np.ndarray] = []
    work = 0
    for a, b in wire.segments():
        seg = route_segment(cost, a, b, tie_break=tie_break)
        seg_routes.append(seg)
        cell_parts.append(segment_cells(a, b, seg.xv, cost.n_grids))
        work += seg.work_cells
    path = RoutePath.from_cells(np.concatenate(cell_parts), cost.n_grids)
    return WireRoute(
        path=path,
        cost=cost.path_cost(path.flat_cells),
        work_cells=work,
        segments=tuple(seg_routes),
    )


def route_wire_vectorized(
    cost: CostArray, wire: Wire, tie_break: int = 0
) -> WireRoute:
    """Fused whole-wire evaluation (one prefix-table build per wire).

    Delegates to :func:`repro.route.wavefront.route_wire_fused`: one
    :meth:`CostArray.block_prefix_tables` call prices every candidate of
    every segment of the wire in stacked array arithmetic, with no
    per-wire cache invalidation tax (the earlier write-invalidated prefix
    cache paid invalidation on every parallel-commit, which made it a net
    loss on the T6 path).  Output is bit-identical to
    :func:`route_wire_reference`.
    """
    global _route_wire_fused
    if _route_wire_fused is None:
        from .wavefront import route_wire_fused as _fused

        _route_wire_fused = _fused
    return _route_wire_fused(cost, wire, tie_break=tie_break)


#: Lazily resolved to break the twobend <-> wavefront import cycle.
_route_wire_fused = None


def route_wire(cost: CostArray, wire: Wire, tie_break: int = 0) -> WireRoute:
    """Route every segment of *wire* against *cost* and union the cells.

    The cost array is *not* modified; callers decide when to commit the
    path (sequential router: immediately; parallel simulators: at the
    wire's commit event).  The reported wire cost prices the *deduplicated*
    footprint, so a cell crossed by two segments of the same wire counts
    once — consistent with the one-increment-per-cell occupancy rule.
    ``tie_break`` is forwarded to the segment evaluator.

    Dispatches on :func:`repro.kernels.active_kernels`: the vectorised
    per-wire prefix-table kernel by default, the per-segment reference
    kernel under ``reference`` mode.  Both produce bit-identical routes.
    """
    if active_kernels() == "vectorized":
        return route_wire_vectorized(cost, wire, tie_break=tie_break)
    return route_wire_reference(cost, wire, tie_break=tie_break)
