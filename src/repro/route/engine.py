"""Sequential LocusRoute: the uniprocessor reference implementation.

This is the algorithm of paper §3 run on one processor: route every wire
once per iteration along its cheapest two-bend path, and from the second
iteration on, *rip up* the wire's previous path (decrement its cells)
before rerouting it.  "Performing several of these iterations, with all
wires routed once per iteration, improves the final solution quality."

The sequential router serves three roles in the reproduction:

1. the quality baseline every parallel configuration is compared against
   (it always sees a perfectly consistent cost array);
2. the work-unit oracle used to calibrate the execution-time model;
3. the reference for property tests (cost array == sum of path indicators).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

from ..circuits.model import Circuit
from ..errors import RoutingError
from ..grid.cost_array import CostArray
from ..kernels import active_kernels
from .path import RoutePath
from .quality import QualityReport, circuit_height
from .twobend import WireRoute, route_wire
from .wavefront import route_iteration_wavefront

__all__ = ["SequentialRouter", "SequentialResult", "DEFAULT_ITERATIONS"]

#: Default rip-up-and-reroute iteration count.  Rose reports quality
#: saturating after a few iterations; three keeps runs fast while leaving
#: one full rip-up pass after the greedy first pass has settled.
DEFAULT_ITERATIONS = 3


@dataclass(frozen=True)
class SequentialResult:
    """Outcome of a sequential routing run.

    ``paths`` maps wire index to its final :class:`RoutePath`; ``quality``
    summarises the final array; ``work_cells`` is total candidate-cell
    inspections (the calibration oracle); ``per_iteration_height`` shows
    the quality trajectory across iterations.
    """

    quality: QualityReport
    paths: Dict[int, RoutePath]
    work_cells: int
    per_iteration_height: List[int]
    cost: CostArray


class SequentialRouter:
    """Uniprocessor rip-up-and-reroute LocusRoute driver.

    Parameters
    ----------
    circuit:
        The circuit to route.
    iterations:
        Number of routing iterations (>= 1).
    """

    def __init__(self, circuit: Circuit, iterations: int = DEFAULT_ITERATIONS) -> None:
        if iterations < 1:
            raise RoutingError(f"need >= 1 iteration, got {iterations}")
        self.circuit = circuit
        self.iterations = iterations

    def run(self, wire_order: Optional[Sequence[int]] = None) -> SequentialResult:
        """Route the whole circuit and return the final solution.

        ``wire_order`` fixes the order wires are visited inside each
        iteration (defaults to index order).  The same order is used in
        every iteration, matching the original program's behaviour.
        """
        circuit = self.circuit
        order = list(wire_order) if wire_order is not None else list(range(circuit.n_wires))
        if sorted(order) != list(range(circuit.n_wires)):
            raise RoutingError("wire_order must be a permutation of all wire indices")

        cost = CostArray(circuit.n_channels, circuit.n_grids)
        paths: Dict[int, RoutePath] = {}
        total_work = 0
        heights: List[int] = []
        occupancy = 0

        wavefront = active_kernels() == "vectorized" and circuit.n_wires > 0
        for iteration in range(self.iterations):
            if wavefront:
                # Batched wave-front routing: partitions this iteration's
                # wires into independence classes and routes each class in
                # one fused evaluation.  Bit-identical to the scalar loop
                # below (locusroute verify replays both).
                occupancy, work = route_iteration_wavefront(
                    cost, circuit, order, paths, tie_break=iteration % 2
                )
                total_work += work
            else:
                occupancy = 0
                for wire_idx in order:
                    wire = circuit.wire(wire_idx)
                    if wire_idx in paths:
                        cost.remove_path(paths[wire_idx].flat_cells)
                    result: WireRoute = route_wire(
                        cost, wire, tie_break=iteration % 2
                    )
                    total_work += result.work_cells
                    occupancy += result.cost
                    cost.apply_path(result.path.flat_cells)
                    paths[wire_idx] = result.path
            heights.append(circuit_height(cost))

        quality = QualityReport(
            circuit_height=heights[-1],
            occupancy_factor=occupancy,
            total_wire_cells=cost.total_occupancy(),
        )
        return SequentialResult(
            quality=quality,
            paths=paths,
            work_cells=total_work,
            per_iteration_height=heights,
            cost=cost,
        )
