"""The LocusRoute router core: two-bend evaluation, rip-up/reroute engine,
quality metrics, the locality measure, and work accounting."""

from .engine import DEFAULT_ITERATIONS, SequentialResult, SequentialRouter
from .locality import LocalityReport, locality_measure
from .path import RoutePath
from .quality import QualityReport, circuit_height, track_profile
from .twobend import SegmentRoute, WireRoute, route_segment, route_wire, segment_cells
from .workmodel import (
    COMMIT_CELL_UNITS,
    INCORPORATE_CELL_UNITS,
    SCAN_CELL_UNITS,
    WorkCounter,
)

__all__ = [
    "RoutePath",
    "SegmentRoute",
    "WireRoute",
    "route_segment",
    "route_wire",
    "segment_cells",
    "SequentialRouter",
    "SequentialResult",
    "DEFAULT_ITERATIONS",
    "QualityReport",
    "circuit_height",
    "track_profile",
    "LocalityReport",
    "locality_measure",
    "WorkCounter",
    "COMMIT_CELL_UNITS",
    "SCAN_CELL_UNITS",
    "INCORPORATE_CELL_UNITS",
]
