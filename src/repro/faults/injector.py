"""The fault injector: turns a :class:`FaultPlan` into per-packet fate.

The injector sits inside :meth:`WormholeNetwork.send
<repro.netsim.wormhole.WormholeNetwork.send>`: the network asks
:meth:`FaultInjector.on_send` for a :class:`FaultDecision` before
reserving links, then consults the window helpers while computing the
flit train's start and arrival times.

Determinism contract
--------------------
Decisions come from one PCG64 stream seeded by ``plan.seed``.  Exactly
four uniforms are drawn per data-packet send attempt (drop, duplicate,
delay, reorder), in that order, plus one magnitude draw per triggered
delay/reorder — so the stream position is a pure function of the packet
sequence, and identical ``(plan, workload)`` pairs replay identical
fault sequences.  Liveness control packets (heartbeats, acks, death
notices) are exempt — they model a reliable acked control channel — and
draw nothing, leaving the data-packet stream undisturbed.  Duplicated copies are transmitted verbatim and do not
re-enter the decision path (no fault cascades, no unbounded
re-duplication).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence

import numpy as np

from ..updates.types import is_control
from .plan import FaultPlan, FaultStats

__all__ = ["FaultDecision", "FaultInjector"]


@dataclass(frozen=True)
class FaultDecision:
    """The injector's verdict for one send attempt."""

    drop: bool = False
    #: Transmitted copies (1 = normal, 2 = duplicated); 0 when dropped.
    copies: int = 1
    #: Extra destination-side latency from delay/reorder faults.
    extra_delay_s: float = 0.0


_NO_FAULT = FaultDecision()


class FaultInjector:
    """Stateful per-run fault oracle bound to one network.

    Parameters
    ----------
    plan:
        The declarative fault description.
    """

    def __init__(self, plan: FaultPlan) -> None:
        self.plan = plan
        self.stats = FaultStats()
        self._rng = np.random.Generator(np.random.PCG64(plan.seed))
        # Pre-index windows/stalls for O(windows-on-this-link) lookups.
        self._windows_by_link: dict = {}
        for window in plan.link_windows:
            self._windows_by_link.setdefault(window.link, []).append(window)
        self._stalls_by_proc: dict = {}
        for stall in plan.node_stalls:
            self._stalls_by_proc.setdefault(stall.proc, []).append(stall)
        self._crash_at: dict = {c.proc: c.at_s for c in plan.node_crashes}
        self.stats.nodes_crashed = len(self._crash_at)

    # ------------------------------------------------------------------
    # per-packet Bernoulli faults
    # ------------------------------------------------------------------
    def on_send(self, message) -> FaultDecision:
        """Decide the fate of one packet about to be injected."""
        plan = self.plan
        self.stats.send_attempts += 1
        if not plan.has_packet_faults:
            return _NO_FAULT
        kind = getattr(message.payload, "kind", None)
        kind_name = getattr(kind, "name", None) if kind is not None else None
        if kind is not None and is_control(kind):
            # Liveness traffic (heartbeats, acks, death notices) rides a
            # reliable acked control channel: exempt from the Bernoulli
            # packet faults, or a dropped death notice would leave the
            # survivors' ownership maps diverged forever.  Control packets
            # draw nothing, so the data-packet fault stream is unchanged.
            return _NO_FAULT
        # Always four draws, in a fixed order, per data-packet attempt.
        u_drop, u_dup, u_delay, u_reorder = self._rng.random(4)

        if u_drop < plan.kind_drop_prob(kind_name):
            self.stats.count_drop(kind_name, message.length_bytes)
            return FaultDecision(drop=True, copies=0)

        copies = 1
        if u_dup < plan.kind_duplicate_prob(kind_name):
            copies = 2
            self.stats.duplicated += 1

        extra = 0.0
        if u_delay < plan.delay_prob:
            extra += float(self._rng.random()) * plan.max_delay_s
            self.stats.delayed += 1
        if u_reorder < plan.reorder_prob:
            extra += float(self._rng.random()) * plan.reorder_window_s
            self.stats.reordered += 1
        if copies == 1 and extra == 0.0:
            return _NO_FAULT
        return FaultDecision(drop=False, copies=copies, extra_delay_s=extra)

    # ------------------------------------------------------------------
    # time-window faults (deterministic, no RNG)
    # ------------------------------------------------------------------
    def outage_release(self, links: Sequence[int], t_start: float) -> float:
        """Earliest start >= *t_start* clear of every outage on *links*.

        Outage windows on different links of the route may chain (being
        pushed past one window can land the train inside another), so the
        scan repeats until the candidate time is stable.
        """
        if not self._windows_by_link:
            return t_start
        released = t_start
        moved = True
        while moved:
            moved = False
            for link in links:
                for window in self._windows_by_link.get(int(link), ()):
                    if window.slowdown is None and window.start_s <= released < window.end_s:
                        released = window.end_s
                        moved = True
        if released > t_start:
            self.stats.outage_deferrals += 1
        return released

    def slowdown_delay(
        self, links: Sequence[int], t_start: float, transfer_s: float
    ) -> float:
        """Extra latency from slowdown windows active at *t_start*.

        The worst slowdown factor among the route's active windows
        stretches the transfer time ``transfer_s``; modelled as extra
        destination-side latency so link reservations stay exact.
        """
        if not self._windows_by_link:
            return 0.0
        worst = 1.0
        for link in links:
            for window in self._windows_by_link.get(int(link), ()):
                if window.slowdown is not None and window.start_s <= t_start < window.end_s:
                    worst = max(worst, window.slowdown)
        if worst <= 1.0:
            return 0.0
        self.stats.slowdown_hits += 1
        return (worst - 1.0) * transfer_s

    # ------------------------------------------------------------------
    # fail-stop crashes (deterministic, no RNG)
    # ------------------------------------------------------------------
    def crash_time(self, proc: int) -> Optional[float]:
        """The planned crash time of *proc*, or ``None`` if it never dies."""
        return self._crash_at.get(proc)

    def is_crashed(self, proc: int, t: float) -> bool:
        """True once *proc*'s planned crash time has passed at time *t*."""
        at = self._crash_at.get(proc)
        return at is not None and t >= at

    def count_crash_send_drop(self) -> None:
        """A dead node tried to send: the packet never reaches the network."""
        self.stats.crash_dropped_sends += 1

    def count_crash_delivery_drop(self) -> None:
        """An in-flight message arrived at a dead node and was discarded."""
        self.stats.crash_dropped_deliveries += 1

    def stall_release(self, proc: int, arrive: float) -> float:
        """Delivery time once *proc*'s stall windows are accounted for."""
        stalls = self._stalls_by_proc.get(proc)
        if not stalls:
            return arrive
        released = arrive
        for stall in stalls:
            if stall.start_s <= released < stall.end_s:
                released = stall.end_s
        if released > arrive:
            self.stats.deliveries_stalled += 1
        return released
