"""Fault plans: the declarative, seed-driven description of what breaks.

A :class:`FaultPlan` is a frozen, picklable dataclass, so it slots into
the harness's content-addressed result cache the same way an
:class:`~repro.updates.schedule.UpdateSchedule` does: two runs with the
same circuit, schedule and plan (including ``seed``) produce identical
fingerprints.

The plan describes *network-level* misbehaviour only; the protocol-level
recovery that survives it (request retries, blocking-mode timeouts) is
configured by the nested :class:`RecoveryPolicy` and executed by
:class:`~repro.parallel.node.MPNode`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional, Tuple

import numpy as np

from ..errors import FaultPlanError

__all__ = [
    "FaultPlan",
    "FaultStats",
    "LinkWindow",
    "NodeCrash",
    "NodeStall",
    "RecoveryPolicy",
    "random_crashes",
]


@dataclass(frozen=True)
class LinkWindow:
    """A time window during which one link misbehaves.

    ``slowdown=None`` means a full outage: no flit train whose route uses
    ``link`` may *start* inside ``[start_s, end_s)``; injections are
    deferred to the window's end.  A numeric ``slowdown`` (> 1) instead
    stretches the transfer of any train starting inside the window by
    that factor (modelled as extra destination-side latency, so link
    reservations — and the flit-conservation accounting — are unchanged).
    """

    link: int
    start_s: float
    end_s: float
    slowdown: Optional[float] = None

    def __post_init__(self) -> None:
        if self.link < 0:
            raise FaultPlanError(f"link index must be >= 0, got {self.link}")
        if not (0.0 <= self.start_s < self.end_s):
            raise FaultPlanError(
                f"window needs 0 <= start < end, got [{self.start_s}, {self.end_s})"
            )
        if self.slowdown is not None and self.slowdown <= 1.0:
            raise FaultPlanError(f"slowdown must exceed 1, got {self.slowdown}")


@dataclass(frozen=True)
class NodeStall:
    """A processor stall: deliveries landing in the window wait it out.

    Models a node that stops servicing its network interface (GC pause,
    OS preemption, thermal throttle) during ``[start_s, end_s)``; packets
    whose arrival falls inside the window are held until ``end_s``.
    """

    proc: int
    start_s: float
    end_s: float

    def __post_init__(self) -> None:
        if self.proc < 0:
            raise FaultPlanError(f"proc must be >= 0, got {self.proc}")
        if not (0.0 <= self.start_s < self.end_s):
            raise FaultPlanError(
                f"stall needs 0 <= start < end, got [{self.start_s}, {self.end_s})"
            )


@dataclass(frozen=True)
class NodeCrash:
    """Fail-stop crash of one processor at a fixed virtual time.

    From ``at_s`` onwards the processor sends nothing (packets it would
    emit are discarded at the network interface and counted), answers
    nothing, and every in-flight message addressed to it is dropped on
    arrival.  There is no recovery of the crashed node itself; survivors
    detect the death (see :class:`RecoveryPolicy` suspicion) and adopt
    its cost-array regions and unfinished wires.
    """

    proc: int
    at_s: float

    def __post_init__(self) -> None:
        if self.proc < 0:
            raise FaultPlanError(f"proc must be >= 0, got {self.proc}")
        if self.at_s < 0:
            raise FaultPlanError(f"crash time must be >= 0, got {self.at_s}")


def random_crashes(
    n_procs: int,
    n_crashes: int,
    at_s: float,
    seed: int,
    spread: float = 0.5,
) -> Tuple[NodeCrash, ...]:
    """Seed-deterministic crash set: *n_crashes* distinct procs, times in
    ``[at_s, at_s * (1 + spread)]``.

    The draw uses its own PCG64 stream (derived from *seed*), so it never
    perturbs the injector's per-packet stream; the same arguments always
    yield the same crashes.  At least one processor must survive.
    """
    if n_crashes < 0:
        raise FaultPlanError(f"n_crashes must be >= 0, got {n_crashes}")
    if n_crashes == 0:
        return ()
    if n_crashes >= n_procs:
        raise FaultPlanError(
            f"cannot crash {n_crashes} of {n_procs} processors: "
            "at least one must survive"
        )
    if at_s <= 0:
        raise FaultPlanError(f"base crash time must be positive, got {at_s}")
    if spread < 0:
        raise FaultPlanError(f"spread must be >= 0, got {spread}")
    rng = np.random.default_rng([seed, 0xC4A5])
    procs = sorted(int(p) for p in rng.choice(n_procs, size=n_crashes, replace=False))
    times = at_s * (1.0 + spread * rng.random(n_crashes))
    return tuple(
        NodeCrash(proc=p, at_s=float(t)) for p, t in zip(procs, times)
    )


@dataclass(frozen=True)
class RecoveryPolicy:
    """Watchdog semantics for overdue ReqRmtData responses.

    A node arms a watchdog when it issues a request; if the response has
    not arrived after ``watchdog_timeout_s`` the request is re-issued,
    each retry waiting ``backoff_factor`` times longer than the last.
    After ``max_retries`` re-sends the request is *abandoned*: the node
    gives up on fresh data for that region and routes against its stale
    view — the graceful-degradation path.  Abandonment is what unblocks
    blocking-mode nodes that would otherwise deadlock (§4.3.3 blocking
    semantics assume a lossless network).

    The timeout must be calibrated against *servicing* delay, not wire
    latency: owners poll for packets between wires (§5.1.3), so a healthy
    response can take a full wire-routing time (several ms) to appear.
    The default (10 ms) keeps fault-free requests inside the retry
    budget — the watchdog may still fire on a slow response (it cannot
    distinguish slow from lost), but the retry is idempotent and the
    request is never abandoned unless the network is actually eating
    responses.

    Failure detection (crash plans only): after ``suspect_after``
    abandonments attributed to the same peer, the node *suspects* it and
    sends a heartbeat probe.  Probes use the same retry machinery with a
    ``probe_timeout_factor`` times longer base timeout (a live peer
    answers between wires, so the probe budget must cover several
    wire-routing times — a short budget would declare slow peers dead).
    A peer that exhausts the probe retries is declared dead and the
    declaration is gossiped to every survivor.

    ``jitter`` desynchronises the exponential backoff: each retry's
    timeout is stretched by a factor uniform in ``[1, 1 + jitter]``,
    drawn from a per-node generator seeded by ``(fault seed, proc)`` —
    never the global RNG — so lossy runs stay bit-reproducible across
    ``--jobs`` settings.
    """

    watchdog_timeout_s: float = 1e-2
    backoff_factor: float = 2.0
    max_retries: int = 3
    #: Backoff jitter fraction; timeouts stretch by U[1, 1 + jitter].
    jitter: float = 0.1
    #: Abandonments charged to one peer before it is suspected/probed.
    suspect_after: int = 1
    #: Heartbeat probes wait this multiple of ``watchdog_timeout_s``.
    probe_timeout_factor: float = 4.0

    def __post_init__(self) -> None:
        if self.watchdog_timeout_s <= 0:
            raise FaultPlanError(
                f"watchdog_timeout_s must be positive, got {self.watchdog_timeout_s}"
            )
        if self.backoff_factor < 1.0:
            raise FaultPlanError(
                f"backoff_factor must be >= 1, got {self.backoff_factor}"
            )
        if self.max_retries < 0:
            raise FaultPlanError(f"max_retries must be >= 0, got {self.max_retries}")
        if self.jitter < 0:
            raise FaultPlanError(f"jitter must be >= 0, got {self.jitter}")
        if self.suspect_after < 1:
            raise FaultPlanError(
                f"suspect_after must be >= 1, got {self.suspect_after}"
            )
        if self.probe_timeout_factor < 1.0:
            raise FaultPlanError(
                f"probe_timeout_factor must be >= 1, got {self.probe_timeout_factor}"
            )


def _check_prob(name: str, value: float) -> None:
    if not (0.0 <= value <= 1.0):
        raise FaultPlanError(f"{name} must be a probability in [0, 1], got {value}")


@dataclass(frozen=True)
class FaultPlan:
    """Everything the injector needs to decide each packet's fate.

    Per-packet faults are Bernoulli draws from a ``seed``-derived PCG64
    stream, consumed in network injection order (which is deterministic
    in virtual time), so the whole fault sequence is a pure function of
    ``(plan, workload)``.

    ``drop_prob_by_kind`` / ``duplicate_prob_by_kind`` override the
    global probabilities for specific packet kinds, keyed by
    :class:`~repro.updates.types.UpdateKind` member *name* (e.g.
    ``"RSP_RMT_DATA"``); this is how the test suite expresses "drop every
    response" without touching requests.
    """

    seed: int = 0
    drop_prob: float = 0.0
    duplicate_prob: float = 0.0
    delay_prob: float = 0.0
    #: Extra latency of a delayed packet: uniform in (0, max_delay_s].
    max_delay_s: float = 500e-6
    reorder_prob: float = 0.0
    #: A reordered packet is held up to this long, letting later
    #: injections overtake it.
    reorder_window_s: float = 100e-6
    drop_prob_by_kind: Tuple[Tuple[str, float], ...] = ()
    duplicate_prob_by_kind: Tuple[Tuple[str, float], ...] = ()
    link_windows: Tuple[LinkWindow, ...] = ()
    node_stalls: Tuple[NodeStall, ...] = ()
    #: Fail-stop processor crashes (see :class:`NodeCrash`); survivors
    #: detect them and adopt the dead nodes' regions and wires.
    node_crashes: Tuple[NodeCrash, ...] = ()
    #: ``None`` disables the watchdog entirely (faults with no recovery).
    recovery: Optional[RecoveryPolicy] = RecoveryPolicy()

    def __post_init__(self) -> None:
        for name in ("drop_prob", "duplicate_prob", "delay_prob", "reorder_prob"):
            _check_prob(name, getattr(self, name))
        for attr in ("drop_prob_by_kind", "duplicate_prob_by_kind"):
            for kind, prob in getattr(self, attr):
                _check_prob(f"{attr}[{kind!r}]", prob)
        if self.max_delay_s <= 0:
            raise FaultPlanError(f"max_delay_s must be positive, got {self.max_delay_s}")
        if self.reorder_window_s <= 0:
            raise FaultPlanError(
                f"reorder_window_s must be positive, got {self.reorder_window_s}"
            )
        procs = [crash.proc for crash in self.node_crashes]
        if len(set(procs)) != len(procs):
            raise FaultPlanError(f"duplicate crash procs in {procs}")

    # ------------------------------------------------------------------
    def kind_drop_prob(self, kind_name: Optional[str]) -> float:
        """Drop probability for a packet of *kind_name* (global fallback)."""
        for kind, prob in self.drop_prob_by_kind:
            if kind == kind_name:
                return prob
        return self.drop_prob

    def kind_duplicate_prob(self, kind_name: Optional[str]) -> float:
        """Duplicate probability for *kind_name* (global fallback)."""
        for kind, prob in self.duplicate_prob_by_kind:
            if kind == kind_name:
                return prob
        return self.duplicate_prob

    @property
    def has_packet_faults(self) -> bool:
        """True when any per-packet Bernoulli fault can fire."""
        return (
            self.drop_prob > 0
            or self.duplicate_prob > 0
            or self.delay_prob > 0
            or self.reorder_prob > 0
            or any(p > 0 for _, p in self.drop_prob_by_kind)
            or any(p > 0 for _, p in self.duplicate_prob_by_kind)
        )

    def describe(self) -> str:
        """Compact human-readable form for run metadata."""
        parts = [f"seed={self.seed}"]
        for name, short in (
            ("drop_prob", "drop"),
            ("duplicate_prob", "dup"),
            ("delay_prob", "delay"),
            ("reorder_prob", "reorder"),
        ):
            value = getattr(self, name)
            if value > 0:
                parts.append(f"{short}={value:g}")
        for kind, prob in self.drop_prob_by_kind:
            parts.append(f"drop[{kind}]={prob:g}")
        for kind, prob in self.duplicate_prob_by_kind:
            parts.append(f"dup[{kind}]={prob:g}")
        if self.link_windows:
            parts.append(f"link_windows={len(self.link_windows)}")
        if self.node_stalls:
            parts.append(f"node_stalls={len(self.node_stalls)}")
        if self.node_crashes:
            parts.append(
                "crashes="
                + ",".join(f"p{c.proc}@{c.at_s:g}s" for c in self.node_crashes)
            )
        if self.recovery is None:
            parts.append("no-recovery")
        return " ".join(parts)


@dataclass
class FaultStats:
    """What the injector actually did to one run's traffic.

    ``send_attempts`` counts every packet handed to the network;
    ``dropped`` ones never entered it (no link reservation, no delivery),
    ``duplicated`` counts *extra* transmitted copies.  The lossy counters
    single out faults that can violate the delta-replica convergence
    invariant (see :mod:`repro.verify.invariants`): any drop or
    duplication may lose or double-count state, so the verify layer
    waives that check — explicitly, never silently — when
    :attr:`lossy` is true.
    """

    send_attempts: int = 0
    dropped: int = 0
    bytes_dropped: int = 0
    duplicated: int = 0
    delayed: int = 0
    reordered: int = 0
    outage_deferrals: int = 0
    slowdown_hits: int = 0
    deliveries_stalled: int = 0
    dropped_by_kind: Dict[str, int] = field(default_factory=dict)
    # Fail-stop crash effects, counted *separately* from the packet-fault
    # books: a crashed node's suppressed sends never reach the network
    # (so they are not ``send_attempts``), and in-flight deliveries to a
    # dead node are discarded after the network accounted them — the
    # ``attempts - dropped + duplicated == injected`` reconciliation must
    # keep holding unchanged under crashes.
    nodes_crashed: int = 0
    crash_dropped_sends: int = 0
    crash_dropped_deliveries: int = 0

    @property
    def lossy(self) -> bool:
        """True when state may have been lost or double-counted."""
        return self.dropped > 0 or self.duplicated > 0

    def count_drop(self, kind_name: Optional[str], length_bytes: int) -> None:
        """Record one dropped packet."""
        self.dropped += 1
        self.bytes_dropped += length_bytes
        key = kind_name or "?"
        self.dropped_by_kind[key] = self.dropped_by_kind.get(key, 0) + 1

    def as_dict(self) -> Dict[str, object]:
        """JSON-safe summary for ``meta["faults"]``."""
        return {
            "send_attempts": self.send_attempts,
            "dropped": self.dropped,
            "bytes_dropped": self.bytes_dropped,
            "duplicated": self.duplicated,
            "delayed": self.delayed,
            "reordered": self.reordered,
            "outage_deferrals": self.outage_deferrals,
            "slowdown_hits": self.slowdown_hits,
            "deliveries_stalled": self.deliveries_stalled,
            "dropped_by_kind": dict(self.dropped_by_kind),
            "nodes_crashed": self.nodes_crashed,
            "crash_dropped_sends": self.crash_dropped_sends,
            "crash_dropped_deliveries": self.crash_dropped_deliveries,
            "lossy": self.lossy,
        }
