"""Deterministic fault injection for the message passing simulator.

The paper's central claim for message passing is that *loose* consistency
is safe: stale cost-array replicas degrade routing quality gradually
rather than catastrophically (§4.1, §5.1).  The seed simulator proved
that only on a perfect network.  This package makes the claim testable
under genuine message loss: a seed-driven :class:`FaultPlan` injects
drops, duplicates, delays, reorderings, link outage/slowdown windows and
per-node stalls at the :class:`~repro.netsim.wormhole.WormholeNetwork`
boundary, while the :class:`RecoveryPolicy` watchdog machinery in
:class:`~repro.parallel.node.MPNode` retries overdue requests with
exponential backoff and unblocks blocking-mode nodes instead of
deadlocking.  Everything is deterministic: the same ``seed`` produces
the same fault sequence and therefore bit-identical run fingerprints.

See ``docs/FAULTS.md`` for the fault model and how drop-tolerance maps
onto the paper's staleness argument.
"""

from .injector import FaultDecision, FaultInjector
from .plan import (
    FaultPlan,
    FaultStats,
    LinkWindow,
    NodeCrash,
    NodeStall,
    RecoveryPolicy,
    random_crashes,
)

__all__ = [
    "FaultDecision",
    "FaultInjector",
    "FaultPlan",
    "FaultStats",
    "LinkWindow",
    "NodeCrash",
    "NodeStall",
    "RecoveryPolicy",
    "random_crashes",
]
