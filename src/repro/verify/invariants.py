"""Concrete invariant checkers for both simulators.

Each checker encodes one consistency guarantee the paper's argument
rests on (see docs/VERIFICATION.md for the paper-section mapping):

- **cost-array conservation** — at every quiescent point the ground
  truth array's total occupancy equals the summed length of the
  currently routed paths, and at end of run the array is *exactly* the
  union of the final paths (first differing cell reported otherwise);
- **MSI coherence legality** — the Write-Back-with-Invalidate state
  machine never holds a line modified in two caches, a modified line is
  exclusive, and every observed transition matches the protocol's legal
  edge for the access that caused it;
- **network flit conservation** — every message injected into the
  wormhole network is delivered exactly once, byte counts balance, no
  delivery beats the uncontended latency bound, and link-busy time
  equals the flit-train occupancy implied by the delivered messages;
- **delta-replica convergence** — at the end of a message passing run,
  each owner's view of its own region plus every other node's unsent
  deltas for that region reconstructs the sequential ground truth.

The monitors are engineered for near-zero cost when disabled: the
simulators construct them only under ``check_invariants=True``, and the
event-kernel probe fires every :data:`PROBE_INTERVAL` events.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..grid.cost_array import CostArray
from ..route.path import RoutePath
from .violations import VerificationReport

__all__ = [
    "PROBE_INTERVAL",
    "first_differing_cell",
    "earliest_wire_covering",
    "check_truth_is_path_union",
    "CostConservationMonitor",
    "CoherenceInvariantChecker",
    "NetworkInvariantMonitor",
    "check_replica_convergence",
    "check_ownership_totality",
]

#: Event-kernel probe cadence for the periodic accounting checks.
PROBE_INTERVAL = 256


# ----------------------------------------------------------------------
# array-difference helpers (shared by checkers and the oracle)
# ----------------------------------------------------------------------
def first_differing_cell(
    a: np.ndarray, b: np.ndarray
) -> Optional[Tuple[int, int, int, int]]:
    """First row-major ``(c, x, a_val, b_val)`` where the arrays differ."""
    diff = np.flatnonzero(a.reshape(-1) != b.reshape(-1))
    if diff.size == 0:
        return None
    flat = int(diff[0])
    n_grids = a.shape[1]
    return (flat // n_grids, flat % n_grids, int(a.reshape(-1)[flat]), int(b.reshape(-1)[flat]))


def earliest_wire_covering(
    flat_cell: int,
    paths: Dict[int, RoutePath],
    commit_times: Optional[Dict[int, float]] = None,
) -> Tuple[Optional[int], Optional[float]]:
    """The earliest-committed wire whose final path covers *flat_cell*.

    Returns ``(wire, commit_time)``; falls back to the lowest wire index
    when no commit times are known, and ``(None, None)`` when no routed
    path covers the cell (the divergence came from outside any path —
    e.g. a lost rip-up).
    """
    covering = [
        w
        for w, path in paths.items()
        if np.searchsorted(path.flat_cells, flat_cell) < path.n_cells
        and path.flat_cells[np.searchsorted(path.flat_cells, flat_cell)] == flat_cell
    ]
    if not covering:
        return None, None
    if commit_times:
        wire = min(covering, key=lambda w: (commit_times.get(w, np.inf), w))
        return wire, commit_times.get(wire)
    wire = min(covering)
    return wire, None


def check_truth_is_path_union(
    report: VerificationReport,
    truth: CostArray,
    paths: Dict[int, RoutePath],
    commit_times: Optional[Dict[int, float]] = None,
    engine: str = "",
    event_time_s: Optional[float] = None,
) -> bool:
    """End-of-run conservation: the truth array == union of final paths."""
    reference = CostArray(truth.n_channels, truth.n_grids)
    for path in paths.values():
        reference.apply_path(path.flat_cells)
    diff = first_differing_cell(truth.data, reference.data)
    prefix = f"{engine}: " if engine else ""
    if diff is None:
        report.count("cost-conservation")
        return True
    c, x, actual, expected = diff
    wire, wire_time = earliest_wire_covering(
        c * truth.n_grids + x, paths, commit_times
    )
    return report.check(
        "cost-conservation",
        False,
        f"{prefix}truth array diverges from the union of routed paths",
        cell=(c, x),
        wire=wire,
        event_time_s=wire_time if wire_time is not None else event_time_s,
        expected=expected,
        actual=actual,
    )


# ----------------------------------------------------------------------
# cost-array conservation (both simulators)
# ----------------------------------------------------------------------
class CostConservationMonitor:
    """Tracks Σ routed path lengths and compares against the truth array.

    The simulators call :meth:`on_ripup` / :meth:`on_commit` from their
    ground-truth hooks; :meth:`on_commit` and :meth:`at_quiescence`
    compare the incrementally maintained expected total against the
    array's actual total — the single cheapest canary for lost or
    double-counted path applications.  Final commit times are recorded
    so divergence reports can name the event timestamp.
    """

    def __init__(self, report: VerificationReport, truth: CostArray, engine: str) -> None:
        self.report = report
        self.truth = truth
        self.engine = engine
        self.expected_total = 0
        self.commit_times: Dict[int, float] = {}

    def on_ripup(self, wire_idx: int, path: RoutePath, time: float) -> None:
        self.expected_total -= path.n_cells

    def on_commit(self, wire_idx: int, path: RoutePath, time: float) -> None:
        self.expected_total += path.n_cells
        self.commit_times[wire_idx] = time
        actual = self.truth.total_occupancy()
        self.report.check(
            "cost-conservation",
            actual == self.expected_total,
            f"{self.engine}: total occupancy diverged from summed path "
            "lengths at commit",
            wire=wire_idx,
            event_time_s=time,
            expected=self.expected_total,
            actual=actual,
        )

    def at_quiescence(self, time: float, label: str) -> None:
        """Check conservation at a quiescent point (barrier, end of run)."""
        actual = self.truth.total_occupancy()
        self.report.check(
            "cost-conservation",
            actual == self.expected_total,
            f"{self.engine}: total occupancy diverged from summed path "
            f"lengths at {label}",
            event_time_s=time,
            expected=self.expected_total,
            actual=actual,
        )
        negative = np.flatnonzero(self.truth.data.reshape(-1) < 0)
        first = int(negative[0]) if negative.size else None
        self.report.check(
            "cost-conservation",
            negative.size == 0,
            f"{self.engine}: negative occupancy entry at {label}",
            cell=None
            if first is None
            else (first // self.truth.n_grids, first % self.truth.n_grids),
            event_time_s=time,
        )

    def at_end(self, paths: Dict[int, RoutePath], time: float) -> None:
        """Full end-of-run reconstruction check."""
        self.at_quiescence(time, "end of run")
        check_truth_is_path_union(
            self.report,
            self.truth,
            paths,
            commit_times=self.commit_times,
            engine=self.engine,
            event_time_s=time,
        )


# ----------------------------------------------------------------------
# MSI coherence legality (shared memory trace replay)
# ----------------------------------------------------------------------
class CoherenceInvariantChecker:
    """Checks every Write-Back-with-Invalidate transition for legality.

    Installed via ``simulate_trace(..., checker=...)``: :meth:`pre`
    snapshots the touched lines' states before the access burst,
    :meth:`post` verifies (1) the observed transition equals the
    protocol's single legal edge for that access, and (2) the resulting
    states are legal — a modified line has exactly one holder (no two
    caches in M) and sharers never exceed the ever-held set.
    """

    def __init__(self, report: VerificationReport, engine: str = "shared_memory") -> None:
        self.report = report
        self.engine = engine
        self._pre_sharers: Optional[np.ndarray] = None
        self._pre_dirty: Optional[np.ndarray] = None
        self._lines: Optional[np.ndarray] = None

    def pre(self, protocol, record) -> None:
        lines = protocol.amap.cells_to_lines(record.flat_cells)
        self._lines = lines
        sharers, dirty, _ = protocol.line_arrays(lines)
        self._pre_sharers = sharers
        self._pre_dirty = dirty

    def post(self, protocol, record) -> None:
        lines = self._lines
        if lines is None or lines.size == 0:
            return
        sharers, dirty, ever_held = protocol.line_arrays(lines)
        bit = np.int64(1) << record.proc

        # (1) transition legality: the protocol defines exactly one legal
        # post-state per (pre-state, access) pair.
        if record.is_write:
            exp_sharers = np.full_like(sharers, bit)
            exp_dirty = np.full_like(dirty, record.proc)
        else:
            exp_sharers = self._pre_sharers | bit
            exp_dirty = np.where(self._pre_dirty == record.proc, record.proc, -1).astype(
                dirty.dtype
            )
        bad = np.flatnonzero((sharers != exp_sharers) | (dirty != exp_dirty))
        self._violation_on(
            protocol,
            record,
            lines,
            bad,
            "illegal coherence transition for "
            + ("write" if record.is_write else "read"),
        )

        # (2) state legality: M is exclusive (never two caches modified),
        # and a cache can only share a line it has held.
        modified = dirty >= 0
        exclusive_ok = ~modified | (
            sharers == (np.int64(1) << dirty.astype(np.int64))
        )
        bad = np.flatnonzero(~exclusive_ok)
        self._violation_on(
            protocol, record, lines, bad, "modified line not exclusive"
        )
        bad = np.flatnonzero((sharers & ~ever_held) != 0)
        self._violation_on(
            protocol, record, lines, bad, "sharer bit set for a cache that never held the line"
        )
        self._lines = None

    def _violation_on(self, protocol, record, lines, bad_idx, message: str) -> None:
        if bad_idx.size == 0:
            self.report.count("msi-legality")
            return
        line = int(lines[int(bad_idx[0])])
        # Map the line back to a representative grid cell when it covers
        # the cost array (later lines hold scheduler/wire-record words).
        word = line * protocol.amap.words_per_line
        cell = None
        if word < protocol.amap.n_channels * protocol.amap.n_grids:
            cell = (word // protocol.amap.n_grids, word % protocol.amap.n_grids)
        self.report.check(
            "msi-legality",
            False,
            f"{self.engine}: {message} (line {line})",
            cell=cell,
            proc=record.proc,
            event_time_s=record.time,
        )


# ----------------------------------------------------------------------
# wormhole network accounting (message passing)
# ----------------------------------------------------------------------
class NetworkInvariantMonitor:
    """Flit conservation and in-flight message accounting.

    :meth:`probe` is registered on the event kernel and runs every
    :data:`PROBE_INTERVAL` events; :meth:`on_delivery` is called per
    delivery; :meth:`at_end` closes the books once the event queue has
    drained.
    """

    def __init__(self, report: VerificationReport, network) -> None:
        self.report = report
        self.network = network

    def probe(self) -> None:
        net = self.network
        self.report.check(
            "flit-conservation",
            net.messages_injected == net.messages_delivered + net.in_flight
            and net.in_flight >= 0,
            "message accounting imbalance while running "
            f"(injected={net.messages_injected}, "
            f"delivered={net.messages_delivered}, in_flight={net.in_flight})",
            event_time_s=net.sim.now,
        )

    def on_delivery(self, delivery) -> None:
        floor = self.network.uncontended_latency(
            delivery.message.src, delivery.message.dst, delivery.message.length_bytes
        )
        self.report.check(
            "flit-conservation",
            delivery.latency >= floor - 1e-12,
            "delivery beat the uncontended latency bound "
            f"(latency={delivery.latency:.3e}s, floor={floor:.3e}s)",
            proc=delivery.message.dst,
            event_time_s=delivery.arrive_time,
            expected=floor,
            actual=delivery.latency,
        )

    def at_end(self, end_time: float) -> None:
        net = self.network
        self.report.check(
            "flit-conservation",
            net.in_flight == 0,
            f"{net.in_flight} messages still in flight after the event "
            "queue drained",
            event_time_s=end_time,
            expected=0,
            actual=net.in_flight,
        )
        self.report.check(
            "flit-conservation",
            net.messages_injected == net.messages_delivered == net.stats.n_messages,
            "message counts disagree (injected="
            f"{net.messages_injected}, delivered={net.messages_delivered}, "
            f"recorded={net.stats.n_messages})",
            event_time_s=end_time,
        )
        self.report.check(
            "flit-conservation",
            net.bytes_injected == net.bytes_delivered == net.stats.total_bytes,
            "byte totals disagree (injected="
            f"{net.bytes_injected}, delivered={net.bytes_delivered}, "
            f"recorded={net.stats.total_bytes})",
            event_time_s=end_time,
        )
        # Flit-train occupancy: each delivered message held each of its
        # `hops` links for (L + 1) byte-times, so summed link-busy time
        # must equal hop_time * (Σ L·hops + Σ hops) exactly.
        expected_busy = net.hop_time_s * (
            net.stats.total_hop_bytes + net.stats.total_hops
        )
        actual_busy = float(net._link_busy_s.sum())
        self.report.check(
            "flit-conservation",
            abs(actual_busy - expected_busy) <= 1e-9 * max(1.0, expected_busy),
            "link-busy time diverges from delivered flit-train occupancy "
            f"(busy={actual_busy:.6e}s, expected={expected_busy:.6e}s)",
            event_time_s=end_time,
            expected=expected_busy,
            actual=actual_busy,
        )
        # Under fault injection the conservation counters see only the
        # *transmitted* traffic (drops never enter the network, duplicates
        # are full extra trains), so the injector's books must reconcile
        # with the network's: attempts - dropped + duplicated == injected.
        if getattr(net, "faults", None) is not None:
            stats = net.faults.stats
            expected_injected = stats.send_attempts - stats.dropped + stats.duplicated
            self.report.check(
                "flit-conservation",
                net.messages_injected == expected_injected,
                "fault accounting imbalance (attempts="
                f"{stats.send_attempts}, dropped={stats.dropped}, "
                f"duplicated={stats.duplicated}, injected="
                f"{net.messages_injected})",
                event_time_s=end_time,
                expected=expected_injected,
                actual=net.messages_injected,
            )


# ----------------------------------------------------------------------
# delta-replica convergence (message passing)
# ----------------------------------------------------------------------
def check_replica_convergence(
    report: VerificationReport,
    nodes: Sequence,
    truth: CostArray,
    end_time: float,
    engine: str = "message_passing",
) -> bool:
    """Owner view + undelivered remote deltas == ground truth, per region.

    At the end of a run the event queue has drained, so nothing is in
    flight: every change to an owner's region is either already folded
    into the owner's view (its own commits, plus every delivered
    SendRmtData / RspLocData) or still sitting unsent in some remote
    node's delta array.  Their sum must therefore reconstruct the ground
    truth exactly — the machine-checked statement of the paper's loose
    consistency contract (§4.1, §4.3).
    """
    ok = True
    for owner in nodes:
        region = owner.own_region
        reconstructed = owner.view.extract(region).astype(np.int64)
        for other in nodes:
            if other is not owner:
                reconstructed += other.delta.extract(region)
        expected = truth.extract(region).astype(np.int64)
        diff = first_differing_cell(reconstructed, expected)
        if diff is None:
            report.count("replica-convergence")
            continue
        c, x, actual, exp = diff
        ok = report.check(
            "replica-convergence",
            False,
            f"{engine}: owner {owner.proc}'s replica (view + undelivered "
            "deltas) diverges from ground truth",
            cell=(c + region.c_lo, x + region.x_lo),
            proc=owner.proc,
            event_time_s=end_time,
            expected=exp,
            actual=actual,
        )
    return ok


# ----------------------------------------------------------------------
# post-recovery ownership totality (message passing, crash plans)
# ----------------------------------------------------------------------
def check_ownership_totality(
    report: VerificationReport,
    nodes: Sequence,
    regions,
    confirmed_dead,
    end_time: float,
    engine: str = "message_passing",
) -> bool:
    """After crash recovery, every region has exactly one live owner.

    Three statements, checked from the per-node ownership replicas:

    - **totality** — in every live node's map, each region resolves to a
      processor that is live (in that node's view) and not in the
      simulator's confirmed-dead set, so every cell of the cost array
      has exactly one live owner;
    - **agreement** — all live nodes hold the *same* region -> owner
      vector (the deterministic hash ring converged regardless of the
      order deaths were learned in);
    - **no false positives** — every confirmed-dead processor really
      executed its fail-stop (a live node voted off the ring would be a
      detector false positive, reported distinctly).
    """
    dead = set(int(p) for p in confirmed_dead)
    live_nodes = [n for n in nodes if not n.crashed and n.proc not in dead]
    ok = report.check(
        "ownership-totality",
        bool(live_nodes),
        f"{engine}: no live node survived the crash plan",
        event_time_s=end_time,
    )
    vectors = {}
    for node in live_nodes:
        if node.ownership is None:
            continue
        vec = node.ownership.owner_vector()
        vectors[node.proc] = vec
        total = len(vec) == regions.n_procs
        orphaned = [r for r, owner in enumerate(vec) if owner in dead]
        viewed_dead = [
            r for r, owner in enumerate(vec) if not node.ownership.is_live(owner)
        ]
        ok = (
            report.check(
                "ownership-totality",
                total and not orphaned and not viewed_dead,
                f"{engine}: node {node.proc}'s ownership map leaves regions "
                "without a live owner",
                proc=node.proc,
                event_time_s=end_time,
                expected=[],
                actual=sorted(set(orphaned) | set(viewed_dead)),
            )
            and ok
        )
    if vectors:
        reference_proc = min(vectors)
        reference = vectors[reference_proc]
        disagreeing = sorted(
            p for p, vec in vectors.items() if vec != reference
        )
        ok = (
            report.check(
                "ownership-agreement",
                not disagreeing,
                f"{engine}: live nodes disagree on the region -> owner map",
                event_time_s=end_time,
                expected=list(reference),
                actual=disagreeing,
            )
            and ok
        )
        if not disagreeing:
            report.count("ownership-agreement", len(vectors))
    false_positives = sorted(p for p in dead if not nodes[p].crashed)
    ok = (
        report.check(
            "ownership-totality",
            not false_positives,
            f"{engine}: live processors were declared dead "
            "(failure detector false positive)",
            event_time_s=end_time,
            expected=[],
            actual=false_positives,
        )
        and ok
    )
    return ok
