"""Structured invariant-violation records and verification reports.

The verification layer never uses bare asserts: every failed check
becomes an :class:`InvariantViolation` carrying the machine-readable
context a debugging session needs — which invariant, the first differing
cell, the wire and processor involved, the virtual event timestamp, and
the expected/actual values.  Violations accumulate in a
:class:`VerificationReport`, which the simulators attach to their run
results (``meta["verification"]``) and the ``repro verify`` runner folds
into its exit status.

Telemetry: reports flush their check/violation totals into
:mod:`repro.obs` (``verify.checks``, ``verify.violations``, and
per-invariant ``verify.checks.<name>`` counters) once per run — one
batched increment, nothing per check — so harness runs record the
verification effort in ``BENCH_harness.json`` alongside events and
cache traffic.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from ..obs import telemetry as obs

__all__ = ["InvariantViolation", "VerificationReport", "RunVerification"]

#: Detailed violations kept per invariant; the rest are counted but not
#: stored, so a systematically corrupted run cannot flood memory/output.
MAX_VIOLATIONS_PER_INVARIANT = 25


@dataclass(frozen=True)
class InvariantViolation:
    """One failed invariant check, with enough context to localise it.

    Attributes
    ----------
    invariant:
        Name of the violated invariant (``"cost-conservation"``,
        ``"replica-convergence"``, ``"msi-legality"``, ...).
    message:
        Human-readable description of the failure.
    cell:
        First differing ``(channel, x)`` grid cell, when the invariant
        compares arrays.
    wire:
        Wire index involved (e.g. the earliest-committed wire covering
        the differing cell).
    proc:
        Processor / node / cache involved.
    event_time_s:
        Virtual time at which the violation was detected.
    expected, actual:
        The two sides of the failed comparison, when scalar.
    """

    invariant: str
    message: str
    cell: Optional[Tuple[int, int]] = None
    wire: Optional[int] = None
    proc: Optional[int] = None
    event_time_s: Optional[float] = None
    expected: Optional[float] = None
    actual: Optional[float] = None

    def as_dict(self) -> Dict[str, object]:
        """JSON-safe form (``None`` fields omitted)."""
        out: Dict[str, object] = {
            "invariant": self.invariant,
            "message": self.message,
        }
        for name in ("cell", "wire", "proc", "event_time_s", "expected", "actual"):
            value = getattr(self, name)
            if value is not None:
                out[name] = list(value) if isinstance(value, tuple) else value
        return out

    def describe(self) -> str:
        """One-line rendering for CLI output."""
        parts = [f"[{self.invariant}] {self.message}"]
        if self.cell is not None:
            parts.append(f"cell=(c={self.cell[0]}, x={self.cell[1]})")
        if self.wire is not None:
            parts.append(f"wire={self.wire}")
        if self.proc is not None:
            parts.append(f"proc={self.proc}")
        if self.event_time_s is not None:
            parts.append(f"t={self.event_time_s:.6g}s")
        return "  ".join(parts)


@dataclass
class VerificationReport:
    """Accumulated checks and violations from one verified run.

    ``checks_run`` counts checks per invariant name (passed and failed
    alike); ``violations`` holds every failure in detection order.  The
    report is additive: :meth:`merge` folds another report in, so the
    ``verify`` runner can combine per-engine reports.
    """

    checks_run: Dict[str, int] = field(default_factory=dict)
    violations: List[InvariantViolation] = field(default_factory=list)
    #: Violations dropped beyond :data:`MAX_VIOLATIONS_PER_INVARIANT`.
    suppressed: Dict[str, int] = field(default_factory=dict)

    @property
    def ok(self) -> bool:
        """True when no invariant was violated."""
        return not self.violations and not self.suppressed

    @property
    def total_violations(self) -> int:
        """Stored plus suppressed violations."""
        return len(self.violations) + sum(self.suppressed.values())

    @property
    def total_checks(self) -> int:
        """Total checks performed across all invariants."""
        return sum(self.checks_run.values())

    def count(self, invariant: str, n: int = 1) -> None:
        """Record *n* checks of *invariant* having run."""
        self.checks_run[invariant] = self.checks_run.get(invariant, 0) + n

    def check(self, invariant: str, ok: bool, message: str, **context) -> bool:
        """Count one check; record a violation when *ok* is false.

        Extra keyword arguments become :class:`InvariantViolation`
        fields.  Returns *ok* so callers can chain on the outcome.
        """
        self.count(invariant)
        if not ok:
            self.add(InvariantViolation(invariant=invariant, message=message, **context))
        return ok

    def add(self, violation: InvariantViolation) -> None:
        """Store a violation, or count it as suppressed past the cap."""
        name = violation.invariant
        stored = sum(1 for v in self.violations if v.invariant == name)
        if stored >= MAX_VIOLATIONS_PER_INVARIANT:
            self.suppressed[name] = self.suppressed.get(name, 0) + 1
        else:
            self.violations.append(violation)

    def merge(self, other: "VerificationReport") -> None:
        """Fold another report's checks and violations into this one."""
        for name, n in other.checks_run.items():
            self.count(name, n)
        for violation in other.violations:
            self.add(violation)
        for name, n in other.suppressed.items():
            self.suppressed[name] = self.suppressed.get(name, 0) + n

    def as_dict(self) -> Dict[str, object]:
        """JSON-safe summary (used by ``meta["verification"]``)."""
        return {
            "ok": self.ok,
            "total_checks": self.total_checks,
            "total_violations": self.total_violations,
            "checks_run": dict(self.checks_run),
            "violations": [v.as_dict() for v in self.violations],
            "suppressed": dict(self.suppressed),
        }

    def flush_telemetry(self) -> None:
        """Batch-report totals into the global telemetry counters."""
        obs.incr("verify.checks", self.total_checks)
        obs.incr("verify.violations", self.total_violations)
        for name, n in self.checks_run.items():
            obs.incr(f"verify.checks.{name}", n)

    def render(self) -> str:
        """Printable multi-line summary."""
        lines = [
            f"verification: {self.total_checks} checks, "
            f"{self.total_violations} violations"
        ]
        for name in sorted(self.checks_run):
            lines.append(f"  {name}: {self.checks_run[name]} checks")
        for violation in self.violations:
            lines.append(f"  VIOLATION {violation.describe()}")
        for name, n in sorted(self.suppressed.items()):
            lines.append(f"  ... and {n} more {name} violations (suppressed)")
        return "\n".join(lines)


@dataclass
class RunVerification:
    """What a checked simulator run attaches to ``meta``.

    Stored under ``meta["verification_report"]`` as a live object (the
    JSON summaries carry ``meta["verification"]`` =
    ``report.as_dict()`` instead): the full report plus the final
    commit timestamp of every wire, which the differential oracle uses
    to date divergences.
    """

    report: VerificationReport
    commit_times: Dict[int, float] = field(default_factory=dict)
